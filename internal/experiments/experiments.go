// Package experiments implements the reproduction harness for the paper's
// figures and analytical claims (see DESIGN.md §3 and EXPERIMENTS.md). Each
// experiment builds its workload, runs the relevant algorithms, and returns
// a printable table; cmd/axml-bench prints them, the top-level Go benchmarks
// reuse the same instance builders under testing.B.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"axml/internal/automata"
	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Paper fixtures

// PaperSchemaText is schema (*) of Section 2.
const PaperSchemaText = `
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.(Get_Date|date)
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
func Get_Date = title -> date
`

// PaperCompiled returns the compiled (*)-against-itself pair plus the word
// w = title.date.Get_Temp.TimeOut of Figure 2.
func PaperCompiled() (*core.Compiled, []core.Token) {
	s := schema.MustParseText(PaperSchemaText, nil)
	c := core.Compile(s, s)
	w := core.WordTokens([]regex.Symbol{
		c.Table.Intern("title"),
		c.Table.Intern("date"),
		c.Table.Intern("Get_Temp"),
		c.Table.Intern("TimeOut"),
	})
	return c, w
}

// NewspaperDoc is the Figure 2.a document.
func NewspaperDoc() *doc.Node {
	return doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		doc.Call("TimeOut", doc.TextNode("exhibits")),
	)
}

// TargetStarStar is the (**) newspaper content model; TargetTripleStar is
// (***).
const (
	TargetStarStar   = "title.date.temp.(TimeOut|exhibit*)"
	TargetTripleStar = "title.date.temp.exhibit*"
)

// ---------------------------------------------------------------------------
// Scaling fixtures

// ChainInstance builds the E-C1 scaling family: a content model of n slots
// (f_i | a_i), a word f_1 ... f_n, and the fully-materialized target
// a_1 ... a_n. Every f_i must be invoked; the analysis carries n forks.
func ChainInstance(n int) (*core.Compiled, []core.Token, *regex.Regex) {
	var b strings.Builder
	b.WriteString("root r\nelem r = ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "(f%d|a%d)", i, i)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "elem a%d = data\n", i)
		fmt.Fprintf(&b, "func f%d = data -> a%d\n", i, i)
	}
	s := schema.MustParseText(b.String(), nil)
	c := core.Compile(s, s)
	word := make([]regex.Symbol, n)
	targetParts := make([]string, n)
	for i := 0; i < n; i++ {
		word[i] = c.Table.Intern(fmt.Sprintf("f%d", i))
		targetParts[i] = fmt.Sprintf("a%d", i)
	}
	target := regex.MustParse(c.Table, strings.Join(targetParts, "."))
	return c, core.WordTokens(word), target
}

// RecursiveInstance builds the E-C6 family: a Get_More-style handle whose
// output may contain another handle; k bounds how deep materialization can
// chase it.
func RecursiveInstance() (*core.Compiled, []core.Token, *regex.Regex) {
	s := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	c := core.Compile(s, s)
	w := core.WordTokens([]regex.Symbol{c.Table.Intern("url"), c.Table.Intern("Get_More")})
	flatOrHandle := regex.MustParse(c.Table, "url*.Get_More?")
	return c, w, flatOrHandle
}

// ParallelPair builds the E-P1 fixture: a page of independent sec subtrees,
// each holding one Get call the target forces to materialize. Every call is
// independent of every other, so the parallel engine's speedup ceiling is
// the degree (until per-call latency stops dominating).
func ParallelPair() (*schema.Schema, *schema.Schema) {
	const text = `
root page
elem page = sec*
elem sec = (Get|val)
elem val = data
func Get = data -> val
`
	sender := schema.MustParseText(text, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table),
		strings.Replace(text, "elem sec = (Get|val)", "elem sec = val", 1), nil)
	if err != nil {
		panic(err)
	}
	return sender, target
}

// ParallelDoc builds a page of n sec elements, each with one Get call.
func ParallelDoc(n int) *doc.Node {
	kids := make([]*doc.Node, n)
	for i := range kids {
		kids[i] = doc.Elem("sec", doc.Call("Get", doc.TextNode(fmt.Sprintf("p%d", i))))
	}
	return doc.Elem("page", kids...)
}

// ParallelInvoker returns a deterministic stub service answering every Get
// with one val, after sleeping latency per call (0 = no sleep). The sleep
// stands in for the network round-trip the parallel engine overlaps.
func ParallelInvoker(latency time.Duration) core.Invoker {
	return core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
		if latency > 0 {
			t := time.NewTimer(latency)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []*doc.Node{doc.Elem("val", doc.TextNode(call.Label))}, nil
	})
}

// NondetTarget builds the classic (a|b)*.a.(a|b)^n language whose minimal
// DFA — and hence complement — is exponential in n.
func NondetTarget(t *regex.Table, n int) *regex.Regex {
	src := "(a|b)*.a"
	for i := 0; i < n; i++ {
		src += ".(a|b)"
	}
	return regex.MustParse(t, src)
}

// DetTarget builds a deterministic content model of comparable size.
func DetTarget(t *regex.Table, n int) *regex.Regex {
	parts := make([]string, n+1)
	for i := range parts {
		parts[i] = fmt.Sprintf("c%d", i)
	}
	return regex.MustParse(t, strings.Join(parts, "."))
}

// ---------------------------------------------------------------------------
// Experiments

func ns(d time.Duration, reps int) string {
	return fmt.Sprintf("%.1fµs", float64(d.Microseconds())/float64(reps))
}

// Figures (E-F4..E-F12): the verdicts and structural statistics of the
// paper's worked examples.
func Figures() *Table {
	c, w := PaperCompiled()
	t := &Table{
		ID:     "figures",
		Title:  "Paper figures 4-12 as executable artifacts",
		Note:   "verdicts must read: (**) safe; (***) unsafe but possible",
		Header: []string{"artifact", "target", "verdict", "fork-states", "prod-states", "lazy-states", "sink-prunes"},
	}
	for _, tc := range []struct {
		name, target string
		want         string
	}{
		{"Fig6 safe into (**)", TargetStarStar, "safe"},
		{"Fig8 safe into (***)", TargetTripleStar, "unsafe"},
	} {
		target := regex.MustParse(c.Table, tc.target)
		a, err := core.AnalyzeSafe(c, w, target, 1, nil)
		if err != nil {
			panic(err)
		}
		lazy, err := core.LazySafe(c, w, target, 1)
		if err != nil {
			panic(err)
		}
		verdict := "unsafe"
		if a.Safe() {
			verdict = "safe"
		}
		t.Rows = append(t.Rows, []string{
			tc.name, tc.target, verdict,
			fmt.Sprint(a.Fork.NumStates()),
			fmt.Sprint(a.NumProdStates()),
			fmt.Sprint(lazy.StatesExplored),
			fmt.Sprint(lazy.SinkPrunes),
		})
	}
	target := regex.MustParse(c.Table, TargetTripleStar)
	p, err := core.AnalyzePossible(c, w, target, 1, nil)
	if err != nil {
		panic(err)
	}
	verdict := "impossible"
	if p.Possible() {
		verdict = "possible"
	}
	t.Rows = append(t.Rows, []string{
		"Fig11 possible into (***)", TargetTripleStar, verdict,
		fmt.Sprint(p.Fork.NumStates()), fmt.Sprint(p.NumProdStates()), "-", "-",
	})
	return t
}

// SafeScaling (E-C1): safe-analysis cost against schema size and k.
func SafeScaling(sizes []int, ks []int, reps int) *Table {
	t := &Table{
		ID:     "safe-scaling",
		Title:  "Safe rewriting cost vs schema size and depth bound (§4 complexity claim)",
		Note:   "deterministic content models: growth stays polynomial; exponent driven by k",
		Header: []string{"n", "k", "fork-states", "prod-states", "eager", "lazy"},
	}
	for _, n := range sizes {
		c, w, target := ChainInstance(n)
		for _, k := range ks {
			a, err := core.AnalyzeSafe(c, w, target, k, nil)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := core.WordSafe(c, w, target, k); err != nil {
					panic(err)
				}
			}
			eager := time.Since(start)
			start = time.Now()
			for i := 0; i < reps; i++ {
				if _, err := core.LazySafe(c, w, target, k); err != nil {
					panic(err)
				}
			}
			lazy := time.Since(start)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(k),
				fmt.Sprint(a.Fork.NumStates()), fmt.Sprint(a.NumProdStates()),
				ns(eager, reps), ns(lazy, reps),
			})
		}
	}
	return t
}

// ComplementBlowup (E-C2): deterministic vs non-deterministic content models.
func ComplementBlowup(sizes []int, reps int) *Table {
	t := &Table{
		ID:     "complement-blowup",
		Title:  "Complement automaton size: deterministic vs non-deterministic content models (§4)",
		Note:   "XML Schema's UPA rule keeps real schemas in the left half",
		Header: []string{"n", "det-states", "det-time", "nondet-states", "nondet-time"},
	}
	for _, n := range sizes {
		tab := regex.NewTable()
		det := DetTarget(tab, n)
		nondet := NondetTarget(tab, n)
		detDFA := automata.ComplementOfRegex(det, det.Alphabet(nil))
		nondetDFA := automata.ComplementOfRegex(nondet, nondet.Alphabet(nil))
		start := time.Now()
		for i := 0; i < reps; i++ {
			automata.ComplementOfRegex(det, det.Alphabet(nil))
		}
		detTime := time.Since(start)
		start = time.Now()
		for i := 0; i < reps; i++ {
			automata.ComplementOfRegex(nondet, nondet.Alphabet(nil))
		}
		nondetTime := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(detDFA.NumStates()), ns(detTime, reps),
			fmt.Sprint(nondetDFA.NumStates()), ns(nondetTime, reps),
		})
	}
	return t
}

// PossibleVsSafe (E-C3): Figure 9 avoids complementation and is cheaper.
func PossibleVsSafe(sizes []int, reps int) *Table {
	t := &Table{
		ID:     "possible-vs-safe",
		Title:  "Possible rewriting vs safe rewriting cost (§5)",
		Header: []string{"n", "safe-states", "safe", "possible-states", "possible"},
	}
	for _, n := range sizes {
		c, w, target := ChainInstance(n)
		a, err := core.AnalyzeSafe(c, w, target, 1, nil)
		if err != nil {
			panic(err)
		}
		p, err := core.AnalyzePossible(c, w, target, 1, nil)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.WordSafe(c, w, target, 1); err != nil {
				panic(err)
			}
		}
		safeTime := time.Since(start)
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.WordPossible(c, w, target, 1); err != nil {
				panic(err)
			}
		}
		possTime := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(a.NumProdStates()), ns(safeTime, reps),
			fmt.Sprint(p.NumProdStates()), ns(possTime, reps),
		})
	}
	return t
}

// LazyPruning (E-C5 / Figure 12): states explored, eager vs lazy.
func LazyPruning(seeds int) *Table {
	t := &Table{
		ID:     "lazy-pruning",
		Title:  "Lazy variant pruning (§7, Figure 12)",
		Note:   "same verdicts, fewer explored states",
		Header: []string{"workload", "verdict", "eager-states", "lazy-states", "sink-prunes", "mark-prunes"},
	}
	add := func(name string, c *core.Compiled, w []core.Token, target *regex.Regex, k int) {
		a, err := core.AnalyzeSafe(c, w, target, k, nil)
		if err != nil {
			panic(err)
		}
		l, err := core.LazySafe(c, w, target, k)
		if err != nil {
			panic(err)
		}
		if a.Safe() != l.Verdict {
			panic(fmt.Sprintf("verdict mismatch on %s", name))
		}
		verdict := "unsafe"
		if a.Safe() {
			verdict = "safe"
		}
		t.Rows = append(t.Rows, []string{
			name, verdict,
			fmt.Sprint(a.NumProdStates()), fmt.Sprint(l.StatesExplored),
			fmt.Sprint(l.SinkPrunes), fmt.Sprint(l.MarkPrunes),
		})
	}
	c, w := PaperCompiled()
	add("paper Fig6", c, w, regex.MustParse(c.Table, TargetStarStar), 1)
	add("paper Fig8", c, w, regex.MustParse(c.Table, TargetTripleStar), 1)
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.Options{Labels: 5, Funcs: 3})
		g := workload.NewGenerator(s, rng)
		root, err := g.Root()
		if err != nil {
			panic(err)
		}
		cc := core.Compile(s, s)
		tokens := core.TokensOf(cc, root)
		labels := s.SortedLabels()
		target := s.Labels[labels[rng.Intn(len(labels))]].Content
		if target == nil {
			continue
		}
		add(fmt.Sprintf("random seed=%d", seed), cc, tokens, target, 2)
	}
	return t
}

// MixedBenefit (E-C4): pre-invoking side-effect-free calls shrinks the safe
// analysis.
func MixedBenefit(sizes []int, reps int) *Table {
	t := &Table{
		ID:     "mixed-benefit",
		Title:  "Mixed strategy: analysis size before vs after pre-invocation (§5)",
		Note:   "pre-invoked calls replace signature automata with concrete words",
		Header: []string{"n-funcs", "states-before", "time-before", "states-after", "time-after"},
	}
	for _, n := range sizes {
		c, w, target := ChainInstance(n)
		before, err := core.AnalyzeSafe(c, w, target, 1, nil)
		if err != nil {
			panic(err)
		}
		startB := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.WordSafe(c, w, target, 1); err != nil {
				panic(err)
			}
		}
		timeBefore := time.Since(startB)
		// After pre-invocation every f_i has been replaced by its concrete
		// result a_i: the word is plain data.
		after := make([]core.Token, n)
		for i := range after {
			after[i] = core.Token{Sym: c.Table.Intern(fmt.Sprintf("a%d", i))}
		}
		afterA, err := core.AnalyzeSafe(c, after, target, 1, nil)
		if err != nil {
			panic(err)
		}
		startA := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.WordSafe(c, after, target, 1); err != nil {
				panic(err)
			}
		}
		timeAfter := time.Since(startA)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(before.NumProdStates()), ns(timeBefore, reps),
			fmt.Sprint(afterA.NumProdStates()), ns(timeAfter, reps),
		})
	}
	return t
}

// KDepthGrowth (E-C6): materialized word length against k for a recursive
// handle (the |w|·x^k bound of §4).
func KDepthGrowth(ks []int) *Table {
	t := &Table{
		ID:     "k-depth",
		Title:  "Materialization depth: recursive Get_More handle (§4 length bound)",
		Note:   "simulated service returns up to 3 urls and possibly another handle",
		Header: []string{"k", "calls", "final-urls", "still-intensional"},
	}
	for _, k := range ks {
		s := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
		rng := rand.New(rand.NewSource(42))
		sim := workload.NewSimInvoker(s, rng)
		rw := core.NewRewriter(s, s, k, sim)
		rw.Audit = &core.Audit{}
		rw.MaxCalls = 1 << k * 8
		root := doc.Elem("results",
			doc.Elem("url", doc.TextNode("u0")),
			doc.Call("Get_More", doc.TextNode("q")))
		// Target: as flat as k allows — the peer's own schema; the mixed
		// pre-invoke pass chases handles to depth k.
		out, err := rw.RewriteDocument(root, core.Mixed)
		row := []string{fmt.Sprint(k), "-", "-", "-"}
		if err == nil {
			urls := 0
			for _, ch := range out.Children {
				if ch.Label == "url" {
					urls++
				}
			}
			row = []string{
				fmt.Sprint(k),
				fmt.Sprint(rw.Audit.Len()),
				fmt.Sprint(urls),
				fmt.Sprint(out.HasFuncs()),
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SchemaRewrite (E-C7): Definition 6 checks on the paper pair and scaling
// families.
func SchemaRewrite(sizes []int, reps int) *Table {
	t := &Table{
		ID:     "schema-rewrite",
		Title:  "Schema-level compatibility checking (§6)",
		Note:   "(*)→(**) safe; (*)→(***) unsafe; identity always safe",
		Header: []string{"pair", "labels", "verdict", "time"},
	}
	sender := schema.MustParseText(PaperSchemaText, nil)
	addPair := func(name string, target *schema.Schema, k int) {
		c := core.Compile(sender, target)
		report, err := core.SchemaSafeRewrite(c, "", k)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.SchemaSafeRewrite(core.Compile(sender, target), "", k); err != nil {
				panic(err)
			}
		}
		verdict := "unsafe"
		if report.Safe() {
			verdict = "safe"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(len(report.Verdicts)), verdict, ns(time.Since(start), reps)})
	}
	mkTarget := func(model string) *schema.Schema {
		text := strings.Replace(PaperSchemaText,
			"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
			"elem newspaper = "+model, 1)
		s2, err := schema.ParseTextShared(schema.NewShared(sender.Table), text, nil)
		if err != nil {
			panic(err)
		}
		return s2
	}
	addPair("(*) -> (*)", sender, 1)
	addPair("(*) -> (**)", mkTarget(TargetStarStar), 1)
	addPair("(*) -> (***)", mkTarget(TargetTripleStar), 1)
	for _, n := range sizes {
		c, _, _ := ChainInstance(n)
		report, err := core.SchemaSafeRewrite(c, "", 1)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.SchemaSafeRewrite(c, "", 1); err != nil {
				panic(err)
			}
		}
		verdict := "unsafe"
		if report.Safe() {
			verdict = "safe"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("chain(%d) identity", n), fmt.Sprint(len(report.Verdicts)), verdict, ns(time.Since(start), reps)})
	}
	return t
}

// CopySharing is the ablation of the fork-construction design choice: the
// literal per-edge attachment of Figure 3 versus sharing output copies
// between forks with identical (function, successor, depth) — exponential
// versus linear in k for recursive output types, same language.
func CopySharing(ks []int, reps int) *Table {
	t := &Table{
		ID:     "copy-sharing",
		Title:  "Ablation: shared vs per-edge output copies in A_w^k (recursive Get_More)",
		Note:   "identical languages; sharing turns exponential growth in k into linear",
		Header: []string{"k", "shared-states", "shared-time", "unshared-states", "unshared-time"},
	}
	c, w, _ := RecursiveInstance()
	for _, k := range ks {
		shared, err := core.BuildFork(c, w, k)
		if err != nil {
			panic(err)
		}
		unshared, err := core.BuildForkUnshared(c, w, k)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k),
				fmt.Sprint(shared.NumStates()), "-", "state cap exceeded", "-"})
			continue
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.BuildFork(c, w, k); err != nil {
				panic(err)
			}
		}
		sharedTime := time.Since(start)
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.BuildForkUnshared(c, w, k); err != nil {
				panic(err)
			}
		}
		unsharedTime := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(shared.NumStates()), ns(sharedTime, reps),
			fmt.Sprint(unshared.NumStates()), ns(unsharedTime, reps),
		})
	}
	return t
}

// ParallelSpeedup (E-P1): wall-clock materialization time against the
// parallelism degree, per-call latency, and function density. With zero
// latency the engine's overhead dominates and the degrees tie; with real
// round-trips the speedup approaches min(degree, independent calls).
func ParallelSpeedup(degrees []int, latencies []time.Duration, densities []int, reps int) *Table {
	t := &Table{
		ID:     "parallel-speedup",
		Title:  "Parallel materialization: wall clock vs degree, latency, density (§7 of DESIGN.md)",
		Note:   "independent sec subtrees; degree 1 is the sequential engine, byte-identical output",
		Header: []string{"latency", "funcs", "degree", "wall", "speedup"},
	}
	for _, lat := range latencies {
		for _, n := range densities {
			var base time.Duration
			for _, degree := range degrees {
				sender, target := ParallelPair()
				rw := core.NewRewriterFor(core.Compile(sender, target), 2, ParallelInvoker(lat))
				rw.Parallelism = degree
				var total time.Duration
				for i := 0; i < reps; i++ {
					root := ParallelDoc(n)
					start := time.Now()
					if _, err := rw.RewriteDocument(root, core.Safe); err != nil {
						panic(err)
					}
					total += time.Since(start)
				}
				wall := total / time.Duration(reps)
				if degree == degrees[0] {
					base = wall
				}
				speedup := "1.00x"
				if wall > 0 {
					speedup = fmt.Sprintf("%.2fx", float64(base)/float64(wall))
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(lat), fmt.Sprint(n), fmt.Sprint(degree),
					fmt.Sprintf("%.2fms", float64(wall.Microseconds())/1000), speedup,
				})
			}
		}
	}
	return t
}

// All runs every experiment with default parameters.
func All() []*Table {
	return []*Table{
		Figures(),
		SafeScaling([]int{4, 8, 16, 32}, []int{1, 2}, 5),
		ComplementBlowup([]int{4, 8, 12, 16}, 5),
		PossibleVsSafe([]int{4, 8, 16, 32}, 5),
		MixedBenefit([]int{4, 8, 16, 32}, 5),
		LazyPruning(4),
		KDepthGrowth([]int{1, 2, 3, 4, 6}),
		SchemaRewrite([]int{8, 16}, 3),
		CopySharing([]int{2, 4, 6, 8, 10}, 3),
		ParallelSpeedup([]int{1, 2, 4, 8},
			[]time.Duration{0, time.Millisecond, 5 * time.Millisecond},
			[]int{8, 32}, 3),
	}
}
