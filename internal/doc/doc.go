// Package doc implements the intensional document model of Milo et al.
// (Definition 1): ordered labeled trees whose nodes are either extensional
// data (elements and text values) or *function nodes* — embedded Web-service
// calls whose children subtrees are the call's parameters. Invoking a
// function node replaces it, in place, by the forest the service returns.
package doc

import (
	"fmt"
	"strings"
)

// Kind discriminates the three node kinds of an intensional document.
type Kind uint8

const (
	// Element is an ordinary XML element with a label and children.
	Element Kind = iota
	// Text is a leaf holding an atomic data value.
	Text
	// Func is a function node: an embedded service call whose children are
	// its parameters.
	Func
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	case Func:
		return "func"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ServiceRef carries the information needed to reach the Web service behind
// a function node — in the XML syntax, the endpointURL, methodName and
// namespaceURI attributes of an int:fun element. The Method alone identifies
// the function in the simple model; the other fields matter for SOAP
// transport.
type ServiceRef struct {
	Endpoint  string
	Method    string
	Namespace string
}

// Node is one node of an intensional document. Fields are used according to
// Kind:
//
//   - Element: Label is the element name, Children its content;
//   - Text: Value holds the data value (Label is empty, no Children);
//   - Func: Label is the function name, Children are the parameter forest,
//     and Service optionally pins the concrete endpoint.
//
// Nodes are mutable; rewriting splices returned forests into Children
// slices. Use Clone before handing a document to code that mutates it.
type Node struct {
	Kind     Kind
	Label    string
	Value    string
	Service  *ServiceRef
	Children []*Node
}

// Elem builds an element node.
func Elem(label string, children ...*Node) *Node {
	return &Node{Kind: Element, Label: label, Children: children}
}

// TextNode builds a text leaf.
func TextNode(value string) *Node {
	return &Node{Kind: Text, Value: value}
}

// Call builds a function node with the given parameters.
func Call(name string, params ...*Node) *Node {
	return &Node{Kind: Func, Label: name, Children: params}
}

// CallAt is Call with an explicit service reference.
func CallAt(ref ServiceRef, params ...*Node) *Node {
	r := ref
	return &Node{Kind: Func, Label: ref.Method, Service: &r, Children: params}
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Label: n.Label, Value: n.Value}
	if n.Service != nil {
		ref := *n.Service
		c.Service = &ref
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// CloneForest deep-copies a forest.
func CloneForest(forest []*Node) []*Node {
	out := make([]*Node, len(forest))
	for i, n := range forest {
		out[i] = n.Clone()
	}
	return out
}

// Equal reports deep structural equality (Service references are compared by
// value; nil Service equals nil only).
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Label != m.Label || n.Value != m.Value {
		return false
	}
	if (n.Service == nil) != (m.Service == nil) {
		return false
	}
	if n.Service != nil && *n.Service != *m.Service {
		return false
	}
	if len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Walk visits n and its descendants in document order (pre-order). The visit
// function may mutate the node it receives; returning false prunes the walk
// below that node.
func (n *Node) Walk(visit func(*Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Count returns the number of nodes in the tree.
func (n *Node) Count() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// CountFuncs returns the number of function nodes in the tree.
func (n *Node) CountFuncs() int {
	count := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == Func {
			count++
		}
		return true
	})
	return count
}

// HasFuncs reports whether any function node remains — i.e. whether the
// document is still intensional.
func (n *Node) HasFuncs() bool {
	found := false
	n.Walk(func(m *Node) bool {
		if m.Kind == Func {
			found = true
		}
		return !found
	})
	return found
}

// sizeOverhead approximates the resident bytes of one Node struct plus its
// bookkeeping (child-slice headers, allocator rounding); ServiceRef adds its
// own share. The figure feeds buffered-memory accounting, not allocation.
const (
	sizeOverhead    = 80
	serviceOverhead = 56
)

// Size estimates the resident memory of the subtree in bytes: node structs,
// label/value string bytes, child pointer slots and service references. The
// streaming engine reports its buffered frontier through this estimate.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	sz := sizeOverhead + len(n.Label) + len(n.Value) + 8*len(n.Children)
	if n.Service != nil {
		sz += serviceOverhead + len(n.Service.Endpoint) + len(n.Service.Method) + len(n.Service.Namespace)
	}
	for _, c := range n.Children {
		sz += c.Size()
	}
	return sz
}

// ChildLabels returns the labels of the node's children, in order — the word
// w the per-node rewriting step works on. Text children have no label in the
// word model; they are skipped (atomic content is typed by the "data"
// keyword, not by the content-model word).
func (n *Node) ChildLabels() []string {
	out := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Kind != Text {
			out = append(out, c.Label)
		}
	}
	return out
}

// OutermostFuncs returns the function nodes of the forest that are not
// nested inside another function node's parameters (but may be nested inside
// elements). These are exactly the calls the top-down rewriting phase is
// allowed to invoke; inner calls become invocable only after their enclosing
// call's parameters have been dealt with.
func OutermostFuncs(forest []*Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == Func {
			out = append(out, n)
			return // children are parameters: not outermost
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range forest {
		walk(n)
	}
	return out
}

// FuncsBottomUp returns every function node of the tree ordered so that a
// function nested in another's parameters appears before it — the order the
// parameter-checking phase of the rewriting algorithm needs ("start from the
// deepest functions and recursively move upward").
func FuncsBottomUp(root *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		if n.Kind == Func {
			out = append(out, n)
		}
	}
	walk(root)
	return out
}

// ReplaceChild splices repl in place of the i-th child of n, returning an
// error if i is out of range. It is the tree operation behind Definition 4's
// rewriting step t →v t'.
func (n *Node) ReplaceChild(i int, repl []*Node) error {
	if i < 0 || i >= len(n.Children) {
		return fmt.Errorf("doc: ReplaceChild index %d out of range [0,%d)", i, len(n.Children))
	}
	next := make([]*Node, 0, len(n.Children)-1+len(repl))
	next = append(next, n.Children[:i]...)
	next = append(next, repl...)
	next = append(next, n.Children[i+1:]...)
	n.Children = next
	return nil
}

// IndexOfChild returns the index of child in n.Children (pointer identity),
// or -1.
func (n *Node) IndexOfChild(child *Node) int {
	for i, c := range n.Children {
		if c == child {
			return i
		}
	}
	return -1
}

// String renders the tree in a compact indented form for debugging and
// error messages.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, 0)
	return b.String()
}

func (n *Node) write(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case Text:
		fmt.Fprintf(b, "%s%q\n", indent, n.Value)
	case Element:
		fmt.Fprintf(b, "%s<%s>\n", indent, n.Label)
		for _, c := range n.Children {
			c.write(b, depth+1)
		}
	case Func:
		fmt.Fprintf(b, "%s@%s()\n", indent, n.Label)
		for _, c := range n.Children {
			c.write(b, depth+1)
		}
	}
}

// ForestString renders a forest.
func ForestString(forest []*Node) string {
	var b strings.Builder
	for _, n := range forest {
		n.write(&b, 0)
	}
	return b.String()
}
