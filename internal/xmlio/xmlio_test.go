package xmlio

import (
	"strings"
	"testing"

	"axml/internal/doc"
)

// paperXML is the example document from Section 7 of the paper (with the
// closing-tag typo of the original fixed).
const paperXML = `<?xml version="1.0"?>
<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title> The Sun </title>
  <date> 04/10/2002 </date>
  <int:fun endpointURL="http://www.forecast.com/soap" methodName="Get_Temp" namespaceURI="urn:xmethods-weather">
    <int:params>
      <int:param>
        <city>Paris</city>
      </int:param>
    </int:params>
  </int:fun>
  <int:fun endpointURL="http://www.timeout.com/paris" methodName="TimeOut" namespaceURI="urn:timeout-program">
    <int:params>
      <int:param> exhibits </int:param>
    </int:params>
  </int:fun>
</newspaper>
`

func TestParsePaperDocument(t *testing.T) {
	n, err := ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "newspaper" || n.Kind != doc.Element {
		t.Fatalf("root = %v %q", n.Kind, n.Label)
	}
	if len(n.Children) != 4 {
		t.Fatalf("children = %d want 4", len(n.Children))
	}
	gt := n.Children[2]
	if gt.Kind != doc.Func || gt.Label != "Get_Temp" {
		t.Fatalf("third child = %v %q", gt.Kind, gt.Label)
	}
	if gt.Service == nil || gt.Service.Endpoint != "http://www.forecast.com/soap" ||
		gt.Service.Namespace != "urn:xmethods-weather" {
		t.Errorf("service ref = %+v", gt.Service)
	}
	if len(gt.Children) != 1 || gt.Children[0].Label != "city" {
		t.Errorf("Get_Temp params = %v", gt.Children)
	}
	if gt.Children[0].Children[0].Value != "Paris" {
		t.Errorf("city value wrong")
	}
	to := n.Children[3]
	if to.Kind != doc.Func || len(to.Children) != 1 || to.Children[0].Kind != doc.Text {
		t.Errorf("TimeOut params = %v", to.Children)
	}
	if to.Children[0].Value != "exhibits" {
		t.Errorf("TimeOut param = %q", to.Children[0].Value)
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	s, err := String(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, s)
	}
	if !orig.Equal(back) {
		t.Errorf("round trip changed the document:\n%s\nvs\n%s", orig, back)
	}
	if !strings.Contains(s, `xmlns:int="http://www.activexml.com/ns/int"`) {
		t.Error("namespace declaration missing")
	}
}

func TestRoundTripPureData(t *testing.T) {
	n := doc.Elem("a", doc.Elem("b", doc.TextNode("x")), doc.Elem("c"))
	s, err := String(n)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "xmlns:int") {
		t.Error("namespace declared on a purely extensional document")
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Equal(back) {
		t.Error("round trip changed the document")
	}
}

func TestFunWithoutService(t *testing.T) {
	n := doc.Elem("root", doc.Call("F", doc.TextNode("p")))
	s, err := String(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	f := back.Children[0]
	if f.Kind != doc.Func || f.Label != "F" {
		t.Fatalf("func lost: %v", back)
	}
	if len(f.Children) != 1 || f.Children[0].Value != "p" {
		t.Errorf("params lost: %v", f.Children)
	}
}

func TestMultiNodeParam(t *testing.T) {
	// One int:param wrapping two elements contributes two parameter nodes.
	src := `<r xmlns:int="http://www.activexml.com/ns/int">
	  <int:fun methodName="F"><int:params>
	    <int:param><a/><b/></int:param>
	  </int:params></int:fun></r>`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	f := n.Children[0]
	if len(f.Children) != 2 || f.Children[0].Label != "a" || f.Children[1].Label != "b" {
		t.Errorf("params = %v", f.Children)
	}
}

func TestEscaping(t *testing.T) {
	n := doc.Elem("a", doc.TextNode(`<&>"special"`))
	s, err := String(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, s)
	}
	if back.Children[0].Value != `<&>"special"` {
		t.Errorf("escaping broke text: %q", back.Children[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`text only`,
		`<a>`,
		`<a></b>`,
		`<r xmlns:int="http://www.activexml.com/ns/int"><int:fun/></r>`,                             // no methodName
		`<r xmlns:int="http://www.activexml.com/ns/int"><int:params/></r>`,                          // params outside fun
		`<r xmlns:int="http://www.activexml.com/ns/int"><int:fun methodName="f"><x/></int:fun></r>`, // non-params inside fun
		`<r xmlns:int="http://www.activexml.com/ns/int"><int:fun methodName="f">text</int:fun></r>`,
		`<r xmlns:int="http://www.activexml.com/ns/int"><int:fun methodName="f"><int:params><a/></int:params></int:fun></r>`,
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestWhitespaceHandling(t *testing.T) {
	n, err := ParseString("<a>\n  <b>  hello  </b>\n  <c/>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 2 {
		t.Fatalf("whitespace text kept: %v", n.Children)
	}
	if n.Children[0].Children[0].Value != "hello" {
		t.Errorf("text not trimmed: %q", n.Children[0].Children[0].Value)
	}
}

func TestEmptyElements(t *testing.T) {
	n := doc.Elem("a", doc.Elem("empty"), doc.Call("F"))
	s, err := String(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "<empty/>") || !strings.Contains(s, "<int:fun") {
		t.Errorf("self-closing rendering wrong:\n%s", s)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Equal(back) {
		t.Error("round trip changed the document")
	}
}
