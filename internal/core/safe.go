package core

import (
	"sort"
	"time"

	"axml/internal/automata"
	"axml/internal/regex"
)

// ProdEdge is one option inside a Group: a move to a product state, possibly
// representing the invocation of a function.
type ProdEdge struct {
	To       int
	ViaCall  bool
	FuncSym  regex.Symbol
	TokenIdx int
	// Sym is the symbol consumed by word edges (NoSymbol for ε moves); kept
	// for plan tracing and debugging output.
	Sym regex.Symbol
}

// Group is one choice point of the marking game. A fork group carries the
// two options of Figure 3 — keep the function occurrence or invoke it — and
// is "lost" only when *both* options lead to marked states. Every other
// group is an adversarial singleton (the automaton/nondeterminism moves by
// itself) and is lost as soon as its single target is marked.
type Group struct {
	Fork     bool
	FuncSym  regex.Symbol
	TokenIdx int
	Options  []ProdEdge
}

// SafeAnalysis is the marked product A_× = A_w^k × Ā of Figure 3.
type SafeAnalysis struct {
	Fork   *Fork
	Compl  *automata.DFA
	Target *regex.Regex

	// QState / PState give the A_w^k state and Ā state of each product
	// state; Groups lists its choice structure; Marked is the fixpoint of
	// steps 15–17.
	QState  []int
	PState  []automata.State
	Groups  [][]Group
	Marked  []bool
	Initial int

	// Accepting marks the seed states (q accepting in A_w^k and p accepting
	// in Ā): words that escaped the target language.
	Accepting []bool
}

// Safe reports the verdict: a k-depth left-to-right safe rewriting exists
// iff the initial state is unmarked (step 18).
func (a *SafeAnalysis) Safe() bool { return !a.Marked[a.Initial] }

// NumProdStates returns how many product states were constructed — the
// quantity the lazy-vs-eager experiment compares.
func (a *SafeAnalysis) NumProdStates() int { return len(a.QState) }

// NumProdEdges returns the number of product options constructed.
func (a *SafeAnalysis) NumProdEdges() int {
	n := 0
	for _, gs := range a.Groups {
		for _, g := range gs {
			n += len(g.Options)
		}
	}
	return n
}

// AnalyzeSafe runs the full (eager) Figure 3 algorithm at the word level:
// build A_w^k for the tokens, build the complete complement Ā of the
// (pattern-expanded) target content model, build their product, and mark it.
// extraAlphabet extends the effective alphabet with symbols the caller knows
// about beyond the two schemas (e.g. labels that only occur in documents).
func AnalyzeSafe(c *Compiled, tokens []Token, target *regex.Regex, k int, extraAlphabet []regex.Symbol) (*SafeAnalysis, error) {
	ins := c.instruments()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	fork, err := BuildFork(c, tokens, k)
	if err != nil {
		return nil, err
	}
	if ins != nil {
		ins.forkSeconds.ObserveSince(t0)
		ins.forkStates.Observe(float64(fork.NumStates()))
		t0 = time.Now()
	}
	expanded := c.ExpandPatterns(target)
	compl := automata.ComplementOfRegex(expanded, alphabetFor(c, tokens, extraAlphabet))
	if ins != nil {
		ins.complSeconds.ObserveSince(t0)
	}
	a := buildProduct(fork, compl, expanded)
	a.mark()
	if ins != nil {
		ins.prodEager.Observe(float64(a.NumProdStates()))
	}
	return a, nil
}

func alphabetFor(c *Compiled, tokens []Token, extra []regex.Symbol) []regex.Symbol {
	sigma := append([]regex.Symbol(nil), c.Alphabet()...)
	for _, t := range tokens {
		sigma = append(sigma, t.Sym)
	}
	sigma = append(sigma, extra...)
	sort.Slice(sigma, func(i, j int) bool { return sigma[i] < sigma[j] })
	return dedup(sigma)
}

type prodKey struct {
	q int
	p automata.State
}

// buildProduct constructs the reachable part of A_w^k × Ā with the fork
// structure reflected onto product states (steps 11–14 of Figure 3).
func buildProduct(fork *Fork, compl *automata.DFA, target *regex.Regex) *SafeAnalysis {
	a := &SafeAnalysis{Fork: fork, Compl: compl, Target: target}
	index := map[prodKey]int{}
	intern := func(q int, p automata.State) (int, bool) {
		k := prodKey{q, p}
		if s, ok := index[k]; ok {
			return s, false
		}
		s := len(a.QState)
		index[k] = s
		a.QState = append(a.QState, q)
		a.PState = append(a.PState, p)
		a.Groups = append(a.Groups, nil)
		a.Accepting = append(a.Accepting, fork.Accept[q] && compl.Accept[p])
		return s, true
	}
	start, _ := intern(0, compl.Start)
	a.Initial = start
	work := []int{start}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		q, p := a.QState[s], a.PState[s]
		groups := a.expandState(q, p, intern, &work)
		a.Groups[s] = groups
	}
	return a
}

// expandState computes the groups of product state (q, p), interning
// successor states as needed.
func (a *SafeAnalysis) expandState(q int, p automata.State, intern func(int, automata.State) (int, bool), work *[]int) []Group {
	fork, compl := a.Fork, a.Compl
	var groups []Group
	push := func(to int, fresh bool) {
		if fresh {
			*work = append(*work, to)
		}
	}
	edges := fork.Edges[q]
	for _, e := range edges {
		switch {
		case e.IsCall:
			// Handled as the call option of its keep edge's group.
		case e.Eps:
			to, fresh := intern(e.To, p)
			push(to, fresh)
			groups = append(groups, Group{Options: []ProdEdge{{To: to, Sym: regex.NoSymbol}}})
		case e.Partner >= 0:
			// A fork: keep consumes the function symbol; call ε-moves into
			// the attached output copy without advancing Ā.
			f := e.FuncSym
			keepTo, fresh := intern(e.To, compl.Step(p, f))
			push(keepTo, fresh)
			call := edges[e.Partner]
			callTo, fresh2 := intern(call.To, p)
			push(callTo, fresh2)
			groups = append(groups, Group{
				Fork:     true,
				FuncSym:  f,
				TokenIdx: e.TokenIdx,
				Options: []ProdEdge{
					{To: keepTo, FuncSym: f, TokenIdx: e.TokenIdx, Sym: f},
					{To: callTo, ViaCall: true, FuncSym: f, TokenIdx: e.TokenIdx, Sym: regex.NoSymbol},
				},
			})
		default:
			// Plain word edge: expand its class over the complement's
			// alphabet (plus the uniform "other" column for wildcards);
			// every concrete symbol is an adversarial singleton group.
			for _, opt := range a.classOptions(e, p, intern, push) {
				groups = append(groups, Group{Options: []ProdEdge{opt}})
			}
		}
	}
	return groups
}

func (a *SafeAnalysis) classOptions(e ForkEdge, p automata.State, intern func(int, automata.State) (int, bool), push func(int, bool)) []ProdEdge {
	compl := a.Compl
	var opts []ProdEdge
	if !e.Cls.Negated {
		for _, x := range e.Cls.Syms {
			to, fresh := intern(e.To, compl.Step(p, x))
			push(to, fresh)
			opts = append(opts, ProdEdge{To: to, FuncSym: e.FuncSym, TokenIdx: e.TokenIdx, Sym: x})
		}
		return opts
	}
	// Wildcard: one option per alphabet symbol the class admits, plus the
	// "other" column standing for all remaining symbols uniformly.
	for _, x := range compl.Alphabet {
		if !e.Cls.Contains(x) {
			continue
		}
		to, fresh := intern(e.To, compl.Step(p, x))
		push(to, fresh)
		opts = append(opts, ProdEdge{To: to, TokenIdx: e.TokenIdx, Sym: x, FuncSym: regex.NoSymbol})
	}
	other := compl.Trans[p][len(compl.Alphabet)]
	to, fresh := intern(e.To, other)
	push(to, fresh)
	opts = append(opts, ProdEdge{To: to, TokenIdx: e.TokenIdx, Sym: regex.NoSymbol, FuncSym: regex.NoSymbol})
	return opts
}

// mark runs steps 15–17: seed with accepting product states, then propagate
// backward — a state is marked when some group has *all* options marked
// (for singletons: its only option; for forks: both keep and call).
func (a *SafeAnalysis) mark() {
	n := len(a.QState)
	a.Marked = make([]bool, n)

	// remaining[s][g]: unmarked options left in group g of state s.
	remaining := make([][]int, n)
	type dep struct{ s, g int }
	incoming := map[int][]dep{}
	for s := 0; s < n; s++ {
		remaining[s] = make([]int, len(a.Groups[s]))
		for g, grp := range a.Groups[s] {
			remaining[s][g] = len(grp.Options)
			for _, o := range grp.Options {
				incoming[o.To] = append(incoming[o.To], dep{s, g})
			}
		}
	}
	var queue []int
	enqueue := func(s int) {
		if !a.Marked[s] {
			a.Marked[s] = true
			queue = append(queue, s)
		}
	}
	for s := 0; s < n; s++ {
		if a.Accepting[s] {
			enqueue(s)
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, d := range incoming[t] {
			remaining[d.s][d.g]--
			if remaining[d.s][d.g] == 0 {
				enqueue(d.s)
			}
		}
	}
	// Note: a state whose marked option sits in a group alongside other
	// options decrements only once per (state, group, target) edge; if the
	// same target appears twice in one group both decrements happen, which
	// is correct because remaining counts options, not distinct targets.
}

// WordSafe is the convenience entry point: does the token word safely
// rewrite into target within k-depth?
func WordSafe(c *Compiled, tokens []Token, target *regex.Regex, k int) (bool, error) {
	a, err := AnalyzeSafe(c, tokens, target, k, nil)
	if err != nil {
		return false, err
	}
	return a.Safe(), nil
}
