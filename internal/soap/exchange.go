package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"axml/internal/doc"
	"axml/internal/telemetry"
	"axml/internal/xmlio"
)

// CallExchange is the HTTP implementation of core.ExchangeFunc: it fetches
// docName from the axml peer at base.
//
// Without parameters it GETs /doc/{name} — the document as stored,
// intensional nodes included. With parameters, the first one is taken to be
// an exchange schema and POSTed to /exchange/{name}, so the remote peer's
// Schema Enforcement module materializes exactly what the schema demands
// before the document crosses the wire — the paper's Figure 1 scenario,
// initiated by a function node instead of a human.
//
// The caller's trace context rides both forms (traceparent header), so a
// materialization hopping machines is one trace end to end. Responses are
// read through the client-side body cap (DefaultMaxResponseBytes).
func CallExchange(ctx context.Context, base, docName string, params []*doc.Node) ([]*doc.Node, error) {
	var (
		req *http.Request
		err error
	)
	if len(params) == 0 {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/doc/"+url.PathEscape(docName), nil)
	} else {
		var body bytes.Buffer
		if werr := xmlio.WriteTo(&body, params[0]); werr != nil {
			return nil, fmt.Errorf("soap: serializing exchange schema for %q: %w", docName, werr)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/exchange/"+url.PathEscape(docName), &body)
		if err == nil {
			req.Header.Set("Content-Type", "text/xml; charset=utf-8")
		}
	}
	if err != nil {
		return nil, fmt.Errorf("soap: fetching %q from %s: %w", docName, base, err)
	}
	telemetry.InjectTraceContext(ctx, req.Header)
	resp, err := DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("soap: fetching %q from %s: %w", docName, base, err)
	}
	defer resp.Body.Close()
	body := io.LimitReader(resp.Body, DefaultMaxResponseBytes)
	if resp.StatusCode != http.StatusOK {
		excerpt, _ := io.ReadAll(io.LimitReader(body, bodyExcerptBytes))
		return nil, fmt.Errorf("soap: fetching %q from %s: %s: %s",
			docName, base, resp.Status, bytes.TrimSpace(excerpt))
	}
	d, err := xmlio.Parse(body)
	if err != nil {
		return nil, fmt.Errorf("soap: fetching %q from %s: %w", docName, base, err)
	}
	return []*doc.Node{d}, nil
}
