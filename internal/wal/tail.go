package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the log's export surface for replication: an in-memory tail
// of recent records with absolute sequence numbers (Options.TailRecords),
// a notification channel for long-poll readers, and the WAL frame format
// exposed as a wire codec (EncodeFrame / FrameReader) so the bytes a
// follower receives are re-verified by the same CRC discipline the on-disk
// log uses.

// SeqRecord is one appended record together with its absolute sequence
// number. Sequences start at 1 for the first record appended after Open and
// are process-lifetime only: they do not survive a restart (the replication
// layer's epoch makes that safe — see internal/replica).
type SeqRecord struct {
	Seq uint64
	Record
}

// ErrCorruptFrame reports a frame whose header, checksum or payload failed
// validation while decoding a stream (see FrameReader).
var ErrCorruptFrame = errors.New("wal: corrupt frame")

// closedChan is returned by AppendNotify on a closed log so waiters wake
// immediately instead of blocking until their timeout.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// recordAppendedLocked numbers one acknowledged append, retains it in the
// tail ring (when enabled) and wakes long-poll readers. Caller holds l.mu.
func (l *Log) recordAppendedLocked(op Op, name string, data []byte) {
	l.recSeq++
	if n := l.opts.TailRecords; n > 0 {
		// The caller keeps ownership of data; the ring stores a copy so a
		// later ReadAfter can hand frames out without aliasing anything the
		// application may still reuse.
		var cp []byte
		if len(data) > 0 {
			cp = append([]byte(nil), data...)
		}
		sr := SeqRecord{Seq: l.recSeq, Record: Record{Op: op, Name: name, Data: cp}}
		if len(l.tailRecs) < n {
			l.tailRecs = append(l.tailRecs, sr)
		} else {
			l.tailRecs[l.tailPos] = sr
			l.tailPos = (l.tailPos + 1) % n
		}
	}
	if l.notifyc != nil {
		close(l.notifyc)
		l.notifyc = nil
	}
}

// HeadSeq returns the sequence number of the most recently appended record
// (0 before the first append). It advances on every acknowledged append
// whether or not a tail is retained.
func (l *Log) HeadSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recSeq
}

// ReadAfter returns up to max records with sequence numbers strictly greater
// than after, in order. gap reports that the requested position has been
// evicted from the tail (or that no tail is retained): the reader cannot
// resume incrementally and must bootstrap from a snapshot. An empty result
// with gap == false means the reader is caught up; combine with
// AppendNotify to wait for more. The returned records share storage with
// the tail ring and must not be mutated.
func (l *Log) ReadAfter(after uint64, max int) (recs []SeqRecord, gap bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after >= l.recSeq {
		return nil, false
	}
	n := len(l.tailRecs)
	if n == 0 {
		return nil, true // records exist but no tail is retained
	}
	oldest := l.recSeq - uint64(n) + 1
	if after+1 < oldest {
		return nil, true
	}
	count := int(l.recSeq - after)
	if max > 0 && count > max {
		count = max
	}
	recs = make([]SeqRecord, 0, count)
	for i := 0; i < count; i++ {
		off := int(after + 1 - oldest + uint64(i))
		recs = append(recs, l.tailRecs[(l.tailPos+off)%n])
	}
	return recs, false
}

// AppendNotify returns a channel that is closed by the next acknowledged
// append (or by Close). Callers re-arm by calling AppendNotify again; take
// the channel *before* the ReadAfter whose emptiness you are waiting out,
// or an append between the two is missed until the next one.
func (l *Log) AppendNotify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return closedChan
	}
	if l.notifyc == nil {
		l.notifyc = make(chan struct{})
	}
	return l.notifyc
}

// EncodeFrame appends rec to buf in the WAL's on-disk frame format
// (uint32 length | uint32 CRC-32C | op | uint16 name length | name | data)
// and returns the extended buffer. The same bytes a WAL file holds are the
// replication wire format.
func EncodeFrame(buf []byte, rec Record) []byte {
	return appendFrame(buf, rec.Op, rec.Name, rec.Data)
}

// FrameReader decodes a stream of WAL frames from r, re-verifying each
// frame's CRC — a follower applying a replication stream trusts nothing the
// transport did not checksum.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next decodes one frame. It returns io.EOF at a clean frame boundary and
// an error wrapping ErrCorruptFrame for torn headers, checksum mismatches
// or undecodable payloads.
func (fr *FrameReader) Next() (Record, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: torn header: %v", ErrCorruptFrame, err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxRecordBytes {
		return Record{}, fmt.Errorf("%w: implausible payload length %d", ErrCorruptFrame, n)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Record{}, fmt.Errorf("%w: torn payload: %v", ErrCorruptFrame, err)
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
	}
	rec, ok := decodePayload(payload)
	if !ok {
		return Record{}, fmt.Errorf("%w: undecodable payload", ErrCorruptFrame)
	}
	return rec, nil
}
