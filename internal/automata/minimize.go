package automata

// Minimize returns an equivalent complete DFA with the minimum number of
// states, via Moore partition refinement (quadratic, which is ample for the
// schema-sized automata this repository manipulates; the experiments that
// count states all minimize first so that eager/lazy comparisons are about
// *exploration*, not representation).
func (d *DFA) Minimize() *DFA {
	c := d.Complete()
	n := c.NumStates()
	cols := len(c.Alphabet) + 1

	// part[s] is the block id of state s; start with accept / non-accept.
	part := make([]int, n)
	for s := 0; s < n; s++ {
		if c.Accept[s] {
			part[s] = 1
		}
	}
	numBlocks := 2
	if n > 0 {
		// All-accepting or all-rejecting machines start with one block.
		first := part[0]
		uniform := true
		for _, p := range part {
			if p != first {
				uniform = false
				break
			}
		}
		if uniform {
			for s := range part {
				part[s] = 0
			}
			numBlocks = 1
		}
	}

	for {
		// Signature of a state: its block plus the blocks of its successors.
		type sig struct {
			block int
			key   string
		}
		index := map[sig]int{}
		next := make([]int, n)
		fresh := 0
		for s := 0; s < n; s++ {
			key := make([]byte, 0, cols*3)
			for col := 0; col < cols; col++ {
				b := part[c.Trans[s][col]]
				key = append(key, byte(b), byte(b>>8), byte(b>>16))
			}
			sg := sig{part[s], string(key)}
			id, ok := index[sg]
			if !ok {
				id = fresh
				fresh++
				index[sg] = id
			}
			next[s] = id
		}
		if fresh == numBlocks {
			break
		}
		part, numBlocks = next, fresh
	}

	out := &DFA{
		Alphabet: c.Alphabet,
		Start:    State(part[c.Start]),
		Accept:   make([]bool, numBlocks),
		Trans:    make([][]State, numBlocks),
	}
	for s := 0; s < n; s++ {
		b := part[s]
		if out.Trans[b] != nil {
			continue
		}
		out.Accept[b] = c.Accept[s]
		row := make([]State, cols)
		for col := 0; col < cols; col++ {
			row[col] = State(part[c.Trans[s][col]])
		}
		out.Trans[b] = row
	}
	return out
}

// NumReachable counts states reachable from the start state; Determinize
// only ever creates reachable states, but products can include fewer after
// minimization, and tests use this to assert exploration sizes.
func (d *DFA) NumReachable() int {
	seen := make([]bool, d.NumStates())
	seen[d.Start] = true
	stack := []State{d.Start}
	count := 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Trans[s] {
			if t != NoState && !seen[t] {
				seen[t] = true
				count++
				stack = append(stack, t)
			}
		}
	}
	return count
}
