// Package wal provides the durability substrate of an Active XML peer: an
// append-only, length-and-checksum-framed write-ahead log of repository
// mutations, periodic compaction into atomic snapshots, and crash recovery
// that loads the newest valid snapshot, replays the WAL tail, and truncates
// any torn final record.
//
// On-disk layout of a data directory:
//
//	wal-<seq>.log        append-only record stream for generation <seq>
//	snapshot-<seq>.snap  full repository state *before* any record of
//	                     wal-<seq>.log (written atomically: temp file,
//	                     fsync, rename, fsync directory)
//
// Each WAL record is framed as
//
//	uint32 payload length (little endian)
//	uint32 CRC-32C of the payload (little endian)
//	payload = op (1 byte) | name length (uint16 LE) | name | document bytes
//
// A snapshot file is the magic string "AXSNAP1\n" followed by one framed
// OpPut record per document. Because snapshots are renamed into place,
// a *.snap file is either complete or absent; checksums guard against
// at-rest corruption, and a snapshot that fails validation is skipped in
// favor of the previous generation, whose WAL is still on disk until the
// newer snapshot has been durably written.
//
// The compaction protocol is rotate-first: a new generation's WAL is
// created (and the directory fsynced) while the caller holds whatever lock
// makes its state capture consistent; the snapshot of the captured state
// is then written outside that lock. Recovery replays every WAL whose
// sequence number is >= the newest valid snapshot's, in order, so a crash
// at any point between rotation and snapshot completion loses nothing:
// the previous snapshot plus both WALs reconstruct the same state.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op discriminates WAL record kinds.
type Op uint8

const (
	// OpPut sets a document: the record carries the name and the
	// serialized XML.
	OpPut Op = 1
	// OpDelete removes a document: the record carries only the name.
	OpDelete Op = 2
)

// SyncMode selects when appended records are fsynced to stable storage.
type SyncMode uint8

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives power loss. The safest and slowest mode.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncInterval):
	// a crash loses at most one interval of acknowledged mutations.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	// A crash may lose everything since the last kernel writeback, but
	// the log still recovers to a consistent prefix.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncMode(%d)", uint8(m))
	}
}

// ParseSyncMode maps the -wal-sync flag values onto SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: sync mode must be always, interval or none, got %q", s)
}

// DefaultSyncInterval is the fsync period used by SyncInterval when
// Options.SyncInterval is zero.
const DefaultSyncInterval = 100 * time.Millisecond

const (
	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapPrefix = "snapshot-"
	snapSuffix = ".snap"
	snapMagic  = "AXSNAP1\n"

	frameHeaderLen = 8       // uint32 length + uint32 crc
	maxRecordBytes = 1 << 30 // sanity bound: a larger length field is torn garbage
	maxNameBytes   = 1<<16 - 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Record is one logged mutation.
type Record struct {
	Op   Op
	Name string
	Data []byte // serialized document for OpPut; nil for OpDelete
}

// Options configures Open.
type Options struct {
	// Sync is the fsync discipline for appends (default SyncAlways).
	Sync SyncMode
	// SyncInterval is the background fsync period for SyncInterval
	// (default DefaultSyncInterval).
	SyncInterval time.Duration
	// Metrics, when non-nil, receives append/fsync/snapshot/recovery
	// observations. A nil *Metrics no-ops.
	Metrics *Metrics
	// TailRecords, when positive, keeps that many of the most recent
	// appended records in memory with absolute sequence numbers, served by
	// ReadAfter — the replication feed a leader streams to followers. 0
	// disables the tail (ReadAfter then always reports a gap).
	TailRecords int
}

// RecoveredState is what Open reconstructed from disk.
type RecoveredState struct {
	// Docs maps document names to their serialized XML as of the last
	// replayed record.
	Docs map[string][]byte
	// SnapshotSeq is the generation of the snapshot the state started
	// from (0 when no valid snapshot existed).
	SnapshotSeq uint64
	// ReplayedRecords counts WAL records applied on top of the snapshot.
	ReplayedRecords int
	// TruncatedRecords counts torn/corrupt record tails dropped (and
	// physically truncated) during replay — at most one per WAL file.
	TruncatedRecords int
	// SkippedSnapshots counts snapshot files that failed validation and
	// were passed over in favor of an older generation.
	SkippedSnapshots int
}

// Log is an append-only write-ahead log bound to one data directory.
// Append, Rotate, Sync and Close are safe for concurrent use; WriteSnapshot
// must not be called concurrently with itself (callers serialize
// compaction).
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	buf    []byte
	closed bool
	failed error // poisoned after a partial append: the tail is suspect

	// Replication tail (Options.TailRecords): recSeq numbers every
	// acknowledged append (in-memory, process-lifetime — cross-restart
	// identity is the replica layer's epoch), tailRecs is a ring of the
	// most recent records with tailPos the slot to overwrite next once
	// full, and notifyc is closed-and-replaced on each append so long-poll
	// readers can wait for new records without spinning.
	recSeq   uint64
	tailRecs []SeqRecord
	tailPos  int
	notifyc  chan struct{}

	stop chan struct{}
	done chan struct{}

	appends       atomic.Uint64
	appendedBytes atomic.Uint64
	syncs         atomic.Uint64
	snapshots     atomic.Uint64
	lastSnapBytes atomic.Uint64
	replayed      int
	truncated     int
}

// Stats is a point-in-time view of the log's counters, JSON-ready for the
// peer's /stats endpoint.
type Stats struct {
	Dir                string `json:"dir"`
	Generation         uint64 `json:"generation"`
	SyncMode           string `json:"sync_mode"`
	Appends            uint64 `json:"appends"`
	AppendedBytes      uint64 `json:"appended_bytes"`
	Fsyncs             uint64 `json:"fsyncs"`
	Snapshots          uint64 `json:"snapshots"`
	LastSnapshotBytes  uint64 `json:"last_snapshot_bytes"`
	RecoveryReplayed   int    `json:"recovery_replayed_records"`
	RecoveryTruncated  int    `json:"recovery_truncated_records"`
}

// Open recovers the state stored in dir (creating it if needed) and returns
// a log positioned to append to the newest generation. Recovery loads the
// newest snapshot that validates, replays every WAL of that generation or
// later in order, truncates torn tails, and removes files superseded by the
// snapshot.
func Open(dir string, opts Options) (*Log, *RecoveredState, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	walSeqs, snapSeqs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	state := &RecoveredState{Docs: make(map[string][]byte)}
	// Newest snapshot that validates wins; corrupt ones are skipped — the
	// files they would have superseded are only deleted after a snapshot
	// is durably in place, so an older generation is always recoverable.
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		docs, err := loadSnapshot(filepath.Join(dir, snapName(snapSeqs[i])))
		if err != nil {
			state.SkippedSnapshots++
			continue
		}
		state.Docs = docs
		state.SnapshotSeq = snapSeqs[i]
		break
	}

	appendSeq := state.SnapshotSeq
	for _, seq := range walSeqs {
		if seq < state.SnapshotSeq {
			continue // superseded by the snapshot; removed below
		}
		path := filepath.Join(dir, walName(seq))
		recs, goodLen, torn, err := scanFile(path)
		if err != nil {
			return nil, nil, err
		}
		for _, rec := range recs {
			applyRecord(state.Docs, rec)
		}
		state.ReplayedRecords += len(recs)
		if torn {
			state.TruncatedRecords++
			if err := os.Truncate(path, goodLen); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
		}
		appendSeq = seq
	}

	f, err := os.OpenFile(filepath.Join(dir, walName(appendSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// The WAL file (possibly just created) and any truncation must be
	// durable before mutations are acknowledged against it.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}

	l := &Log{dir: dir, opts: opts, f: f, seq: appendSeq,
		replayed: state.ReplayedRecords, truncated: state.TruncatedRecords}
	l.removeSuperseded(state.SnapshotSeq)
	opts.Metrics.observeRecovery(state)
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, state, nil
}

// applyRecord folds one replayed record into the recovered document map.
// Replay order is append order, so a put following a delete (or vice versa)
// of the same name resolves to the later record — the WAL, not any loaded
// snapshot or directory, is the authority on recovered state.
func applyRecord(docs map[string][]byte, rec Record) {
	switch rec.Op {
	case OpPut:
		docs[rec.Name] = rec.Data
	case OpDelete:
		delete(docs, rec.Name)
	}
}

// Append logs one mutation. With SyncAlways the record is on stable storage
// when Append returns; an error means the mutation must not be
// acknowledged. After a failed write the log is poisoned — the on-disk tail
// is suspect — and every further Append fails.
func (l *Log) Append(op Op, name string, data []byte) error {
	if len(name) > maxNameBytes {
		return fmt.Errorf("wal: document name exceeds %d bytes", maxNameBytes)
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log poisoned by earlier write failure: %w", l.failed)
	}
	l.buf = appendFrame(l.buf[:0], op, name, data)
	if _, err := l.f.Write(l.buf); err != nil {
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.failed = err
			return err
		}
	}
	l.appends.Add(1)
	l.appendedBytes.Add(uint64(len(l.buf)))
	l.recordAppendedLocked(op, name, data)
	l.opts.Metrics.observeAppend(time.Since(start), len(l.buf))
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	l.opts.Metrics.observeFsync(time.Since(start))
	return nil
}

// Rotate starts the next generation: it creates wal-<seq+1>.log, makes it
// durable, and directs subsequent appends there. It returns the new
// sequence number, which the caller passes to WriteSnapshot once it has
// serialized the state captured at the rotation point. Callers must hold
// whatever lock orders their state capture against concurrent appends.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	next := l.seq + 1
	nf, err := os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: rotate: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return 0, err
	}
	// Flush the outgoing generation: until the snapshot lands, recovery
	// depends on replaying it.
	if err := l.f.Sync(); err != nil {
		nf.Close()
		return 0, fmt.Errorf("wal: rotate: %w", err)
	}
	l.f.Close()
	l.f = nf
	l.seq = next
	l.failed = nil // the suspect tail, if any, is in the abandoned file
	return next, nil
}

// WriteSnapshot durably writes the full state as snapshot-<seq>.snap and
// removes the files it supersedes (WALs and snapshots of older
// generations). seq must come from Rotate, and docs must be the state
// captured at that rotation point. Callers serialize compactions.
func (l *Log) WriteSnapshot(seq uint64, docs map[string][]byte) error {
	start := time.Now()
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := []byte(snapMagic)
	for _, name := range names {
		buf = appendFrame(buf, OpPut, name, docs[name])
	}
	if err := WriteFileAtomic(filepath.Join(l.dir, snapName(seq)), buf, 0o644); err != nil {
		return err
	}
	l.snapshots.Add(1)
	l.lastSnapBytes.Store(uint64(len(buf)))
	l.opts.Metrics.observeSnapshot(time.Since(start), len(buf))
	l.removeSuperseded(seq)
	return nil
}

// removeSuperseded deletes WALs and snapshots older than keepSeq, plus any
// temp files a crashed atomic write left behind. Best-effort: stale files
// are re-candidates at the next compaction or recovery.
func (l *Log) removeSuperseded(keepSeq uint64) {
	walSeqs, snapSeqs, err := scanDir(l.dir)
	if err != nil {
		return
	}
	for _, s := range walSeqs {
		if s < keepSeq {
			os.Remove(filepath.Join(l.dir, walName(s)))
		}
	}
	for _, s := range snapSeqs {
		if s < keepSeq {
			os.Remove(filepath.Join(l.dir, snapName(s)))
		}
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), TempPrefix) {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return Stats{
		Dir:               l.dir,
		Generation:        seq,
		SyncMode:          l.opts.Sync.String(),
		Appends:           l.appends.Load(),
		AppendedBytes:     l.appendedBytes.Load(),
		Fsyncs:            l.syncs.Load(),
		Snapshots:         l.snapshots.Load(),
		LastSnapshotBytes: l.lastSnapBytes.Load(),
		RecoveryReplayed:  l.replayed,
		RecoveryTruncated: l.truncated,
	}
}

// Close flushes and closes the log. Further operations return ErrClosed.
// Records appended (and acknowledged) before Close — including any appended
// between the interval-sync ticker's last firing and the Close call — are
// fsynced before Close returns.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.notifyc != nil {
		close(l.notifyc) // wake long-poll readers; AppendNotify now
		l.notifyc = nil  // returns an already-closed channel
	}
	l.mu.Unlock()
	// Retire the background fsync goroutine first: from here on no tick can
	// touch the file, so the final flush below is the last word on it. New
	// Appends already fail with ErrClosed, and an Append that held the lock
	// when Close started is serialized before the final Sync.
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	serr := l.syncLocked()
	cerr := l.f.Close()
	l.mu.Unlock()
	if serr != nil {
		return fmt.Errorf("wal: close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// syncLoop is the SyncInterval background fsync. A failed background fsync
// poisons the log exactly like a failed append: the durability of already
// acknowledged records is in doubt, so silently carrying on would let the
// suspect tail grow unboundedly.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.failed == nil {
				if err := l.syncLocked(); err != nil {
					l.failed = err
				}
			}
			l.mu.Unlock()
		}
	}
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, op Op, name string, data []byte) []byte {
	payloadLen := 1 + 2 + len(name) + len(data)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc placeholder
	payloadAt := len(buf)
	buf = append(buf, byte(op))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = append(buf, data...)
	crc := crc32.Checksum(buf[payloadAt:], crcTable)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf
}

// decodePayload parses a checksum-verified payload.
func decodePayload(payload []byte) (Record, bool) {
	if len(payload) < 3 {
		return Record{}, false
	}
	op := Op(payload[0])
	if op != OpPut && op != OpDelete {
		return Record{}, false
	}
	nameLen := int(binary.LittleEndian.Uint16(payload[1:]))
	if 3+nameLen > len(payload) {
		return Record{}, false
	}
	rec := Record{Op: op, Name: string(payload[3 : 3+nameLen])}
	if rest := payload[3+nameLen:]; len(rest) > 0 {
		rec.Data = append([]byte(nil), rest...)
	}
	return rec, true
}

// scanFile reads every intact record of a WAL file. goodLen is the byte
// offset after the last intact record; torn reports whether trailing bytes
// (a partial or corrupt record) were dropped.
func scanFile(path string) (recs []Record, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for {
		if off+frameHeaderLen > len(data) {
			torn = off < len(data)
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || off+frameHeaderLen+n > len(data) {
			torn = true
			break
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			torn = true
			break
		}
		rec, ok := decodePayload(payload)
		if !ok {
			torn = true
			break
		}
		recs = append(recs, rec)
		off += frameHeaderLen + n
	}
	return recs, int64(off), torn, nil
}

// loadSnapshot validates and decodes one snapshot file. Unlike WAL replay,
// any framing damage fails the whole file: snapshots are written
// atomically, so a bad frame means at-rest corruption, and the caller falls
// back to an older generation.
func loadSnapshot(path string) (map[string][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: bad snapshot magic", path)
	}
	docs := make(map[string][]byte)
	off := len(snapMagic)
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			return nil, fmt.Errorf("wal: %s: truncated snapshot frame", path)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || off+frameHeaderLen+n > len(data) {
			return nil, fmt.Errorf("wal: %s: truncated snapshot frame", path)
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", path)
		}
		rec, ok := decodePayload(payload)
		if !ok || rec.Op != OpPut {
			return nil, fmt.Errorf("wal: %s: invalid snapshot record", path)
		}
		docs[rec.Name] = rec.Data
		off += frameHeaderLen + n
	}
	return docs, nil
}

// scanDir lists WAL and snapshot sequence numbers present in dir, each
// sorted ascending.
func scanDir(dir string) (walSeqs, snapSeqs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			walSeqs = append(walSeqs, s)
		}
		if s, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, s)
		}
	}
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	return walSeqs, snapSeqs, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	s, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return s, true
}

func walName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", walPrefix, seq, walSuffix) }
func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }
