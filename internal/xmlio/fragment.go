package xmlio

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"

	"axml/internal/doc"
)

// ParseElementAt parses the element that start opened, reading the rest of
// its content from dec. It lets embedding formats (SOAP envelopes, WSDL_int)
// delegate intensional-content parsing mid-stream.
func ParseElementAt(dec *xml.Decoder, start xml.StartElement) (*doc.Node, error) {
	return parseElement(dec, start)
}

// ParseChildrenAt parses a forest: all content up to (and including) the end
// tag matching parent. Whitespace-only text is dropped; other text becomes
// trimmed text nodes.
func ParseChildrenAt(dec *xml.Decoder, parent xml.Name) ([]*doc.Node, error) {
	return parseChildren(dec, parent)
}

// WriteFragment serializes one node without an XML declaration, starting at
// the given indentation depth. declareNS forces the int namespace
// declaration onto the top element; callers embedding fragments under a root
// that already declares it pass false.
func WriteFragment(w io.Writer, n *doc.Node, depth int, declareNS bool) error {
	buf := writeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledWriteBuf {
			writeBufPool.Put(buf)
		}
	}()
	p := &printer{b: buf}
	p.node(n, depth, declareNS)
	_, err := w.Write(buf.Bytes())
	return err
}

// Fragment renders one node as an indented string without the declaration.
func Fragment(n *doc.Node) string {
	var b strings.Builder
	_ = WriteFragment(&b, n, 0, n.HasFuncs())
	return b.String()
}
