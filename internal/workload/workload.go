// Package workload generates synthetic intensional-XML workloads: random
// schemas, random conforming documents with controlled function density, and
// simulated Web services whose replies are random output instances of their
// declared signatures. It stands in for the real services of the paper's
// setting (weather forecasts, TimeOut listings, UDDI registries) — the
// algorithms only ever observe signatures and returned trees, so simulated
// endpoints exercise exactly the same code paths.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

// Options parameterize RandomSchema.
type Options struct {
	// Labels is the number of structured element types (plus as many atomic
	// data types). Default 4.
	Labels int
	// Funcs is the number of declared functions. Default 2.
	Funcs int
	// AltFanout controls choice width inside content models. Default 2.
	AltFanout int
	// StarProb is the probability a content-model position is starred.
	StarProb float64
	// FuncProb is the probability a content-model slot admits a function
	// alternative (f|materialized) instead of only materialized content.
	FuncProb float64
}

func (o Options) withDefaults() Options {
	if o.Labels <= 0 {
		o.Labels = 4
	}
	if o.Funcs < 0 {
		o.Funcs = 0
	}
	if o.AltFanout <= 0 {
		o.AltFanout = 2
	}
	if o.StarProb == 0 {
		o.StarProb = 0.3
	}
	if o.FuncProb == 0 {
		o.FuncProb = 0.4
	}
	return o
}

// RandomSchema builds a random schema whose content models form a DAG over
// the element types (label i references only labels with larger indices, so
// random instances always terminate) and are one-unambiguous by construction
// (every symbol occurs at most once per content model). Functions return
// forests of deeper labels, possibly including deeper functions.
//
// The generated names are e0..eN (structured), d0..dN (data), f0..fM
// (functions). The root label is e0.
func RandomSchema(rng *rand.Rand, opt Options) *schema.Schema {
	opt = opt.withDefaults()
	s := schema.New()
	s.Root = "e0"

	// Declare data elements first so content models can reference them.
	for i := 0; i < opt.Labels; i++ {
		mustDo(s.SetData(fmt.Sprintf("d%d", i)))
	}
	// Function j may mention labels and functions strictly deeper than the
	// level it is attached at; to keep things simple, function outputs
	// reference only data labels and deeper functions.
	for j := opt.Funcs - 1; j >= 0; j-- {
		out := randomFuncOutput(rng, opt, j)
		in := fmt.Sprintf("d%d", rng.Intn(opt.Labels))
		mustDo(s.SetFunc(fmt.Sprintf("f%d", j), in, out))
	}
	for i := opt.Labels - 1; i >= 0; i-- {
		content := randomContent(rng, opt, i)
		mustDo(s.SetLabel(fmt.Sprintf("e%d", i), content))
	}
	return s
}

func mustDo(err error) {
	if err != nil {
		panic(err)
	}
}

// randomContent builds the content model of structured label i: a sequence
// of slots, each either a deeper element, a data element, or a choice
// (function | materialized form), possibly starred. Each symbol is used at
// most once, keeping the model one-unambiguous.
func randomContent(rng *rand.Rand, opt Options, i int) string {
	slots := 1 + rng.Intn(3)
	out := ""
	used := map[string]bool{} // each symbol at most once: one-unambiguous by construction
	for s := 0; s < slots; s++ {
		var part string
		found := false
		for try := 0; try < 8; try++ {
			if i+1 < opt.Labels && rng.Float64() < 0.5 {
				part = fmt.Sprintf("e%d", i+1+rng.Intn(opt.Labels-i-1))
			} else {
				part = fmt.Sprintf("d%d", rng.Intn(opt.Labels))
			}
			if !used[part] {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		used[part] = true
		if rng.Float64() < opt.StarProb {
			part += "*"
		}
		if opt.Funcs > 0 && rng.Float64() < opt.FuncProb {
			j := rng.Intn(opt.Funcs)
			fsym := fmt.Sprintf("f%d", j)
			if !used[fsym] {
				used[fsym] = true
				part = fmt.Sprintf("(%s|%s)", fsym, part)
			}
		}
		if out != "" {
			out += "."
		}
		out += part
	}
	if out == "" {
		out = fmt.Sprintf("d%d", rng.Intn(opt.Labels))
	}
	return out
}

// randomFuncOutput builds τ_out(f_j) over data labels and strictly deeper
// functions.
func randomFuncOutput(rng *rand.Rand, opt Options, j int) string {
	base := fmt.Sprintf("d%d", rng.Intn(opt.Labels))
	if rng.Float64() < opt.StarProb {
		base += "*"
	}
	if j+1 < opt.Funcs && rng.Float64() < opt.FuncProb {
		base = fmt.Sprintf("%s.f%d?", base, j+1+rng.Intn(opt.Funcs-j-1))
	}
	return base
}

// Generator builds random instances of a schema.
type Generator struct {
	Schema *schema.Schema
	Rng    *rand.Rand
	// MaxDepth caps element nesting; beyond it generation prefers shortest
	// words and fails over to empty data elements.
	MaxDepth int
	sampler  *regex.Sampler
}

// NewGenerator returns a generator with depth cap 16.
func NewGenerator(s *schema.Schema, rng *rand.Rand) *Generator {
	g := &Generator{Schema: s, Rng: rng, MaxDepth: 16}
	g.sampler = regex.NewSampler(rng)
	g.sampler.Fresh = func(c regex.Class) regex.Symbol {
		for i := 0; ; i++ {
			sym := s.Table.Intern(fmt.Sprintf("wild%d", i))
			if c.Contains(sym) {
				return sym
			}
		}
	}
	return g
}

// Instance builds a random instance of the given element label.
func (g *Generator) Instance(label string) (*doc.Node, error) {
	return g.element(label, g.MaxDepth)
}

// Root builds a random instance of the schema's root label.
func (g *Generator) Root() (*doc.Node, error) {
	if g.Schema.Root == "" {
		return nil, fmt.Errorf("workload: schema has no root label")
	}
	return g.Instance(g.Schema.Root)
}

func (g *Generator) element(label string, depth int) (*doc.Node, error) {
	def := g.Schema.Labels[label]
	if def == nil {
		// Wildcard-admitted foreign element: a small opaque subtree.
		return doc.Elem(label, doc.TextNode(g.text())), nil
	}
	if def.IsData() {
		return doc.Elem(label, doc.TextNode(g.text())), nil
	}
	if depth <= 0 {
		// Prefer the shortest completion to force termination.
		word, ok := regex.ShortestWord(def.Content)
		if !ok {
			return nil, fmt.Errorf("workload: label %q has empty content language", label)
		}
		return g.fill(label, word, depth)
	}
	word, ok := g.sampler.Sample(def.Content)
	if !ok {
		return nil, fmt.Errorf("workload: label %q has empty content language", label)
	}
	return g.fill(label, word, depth)
}

func (g *Generator) fill(label string, word []regex.Symbol, depth int) (*doc.Node, error) {
	children, err := g.forest(word, depth-1)
	if err != nil {
		return nil, err
	}
	return doc.Elem(label, children...), nil
}

// forest builds one node per symbol of the word.
func (g *Generator) forest(word []regex.Symbol, depth int) ([]*doc.Node, error) {
	out := make([]*doc.Node, 0, len(word))
	for _, sym := range word {
		name := g.Schema.Table.Name(sym)
		switch g.Schema.Kind(name) {
		case schema.KindFunc:
			n, err := g.funcNode(name, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		case schema.KindPattern:
			// Generate a concrete function matching the pattern when one is
			// declared; otherwise skip the occurrence is not possible —
			// patterns in content models always sit beside alternatives in
			// generated schemas, but hand-written ones may not, so fall back
			// to a synthetic function name.
			n, err := g.patternNode(name, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		default:
			n, err := g.element(name, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
	}
	return out, nil
}

func (g *Generator) funcNode(name string, depth int) (*doc.Node, error) {
	def := g.Schema.Funcs[name]
	if def.In == nil {
		return doc.Call(name, doc.TextNode(g.text())), nil
	}
	var word []regex.Symbol
	var ok bool
	if depth <= 0 {
		word, ok = regex.ShortestWord(def.In)
	} else {
		word, ok = g.sampler.Sample(def.In)
	}
	if !ok {
		return nil, fmt.Errorf("workload: function %q has empty input language", name)
	}
	params, err := g.forest(word, depth-1)
	if err != nil {
		return nil, err
	}
	return doc.Call(name, params...), nil
}

func (g *Generator) patternNode(pname string, depth int) (*doc.Node, error) {
	p := g.Schema.Patterns[pname]
	for _, fname := range g.Schema.SortedFuncs() {
		if schema.FuncMatchesPattern(g.Schema.Funcs[fname], p) {
			return g.funcNode(fname, depth)
		}
	}
	return nil, fmt.Errorf("workload: no declared function matches pattern %q", pname)
}

func (g *Generator) text() string {
	return fmt.Sprintf("v%d", g.Rng.Intn(1000))
}

// SimInvoker simulates Web services: every call returns a fresh random
// output instance of the function's declared output type. With a fixed seed
// the simulation is reproducible; because output words are sampled from the
// full signature language, repeated runs exercise the adversarial spread the
// safe-rewriting analysis quantifies over.
//
// Invoke is safe for concurrent use (peers serve SOAP requests — and the
// parallel materialization engine issues batches — concurrently); the shared
// generator is held under a mutex, so results are deterministic for a fixed
// seed only when invocation order is.
type SimInvoker struct {
	mu  sync.Mutex
	Gen *Generator
	// Calls counts invocations (also visible through core.Audit); read it
	// via CallCount when the invoker may still be serving calls.
	Calls int
}

// NewSimInvoker builds a simulated service endpoint for the schema.
func NewSimInvoker(s *schema.Schema, rng *rand.Rand) *SimInvoker {
	return &SimInvoker{Gen: NewGenerator(s, rng)}
}

// CallCount returns the number of invocations served so far.
func (si *SimInvoker) CallCount() int {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.Calls
}

// Invoke implements core.Invoker. The simulation is synchronous and local,
// so the context is only consulted for cancellation between calls.
func (si *SimInvoker) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	si.mu.Lock()
	defer si.mu.Unlock()
	si.Calls++
	def := si.Gen.Schema.Funcs[call.Label]
	if def == nil {
		return nil, fmt.Errorf("workload: no simulated service for %q", call.Label)
	}
	if def.Out == nil {
		return []*doc.Node{doc.TextNode(si.Gen.text())}, nil
	}
	word, ok := si.Gen.sampler.Sample(def.Out)
	if !ok {
		return nil, fmt.Errorf("workload: function %q has empty output language", call.Label)
	}
	return si.Gen.forest(word, si.Gen.MaxDepth)
}
