// Command axmld runs an Active XML peer daemon: it loads a schema and a
// directory of intensional documents, optionally registers simulated
// implementations for every declared function, and serves
//
//	POST /soap             SOAP operations with schema enforcement
//	GET  /wsdl             the peer's WSDL_int description
//	GET  /doc/{name}       repository documents
//	PUT  /doc/{name}       store the request body as the named document
//	DELETE /doc/{name}     remove the named document
//	POST /exchange/{name}  Figure 1 data exchange: body = XML Schema_int,
//	                       response = the document rewritten to conform
//
// The repository is a pluggable storage engine selected by -store:
//
//	-store mem   in-memory map (the default without -data-dir)
//	-store wal   durable: every mutation is framed into a write-ahead log
//	             under -data-dir before it is acknowledged (-wal-sync
//	             chooses the fsync discipline), the log is compacted into
//	             crash-safe snapshots every -snapshot-every mutations, and
//	             boot runs crash recovery — newest valid snapshot plus WAL
//	             tail, torn trailing records truncated. -data-dir alone
//	             implies -store wal.
//	-store disk  disk-sharded: documents live as files across hashed shard
//	             directories under -data-dir with an LRU hot cache of
//	             -hot-cache decoded documents (cold reads fault lazily) and
//	             a persistent per-shard function-node index serving
//	             GET /docs/by-function/{fn}.
//
// -stream switches /exchange to the one-pass streaming enforcement engine:
// the response body starts flowing while the document tail is still being
// validated, holding only O(depth) state plus unresolved function islands in
// memory. Targets whose content models mention function symbols fall back to
// the buffered tree path automatically; a failure after bytes have been sent
// aborts the connection instead of ending the response as if complete.
//
// Federation: -role selects the peer's place in a static cluster.
//
//	-role single    the default: no replication surface
//	-role leader    requires -store wal; serves the replication protocol
//	                under GET /replica/snapshot and /replica/stream (the
//	                WAL's CRC-framed records, re-verified by followers on
//	                receipt) and keeps -replica-tail records in memory for
//	                streaming — followers farther behind re-bootstrap from
//	                a snapshot
//	-role follower  requires -leader URL; continuously applies the leader's
//	                stream into the local store and serves hot-standby
//	                reads, answering every PUT/DELETE /doc with 503 +
//	                Retry-After (writes belong on the leader)
//
// -peers name=url,... installs a static roster on any role: a function
// node whose service ref endpoint is peer://<name> is routed to that
// peer's /soap endpoint, and peer://<name>/<doc> fetches the named
// document from the peer's HTTP surface directly. Replication state is
// reported under "replica" in GET /stats and as axml_replica_* metrics.
//
// On SIGINT/SIGTERM the daemon drains in-flight requests and closes the
// store (writing a final snapshot under -store wal) before exiting.
//
// Outbound service calls made by enforcement rewritings run through the
// invocation policy chain configured by -call-timeout, -retries,
// -retry-backoff, -breaker-failures and -breaker-cooldown; -parallel sets
// the materialization engine's concurrency degree (1 = sequential).
//
// Telemetry is on by default (-telemetry=false disables it): the daemon
// additionally serves GET /metrics (Prometheus text; OpenMetrics with
// exemplar trace IDs under `Accept: application/openmetrics-text`),
// GET /debug/traces (recent spans, JSON) and GET /debug/slow (the flight
// recorder: the -slow-requests slowest plus all failed requests with
// span trees, audit events and per-stage timing). -pprof addr serves
// net/http/pprof on a separate listener restricted to loopback addresses
// (e.g. -pprof :6060 binds 127.0.0.1:6060).
//
// All daemon output is structured logging: -log-format json|text and
// -log-level debug|info|warn|error control it. Request log lines carry
// the trace ID shared with /debug/traces, audit events, and any
// traceparent-propagating caller. /healthz answers liveness; /readyz
// flips to 503 the moment a shutdown signal arrives, before connection
// draining begins.
//
// Example:
//
//	axmld -name news -schema news.axs -docs ./docs -sim 7 -addr :8080 \
//	      -call-timeout 2s -retries 3 -breaker-failures 5 -log-format json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/invoke"
	"axml/internal/peer"
	"axml/internal/regex"
	"axml/internal/replica"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/telemetry/obslog"
	"axml/internal/wal"
	"axml/internal/workload"
	"axml/internal/xsdint"
)

// version identifies the build in logs and the axml_build_info gauge;
// release builds stamp it via -ldflags "-X main.version=v1.2.3".
var version = "dev"

// buildVersion resolves the most specific version available: the ldflags
// stamp, else the module version, else the VCS revision, else "dev".
func buildVersion() string {
	if version != "dev" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	return version
}

func main() {
	p, opts, err := configure(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "axmld:", err)
		os.Exit(2)
	}
	os.Exit(run(p, opts))
}

// run serves until the listener fails or a SIGINT/SIGTERM arrives, then
// drains in-flight requests and — when the repository is durable — writes a
// final snapshot, so a clean shutdown makes the next boot's recovery a pure
// snapshot load with no WAL to replay.
func run(p *peer.Peer, opts options) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger := opts.logger
	var pprofSrv *http.Server
	if opts.pprof != "" {
		// The pprof listener deliberately uses http.DefaultServeMux, which
		// net/http/pprof registers its handlers on; configure has already
		// pinned the address to loopback.
		pprofSrv = &http.Server{Addr: opts.pprof, Handler: http.DefaultServeMux}
		go func() {
			logger.Info(nil, "pprof serving", obslog.F("addr", opts.pprof))
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error(nil, "pprof listener failed", obslog.Err(err))
			}
		}()
	}
	srv := newHTTPServer(p.Handler(), opts)
	// The follower's replication loop runs for the whole serving life and
	// must be retired before Repo.Close: an apply racing the final snapshot
	// would be refused and counted as an error.
	fctx, fstop := context.WithCancel(context.Background())
	defer fstop()
	var fwg sync.WaitGroup
	if opts.follower != nil {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			_ = opts.follower.Run(fctx)
		}()
	}
	// The store is open and recovery is complete by the time configure
	// returned; mark ready just before the listener starts accepting.
	p.Health.SetReady(true)
	errc := make(chan error, 1)
	go func() {
		logger.Info(nil, "serving",
			obslog.F("peer", p.Name),
			obslog.F("addr", opts.addr),
			obslog.F("k", p.K),
			obslog.F("mode", p.Mode),
			obslog.F("store", opts.storeBackend),
			obslog.F("data_dir", opts.dataDir),
			obslog.F("role", opts.role),
			obslog.F("telemetry", p.Telemetry != nil),
			obslog.F("durable", p.Durable != nil),
			obslog.F("version", buildVersion()),
		)
		errc <- srv.ListenAndServe()
	}()

	exit := 0
	select {
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		// Flip readiness first so load balancers stop routing while
		// in-flight requests drain.
		p.Health.StartDrain()
		logger.Info(nil, "signal received, draining",
			obslog.F("store", opts.storeBackend), obslog.F("data_dir", opts.dataDir))
		sd, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sd); err != nil {
			logger.Error(nil, "shutdown failed", obslog.Err(err))
			exit = 1
		}
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(sd)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error(nil, "listener failed", obslog.Err(err))
			exit = 1
		}
	}
	fstop()
	fwg.Wait()
	if err := p.Repo.Close(); err != nil {
		logger.Error(nil, "closing store failed",
			obslog.Err(err), obslog.F("store", opts.storeBackend), obslog.F("data_dir", opts.dataDir))
		exit = 1
	} else if p.Durable != nil {
		logger.Info(nil, "final snapshot written",
			obslog.F("store", opts.storeBackend), obslog.F("data_dir", opts.dataDir))
	}
	return exit
}

// Default server-side timeouts. They bound how long a single connection can
// hold a goroutine while making no progress; 0 via the corresponding flag
// disables the respective limit.
const (
	defaultReadHeaderTimeout = 10 * time.Second
	defaultReadTimeout       = 30 * time.Second
	defaultWriteTimeout      = 60 * time.Second
	defaultIdleTimeout       = 120 * time.Second
)

// newHTTPServer builds the daemon's listener. Server-side timeouts protect
// it from slow or stalled clients: a connection that trickles its headers or
// never drains a response cannot pin a handler goroutine (and, under
// -data-dir, a WAL lock) forever. Graceful shutdown is unaffected — Shutdown
// still drains in-flight requests that progress within their windows.
func newHTTPServer(h http.Handler, opts options) *http.Server {
	return &http.Server{
		Addr:              opts.addr,
		Handler:           h,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		ReadTimeout:       opts.readTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
}

// options carries the daemon-level settings that are not part of the peer.
type options struct {
	addr  string
	pprof string // "" = pprof disabled; otherwise a loopback host:port

	logger       *obslog.Logger
	storeBackend string
	dataDir      string
	role         string
	// follower, when the role is follower, replicates from the leader; run
	// starts its loop and stops it before the store closes.
	follower *replica.Follower

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

// configure parses flags and builds the peer; split from main so tests can
// drive flag validation without binding a socket.
func configure(args []string) (*peer.Peer, options, error) {
	fs := flag.NewFlagSet("axmld", flag.ContinueOnError)
	name := fs.String("name", "axml-peer", "peer name")
	schemaPath := fs.String("schema", "", "peer schema (.axs text DSL or .xsd XML Schema_int)")
	docsDir := fs.String("docs", "", "directory of *.xml intensional documents to load")
	addr := fs.String("addr", ":8080", "listen address")
	k := fs.Int("k", 2, "rewriting depth bound")
	mode := fs.String("mode", "safe", "default enforcement mode: safe | possible | mixed")
	simSeed := fs.Int64("sim", -1, "register simulated implementations for all declared functions, with this seed")
	endpoint := fs.String("public", "", "public endpoint URL advertised in WSDL (default http://<addr>/soap)")
	cacheSize := fs.Int("cache", core.DefaultCompiledCacheSize, "max compiled schema-pair analyses kept per peer (must be positive)")
	wordCacheSize := fs.Int("word-cache", core.DefaultWordCacheSize, "max word-level verdicts memoized per analysis (must be positive)")
	maxRequest := fs.Int64("max-request", soap.DefaultMaxRequestBytes, "max SOAP request body bytes (must be positive)")
	callTimeout := fs.Duration("call-timeout", 0, "per-service-call timeout applied to enforcement invocations (0 disables)")
	retries := fs.Int("retries", 1, "delivery attempts per service call (1 disables retrying)")
	retryBackoff := fs.Duration("retry-backoff", invoke.DefaultBaseDelay, "initial backoff between retry attempts")
	breakerFailures := fs.Int("breaker-failures", 0, "consecutive failures opening a per-endpoint circuit breaker (0 disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", invoke.DefaultBreakerCooldown, "how long an open breaker rejects calls before probing")
	parallel := fs.Int("parallel", 1, "parallel materialization degree for enforcement rewritings (1 = sequential)")
	streaming := fs.Bool("stream", false, "stream /exchange responses: validate and rewrite in one pass, emitting accepted output while the document is still being enforced (falls back to the buffered path when the target schema is not streamable)")
	readHeaderTimeout := fs.Duration("read-header-timeout", defaultReadHeaderTimeout, "max time to read a request's headers (0 disables)")
	readTimeout := fs.Duration("read-timeout", defaultReadTimeout, "max time to read an entire request including the body (0 disables)")
	writeTimeout := fs.Duration("write-timeout", defaultWriteTimeout, "max time to write a response (0 disables)")
	idleTimeout := fs.Duration("idle-timeout", defaultIdleTimeout, "max keep-alive idle time between requests (0 disables)")
	telemetryOn := fs.Bool("telemetry", true, "serve /metrics and /debug/traces and instrument the pipeline")
	logFormat := fs.String("log-format", "text", "log line format: text | json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug | info | warn | error")
	slowRequests := fs.Int("slow-requests", telemetry.DefaultFlightSlow, "slowest requests retained by the /debug/slow flight recorder (0 disables it)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. :6060; empty disables)")
	storeBackend := fs.String("store", "", "storage backend: mem | wal | disk (default: wal when -data-dir is set, else mem)")
	hotCache := fs.Int("hot-cache", store.DefaultHotCache, "disk backend: decoded documents kept hot in memory (must be positive)")
	shards := fs.Int("shards", store.DefaultShards, "disk backend: shard directory count (must be positive)")
	dataDir := fs.String("data-dir", "", "store directory for the wal and disk backends; empty keeps documents in memory only")
	walSync := fs.String("wal-sync", "always", "WAL fsync discipline: always | interval | none")
	walSyncInterval := fs.Duration("wal-sync-interval", wal.DefaultSyncInterval, "background fsync period when -wal-sync=interval")
	snapshotEvery := fs.Int("snapshot-every", 1024, "compact the WAL into a snapshot after this many mutations (0 = only at shutdown)")
	role := fs.String("role", "single", "federation role: single | leader (serve /replica to followers; requires -store wal) | follower (replicate from -leader, serve reads only)")
	peersFlag := fs.String("peers", "", "static federation roster as name=url,name=url — lets function nodes reference peer://<name> endpoints")
	leaderURL := fs.String("leader", "", "leader base URL to replicate from (requires -role follower)")
	replicaTail := fs.Int("replica-tail", 4096, "WAL records kept in memory for replication streaming (leader role; followers farther behind bootstrap from a snapshot)")
	if err := fs.Parse(args); err != nil {
		return nil, options{}, err
	}

	format, err := obslog.ParseFormat(*logFormat)
	if err != nil {
		return nil, options{}, fmt.Errorf("-log-format: %w", err)
	}
	level, err := obslog.ParseLevel(*logLevel)
	if err != nil {
		return nil, options{}, fmt.Errorf("-log-level: %w", err)
	}
	if *slowRequests < 0 {
		return nil, options{}, fmt.Errorf("-slow-requests must not be negative, got %d", *slowRequests)
	}
	logger := obslog.New(os.Stderr, level, format)

	if *schemaPath == "" {
		return nil, options{}, fmt.Errorf("-schema is required")
	}
	// A zero or negative capacity would silently disable the enforcement
	// cache (or worse, misconfigure the peer); reject it up front.
	if *cacheSize <= 0 {
		return nil, options{}, fmt.Errorf("-cache must be positive, got %d", *cacheSize)
	}
	if *wordCacheSize <= 0 {
		return nil, options{}, fmt.Errorf("-word-cache must be positive, got %d", *wordCacheSize)
	}
	if *maxRequest <= 0 {
		return nil, options{}, fmt.Errorf("-max-request must be positive, got %d", *maxRequest)
	}
	if *retries < 1 {
		return nil, options{}, fmt.Errorf("-retries must be at least 1, got %d", *retries)
	}
	if *callTimeout < 0 {
		return nil, options{}, fmt.Errorf("-call-timeout must not be negative, got %v", *callTimeout)
	}
	if *breakerFailures < 0 {
		return nil, options{}, fmt.Errorf("-breaker-failures must not be negative, got %d", *breakerFailures)
	}
	if *parallel < 1 {
		return nil, options{}, fmt.Errorf("-parallel must be at least 1, got %d", *parallel)
	}
	for _, d := range []struct {
		flag  string
		value time.Duration
	}{
		{"-read-header-timeout", *readHeaderTimeout},
		{"-read-timeout", *readTimeout},
		{"-write-timeout", *writeTimeout},
		{"-idle-timeout", *idleTimeout},
	} {
		if d.value < 0 {
			return nil, options{}, fmt.Errorf("%s must not be negative, got %v", d.flag, d.value)
		}
	}
	pprof, err := loopbackAddr(*pprofAddr)
	if err != nil {
		return nil, options{}, err
	}
	// Durability flags are validated even when -data-dir is off, so a bad
	// value never lurks until the first durable deployment.
	syncMode, err := wal.ParseSyncMode(*walSync)
	if err != nil {
		return nil, options{}, fmt.Errorf("-wal-sync: %w", err)
	}
	if *walSyncInterval <= 0 {
		return nil, options{}, fmt.Errorf("-wal-sync-interval must be positive, got %v", *walSyncInterval)
	}
	if *snapshotEvery < 0 {
		return nil, options{}, fmt.Errorf("-snapshot-every must not be negative, got %d", *snapshotEvery)
	}
	if *hotCache <= 0 {
		return nil, options{}, fmt.Errorf("-hot-cache must be positive, got %d", *hotCache)
	}
	if *shards <= 0 || *shards > store.MaxShards {
		return nil, options{}, fmt.Errorf("-shards must be in 1..%d, got %d", store.MaxShards, *shards)
	}
	backend := *storeBackend
	switch backend {
	case "":
		backend = store.BackendMem
		if *dataDir != "" {
			backend = store.BackendWAL // historical behavior of -data-dir
		}
	case store.BackendMem:
		if *dataDir != "" {
			return nil, options{}, fmt.Errorf("-store mem does not use -data-dir %q; pick wal or disk", *dataDir)
		}
	case store.BackendWAL, store.BackendDisk:
		if *dataDir == "" {
			return nil, options{}, fmt.Errorf("-store %s requires -data-dir", backend)
		}
	default:
		return nil, options{}, fmt.Errorf("bad -store %q (want one of %v)", backend, store.Backends)
	}
	switch *role {
	case "single":
		if *leaderURL != "" {
			return nil, options{}, fmt.Errorf("-leader requires -role follower")
		}
	case "leader":
		if backend != store.BackendWAL {
			return nil, options{}, fmt.Errorf("-role leader requires -store wal (the WAL is the replication log), got %q", backend)
		}
		if *replicaTail <= 0 {
			return nil, options{}, fmt.Errorf("-replica-tail must be positive, got %d", *replicaTail)
		}
		if *leaderURL != "" {
			return nil, options{}, fmt.Errorf("-leader requires -role follower")
		}
	case "follower":
		if *leaderURL == "" {
			return nil, options{}, fmt.Errorf("-role follower requires -leader")
		}
	default:
		return nil, options{}, fmt.Errorf("bad -role %q (want single, leader or follower)", *role)
	}
	s, err := loadSchema(*schemaPath)
	if err != nil {
		return nil, options{}, err
	}
	p := peer.New(*name, s)
	p.K = *k
	switch *mode {
	case "safe":
		p.Mode = core.Safe
	case "possible":
		p.Mode = core.Possible
	case "mixed":
		p.Mode = core.Mixed
	default:
		return nil, options{}, fmt.Errorf("bad -mode %q", *mode)
	}
	if *endpoint != "" {
		p.Endpoint = *endpoint
	} else {
		p.Endpoint = "http://" + strings.TrimPrefix(*addr, ":") + "/soap"
		if strings.HasPrefix(*addr, ":") {
			p.Endpoint = "http://localhost" + *addr + "/soap"
		}
	}
	p.Remote = &soap.Invoker{}
	p.Enforcement = core.NewCompiledCache(*cacheSize)
	p.Enforcement.WordCacheCapacity = *wordCacheSize
	p.MaxRequestBytes = *maxRequest
	p.Policies = policies(*breakerFailures, *breakerCooldown, *retries, *retryBackoff, *callTimeout)
	p.Parallelism = *parallel
	p.Streaming = *streaming
	p.Health = peer.NewHealth()
	// Request and policy-event log lines carry the store backend so a
	// fleet's mixed-backend logs attribute latency to the right engine.
	p.Logger = logger.With(obslog.F("store", backend))
	if *telemetryOn {
		p.Telemetry = telemetry.NewRegistry()
		p.Telemetry.Gauge("axml_build_info",
			"version", buildVersion(),
			"go_version", runtime.Version(),
			"store", backend,
		).Set(1)
	}
	if *slowRequests > 0 {
		p.Flight = telemetry.NewFlight(*slowRequests, 2**slowRequests)
	}

	if *peersFlag != "" {
		roster, err := core.ParseRoster(*peersFlag)
		if err != nil {
			return nil, options{}, fmt.Errorf("-peers: %w", err)
		}
		p.Peers = roster
	}
	tail := 0
	if *role == "leader" {
		tail = *replicaTail
	}
	if backend != store.BackendMem {
		st, err := store.Open(store.Options{
			Backend:       backend,
			Dir:           *dataDir,
			Sync:          syncMode,
			SyncInterval:  *walSyncInterval,
			SnapshotEvery: *snapshotEvery,
			HotCache:      *hotCache,
			Shards:        *shards,
			Registry:      p.Telemetry,
			ReplicaTail:   tail,
		})
		if err != nil {
			return nil, options{}, err
		}
		p.Repo = st
		switch s := st.(type) {
		case *store.DurableRepository:
			p.Durable = s
			ds := s.Stats()
			logger.Info(nil, "durable repository recovered",
				obslog.F("store", backend),
				obslog.F("data_dir", *dataDir),
				obslog.F("documents", ds.RecoveredDocuments),
				obslog.F("wal_replayed", ds.WAL.RecoveryReplayed),
				obslog.F("wal_truncated", ds.WAL.RecoveryTruncated),
			)
		case *store.Disk:
			ds := s.Stats()
			logger.Info(nil, "disk store opened",
				obslog.F("store", backend),
				obslog.F("data_dir", *dataDir),
				obslog.F("documents", ds.Documents),
				obslog.F("shards", ds.Disk.Shards),
				obslog.F("index_repairs", ds.Disk.IndexRepairs),
				obslog.F("hot_cache", ds.Disk.HotCacheCap),
			)
		}
	}
	// Seeding happens after recovery under KeepExisting: recovered (or
	// on-disk) state always wins over the -docs seed directory.
	if *docsDir != "" {
		loaded, err := store.SeedDir(p.Repo, *docsDir, store.KeepExisting)
		if err != nil {
			return nil, options{}, err
		}
		logger.Info(nil, "documents loaded",
			obslog.F("store", backend),
			obslog.F("dir", *docsDir),
			obslog.F("loaded", loaded),
			obslog.F("total", p.Repo.Len()),
		)
	}
	if *simSeed >= 0 {
		sim := workload.NewSimInvoker(s, rand.New(rand.NewSource(*simSeed)))
		for _, fname := range s.SortedFuncs() {
			fname := fname
			def := s.Funcs[fname]
			err := p.Services.Register(&service.Operation{
				Name: fname,
				Def:  def,
				Handler: func(params []*doc.Node) ([]*doc.Node, error) {
					return sim.Invoke(context.Background(), doc.Call(fname, params...))
				},
			})
			if err != nil {
				return nil, options{}, err
			}
		}
		logger.Info(nil, "simulated operations registered",
			obslog.F("count", len(s.Funcs)), obslog.F("seed", *simSeed))
	}
	var follower *replica.Follower
	switch *role {
	case "leader":
		// The store switch above guarantees p.Durable for -store wal.
		src := replica.NewSource(p.Durable, p.Telemetry)
		p.Replica = src.Handler()
		p.ReplicaStats = func() any { return src.Stats() }
		logger.Info(nil, "replication source ready",
			obslog.F("epoch", src.Epoch()), obslog.F("tail_records", tail))
	case "follower":
		follower = replica.NewFollower(replica.FollowerOptions{
			Leader:   strings.TrimRight(*leaderURL, "/"),
			Store:    p.Repo,
			Logger:   logger.With(obslog.F("component", "replica")),
			Registry: p.Telemetry,
		})
		// Hot-standby: the apply loop owns the store; HTTP serves reads
		// and answers every mutation 503 + Retry-After.
		p.ReadOnly = true
		p.ReplicaStats = func() any { return follower.Stats() }
	}
	return p, options{
		addr:              *addr,
		pprof:             pprof,
		logger:            logger,
		storeBackend:      backend,
		dataDir:           *dataDir,
		role:              *role,
		follower:          follower,
		readHeaderTimeout: *readHeaderTimeout,
		readTimeout:       *readTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
	}, nil
}

// loopbackAddr validates a -pprof address: an empty host binds 127.0.0.1,
// anything other than a loopback host is rejected — profiling endpoints
// expose heap contents and must not face the network.
func loopbackAddr(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("-pprof: %v", err)
	}
	switch host {
	case "":
		host = "127.0.0.1"
	case "localhost", "127.0.0.1", "::1":
	default:
		return "", fmt.Errorf("-pprof must bind a loopback address, got host %q", host)
	}
	return net.JoinHostPort(host, port), nil
}

// policies assembles the peer's invocation chain in the conventional order:
// breaker outermost (counting post-retry outcomes is deliberate here — a
// peer's breaker should see what the retry layer could not fix), retries,
// then a per-attempt timeout.
func policies(breakerFailures int, breakerCooldown time.Duration, retries int, backoff, callTimeout time.Duration) []core.InvokePolicy {
	var ps []core.InvokePolicy
	if breakerFailures > 0 {
		ps = append(ps, invoke.WithBreaker(invoke.Breaker{Failures: breakerFailures, Cooldown: breakerCooldown}))
	}
	if retries > 1 {
		ps = append(ps, invoke.WithRetry(invoke.Retry{Attempts: retries, BaseDelay: backoff, Jitter: 0.2}))
	}
	if callTimeout > 0 {
		ps = append(ps, invoke.WithTimeout(callTimeout))
	}
	return ps
}

func loadSchema(path string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".xsd") || strings.HasSuffix(path, ".xml") {
		return xsdint.ParseString(string(data), xsdint.Options{Table: regex.NewTable()})
	}
	return schema.ParseText(string(data), nil)
}
