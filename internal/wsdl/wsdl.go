// Package wsdl implements WSDL_int, the paper's extension of WSDL whose
// message types may describe intensional data: a service description embeds
// an XML Schema_int document in its <types> section, and every declared
// function of that schema is an operation of the service. This is the
// artifact the Schema Enforcement module checks call parameters and results
// against.
//
// The subset is deliberately flat — definitions, embedded types, service
// location — because the interesting structure (operations and their
// intensional signatures) lives entirely in the embedded schema.
package wsdl

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"axml/internal/schema"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

// Namespace is the WSDL 1.1 namespace (accepted but not required on input).
const Namespace = "http://schemas.xmlsoap.org/wsdl/"

// Description is a WSDL_int service description.
type Description struct {
	// Name is the service name.
	Name string
	// TargetNamespace stamps SOAP body elements of the service.
	TargetNamespace string
	// Endpoint is the service location (soap:address).
	Endpoint string
	// Schema declares the service's element types, functions (operations)
	// and function patterns.
	Schema *schema.Schema
}

// Operations lists the operation names (the declared functions), sorted.
func (d *Description) Operations() []string { return d.Schema.SortedFuncs() }

// Write renders the description.
func Write(w io.Writer, d *Description, predNames map[string]string) error {
	types, err := xsdint.String(d.Schema, predNames)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<definitions xmlns=%q name=%q targetNamespace=%q>\n",
		Namespace, d.Name, d.TargetNamespace)
	b.WriteString("  <types>\n")
	for _, line := range strings.Split(strings.TrimRight(types, "\n"), "\n") {
		b.WriteString("    ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString("  </types>\n")
	fmt.Fprintf(&b, "  <service name=%q>\n", d.Name)
	if d.Endpoint != "" {
		fmt.Fprintf(&b, "    <address location=%q/>\n", d.Endpoint)
	}
	b.WriteString("  </service>\n</definitions>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func String(d *Description, predNames map[string]string) (string, error) {
	var b strings.Builder
	if err := Write(&b, d, predNames); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Parse reads a WSDL_int description.
func Parse(r io.Reader, opt xsdint.Options) (*Description, error) {
	src, release, err := xmlio.ByteSource(r)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	defer release()
	dec := xml.NewDecoder(src)
	d := &Description{}
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if d.Schema == nil {
				return nil, fmt.Errorf("wsdl: no embedded schema found")
			}
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("wsdl: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch t.Name.Local {
			case "definitions":
				if depth != 1 {
					return nil, fmt.Errorf("wsdl: nested <definitions>")
				}
				for _, a := range t.Attr {
					switch a.Name.Local {
					case "name":
						d.Name = a.Value
					case "targetNamespace":
						d.TargetNamespace = a.Value
					}
				}
			case "schema":
				s, err := xsdint.ParseAt(dec, t, opt)
				if err != nil {
					return nil, err
				}
				d.Schema = s
				depth-- // ParseAt consumed the matching end element
			case "service":
				if v := attrOf(t, "name"); v != "" && d.Name == "" {
					d.Name = v
				}
			case "address":
				if v := attrOf(t, "location"); v != "" {
					d.Endpoint = v
				}
			}
		case xml.EndElement:
			depth--
		}
	}
}

// ParseString parses from a string.
func ParseString(src string, opt xsdint.Options) (*Description, error) {
	return Parse(strings.NewReader(src), opt)
}

func attrOf(start xml.StartElement, name string) string {
	for _, a := range start.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}
