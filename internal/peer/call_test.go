package peer

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/soap"
	"axml/internal/wsdl"
	"axml/internal/xsdint"
)

// TestClientSideEnforcement: a reader peer calls a remote service whose
// WSDL_int input type demands a *materialized* city; the reader's Schema
// Enforcement module invokes its local Guess_City before the parameters
// leave the peer (the paper's sender-side materialization).
func TestClientSideEnforcement(t *testing.T) {
	table := schema.New().Table

	// The remote weather service: strict input type (city element, no
	// function nodes allowed because its schema declares no other funcs).
	weatherSchema, err := schema.ParseTextShared(schema.NewShared(table), `
elem city = data
elem temp = data
func Get_Temp = city -> temp
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	weather := New("weather", weatherSchema)
	if err := weather.Services.Register(opOf(t, weather, "Get_Temp", func(params []*doc.Node) ([]*doc.Node, error) {
		if len(params) != 1 || params[0].Label != "city" || params[0].HasFuncs() {
			t.Errorf("unmaterialized params reached the service: %v", params)
		}
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(weather.Handler())
	defer ts.Close()
	weather.Endpoint = ts.URL + "/soap"

	// The reader peer knows a local Guess_City service.
	readerSchema, err := schema.ParseTextShared(schema.NewShared(table), `
elem city = data
elem temp = data
func Get_Temp = city -> temp
func Guess_City = data -> city
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	reader := New("reader", readerSchema)
	if err := reader.Services.Register(opOf(t, reader, "Guess_City", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}, nil
	})); err != nil {
		t.Fatal(err)
	}

	// Fetch the remote description (shared table) and call with an
	// intensional parameter.
	desc := &wsdl.Description{
		Name: "weather", TargetNamespace: "urn:axml:weather",
		Endpoint: ts.URL + "/soap", Schema: weatherSchema,
	}
	result, err := reader.Call(desc, "Get_Temp",
		[]*doc.Node{doc.Call("Guess_City", doc.TextNode("fr"))}, core.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if len(result) != 1 || result[0].Label != "temp" {
		t.Errorf("result = %v", result)
	}
	if reader.Audit.Len() != 1 {
		t.Errorf("reader should have invoked Guess_City once, audit = %d", reader.Audit.Len())
	}

	// Unknown operation and mismatched tables are rejected.
	if _, err := reader.Call(desc, "Nope", nil, core.Safe); err == nil {
		t.Error("unknown operation accepted")
	}
	foreign := &wsdl.Description{Name: "x", Schema: schema.MustParseText("elem a = data", nil)}
	if _, err := reader.Call(foreign, "Get_Temp", nil, core.Safe); err == nil {
		t.Error("foreign symbol table accepted")
	}
}

// TestCallValidatesResults: a remote service returning garbage is caught by
// the caller's output-instance check.
func TestCallValidatesResults(t *testing.T) {
	table := schema.New().Table
	liarSchema, err := schema.ParseTextShared(schema.NewShared(table), `
elem city = data
elem temp = data
func Get_Temp = city -> temp
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	liar := New("liar", liarSchema)
	// Bypass the liar's own enforcement by serving raw SOAP without hooks.
	reg := liar.Services
	if err := reg.Register(opOf(t, liar, "Get_Temp", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("city", doc.TextNode("lies"))}, nil
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(&soap.Server{Registry: reg})
	defer ts.Close()

	reader := New("reader", liarSchema)
	desc := &wsdl.Description{Name: "liar", Endpoint: ts.URL, Schema: liarSchema}
	_, err = reader.Call(desc, "Get_Temp", []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}, core.Safe)
	if err == nil || !strings.Contains(err.Error(), "non-conforming") {
		t.Errorf("expected non-conforming error, got %v", err)
	}
}

// TestFetchedWSDLDrivesCall: the full discovery loop — serve WSDL over HTTP,
// parse it with the caller's table, call through it.
func TestFetchedWSDLDrivesCall(t *testing.T) {
	weatherSchema := schema.MustParseText(`
elem city = data
elem temp = data
func Get_Temp = city -> temp
`, nil)
	weather := New("weather", weatherSchema)
	if err := weather.Services.Register(opOf(t, weather, "Get_Temp", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(weather.Handler())
	defer ts.Close()
	weather.Endpoint = ts.URL + "/soap"

	// The caller parses the served WSDL into its own (fresh) table.
	resp, err := ts.Client().Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	callerTable := schema.New().Table
	desc, err := wsdl.Parse(resp.Body, xsdint.Options{Table: callerTable})
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if desc.Endpoint == "" {
		desc.Endpoint = ts.URL + "/soap"
	}
	caller := New("caller", schema.NewShared(callerTable))
	out, err := caller.Call(desc, "Get_Temp", []*doc.Node{doc.Elem("city", doc.TextNode("Nice"))}, core.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "temp" {
		t.Errorf("result = %v", out)
	}
}

// TestEnforceOutRewrites: the send side of the module materializes results.
func TestEnforceOutRewrites(t *testing.T) {
	p := newsPeer(t)
	must(t, p.Schema.SetFunc("Raw_Temp", "data", "temp"))
	// The implementation returns an intensional temp (a Get_Temp call);
	// τ_out(Raw_Temp) = temp requires materialization.
	out, err := p.EnforceOut("Raw_Temp", []*doc.Node{
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "temp" {
		t.Errorf("enforced result = %v", out)
	}
	// Conforming results pass through; unknown ops fail; hopeless fails.
	pass := []*doc.Node{doc.Elem("temp", doc.TextNode("3"))}
	got, err := p.EnforceOut("Raw_Temp", pass)
	if err != nil || len(got) != 1 || got[0] != pass[0] {
		t.Errorf("pass-through broken: %v %v", got, err)
	}
	if _, err := p.EnforceOut("Ghost", nil); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := p.EnforceOut("Raw_Temp", []*doc.Node{doc.Elem("city")}); err == nil {
		t.Error("hopeless result accepted")
	}
}

// TestRepositoryErrors: persistence error paths.
func TestRepositoryErrors(t *testing.T) {
	r := NewRepository()
	if err := r.LoadDir("/nonexistent-dir-xyz"); err == nil {
		t.Error("LoadDir on missing dir should fail")
	}
	dir := t.TempDir()
	// A non-XML file is skipped; a malformed XML file errors.
	if err := writeFile(dir+"/skip.txt", "not xml"); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadDir(dir); err != nil {
		t.Errorf("non-xml files should be skipped: %v", err)
	}
	if err := writeFile(dir+"/bad.xml", "<unclosed>"); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadDir(dir); err == nil {
		t.Error("malformed xml should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
