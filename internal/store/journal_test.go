package store

import (
	"errors"
	"testing"

	"axml/internal/doc"
)

// The journal hook is the durability seam: a journal error must abort the
// mutation before it commits, so "acknowledged" always implies "logged".
// This pins the retention half of that contract on the in-memory layer the
// durable backend builds on (the hook itself is unexported, hence the
// in-package test).
func TestJournalErrorRetainsState(t *testing.T) {
	r := NewRepository()
	if err := r.Put("memo", doc.Elem("memo", doc.TextNode("v1"))); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	var journaled []string
	r.journal = func(name string, d *doc.Node) error {
		journaled = append(journaled, name)
		return boom
	}

	if err := r.Put("memo", doc.Elem("memo", doc.TextNode("v2"))); !errors.Is(err, boom) {
		t.Errorf("Put with failing journal = %v, want the journal error", err)
	}
	if d, _ := r.Get("memo"); d.Children[0].Value != "v1" {
		t.Errorf("unjournaled Put committed: %v", d)
	}
	err := r.Update("memo", func(d *doc.Node) (*doc.Node, error) {
		d.Children[0].Value = "v2"
		return d, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Update with failing journal = %v, want the journal error", err)
	}
	if d, _ := r.Get("memo"); d.Children[0].Value != "v1" {
		t.Errorf("unjournaled Update committed: %v", d)
	}
	if err := r.Delete("memo"); !errors.Is(err, boom) {
		t.Errorf("Delete with failing journal = %v, want the journal error", err)
	}
	if _, ok := r.Get("memo"); !ok {
		t.Error("unjournaled Delete committed")
	}
	// The function index must not drift either: the retained document
	// still answers for its calls, and nothing new was indexed.
	if len(journaled) != 3 {
		t.Errorf("journal observed %d mutations, want 3", len(journaled))
	}

	// With the hook healthy again, mutations flow.
	r.journal = func(string, *doc.Node) error { return nil }
	if err := r.Put("memo", doc.Elem("memo", doc.TextNode("v3"))); err != nil {
		t.Errorf("Put after journal recovery = %v", err)
	}
}
