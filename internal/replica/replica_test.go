package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"axml/internal/doc"
	"axml/internal/store"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// newLeader opens a durable repository with a replica tail and serves it
// the way a peer does: the source handler mounted under /replica/.
func newLeader(t *testing.T, tailRecords int) (*store.DurableRepository, *Source, *httptest.Server) {
	t.Helper()
	repo, err := store.OpenDurable(t.TempDir(), store.DurableOptions{
		Sync:        wal.SyncNone,
		TailRecords: tailRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repo.Close() })
	src := NewSource(repo, nil)
	mux := http.NewServeMux()
	mux.Handle("/replica/", http.StripPrefix("/replica", src.Handler()))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return repo, src, srv
}

func put(t *testing.T, s store.DocStore, name, text string) {
	t.Helper()
	if err := s.Put(name, doc.Elem("d", doc.TextNode(text))); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sameCorpus reports whether follower holds exactly the leader's documents,
// byte-identical after serialization.
func sameCorpus(t *testing.T, leader, follower store.DocStore) bool {
	t.Helper()
	ln, fn := leader.Names(), follower.Names()
	if len(ln) != len(fn) {
		return false
	}
	for _, name := range ln {
		ld, ok1 := leader.Get(name)
		fd, ok2 := follower.Get(name)
		if !ok1 || !ok2 {
			return false
		}
		ls, err := xmlio.String(ld)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := xmlio.String(fd)
		if err != nil {
			t.Fatal(err)
		}
		if ls != fs {
			return false
		}
	}
	return true
}

// TestFollowerConvergence is the end-to-end tentpole check: a follower
// bootstraps from the snapshot, then applies puts and deletes streamed from
// the leader's WAL tail until its corpus is byte-identical.
func TestFollowerConvergence(t *testing.T) {
	repo, _, srv := newLeader(t, 128)

	// Pre-bootstrap state: the snapshot path must carry these.
	put(t, repo, "seed-a", "1")
	put(t, repo, "seed-b", "2")

	local := store.NewRepository()
	// State that the leader does not hold must not survive a bootstrap.
	put(t, local, "stale", "gone")

	f := NewFollower(FollowerOptions{
		Leader:   srv.URL,
		Store:    local,
		PollWait: 250 * time.Millisecond,
		Backoff:  10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()

	waitFor(t, "bootstrap", func() bool { return f.Stats().Bootstraps == 1 })
	if _, ok := local.Get("stale"); ok {
		t.Fatal("bootstrap kept a document the leader does not hold")
	}

	// Post-bootstrap mutations arrive via the stream: puts, an overwrite
	// and a delete.
	for i := 0; i < 20; i++ {
		put(t, repo, fmt.Sprintf("doc-%02d", i), fmt.Sprintf("v%d", i))
	}
	put(t, repo, "doc-03", "overwritten")
	if err := repo.Delete("seed-b"); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "convergence", func() bool { return sameCorpus(t, repo, local) })

	st := f.Stats()
	if st.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want 1 (stream must not re-bootstrap)", st.Bootstraps)
	}
	if st.ApplyErrors != 0 {
		t.Fatalf("apply errors = %d, want 0", st.ApplyErrors)
	}
	if st.AppliedSeq != repo.WAL().HeadSeq() {
		t.Fatalf("applied seq %d != leader head %d", st.AppliedSeq, repo.WAL().HeadSeq())
	}
	cancel()
	<-done
}

// TestFollowerReBootstrapsAfterEviction wedges a caught-up follower's
// position out of the leader's tiny tail and checks it recovers via a
// second snapshot bootstrap rather than stalling.
func TestFollowerReBootstrapsAfterEviction(t *testing.T) {
	repo, _, srv := newLeader(t, 4)
	put(t, repo, "seed", "1")

	local := store.NewRepository()
	f := NewFollower(FollowerOptions{
		Leader:   srv.URL,
		Store:    local,
		PollWait: 100 * time.Millisecond,
		Backoff:  10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()
	waitFor(t, "first bootstrap", func() bool { return f.Stats().Bootstraps == 1 })

	// Cancel-free way to get the follower far behind: burst more records
	// than the 4-slot tail holds between its polls. A 100ms poll window is
	// plenty to land 64 records.
	for i := 0; i < 64; i++ {
		put(t, repo, fmt.Sprintf("burst-%02d", i%16), fmt.Sprintf("v%d", i))
	}
	waitFor(t, "convergence after eviction", func() bool { return sameCorpus(t, repo, local) })
	if st := f.Stats(); st.Bootstraps < 1 {
		t.Fatalf("bootstraps = %d", st.Bootstraps)
	}
}

// TestStreamGapGone checks the wire behavior directly: asking for an
// evicted position answers 410 Gone.
func TestStreamGapGone(t *testing.T) {
	repo, src, srv := newLeader(t, 4)
	for i := 0; i < 8; i++ {
		put(t, repo, fmt.Sprintf("d%d", i), "v")
	}
	resp, err := http.Get(fmt.Sprintf("%s/replica/stream?after=1&epoch=%s", srv.URL, src.Epoch()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted position: status %d, want 410", resp.StatusCode)
	}
}

// TestStreamEpochMismatchGone checks that a follower carrying a previous
// incarnation's epoch is told 410, never handed records.
func TestStreamEpochMismatchGone(t *testing.T) {
	repo, src, srv := newLeader(t, 16)
	put(t, repo, "d", "v")
	resp, err := http.Get(srv.URL + "/replica/stream?after=0&epoch=stale-epoch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("epoch mismatch: status %d, want 410", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderEpoch); got != src.Epoch() {
		t.Fatalf("410 must advertise the live epoch: got %q, want %q", got, src.Epoch())
	}
}

// TestStreamLongPoll204 checks an up-to-date reader gets 204 after the wait
// lapses, and that an append during the poll is delivered before it.
func TestStreamLongPoll204(t *testing.T) {
	repo, src, srv := newLeader(t, 16)
	put(t, repo, "d", "v")
	head := repo.WAL().HeadSeq()

	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/replica/stream?after=%d&epoch=%s&wait=100ms",
		srv.URL, head, src.Epoch()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up poll: status %d, want 204", resp.StatusCode)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("204 answered before the wait lapsed")
	}

	// An append mid-poll must cut the wait short with a 200.
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = repo.Put("late", doc.Elem("d", doc.TextNode("x")))
	}()
	resp, err = http.Get(fmt.Sprintf("%s/replica/stream?after=%d&epoch=%s&wait=5s",
		srv.URL, head, src.Epoch()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-poll append: status %d, want 200", resp.StatusCode)
	}
	fr := wal.NewFrameReader(resp.Body)
	rec, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != wal.OpPut || rec.Name != "late" {
		t.Fatalf("streamed record = %+v, want put late", rec)
	}
}

// TestSnapshotFramesVerify checks the snapshot body decodes through the
// CRC-verifying FrameReader and is consistent with the advertised sequence.
func TestSnapshotFramesVerify(t *testing.T) {
	repo, src, srv := newLeader(t, 16)
	put(t, repo, "a", "1")
	put(t, repo, "b", "2")
	resp, err := http.Get(srv.URL + "/replica/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderEpoch) != src.Epoch() {
		t.Fatal("snapshot missing epoch header")
	}
	if resp.Header.Get(HeaderHead) != "2" {
		t.Fatalf("snapshot head = %q, want 2", resp.Header.Get(HeaderHead))
	}
	fr := wal.NewFrameReader(resp.Body)
	got := map[string]bool{}
	for {
		rec, err := fr.Next()
		if err != nil {
			break
		}
		if rec.Op != wal.OpPut {
			t.Fatalf("snapshot frame op = %d", rec.Op)
		}
		got[rec.Name] = true
	}
	if !got["a"] || !got["b"] || len(got) != 2 {
		t.Fatalf("snapshot documents = %v", got)
	}
}
