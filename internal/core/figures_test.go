package core

import (
	"testing"

	"axml/internal/automata"
	"axml/internal/regex"
)

// TestFig5ComplementStructure: the paper draws Ā for schema (**) as a
// 7-state complete DFA (p0–p6, accepting p0, p1, p2 and the sink p6). The
// minimal complete complement we build must have exactly that shape.
func TestFig5ComplementStructure(t *testing.T) {
	c, _ := PaperPairForTest(t)
	target := regex.MustParse(c.Table, "title.date.temp.(TimeOut|exhibit*)")
	compl := automata.ComplementOfRegex(target, c.Alphabet()).Minimize()
	if got := compl.NumStates(); got != 7 {
		t.Errorf("minimal complement states = %d, paper draws 7 (p0..p6)", got)
	}
	accepting := 0
	for _, a := range compl.Accept {
		if a {
			accepting++
		}
	}
	// Accepting: p0, p1, p2, p6 — prefixes that cannot yet be words, plus
	// the sink. p3 (title.date.temp), p4 (…TimeOut) and p5 (…exhibit*) are
	// words of the target, hence non-accepting in the complement.
	if accepting != 4 {
		t.Errorf("accepting complement states = %d, paper draws 4 (p0,p1,p2,p6)", accepting)
	}
	// Exactly one dead-for-rewriter state: the sink p6 from which the
	// complement accepts everything (= the target can never be reached).
	original := automata.Determinize(automata.FromRegex(target), c.Alphabet()).Complete().Minimize()
	dead := original.DeadStates()
	deadCount := 0
	for _, d := range dead {
		if d {
			deadCount++
		}
	}
	if deadCount != 1 {
		t.Errorf("dead states in target DFA = %d, want 1 (the p6 sink)", deadCount)
	}
}

// TestFig10TargetAutomatonStructure: the paper's Figure 10 automaton A for
// schema (***) has 5 states (p0..p4, accepting p3 and p4).
func TestFig10TargetAutomatonStructure(t *testing.T) {
	c, _ := PaperPairForTest(t)
	target := regex.MustParse(c.Table, "title.date.temp.exhibit*")
	// The paper's drawing is the *incomplete* automaton: minimize after
	// determinizing but count only live states (no sink).
	dfa := automata.Determinize(automata.FromRegex(target), c.Alphabet()).Minimize()
	dead := dfa.DeadStates()
	live, accepting := 0, 0
	for s := 0; s < dfa.NumStates(); s++ {
		if !dead[s] {
			live++
			if dfa.Accept[s] {
				accepting++
			}
		}
	}
	// p3 and p4 merge under minimization (both accept exhibit*), so the
	// minimal machine has 4 live states; the paper draws the Glushkov-style
	// 5-state version. Assert the language-level facts instead: 4 or 5 live
	// states and at least one accepting.
	if live != 4 && live != 5 {
		t.Errorf("live states = %d, expected 4 (minimal) or 5 (paper drawing)", live)
	}
	if accepting == 0 {
		t.Error("no accepting live state")
	}
}

// TestFig6MarkingStructure digs into the product of Figure 6: the two fork
// groups must carry the paper's decisions — Get_Temp's call option unmarked
// (invoke it), TimeOut's keep option unmarked (leave it).
func TestFig6MarkingStructure(t *testing.T) {
	c, w := PaperPairForTest(t)
	target := regex.MustParse(c.Table, "title.date.temp.(TimeOut|exhibit*)")
	a, err := AnalyzeSafe(c, w, target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Safe() {
		t.Fatal("must be safe")
	}
	getTemp := c.Table.Intern("Get_Temp")
	timeOut := c.Table.Intern("TimeOut")
	// Walk the reachable-unmarked region and inspect fork groups.
	sawGetTemp, sawTimeOut := false, false
	for s := 0; s < len(a.QState); s++ {
		if a.Marked[s] {
			continue
		}
		for _, g := range a.Groups[s] {
			if !g.Fork {
				continue
			}
			keep, call := g.Options[0], g.Options[1]
			switch g.FuncSym {
			case getTemp:
				sawGetTemp = true
				if !call.ViaCall {
					t.Fatal("option order broken")
				}
				if a.Marked[call.To] {
					t.Error("Get_Temp's call option must be unmarked (the paper invokes it)")
				}
				if !a.Marked[keep.To] {
					t.Error("Get_Temp's keep option must be marked (keeping it cannot match temp)")
				}
			case timeOut:
				sawTimeOut = true
				if a.Marked[keep.To] {
					t.Error("TimeOut's keep option must be unmarked (the paper keeps it)")
				}
			}
		}
	}
	if !sawGetTemp || !sawTimeOut {
		t.Errorf("fork groups missing: Get_Temp=%v TimeOut=%v", sawGetTemp, sawTimeOut)
	}
}

// TestFig8MarkingStructure: in the Figure 8 product both options of the
// TimeOut fork are marked — performances may come back, exhibits* may not
// cover them — and consequently the initial state is marked.
func TestFig8MarkingStructure(t *testing.T) {
	c, w := PaperPairForTest(t)
	target := regex.MustParse(c.Table, "title.date.temp.exhibit*")
	a, err := AnalyzeSafe(c, w, target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Safe() {
		t.Fatal("must be unsafe")
	}
	timeOut := c.Table.Intern("TimeOut")
	// Find the TimeOut fork reachable along the would-be-good prefix (its
	// state may itself be marked; the paper's [q3,p3] is marked because both
	// options are).
	found := false
	for s := 0; s < len(a.QState); s++ {
		for _, g := range a.Groups[s] {
			if g.Fork && g.FuncSym == timeOut {
				keep, call := g.Options[0], g.Options[1]
				if !a.Marked[keep.To] || !a.Marked[call.To] {
					continue // a TimeOut fork elsewhere (e.g. behind a dead prefix)
				}
				found = true
			}
		}
	}
	if !found {
		t.Error("no TimeOut fork with both options marked (the Figure 8 situation)")
	}
}
