package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"axml/internal/doc"
)

// This file is the federation-aware half of service resolution: a static
// roster of named peers and an Invoker that resolves peer:// service
// references against it. The paper's function nodes already carry explicit
// service references (endpointURL / methodName); federation adds one more
// endpoint form — "this function is another axml peer" — without changing
// the data model. Transport stays out of core: the SOAP/HTTP legs are
// injected (PeerRouter.Next, PeerRouter.Fetch) by the peer wiring.

// PeerScheme prefixes service-reference endpoints that name a federated
// peer instead of a raw URL:
//
//	peer://<name>          — a SOAP operation on the named peer: the
//	                         endpoint resolves to <base>/soap and the call
//	                         proceeds over the ordinary remote transport.
//	peer://<name>/<doc>    — an intensional-document fetch: the call
//	                         resolves to the named peer's /doc or /exchange
//	                         endpoint (see ExchangeFunc) and the returned
//	                         document replaces the function node.
const PeerScheme = "peer://"

// Roster is the static federation membership: peer name to base URL
// (scheme://host:port, no trailing slash required).
type Roster map[string]string

// ParseRoster parses the -peers flag syntax: comma-separated name=url
// pairs, e.g. "east=http://10.0.0.1:8080,west=http://10.0.0.2:8080".
func ParseRoster(s string) (Roster, error) {
	r := make(Roster)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("core: bad roster entry %q (want name=url)", part)
		}
		if _, dup := r[name]; dup {
			return nil, fmt.Errorf("core: duplicate roster entry %q", name)
		}
		r[name] = strings.TrimRight(url, "/")
	}
	if len(r) == 0 {
		return nil, fmt.Errorf("core: empty roster")
	}
	return r, nil
}

// Names returns the roster's peer names, sorted — for /stats and logs.
func (r Roster) Names() []string {
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ExchangeFunc is the transport leg of a cross-peer document fetch: it
// retrieves docName from the peer at base, handing along the call's
// parameter forest (a parameter carrying an exchange schema selects the
// peer's enforcing /exchange endpoint; none selects the raw document).
// internal/soap provides the HTTP implementation.
type ExchangeFunc func(ctx context.Context, base, docName string, params []*doc.Node) ([]*doc.Node, error)

// PeerRouter resolves peer:// service references against a roster before
// invocation; every other call passes to Next untouched. It implements
// Invoker and composes with the policy chain like any other, so cross-peer
// hops inherit timeouts, retries and circuit breaking — and, because the
// transports inject the caller's traceparent per attempt, a materialization
// that hops machines shows up as one trace.
type PeerRouter struct {
	// Roster resolves peer names to base URLs.
	Roster Roster
	// Next handles non-peer calls and the SOAP form (after endpoint
	// rewriting). Required.
	Next Invoker
	// Fetch performs document-fetch calls (peer://name/doc). Required when
	// such references occur.
	Fetch ExchangeFunc
}

// Invoke implements Invoker.
func (pr *PeerRouter) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	if call.Service == nil || !strings.HasPrefix(call.Service.Endpoint, PeerScheme) {
		return pr.Next.Invoke(ctx, call)
	}
	name, docName, _ := strings.Cut(strings.TrimPrefix(call.Service.Endpoint, PeerScheme), "/")
	base, ok := pr.Roster[name]
	if !ok {
		// A typo'd or unconfigured peer is a wiring error no retry fixes.
		return nil, fmt.Errorf("core: %q references unknown peer %q (roster: %v)",
			call.Label, name, pr.Roster.Names())
	}
	if docName == "" {
		// SOAP form: pin the resolved endpoint on a copy of the call (the
		// rewriter still owns the original node) and send it down the
		// ordinary remote path.
		ref := *call.Service
		ref.Endpoint = base + "/soap"
		resolved := *call
		resolved.Service = &ref
		return pr.Next.Invoke(ctx, &resolved)
	}
	if pr.Fetch == nil {
		return nil, fmt.Errorf("core: %q references document %q of peer %q but no exchange transport is configured",
			call.Label, docName, name)
	}
	return pr.Fetch(ctx, base, docName, call.Children)
}
