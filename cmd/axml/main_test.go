package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, _ := io.ReadAll(r)
	return string(out), runErr
}

func TestValidateCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"validate", "-schema", "testdata/star.axs", "testdata/newspaper.xml"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "valid instance") {
		t.Errorf("output = %q", out)
	}
	// The same document is not an instance of (**).
	if _, err := capture(t, func() error {
		return run([]string{"validate", "-schema", "testdata/starstar.axs", "testdata/newspaper.xml"})
	}); err == nil {
		t.Error("validation against (**) should fail")
	}
}

func TestCheckCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"check", "-sender", "testdata/star.axs", "-target", "testdata/starstar.axs",
			"-mode", "safe", "-k", "1", "testdata/newspaper.xml"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "safe-rewrites") {
		t.Errorf("output = %q", out)
	}
	// (***) is not safe but is possible.
	if _, err := capture(t, func() error {
		return run([]string{"check", "-sender", "testdata/star.axs", "-target", "testdata/tristar.axs",
			"-mode", "safe", "-k", "1", "testdata/newspaper.xml"})
	}); err == nil {
		t.Error("safe check against (***) should fail")
	}
	if _, err := capture(t, func() error {
		return run([]string{"check", "-sender", "testdata/star.axs", "-target", "testdata/tristar.axs",
			"-mode", "possible", "-k", "1", "-lazy", "testdata/newspaper.xml"})
	}); err != nil {
		t.Errorf("possible check against (***) should pass: %v", err)
	}
}

func TestRewriteCommandSimulated(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"rewrite", "-sender", "testdata/star.axs", "-target", "testdata/starstar.axs",
			"-mode", "safe", "-k", "1", "-sim", "7", "testdata/newspaper.xml"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "<temp>") {
		t.Errorf("rewritten output missing materialized temp:\n%s", out)
	}
	if !strings.Contains(out, "TimeOut") {
		t.Errorf("TimeOut should be kept:\n%s", out)
	}
}

// TestRewriteVerbose: -v prints a generated rewrite id and stamps it on the
// invocation trail.
func TestRewriteVerbose(t *testing.T) {
	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	_, runErr := capture(t, func() error {
		return run([]string{"rewrite", "-sender", "testdata/star.axs", "-target", "testdata/starstar.axs",
			"-mode", "safe", "-k", "1", "-sim", "7", "-v", "testdata/newspaper.xml"})
	})
	w.Close()
	os.Stderr = oldErr
	errOut, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("%v\n%s", runErr, errOut)
	}
	lines := strings.Split(strings.TrimSpace(string(errOut)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "rewrite ") {
		t.Fatalf("stderr should open with the rewrite id:\n%s", errOut)
	}
	id := strings.Fields(lines[0])[1]
	var sawCall bool
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "call ") {
			sawCall = true
			if !strings.Contains(l, "rewrite="+id) {
				t.Errorf("call line not stamped with %s: %q", id, l)
			}
		}
	}
	if !sawCall {
		t.Errorf("no call lines on stderr:\n%s", errOut)
	}
}

func TestSchemaCheckCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"schema-check", "-sender", "testdata/star.axs", "-target", "testdata/starstar.axs", "-k", "1"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "safely rewrites") {
		t.Errorf("output = %q", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"schema-check", "-sender", "testdata/star.axs", "-target", "testdata/tristar.axs", "-k", "1"})
	})
	if err == nil {
		t.Error("schema-check against (***) should fail")
	}
	if !strings.Contains(out, "UNSAFE") {
		t.Errorf("output should list the unsafe label:\n%s", out)
	}
}

func TestConvertCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"convert", "-schema", "testdata/star.axs"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<schema") || !strings.Contains(out, `function id="Get_Temp"`) {
		t.Errorf("XSD output wrong:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"convert", "-schema", "testdata/star.axs", "-wsdl", "news", "-endpoint", "http://x/soap"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<definitions") || !strings.Contains(out, `location="http://x/soap"`) {
		t.Errorf("WSDL output wrong:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"convert", "-schema", "testdata/star.axs", "-text"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "elem newspaper") {
		t.Errorf("text output wrong:\n%s", out)
	}
}

func TestCommandErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"validate"},
		{"validate", "-schema", "missing.axs", "testdata/newspaper.xml"},
		{"check", "-sender", "testdata/star.axs", "testdata/newspaper.xml"},
		{"check", "-sender", "testdata/star.axs", "-target", "testdata/starstar.axs", "-mode", "bogus", "testdata/newspaper.xml"},
		{"rewrite", "-sender", "testdata/star.axs", "-target", "testdata/starstar.axs", "testdata/newspaper.xml"}, // no -sim/-endpoint
		{"schema-check"},
		{"convert"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
	if _, err := capture(t, func() error { return run([]string{"help"}) }); err != nil {
		t.Errorf("help should succeed: %v", err)
	}
}

// TestXSDRoundTripThroughCLI converts the DSL schema to XSD, then validates
// the document against the converted file.
func TestXSDRoundTripThroughCLI(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"convert", "-schema", "testdata/star.axs"})
	})
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir() + "/star.xsd"
	if err := os.WriteFile(tmp, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"validate", "-schema", tmp, "testdata/newspaper.xml"})
	}); err != nil {
		t.Errorf("validation against converted XSD failed: %v", err)
	}
}
