package core

import (
	"testing"

	"axml/internal/regex"
	"axml/internal/schema"
)

// paperCompiled builds the Compiled pair for the paper's running example:
// sender schema (*) with the newspaper content model, used against varying
// targets.
func paperCompiled(t testing.TB) *Compiled {
	t.Helper()
	s := schema.MustParseText(`
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.(Get_Date|date)
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
func Get_Date = title -> date
`, nil)
	return Compile(s, s)
}

// paperWord is w = title.date.Get_Temp.TimeOut (the children of the Figure 2
// newspaper root).
func paperWord(c *Compiled) []Token {
	return WordTokens([]regex.Symbol{
		c.Table.Intern("title"),
		c.Table.Intern("date"),
		c.Table.Intern("Get_Temp"),
		c.Table.Intern("TimeOut"),
	})
}

func mustTarget(t testing.TB, c *Compiled, src string) *regex.Regex {
	t.Helper()
	r, err := regex.Parse(c.Table, src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFig4ForkAutomaton checks the structure and language of A_w^1 from
// Figure 4 of the paper.
func TestFig4ForkAutomaton(t *testing.T) {
	c := paperCompiled(t)
	fork, err := BuildFork(c, paperWord(c), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fork.NumForks(); got != 2 {
		t.Errorf("forks = %d want 2 (Get_Temp and TimeOut)", got)
	}
	if got := fork.CopiesAttached; got != 2 {
		t.Errorf("copies attached = %d want 2", got)
	}
	// The language of A_w^1: all 1-depth rewritings of w.
	accepts := [][]string{
		{"title", "date", "Get_Temp", "TimeOut"},                   // no call
		{"title", "date", "temp", "TimeOut"},                       // call Get_Temp
		{"title", "date", "Get_Temp"},                              // call TimeOut -> ε
		{"title", "date", "temp", "exhibit", "performance"},        // both
		{"title", "date", "temp", "exhibit", "exhibit", "exhibit"}, // both
	}
	rejects := [][]string{
		{"title", "date", "temp", "temp"},                   // Get_Temp cannot yield 2 temps
		{"title", "date"},                                   // Get_Temp must leave something? no: it must appear as temp or Get_Temp
		{"title", "Get_Temp", "TimeOut"},                    // date missing
		{"title", "date", "Get_Temp", "TimeOut", "exhibit"}, // keep AND call
	}
	for _, w := range accepts {
		if !fork.Accepts(syms(c, w...)) {
			t.Errorf("A_w^1 should accept %v", w)
		}
	}
	for _, w := range rejects {
		if fork.Accepts(syms(c, w...)) {
			t.Errorf("A_w^1 should reject %v", w)
		}
	}
}

func syms(c *Compiled, names ...string) []regex.Symbol {
	out := make([]regex.Symbol, len(names))
	for i, n := range names {
		out[i] = c.Table.Intern(n)
	}
	return out
}

// TestFig6SafeRewrite: w safely rewrites into schema (**)'s newspaper model
// title.date.temp.(TimeOut|exhibit*) — Figure 6's unmarked initial state.
func TestFig6SafeRewrite(t *testing.T) {
	c := paperCompiled(t)
	target := mustTarget(t, c, "title.date.temp.(TimeOut|exhibit*)")
	a, err := AnalyzeSafe(c, paperWord(c), target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Safe() {
		t.Fatal("Figure 6: rewriting into (**) should be safe")
	}
	// The analysis must contain the two fork decision points.
	forks := 0
	for _, gs := range a.Groups {
		for _, g := range gs {
			if g.Fork {
				forks++
			}
		}
	}
	if forks == 0 {
		t.Error("no fork groups in the product")
	}
}

// TestFig8NoSafeRewrite: rewriting into (***) title.date.temp.exhibit* is
// NOT safe — TimeOut may return performances (Figure 8: both fork options
// marked).
func TestFig8NoSafeRewrite(t *testing.T) {
	c := paperCompiled(t)
	target := mustTarget(t, c, "title.date.temp.exhibit*")
	a, err := AnalyzeSafe(c, paperWord(c), target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Safe() {
		t.Fatal("Figure 8: rewriting into (***) must not be safe")
	}
}

// TestFig11PossibleRewrite: rewriting into (***) IS possible — if TimeOut
// happens to return only exhibits.
func TestFig11PossibleRewrite(t *testing.T) {
	c := paperCompiled(t)
	target := mustTarget(t, c, "title.date.temp.exhibit*")
	a, err := AnalyzePossible(c, paperWord(c), target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Possible() {
		t.Fatal("Figure 11: rewriting into (***) should be possible")
	}
	// And something impossible stays impossible: two temps can never arise.
	impossible := mustTarget(t, c, "title.date.temp.temp")
	a2, err := AnalyzePossible(c, paperWord(c), impossible, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Possible() {
		t.Error("two temps should be impossible")
	}
}

// TestSafeImpliesPossible on the paper instances.
func TestSafeImpliesPossibleOnPaper(t *testing.T) {
	c := paperCompiled(t)
	for _, target := range []string{
		"title.date.temp.(TimeOut|exhibit*)",
		"title.date.temp.exhibit*",
		"title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"title.date.temp.temp",
	} {
		r := mustTarget(t, c, target)
		safe, err := WordSafe(c, paperWord(c), r, 1)
		if err != nil {
			t.Fatal(err)
		}
		possible, err := WordPossible(c, paperWord(c), r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if safe && !possible {
			t.Errorf("target %q: safe but not possible", target)
		}
	}
}

// TestAlreadyInstanceIsSafe: a word already in the target language is safely
// rewritable with zero calls.
func TestAlreadyInstanceIsSafe(t *testing.T) {
	c := paperCompiled(t)
	target := mustTarget(t, c, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	safe, err := WordSafe(c, paperWord(c), target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Error("an instance should be safe as-is")
	}
	// Even with k = 0 (no invocations allowed).
	safe0, err := WordSafe(c, paperWord(c), target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !safe0 {
		t.Error("an instance should be safe with k=0")
	}
}

// TestKDepthMatters: materializing exhibits' dates requires depth 2 — the
// exhibits only appear after TimeOut is called, and their Get_Date calls are
// depth-2 invocations.
func TestKDepthMatters(t *testing.T) {
	c := paperCompiled(t)
	// Target: fully materialized newspaper — no function nodes anywhere at
	// the top level; exhibits themselves may carry Get_Date (checked at the
	// element level, not here). Here: temp then exhibits or performances.
	target := mustTarget(t, c, "title.date.temp.(exhibit|performance)*")
	// k=1: call Get_Temp and TimeOut. TimeOut returns exhibit|performance
	// roots directly, so depth 1 suffices at the word level.
	safe, err := WordSafe(c, paperWord(c), target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Error("k=1 should suffice for the word level here")
	}
	// k=0 cannot: Get_Temp must be invoked to produce temp.
	safe0, err := WordSafe(c, paperWord(c), target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if safe0 {
		t.Error("k=0 cannot materialize temp")
	}
}

// TestRecursiveDepth exercises a Get_More-style recursive service: output
// contains the function itself; reaching a flat list needs higher k.
func TestRecursiveDepth(t *testing.T) {
	s := schema.MustParseText(`
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	c := Compile(s, s)
	w := WordTokens([]regex.Symbol{c.Table.Intern("url"), c.Table.Intern("Get_More")})
	flat := regex.MustParse(c.Table, "url*")
	for k := 0; k <= 3; k++ {
		safe, err := WordSafe(c, w, flat, k)
		if err != nil {
			t.Fatal(err)
		}
		if safe {
			t.Errorf("k=%d: flattening a recursive handle can never be safe (the handle may always return another handle)", k)
		}
		possible, err := WordPossible(c, w, flat, k)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 && possible {
			t.Error("k=0: cannot be possible, the handle must be called")
		}
		if k >= 1 && !possible {
			t.Errorf("k=%d: should be possible (handle may return only urls)", k)
		}
	}
}

// TestNonInvocableBlocksSafety: if Get_Temp is non-invocable, rewriting into
// (**) is no longer safe (the §2.1 legal-rewriting restriction).
func TestNonInvocableBlocksSafety(t *testing.T) {
	s := schema.MustParseText(`
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
func Get_Temp = city -> temp {noninvoke}
func TimeOut = data -> (exhibit|performance)*
`, nil)
	c := Compile(s, s)
	w := WordTokens(syms(c, "title", "date", "Get_Temp", "TimeOut"))
	target := regex.MustParse(c.Table, "title.date.temp.(TimeOut|exhibit*)")
	safe, err := WordSafe(c, w, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("non-invocable Get_Temp cannot be materialized: not safe")
	}
	possible, err := WordPossible(c, w, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if possible {
		t.Error("not even possible without invoking Get_Temp")
	}
}

// TestFrozenToken: freezing a token suppresses its call option.
func TestFrozenToken(t *testing.T) {
	c := paperCompiled(t)
	tokens := paperWord(c)
	tokens[2].Frozen = true // freeze Get_Temp
	target := mustTarget(t, c, "title.date.temp.(TimeOut|exhibit*)")
	safe, err := WordSafe(c, tokens, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("frozen Get_Temp cannot become temp")
	}
}

// TestLazyAgreesOnPaper: lazy and eager verdicts coincide on the paper's
// figures, and lazy explores no more states than eager (Figure 12's claim).
func TestLazyAgreesOnPaper(t *testing.T) {
	c := paperCompiled(t)
	for _, tc := range []struct {
		target string
		k      int
	}{
		{"title.date.temp.(TimeOut|exhibit*)", 1},
		{"title.date.temp.exhibit*", 1},
		{"title.date.(Get_Temp|temp).(TimeOut|exhibit*)", 1},
		{"title.date.temp.temp", 1},
		{"title.date.temp.(exhibit|performance)*", 2},
	} {
		target := mustTarget(t, c, tc.target)
		eager, err := AnalyzeSafe(c, paperWord(c), target, tc.k, nil)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := LazySafe(c, paperWord(c), target, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if eager.Safe() != lazy.Verdict {
			t.Errorf("target %q k=%d: eager=%v lazy=%v", tc.target, tc.k, eager.Safe(), lazy.Verdict)
		}
		possEager, err := AnalyzePossible(c, paperWord(c), target, tc.k, nil)
		if err != nil {
			t.Fatal(err)
		}
		possLazy, err := LazyPossible(c, paperWord(c), target, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if possEager.Possible() != possLazy.Verdict {
			t.Errorf("target %q k=%d possible: eager=%v lazy=%v", tc.target, tc.k, possEager.Possible(), possLazy.Verdict)
		}
	}
}

// TestFig12Pruning: on the Figure 6 instance the lazy variant explores
// strictly fewer product states than the eager construction, thanks to the
// sink and marked-node prunes.
func TestFig12Pruning(t *testing.T) {
	c := paperCompiled(t)
	target := mustTarget(t, c, "title.date.temp.(TimeOut|exhibit*)")
	eager, err := AnalyzeSafe(c, paperWord(c), target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := LazySafe(c, paperWord(c), target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.StatesExplored > eager.NumProdStates() {
		t.Errorf("lazy explored %d > eager %d states", lazy.StatesExplored, eager.NumProdStates())
	}
	if lazy.SinkPrunes == 0 {
		t.Error("expected at least one sink prune on the Figure 6 instance")
	}
}
