package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestIntervalSyncCloseLosesNothing is the shutdown-path regression test:
// records appended between the interval ticker's last firing and Close must
// be fsynced before Close returns. The interval is set far beyond the test's
// lifetime so the ticker never fires — the final flush is Close's alone.
func TestIntervalSyncCloseLosesNothing(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncInterval, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(OpPut, fmt.Sprintf("doc-%02d", i), []byte("<d>v</d>")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	fsyncsBefore := l.Stats().Fsyncs
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := l.Stats().Fsyncs; got <= fsyncsBefore {
		t.Fatalf("Close did not fsync: %d fsyncs before, %d after", fsyncsBefore, got)
	}
	// Crash-recover: every acknowledged record must be present.
	l2, state, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(state.Docs) != n {
		t.Fatalf("recovered %d documents, want %d (acknowledged records lost)", len(state.Docs), n)
	}
	if state.TruncatedRecords != 0 {
		t.Fatalf("recovery truncated %d records, want 0", state.TruncatedRecords)
	}
}

// TestCloseConcurrentWithAppends hammers Append from several goroutines
// while Close runs: every append acknowledged with a nil error must survive
// recovery, and the race detector must stay quiet about the background
// interval-sync goroutine.
func TestCloseConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		acked []string
		wg    sync.WaitGroup
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				name := fmt.Sprintf("g%d-%04d", g, i)
				if err := l.Append(OpPut, name, []byte("<d>v</d>")); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("append %s: %v", name, err)
					return
				}
				mu.Lock()
				acked = append(acked, name)
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	_, state, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, name := range acked {
		if _, ok := state.Docs[name]; !ok {
			t.Fatalf("acknowledged record %s lost across Close (%d acked, %d recovered)",
				name, len(acked), len(state.Docs))
		}
	}
}

func TestTailReadAfter(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone, TailRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if head := l.HeadSeq(); head != 0 {
		t.Fatalf("fresh log head = %d, want 0", head)
	}
	if recs, gap := l.ReadAfter(0, 10); gap || len(recs) != 0 {
		t.Fatalf("empty log ReadAfter = %d recs, gap=%v", len(recs), gap)
	}
	for i := 1; i <= 3; i++ {
		must(t, l.Append(OpPut, fmt.Sprintf("d%d", i), []byte("<x/>")))
	}
	if head := l.HeadSeq(); head != 3 {
		t.Fatalf("head = %d, want 3", head)
	}
	recs, gap := l.ReadAfter(0, 10)
	if gap || len(recs) != 3 {
		t.Fatalf("ReadAfter(0) = %d recs, gap=%v; want 3, false", len(recs), gap)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Name != fmt.Sprintf("d%d", i+1) {
			t.Fatalf("record %d = seq %d name %s", i, r.Seq, r.Name)
		}
	}
	// Partial read and max bound.
	recs, gap = l.ReadAfter(1, 1)
	if gap || len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("ReadAfter(1, max 1) = %+v gap=%v", recs, gap)
	}
	// Overflow the 4-record ring: seqs 1..2 evict.
	for i := 4; i <= 6; i++ {
		must(t, l.Append(OpDelete, fmt.Sprintf("d%d", i), nil))
	}
	if _, gap = l.ReadAfter(1, 10); !gap {
		t.Fatal("evicted position must report a gap")
	}
	recs, gap = l.ReadAfter(2, 10)
	if gap || len(recs) != 4 || recs[0].Seq != 3 || recs[3].Seq != 6 {
		t.Fatalf("ReadAfter(2) = %+v gap=%v; want seqs 3..6", recs, gap)
	}
	if recs[3].Op != OpDelete || recs[3].Name != "d6" {
		t.Fatalf("record 6 = %+v, want delete d6", recs[3].Record)
	}
	// Caught up.
	if recs, gap := l.ReadAfter(6, 10); gap || len(recs) != 0 {
		t.Fatalf("caught-up ReadAfter = %d recs, gap=%v", len(recs), gap)
	}
}

func TestTailDisabledReportsGap(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	must(t, l.Append(OpPut, "d", []byte("<x/>")))
	if _, gap := l.ReadAfter(0, 10); !gap {
		t.Fatal("tail-less log must report a gap for any lagging reader")
	}
}

func TestAppendNotify(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone, TailRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	ch := l.AppendNotify()
	select {
	case <-ch:
		t.Fatal("notify fired before any append")
	default:
	}
	must(t, l.Append(OpPut, "d", []byte("<x/>")))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("notify did not fire on append")
	}
	// A closed log hands out an already-closed channel.
	must(t, l.Close())
	select {
	case <-l.AppendNotify():
	default:
		t.Fatal("AppendNotify on a closed log must not block")
	}
}

func TestFrameReaderRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpPut, Name: "a", Data: []byte("<a>1</a>")},
		{Op: OpDelete, Name: "b"},
		{Op: OpPut, Name: "c", Data: bytes.Repeat([]byte("x"), 10_000)},
	}
	var buf []byte
	for _, r := range recs {
		buf = EncodeFrame(buf, r)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range recs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.Name != want.Name || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d: got %+v", i, got)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}
}

func TestFrameReaderRejectsCorruption(t *testing.T) {
	frame := EncodeFrame(nil, Record{Op: OpPut, Name: "a", Data: []byte("<a/>")})
	cases := map[string][]byte{
		"torn header":  frame[:4],
		"torn payload": frame[:len(frame)-2],
		"bit flip": func() []byte {
			c := append([]byte(nil), frame...)
			c[len(c)-1] ^= 0x40
			return c
		}(),
	}
	for name, data := range cases {
		fr := NewFrameReader(bytes.NewReader(data))
		if _, err := fr.Next(); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: want ErrCorruptFrame, got %v", name, err)
		}
	}
}

// TestBackgroundFsyncFailurePoisons forces the interval fsync to fail (the
// file descriptor is closed behind the log's back) and checks the log
// poisons itself instead of silently carrying on with a suspect tail.
func TestBackgroundFsyncFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }() // fails on the dead fd; retires the goroutine
	must(t, l.Append(OpPut, "d", []byte("<x/>")))
	l.mu.Lock()
	l.f.Close() // every subsequent fsync on this descriptor fails
	l.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := l.Append(OpPut, "d2", []byte("<x/>"))
		if err != nil {
			if errors.Is(err, ErrClosed) {
				t.Fatalf("log closed instead of poisoned: %v", err)
			}
			break // poisoned (or the append itself failed on the dead fd)
		}
		if time.Now().After(deadline) {
			t.Fatal("background fsync failure never poisoned the log")
		}
		time.Sleep(time.Millisecond)
	}
	l.mu.Lock()
	failed := l.failed
	l.mu.Unlock()
	if failed == nil {
		t.Fatal("l.failed not set after fsync failures")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
