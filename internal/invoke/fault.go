package invoke

import (
	"context"
	"errors"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
)

// ErrInjected is the default error injected by FaultError faults.
var ErrInjected = errors.New("invoke: injected fault")

// FaultKind selects the behavior of one scheduled fault.
type FaultKind uint8

const (
	// FaultNone passes the call through to the inner invoker.
	FaultNone FaultKind = iota
	// FaultError fails the call with Fault.Err (default ErrInjected).
	FaultError
	// FaultLatency delays by Fault.Latency, then delegates; the delay
	// respects the call context.
	FaultLatency
	// FaultHang blocks until the call context is done, then returns its
	// error — a service that never answers.
	FaultHang
	// FaultGarbage returns Fault.Result instead of calling the service — a
	// service answering outside its declared output type.
	FaultGarbage
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultHang:
		return "hang"
	case FaultGarbage:
		return "garbage"
	default:
		return "fault"
	}
}

// Fault is one scheduled fault.
type Fault struct {
	Kind FaultKind
	// Err is returned by FaultError faults; nil selects ErrInjected.
	Err error
	// Latency is the FaultLatency delay.
	Latency time.Duration
	// Result is the forest returned by FaultGarbage faults.
	Result []*doc.Node
}

// FaultInjector wraps an invoker with a deterministic fault schedule, the
// adversarial counterpart of the safe-rewriting analysis: per function label
// (or the "*" catch-all), the n-th call consumes the n-th scheduled fault;
// past the end of the schedule, calls pass through. No randomness is
// involved, so every test run exercises exactly the same failure sequence.
type FaultInjector struct {
	// Inner handles calls whose fault is FaultNone or whose schedule is
	// exhausted. Required unless every call hits a terminal fault.
	Inner core.Invoker

	mu    sync.Mutex
	plan  map[string][]Fault
	calls map[string]int
	total int
}

// NewFaultInjector wraps inner with an empty schedule.
func NewFaultInjector(inner core.Invoker) *FaultInjector {
	return &FaultInjector{Inner: inner, plan: map[string][]Fault{}, calls: map[string]int{}}
}

// Plan appends faults to the schedule for function label fn ("*" applies to
// every label without its own schedule). It returns the injector for
// chaining.
func (fi *FaultInjector) Plan(fn string, faults ...Fault) *FaultInjector {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.plan == nil {
		fi.plan = map[string][]Fault{}
	}
	fi.plan[fn] = append(fi.plan[fn], faults...)
	return fi
}

// Calls reports how many invocations label fn has received.
func (fi *FaultInjector) Calls(fn string) int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.calls[fn]
}

// TotalCalls reports the overall invocation count.
func (fi *FaultInjector) TotalCalls() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.total
}

// next pops the scheduled fault for this call, counting it.
func (fi *FaultInjector) next(label string) Fault {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.calls == nil {
		fi.calls = map[string]int{}
	}
	n := fi.calls[label]
	fi.calls[label] = n + 1
	fi.total++
	sched, ok := fi.plan[label]
	if !ok {
		sched = fi.plan["*"]
	}
	if n < len(sched) {
		return sched[n]
	}
	return Fault{Kind: FaultNone}
}

// Invoke implements core.Invoker.
func (fi *FaultInjector) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	f := fi.next(call.Label)
	if f.Kind != FaultNone {
		core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: core.EndpointOf(call),
			Kind: core.EventFault, Err: f.Kind.String()})
	}
	switch f.Kind {
	case FaultError:
		if f.Err != nil {
			return nil, f.Err
		}
		return nil, ErrInjected
	case FaultLatency:
		if err := sleepCtx(ctx, f.Latency); err != nil {
			return nil, err
		}
	case FaultHang:
		<-ctx.Done()
		return nil, ctx.Err()
	case FaultGarbage:
		return f.Result, nil
	}
	if fi.Inner == nil {
		return nil, ErrInjected
	}
	return fi.Inner.Invoke(ctx, call)
}

var _ core.Invoker = (*FaultInjector)(nil)
