package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The experiment tables must reproduce the paper's qualitative shape: the
// absolute numbers are machine-dependent, but who wins and where the
// crossovers fall must hold on every run.

func TestFiguresVerdicts(t *testing.T) {
	tbl := Figures()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	if byName["Fig6 safe into (**)"][2] != "safe" {
		t.Error("Figure 6 must be safe")
	}
	if byName["Fig8 safe into (***)"][2] != "unsafe" {
		t.Error("Figure 8 must be unsafe")
	}
	if byName["Fig11 possible into (***)"][2] != "possible" {
		t.Error("Figure 11 must be possible")
	}
}

func TestComplementBlowupShape(t *testing.T) {
	tbl := ComplementBlowup([]int{4, 8}, 1)
	// Non-deterministic complement states must grow ~2^n while deterministic
	// stays linear: at n=8 the gap must exceed an order of magnitude.
	row := tbl.Rows[1]
	det, nondet := atoi(t, row[1]), atoi(t, row[3])
	if nondet < det*10 {
		t.Errorf("expected exponential gap, det=%d nondet=%d", det, nondet)
	}
	// Deterministic grows linearly with n.
	det4 := atoi(t, tbl.Rows[0][1])
	if det > det4*4 {
		t.Errorf("deterministic complement grew superlinearly: %d -> %d", det4, det)
	}
}

func TestLazyPruningShape(t *testing.T) {
	tbl := LazyPruning(3)
	for _, row := range tbl.Rows {
		eager, lazy := atoi(t, row[2]), atoi(t, row[3])
		if lazy > eager {
			t.Errorf("%s: lazy explored more states (%d) than eager built (%d)", row[0], lazy, eager)
		}
	}
}

func TestMixedBenefitShape(t *testing.T) {
	tbl := MixedBenefit([]int{8}, 1)
	row := tbl.Rows[0]
	before, after := atoi(t, row[1]), atoi(t, row[3])
	if after >= before {
		t.Errorf("pre-invocation should shrink the analysis: before=%d after=%d", before, after)
	}
}

func TestSafeScalingMonotone(t *testing.T) {
	tbl := SafeScaling([]int{4, 16}, []int{1}, 1)
	small, large := atoi(t, tbl.Rows[0][3]), atoi(t, tbl.Rows[1][3])
	if large <= small {
		t.Errorf("product states should grow with n: %d -> %d", small, large)
	}
	// Polynomial, not exponential: 4x the schema should stay well under
	// 100x the states.
	if large > small*100 {
		t.Errorf("suspicious growth for deterministic schemas: %d -> %d", small, large)
	}
}

func TestSchemaRewriteVerdicts(t *testing.T) {
	tbl := SchemaRewrite(nil, 1)
	want := map[string]string{
		"(*) -> (*)":   "safe",
		"(*) -> (**)":  "safe",
		"(*) -> (***)": "unsafe",
	}
	for _, row := range tbl.Rows {
		if w, ok := want[row[0]]; ok && row[2] != w {
			t.Errorf("%s: verdict %s want %s", row[0], row[2], w)
		}
	}
}

func TestKDepthGrowthShape(t *testing.T) {
	tbl := KDepthGrowth([]int{1, 3})
	// With k=1 the handle returned by the first call cannot be chased.
	if tbl.Rows[0][3] == "false" {
		// The simulated handle may dry up immediately; both outcomes are
		// legal, but calls must stay within the k bound.
		if atoi(t, tbl.Rows[0][1]) > 1 {
			t.Errorf("k=1 made %s calls", tbl.Rows[0][1])
		}
	}
}

func TestParallelSpeedupShape(t *testing.T) {
	// With 5ms of latency on 8 independent calls, degree 4 must overlap
	// enough round-trips to beat degree 1 outright; the precise factor is
	// machine-dependent and gated in CI by axml-bench -min-speedup.
	tbl := ParallelSpeedup([]int{1, 4}, []time.Duration{5 * time.Millisecond}, []int{8}, 1)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parseWall := func(s string) float64 {
		var ms float64
		if _, err := fmt.Sscanf(s, "%fms", &ms); err != nil {
			t.Fatalf("wall %q: %v", s, err)
		}
		return ms
	}
	seq, par := parseWall(tbl.Rows[0][3]), parseWall(tbl.Rows[1][3])
	if par >= seq {
		t.Errorf("degree 4 (%vms) not faster than degree 1 (%vms)", par, seq)
	}
}

func TestTableFprint(t *testing.T) {
	var b strings.Builder
	Figures().Fprint(&b)
	out := b.String()
	for _, want := range []string{"figures", "verdict", "Fig6"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	tables := All()
	if len(tables) != 10 {
		t.Fatalf("experiments = %d", len(tables))
	}
	for _, tbl := range tables {
		if tbl.ID == "" || len(tbl.Rows) == 0 {
			t.Errorf("table %q is empty", tbl.ID)
		}
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}
