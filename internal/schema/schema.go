// Package schema implements document schemas for intensional XML
// (Definition 2 of Milo et al. plus the Section 2.1 extensions): each element
// label maps to a content model — a regular expression over element *and*
// function names — or to atomic data; each function name carries an
// input/output signature; function patterns admit whole families of
// functions by predicate + signature; and functions are partitioned into
// invocable and non-invocable ones, with cost and side-effect metadata
// driving the rewriting strategies.
package schema

import (
	"fmt"
	"sort"

	"axml/internal/automata"
	"axml/internal/regex"
)

// SymKind classifies what a name means inside a schema.
type SymKind uint8

const (
	// KindUnknown marks names the schema does not declare.
	KindUnknown SymKind = iota
	// KindLabel is an element name.
	KindLabel
	// KindFunc is a declared function name.
	KindFunc
	// KindPattern is a function-pattern name.
	KindPattern
)

func (k SymKind) String() string {
	switch k {
	case KindLabel:
		return "element"
	case KindFunc:
		return "function"
	case KindPattern:
		return "function pattern"
	default:
		return "unknown"
	}
}

// LabelDef is τ(l) for one element label: either a content model over
// element/function/pattern names, or atomic data (Content == nil).
type LabelDef struct {
	Name    string
	Content *regex.Regex // nil means the "data" keyword: atomic text content
}

// IsData reports whether the element holds atomic data.
func (d *LabelDef) IsData() bool { return d.Content == nil }

// FuncDef declares a function (Web service operation): its signature and the
// exchange-policy metadata of Section 2.1.
type FuncDef struct {
	Name string
	// In is τ_in(f); nil means the "data" keyword (one atomic value).
	In *regex.Regex
	// Out is τ_out(f); nil means the function returns one atomic value.
	Out *regex.Regex
	// Invocable is the §2.1 restriction: only invocable functions may be
	// called by a legal rewriting.
	Invocable bool
	// Cost weighs this call in minimal-cost plan extraction (step 23 of
	// Figure 3). Zero-cost calls are still calls; plan extraction breaks
	// ties by call count.
	Cost float64
	// SideEffects marks calls that the mixed strategy must not pre-invoke
	// speculatively.
	SideEffects bool
	// Endpoint optionally pins the service location (SOAP transport).
	Endpoint  string
	Namespace string
}

// Predicate decides whether a concrete function belongs to a pattern, given
// its name and (declared) signature. The paper implements predicates as Web
// services (UDDI registration checks, ACL checks); here they are Go
// functions, and internal/service provides registry-backed ones.
type Predicate func(name string, in, out *regex.Regex) bool

// PatternDef declares a function pattern (§2.1): a predicate over function
// names plus a required signature.
type PatternDef struct {
	Name string
	In   *regex.Regex
	Out  *regex.Regex
	// Pred may be nil, in which case every function with the right
	// signature matches (the paper's convention when the predicate service
	// attributes are omitted).
	Pred Predicate
	// Invocable extends the §2.1 restriction to pattern-matched calls.
	Invocable bool
}

// Schema is a document schema s = (L, F, P, τ). All content models and
// signatures are interned in one shared symbol Table so that schemas can be
// combined (sender schema s0 and exchange schema s) inside one automaton
// construction.
type Schema struct {
	Table    *regex.Table
	Labels   map[string]*LabelDef
	Funcs    map[string]*FuncDef
	Patterns map[string]*PatternDef
	// Root is the distinguished root label for schema-level rewriting
	// (Definition 6); may be empty.
	Root string
}

// New returns an empty schema with a fresh symbol table.
func New() *Schema { return NewShared(regex.NewTable()) }

// NewShared returns an empty schema interning into an existing table; use it
// when several schemas must be analyzed together.
func NewShared(t *regex.Table) *Schema {
	return &Schema{
		Table:    t,
		Labels:   make(map[string]*LabelDef),
		Funcs:    make(map[string]*FuncDef),
		Patterns: make(map[string]*PatternDef),
	}
}

// Kind classifies a name.
func (s *Schema) Kind(name string) SymKind {
	switch {
	case s.Labels[name] != nil:
		return KindLabel
	case s.Funcs[name] != nil:
		return KindFunc
	case s.Patterns[name] != nil:
		return KindPattern
	default:
		return KindUnknown
	}
}

func (s *Schema) checkFresh(name string, allow SymKind) error {
	k := s.Kind(name)
	if k == KindUnknown || k == allow {
		return nil
	}
	return fmt.Errorf("schema: %q already declared as %s", name, k)
}

// SetLabel declares an element with the given content model source text.
func (s *Schema) SetLabel(name, content string) error {
	if err := s.checkFresh(name, KindLabel); err != nil {
		return err
	}
	r, err := s.parseContent(content)
	if err != nil {
		return fmt.Errorf("schema: element %q: %w", name, err)
	}
	s.Table.Intern(name)
	s.Labels[name] = &LabelDef{Name: name, Content: r}
	return nil
}

// SetData declares an element with atomic data content.
func (s *Schema) SetData(name string) error {
	if err := s.checkFresh(name, KindLabel); err != nil {
		return err
	}
	s.Table.Intern(name)
	s.Labels[name] = &LabelDef{Name: name}
	return nil
}

// SetLabelRegex declares an element with an already-built content model
// (which must have been interned in s.Table).
func (s *Schema) SetLabelRegex(name string, content *regex.Regex) error {
	if err := s.checkFresh(name, KindLabel); err != nil {
		return err
	}
	s.Table.Intern(name)
	s.Labels[name] = &LabelDef{Name: name, Content: content}
	return nil
}

// SetFunc declares an invocable function with textual signature types; either
// side may be the keyword "data".
func (s *Schema) SetFunc(name, in, out string) error {
	return s.SetFuncDef(name, in, out, func(*FuncDef) {})
}

// SetFuncDef declares a function and lets adjust tweak the definition
// (invocability, cost, side effects, endpoint) before it is stored.
func (s *Schema) SetFuncDef(name, in, out string, adjust func(*FuncDef)) error {
	if err := s.checkFresh(name, KindFunc); err != nil {
		return err
	}
	rin, err := s.parseContent(in)
	if err != nil {
		return fmt.Errorf("schema: function %q input: %w", name, err)
	}
	rout, err := s.parseContent(out)
	if err != nil {
		return fmt.Errorf("schema: function %q output: %w", name, err)
	}
	def := &FuncDef{Name: name, In: rin, Out: rout, Invocable: true}
	if adjust != nil {
		adjust(def)
	}
	s.Table.Intern(name)
	s.Funcs[name] = def
	return nil
}

// SetPattern declares a function pattern with textual signature types.
func (s *Schema) SetPattern(name, in, out string, pred Predicate) error {
	if err := s.checkFresh(name, KindPattern); err != nil {
		return err
	}
	rin, err := s.parseContent(in)
	if err != nil {
		return fmt.Errorf("schema: pattern %q input: %w", name, err)
	}
	rout, err := s.parseContent(out)
	if err != nil {
		return fmt.Errorf("schema: pattern %q output: %w", name, err)
	}
	s.Table.Intern(name)
	s.Patterns[name] = &PatternDef{Name: name, In: rin, Out: rout, Pred: pred, Invocable: true}
	return nil
}

// parseContent parses a content-model source; the keyword "data" yields nil.
func (s *Schema) parseContent(src string) (*regex.Regex, error) {
	if src == "data" {
		return nil, nil
	}
	return regex.Parse(s.Table, src)
}

// MustBuild is a convenience for tests and examples: it applies the given
// declaration steps and panics on the first error.
func MustBuild(steps ...func(*Schema) error) *Schema {
	s := New()
	for _, step := range steps {
		if err := step(s); err != nil {
			panic(err)
		}
	}
	return s
}

// Content returns τ(l) for an element label; ok is false for unknown labels.
func (s *Schema) Content(label string) (r *regex.Regex, isData, ok bool) {
	d := s.Labels[label]
	if d == nil {
		return nil, false, false
	}
	return d.Content, d.IsData(), true
}

// FuncSig returns the declared signature of a function; nil regexes stand
// for atomic data.
func (s *Schema) FuncSig(name string) (in, out *regex.Regex, ok bool) {
	d := s.Funcs[name]
	if d == nil {
		return nil, nil, false
	}
	return d.In, d.Out, true
}

// SortedLabels returns the declared labels in name order (stable iteration
// for deterministic output and tests).
func (s *Schema) SortedLabels() []string {
	out := make([]string, 0, len(s.Labels))
	for name := range s.Labels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SortedFuncs returns the declared function names in name order.
func (s *Schema) SortedFuncs() []string {
	out := make([]string, 0, len(s.Funcs))
	for name := range s.Funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SortedPatterns returns the declared pattern names in name order.
func (s *Schema) SortedPatterns() []string {
	out := make([]string, 0, len(s.Patterns))
	for name := range s.Patterns {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Alphabet returns the sorted set of symbols mentioned anywhere in the
// schema: declared names plus every symbol occurring in a content model or
// signature.
func (s *Schema) Alphabet() []regex.Symbol {
	var all []regex.Symbol
	add := func(r *regex.Regex) {
		if r != nil {
			all = r.Alphabet(all)
		}
	}
	for name, d := range s.Labels {
		if sym, ok := s.Table.Lookup(name); ok {
			all = append(all, sym)
		}
		add(d.Content)
	}
	for name, d := range s.Funcs {
		if sym, ok := s.Table.Lookup(name); ok {
			all = append(all, sym)
		}
		add(d.In)
		add(d.Out)
	}
	for name, d := range s.Patterns {
		if sym, ok := s.Table.Lookup(name); ok {
			all = append(all, sym)
		}
		add(d.In)
		add(d.Out)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, x := range all {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// CheckDeterministic verifies that every content model and signature is
// one-unambiguous, as XML Schema_int requires; it returns the first
// violation found (labels first, in name order).
func (s *Schema) CheckDeterministic() error {
	for _, name := range s.SortedLabels() {
		if c := s.Labels[name].Content; c != nil && !regex.Deterministic(c) {
			return fmt.Errorf("schema: element %q has a non-deterministic content model", name)
		}
	}
	for _, name := range s.SortedFuncs() {
		d := s.Funcs[name]
		if d.In != nil && !regex.Deterministic(d.In) {
			return fmt.Errorf("schema: function %q has a non-deterministic input type", name)
		}
		if d.Out != nil && !regex.Deterministic(d.Out) {
			return fmt.Errorf("schema: function %q has a non-deterministic output type", name)
		}
	}
	return nil
}

// sigEqual compares two signatures up to language equivalence (nil = data
// matches only nil).
func sigEqual(a, b *regex.Regex) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Equal(b) {
		return true
	}
	da := automata.Determinize(automata.FromRegex(a), a.Alphabet(nil))
	db := automata.Determinize(automata.FromRegex(b), b.Alphabet(nil))
	return automata.Equivalent(da, db)
}

// FuncMatchesPattern reports whether function def belongs to pattern p:
// the predicate accepts it and the signatures coincide (§2.1).
func FuncMatchesPattern(def *FuncDef, p *PatternDef) bool {
	if def == nil || p == nil {
		return false
	}
	if p.Pred != nil && !p.Pred(def.Name, def.In, def.Out) {
		return false
	}
	return sigEqual(def.In, p.In) && sigEqual(def.Out, p.Out)
}
