package xmlio

import (
	"bytes"
	"strings"
	"testing"

	"axml/internal/doc"
)

func sampleDocs() map[string]*doc.Node {
	return map[string]*doc.Node{
		"empty":  doc.Elem("a"),
		"inline": doc.Elem("a", doc.TextNode("hello & <world>")),
		"block": doc.Elem("a",
			doc.Elem("b", doc.TextNode("x")),
			doc.Elem("c"),
			doc.Elem("d", doc.Elem("e", doc.TextNode("deep")), doc.TextNode("mixed")),
		),
		"func": doc.Elem("root",
			doc.Elem("plain", doc.TextNode("v")),
			doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		),
		"funcroot": doc.Call("Mk", doc.TextNode("m"), doc.Elem("p", doc.TextNode("q"))),
	}
}

// TestWriteToMatchesWrite: the pooled streaming serializer is byte-identical
// to the buffer-based one.
func TestWriteToMatchesWrite(t *testing.T) {
	for name, d := range sampleDocs() {
		var a, b bytes.Buffer
		if err := Write(&a, d); err != nil {
			t.Fatalf("%s: Write: %v", name, err)
		}
		if err := WriteTo(&b, d); err != nil {
			t.Fatalf("%s: WriteTo: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: WriteTo diverges from Write\n--- Write ---\n%s\n--- WriteTo ---\n%s",
				name, a.Bytes(), b.Bytes())
		}
	}
}

// replay drives an emitter from a tree source, the way the streaming engine
// does for accepted content.
func replay(t *testing.T, root *doc.Node) []byte {
	t.Helper()
	var out bytes.Buffer
	em := NewEmitter(&out)
	src := NewTreeSource(root)
	for {
		ev, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case EventStart:
			em.StartElement(ev.Label)
		case EventText:
			em.Text(ev.Text)
		case EventFunc:
			em.Tree(ev.Node)
		case EventEnd:
			em.EndElement()
		case EventEOF:
			if err := em.End(); err != nil {
				t.Fatal(err)
			}
			return out.Bytes()
		}
	}
}

// TestEmitterMatchesWrite: replaying function-free documents event by event
// reproduces the batch printer's bytes — all three element forms, nesting,
// escaping.
func TestEmitterMatchesWrite(t *testing.T) {
	for name, d := range sampleDocs() {
		if d.HasFuncs() {
			continue // emitted documents are function-free by construction
		}
		var want bytes.Buffer
		if err := Write(&want, d); err != nil {
			t.Fatal(err)
		}
		got := replay(t, d)
		if !bytes.Equal(want.Bytes(), got) {
			t.Errorf("%s: emitter diverges from Write\n--- Write ---\n%s\n--- Emitter ---\n%s",
				name, want.Bytes(), got)
		}
	}
}

// TestEmitterFinish: Finish with the full child list in hand reaches the
// empty and inline forms the incremental API alone cannot.
func TestEmitterFinish(t *testing.T) {
	cases := map[string]struct {
		kids []*doc.Node
		want *doc.Node
	}{
		"empty":  {nil, doc.Elem("r", doc.Elem("a"))},
		"inline": {[]*doc.Node{doc.TextNode("t")}, doc.Elem("r", doc.Elem("a", doc.TextNode("t")))},
		"block": {[]*doc.Node{doc.Elem("b"), doc.TextNode("t")},
			doc.Elem("r", doc.Elem("a", doc.Elem("b"), doc.TextNode("t")))},
	}
	for name, tc := range cases {
		var want bytes.Buffer
		if err := Write(&want, tc.want); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		em := NewEmitter(&out)
		em.StartElement("r")
		em.StartElement("a")
		em.Finish(tc.kids)
		em.EndElement()
		if err := em.End(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), out.Bytes()) {
			t.Errorf("%s: Finish diverges\n--- want ---\n%s\n--- got ---\n%s",
				name, want.Bytes(), out.Bytes())
		}
	}
}

// TestReaderSourceMatchesTreeSource: parsing serialized bytes yields the
// exact event sequence of walking the original tree.
func TestReaderSourceMatchesTreeSource(t *testing.T) {
	for name, d := range sampleDocs() {
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		rs := NewReaderSource(bytes.NewReader(buf.Bytes()))
		ts := NewTreeSource(d)
		for i := 0; ; i++ {
			want, err := ts.Next()
			if err != nil {
				t.Fatal(err)
			}
			got, err := rs.Next()
			if err != nil {
				t.Fatalf("%s: event %d: reader: %v", name, i, err)
			}
			if got.Kind != want.Kind || got.Label != want.Label || got.Text != want.Text {
				t.Fatalf("%s: event %d: reader %+v, tree %+v", name, i, got, want)
			}
			if want.Kind == EventFunc && !got.Node.Equal(want.Node) {
				t.Fatalf("%s: event %d: function subtrees differ:\n%s\nvs\n%s",
					name, i, got.Node, want.Node)
			}
			if want.Kind == EventEOF {
				break
			}
		}
		rs.Close()
	}
}

// TestReaderSourceErrors mirrors Parse's error behavior on broken inputs.
func TestReaderSourceErrors(t *testing.T) {
	drain := func(input string) error {
		s := NewReaderSource(strings.NewReader(input))
		defer s.Close()
		for {
			ev, err := s.Next()
			if err != nil {
				return err
			}
			if ev.Kind == EventEOF {
				return nil
			}
		}
	}
	for name, input := range map[string]string{
		"empty":          "",
		"stray text":     "junk<a/>",
		"unclosed":       "<a><b>",
		"mismatched":     "<a></b>",
		"bad intension":  `<a xmlns:int="http://www.activexml.com/ns/int"><int:nope/></a>`,
		"truncated func": `<a xmlns:int="http://www.activexml.com/ns/int"><int:fun name="F">`,
	} {
		if err := drain(input); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	if err := drain("<a><b>ok</b></a>trailing garbage"); err != nil {
		t.Errorf("content after the root element is ignored like Parse: %v", err)
	}
}
