// Command axml-bench regenerates the paper's figures and analytical claims
// as tables (the E-* experiment index of DESIGN.md / EXPERIMENTS.md).
//
//	axml-bench             # run everything
//	axml-bench -run lazy   # run experiments whose id contains "lazy"
//	axml-bench -list       # list experiment ids
//
// Output is deterministic except for wall-clock timings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"axml/internal/experiments"
)

func main() {
	runFilter := flag.String("run", "", "only run experiments whose id contains this substring")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, t := range all {
			fmt.Printf("%-20s %s\n", t.ID, t.Title)
		}
		return
	}
	ran := 0
	for _, t := range all {
		if *runFilter != "" && !strings.Contains(t.ID, *runFilter) {
			continue
		}
		t.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "axml-bench: no experiment matches %q\n", *runFilter)
		os.Exit(1)
	}
}
