package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/workload"
)

// Robustness sweeps: the executor must never panic or corrupt documents, no
// matter how workloads, modes and failure injections combine.

// flakyInvoker wraps a simulated invoker with injected failures.
type flakyInvoker struct {
	inner *workload.SimInvoker
	rng   *rand.Rand
	// failEvery injects an error on every n-th call (0 = never).
	failEvery int
	// garbageEvery returns a non-conforming forest on every n-th call.
	garbageEvery int
	calls        int
}

var errInjected = errors.New("injected service failure")

func (f *flakyInvoker) Invoke(call *doc.Node) ([]*doc.Node, error) {
	f.calls++
	if f.failEvery > 0 && f.calls%f.failEvery == 0 {
		return nil, errInjected
	}
	if f.garbageEvery > 0 && f.calls%f.garbageEvery == 0 {
		return []*doc.Node{doc.Elem("garbage-element-nobody-declared")}, nil
	}
	return f.inner.Invoke(call)
}

// Property: rewriting random instances under every mode either succeeds with
// a valid document or fails with an error — never panics, and safe-mode
// failures only happen under injected faults.
func TestQuickExecutorRobustness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.Options{Labels: 4, Funcs: 3})
		g := workload.NewGenerator(s, rng)
		g.MaxDepth = 5
		root, err := g.Root()
		if err != nil {
			return true
		}
		for _, mode := range []Mode{Safe, Possible, Mixed} {
			for _, inject := range []struct{ fail, garbage int }{
				{0, 0}, {2, 0}, {0, 2},
			} {
				inv := &flakyInvoker{
					inner:        workload.NewSimInvoker(s, rand.New(rand.NewSource(seed+1))),
					rng:          rng,
					failEvery:    inject.fail,
					garbageEvery: inject.garbage,
				}
				rw := NewRewriter(s, s, 2, inv)
				rw.Audit = &Audit{}
				rw.MaxCalls = 200
				out, err := rw.RewriteDocument(root.Clone(), mode)
				if err != nil {
					continue // failure is acceptable; panics are not
				}
				if err := schema.NewContext(s, nil).Validate(out); err != nil {
					t.Logf("seed %d mode %v inject %+v: invalid result: %v", seed, mode, inject, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a clean safe-mode run (no injection) never fails once the static
// check passes, and never exceeds the fork-depth bound in its audit.
func TestQuickSafeDepthBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.Options{Labels: 4, Funcs: 3})
		g := workload.NewGenerator(s, rng)
		g.MaxDepth = 5
		root, err := g.Root()
		if err != nil {
			return true
		}
		k := 1 + rng.Intn(2)
		rw := NewRewriter(s, s, k, workload.NewSimInvoker(s, rand.New(rand.NewSource(seed+7))))
		rw.Audit = &Audit{}
		if err := rw.CheckDocument(root, Safe); err != nil {
			return true
		}
		if _, err := rw.RewriteDocument(root.Clone(), Safe); err != nil {
			t.Logf("seed %d: statically safe but execution failed: %v", seed, err)
			return false
		}
		for _, c := range rw.Audit.Calls() {
			if c.Depth > k {
				t.Logf("seed %d: call %s at depth %d exceeds k=%d", seed, c.Func, c.Depth, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGarbageReturnsFailSafely: with garbage injected on the first call, a
// safe rewriting fails with the non-conforming error and the document given
// to the caller is never half-written (RewriteDocument returns nil).
func TestGarbageReturnsFailSafely(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	inv := &flakyInvoker{
		inner:        workload.NewSimInvoker(s, rand.New(rand.NewSource(1))),
		garbageEvery: 1,
	}
	rw := NewRewriter(s, s, 1, inv)
	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("x"))))
	out, err := rw.RewriteDocument(root, Safe)
	if err == nil {
		t.Fatalf("garbage should fail, got %v", out)
	}
	if out != nil {
		t.Error("failed rewriting should not return a document")
	}
}
