package peer

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/telemetry"
)

const exchangeTarget = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="newspaper">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="title"/>
        <xs:element ref="date"/>
        <xs:element ref="temp"/>
        <xs:choice>
          <xs:element ref="TimeOut"/>
          <xs:element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
        </xs:choice>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// TestPeerTelemetryEndpoints drives one /exchange through an instrumented
// peer and checks the whole observability surface: /metrics exposition,
// /debug/traces linkage, and the /stats JSON folded onto the registry.
func TestPeerTelemetryEndpoints(t *testing.T) {
	p := newsPeer(t)
	p.Telemetry = telemetry.NewRegistry()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml", strings.NewReader(exchangeTarget))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exchange failed: %d %s", resp.StatusCode, body)
	}

	// /metrics serves Prometheus text with the pipeline sentinels.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	for _, sentinel := range []string{
		"axml_compile_cache_misses_total 1",
		`axml_rewrites_total{mode="safe"} 1`,
		`axml_rewrite_seconds_count{mode="safe"} 1`,
		`axml_invoke_seconds_count{endpoint="Get_Temp"} 1`,
		"axml_invoke_retries_total 0",
		`axml_breaker_transitions_total{state="open"} 0`,
		`axml_http_requests_total{code="2xx",handler="exchange"} 1`,
		`axml_http_request_seconds_count{handler="exchange"} 1`,
		`axml_word_decisions_total{decision="invoke"} 1`,
	} {
		if !strings.Contains(string(metrics), sentinel) {
			t.Errorf("/metrics missing %q", sentinel)
		}
	}

	// /debug/traces shows the rewrite span nested inside the HTTP span.
	resp, err = http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Recorded uint64                 `json:"recorded"`
		Spans    []telemetry.SpanRecord `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]telemetry.SpanRecord{}
	for _, s := range traces.Spans {
		byName[s.Name] = s
	}
	httpSpan, ok1 := byName["http.exchange"]
	rwSpan, ok2 := byName["rewrite.safe"]
	invSpan, ok3 := byName["invoke.Get_Temp"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing spans, got %v", traces.Spans)
	}
	if rwSpan.TraceID != httpSpan.TraceID || rwSpan.ParentID != httpSpan.SpanID {
		t.Errorf("rewrite span not nested under http span: %+v vs %+v", rwSpan, httpSpan)
	}
	if invSpan.TraceID != httpSpan.TraceID {
		t.Errorf("invoke span in a different trace: %+v", invSpan)
	}

	// Audit call records carry the same trace ID as the rewrite.
	calls := p.Audit.Calls()
	if len(calls) != 1 || calls[0].Rewrite != httpSpan.TraceID {
		t.Errorf("audit not correlated: %+v, want rewrite id %s", calls, httpSpan.TraceID)
	}

	// /stats keeps its shape but now reads from the registry.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		CompileCache struct {
			Misses uint64 `json:"Misses"`
		} `json:"compile_cache"`
		Invocations int  `json:"invocations"`
		Telemetry   bool `json:"telemetry"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Telemetry {
		t.Error("stats should report telemetry enabled")
	}
	if stats.CompileCache.Misses != 1 || stats.Invocations != 1 {
		t.Errorf("stats folded onto registry disagree: %+v", stats)
	}
}

// TestPeerWithoutTelemetry: no registry, no /metrics route, everything else
// untouched.
func TestPeerWithoutTelemetry(t *testing.T) {
	p := newsPeer(t)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without telemetry: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Telemetry bool `json:"telemetry"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Telemetry {
		t.Error("stats should report telemetry disabled")
	}
	p2 := newsPeer(t)
	p2.Telemetry = telemetry.NewRegistry()
	ts2 := httptest.NewServer(p2.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// the full catalogue is visible before any traffic
	if !strings.Contains(string(body), "axml_compile_cache_hits_total 0") {
		t.Errorf("boot-time exposition missing cache series:\n%s", body)
	}
}
