package peer

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/schema"
)

// TestRepositoryConcurrentAccess hammers the repository from many
// goroutines; run with -race.
func TestRepositoryConcurrentAccess(t *testing.T) {
	r := NewRepository()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("doc%d", i%4)
			for j := 0; j < 100; j++ {
				r.Put(name, doc.Elem("a", doc.TextNode(fmt.Sprint(j))))
				if d, ok := r.Get(name); ok && d.Label != "a" {
					t.Errorf("corrupted read: %v", d)
					return
				}
				_ = r.Names()
				_ = r.Len()
				if j%10 == 0 {
					_ = r.Update(name, func(n *doc.Node) (*doc.Node, error) { return n, nil })
				}
			}
		}(i)
	}
	wg.Wait()
	if r.Len() == 0 {
		t.Error("repository empty after concurrent writes")
	}
}

// TestConcurrentEnforcement runs many SendDocument calls in parallel over
// one peer, sharing the audit; run with -race.
func TestConcurrentEnforcement(t *testing.T) {
	p := newsPeer(t)
	exch, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), strings.Replace(newspaperSchema,
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = title.date.temp.(TimeOut|exhibit*)", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				out, err := p.SendDocument("today", exch, core.Safe)
				if err != nil {
					t.Errorf("concurrent send failed: %v", err)
					return
				}
				if out.ChildLabels()[2] != "temp" {
					t.Error("concurrent send produced wrong document")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Audit.Len(); got != 8*20 {
		t.Errorf("audit = %d calls, want 160", got)
	}
	// The tentpole guarantee: 160 exchanges over one schema pair compile the
	// pair analysis exactly once.
	if st := p.Enforcement.Stats(); st.Misses != 1 {
		t.Errorf("core.Compile ran %d times for one schema pair, want 1 (%s)", st.Misses, st)
	}
	if ws := p.Enforcement.WordStats(); ws.Hits == 0 {
		t.Errorf("word-verdict memo never hit across 160 identical exchanges (%s)", ws)
	}
}

// TestConcurrentEnforcementMixedTargets interleaves SendDocument and
// EnforceIn over distinct schema pairs; the cache must compile once per
// distinct pair, not per message. Run with -race.
func TestConcurrentEnforcementMixedTargets(t *testing.T) {
	p := newsPeer(t)
	exchText := func(mid string) string {
		return strings.Replace(newspaperSchema,
			"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
			"elem newspaper = title.date."+mid+".(TimeOut|exhibit*)", 1)
	}
	exchA, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), exchText("temp"), nil)
	if err != nil {
		t.Fatal(err)
	}
	exchB, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), exchText("(Get_Temp|temp)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 15; j++ {
				switch i % 3 {
				case 0:
					if _, err := p.SendDocument("today", exchA, core.Safe); err != nil {
						t.Errorf("send A: %v", err)
						return
					}
				case 1:
					if _, err := p.SendDocument("today", exchB, core.Safe); err != nil {
						t.Errorf("send B: %v", err)
						return
					}
				default:
					params := []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}
					if _, err := p.EnforceIn("Get_Temp", params); err != nil {
						t.Errorf("enforce in: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	// Distinct pairs touched: (p.Schema, exchA), (p.Schema, exchB). EnforceIn
	// conforms as-is here, so it never reaches the rewriter.
	if st := p.Enforcement.Stats(); st.Misses != 2 {
		t.Errorf("core.Compile ran %d times for 2 distinct schema pairs (%s)", st.Misses, st)
	}
}

// TestConcurrentHTTPExchange hits /exchange from many clients at once; every
// request parses a fresh exchange schema into the peer's shared symbol
// table, exercising concurrent interning. Run with -race.
func TestConcurrentHTTPExchange(t *testing.T) {
	p := newsPeer(t)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	// Each client uses a distinct extra element name so fresh symbols are
	// actually interned concurrently.
	xsdFor := func(i int) string {
		return fmt.Sprintf(`
<schema root="newspaper">
  <element name="newspaper"><complexType><sequence>
    <element ref="title"/><element ref="date"/><element ref="temp"/>
    <choice><function ref="TimeOut"/><element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
    <element ref="extra%d" minOccurs="0"/>
  </sequence></complexType></element>
  <element name="title" type="xs:string"/>
  <element name="date" type="xs:string"/>
  <element name="temp" type="xs:string"/>
  <element name="city" type="xs:string"/>
  <element name="extra%d" type="xs:string"/>
  <element name="exhibit"><complexType><sequence>
    <element ref="title"/><element ref="date"/>
  </sequence></complexType></element>
  <element name="performance" type="xs:string"/>
  <function id="Get_Temp"><params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return></function>
  <function id="TimeOut">
    <return><choice minOccurs="0" maxOccurs="unbounded">
      <element ref="exhibit"/><element ref="performance"/>
    </choice></return></function>
</schema>`, i, i)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml",
					strings.NewReader(xsdFor(i*100+j)))
				if err != nil {
					t.Errorf("exchange: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
