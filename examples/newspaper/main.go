// The paper's running example, end to end: the newspaper document of
// Figure 2 against the three schemas (*), (**) and (***) of Section 2,
// exercising safe, possible and mixed rewriting plus schema-level
// compatibility (Section 6).
//
//	go run ./examples/newspaper
package main

import (
	"fmt"
	"log"
	"strings"

	"axml"
)

const starSchema = `
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`

func newspaper() *axml.Node {
	return axml.Elem("newspaper",
		axml.Elem("title", axml.Text("The Sun")),
		axml.Elem("date", axml.Text("04/10/2002")),
		axml.Call("Get_Temp", axml.Elem("city", axml.Text("Paris"))),
		axml.Call("TimeOut", axml.Text("exhibits")),
	)
}

// services simulates the two Web services. TimeOut's reply is configurable
// so we can show both the lucky and the unlucky possible-rewriting runs.
func services(timeOutReturnsPerformance bool) axml.Invoker {
	return axml.InvokerFunc(func(call *axml.Node) ([]*axml.Node, error) {
		switch call.Label {
		case "Get_Temp":
			return []*axml.Node{axml.Elem("temp", axml.Text("15"))}, nil
		case "TimeOut":
			if timeOutReturnsPerformance {
				return []*axml.Node{axml.Elem("performance", axml.Text("Carmen"))}, nil
			}
			return []*axml.Node{
				axml.Elem("exhibit", axml.Elem("title", axml.Text("Dali")), axml.Elem("date", axml.Text("2002"))),
				axml.Elem("exhibit", axml.Elem("title", axml.Text("Monet")), axml.Elem("date", axml.Text("2003"))),
			}, nil
		default:
			return nil, fmt.Errorf("unknown service %q", call.Label)
		}
	})
}

func main() {
	sender := axml.MustParseSchemaText(starSchema)
	mk := func(model string) *axml.Schema {
		return axml.MustParseSchemaTextShared(sender, strings.Replace(starSchema,
			"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
			"elem newspaper = "+model, 1))
	}
	starStar := mk("title.date.temp.(TimeOut|exhibit*)") // (**)
	tripleStar := mk("title.date.temp.exhibit*")         // (***)

	fmt.Println("== document-level checks (Figure 2's word) ==")
	check := func(name string, target *axml.Schema, mode axml.Mode) {
		rw := axml.NewRewriter(sender, target, 1, nil)
		err := rw.CheckDocument(newspaper(), mode)
		verdict := "YES"
		if err != nil {
			verdict = "no — " + err.Error()
		}
		fmt.Printf("  %-10s into %-12s: %s\n", mode, name, verdict)
	}
	check("(**)", starStar, axml.Safe)        // YES  (Figure 6)
	check("(***)", tripleStar, axml.Safe)     // no   (Figure 8)
	check("(***)", tripleStar, axml.Possible) // YES  (Figure 11)

	fmt.Println("\n== safe execution into (**) ==")
	rw := axml.NewRewriter(sender, starStar, 1, services(false))
	rw.Audit = &axml.Audit{}
	out, err := rw.RewriteDocument(newspaper(), axml.Safe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  children after: %v\n", out.ChildLabels())
	for _, c := range rw.Audit.Calls() {
		fmt.Printf("  invoked %s (returned %d nodes)\n", c.Func, c.ResultNodes)
	}

	fmt.Println("\n== possible execution into (***) — lucky TimeOut ==")
	rw = axml.NewRewriter(sender, tripleStar, 1, services(false))
	rw.Audit = &axml.Audit{}
	out, err = rw.RewriteDocument(newspaper(), axml.Possible)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  children after: %v (calls: %d)\n", out.ChildLabels(), rw.Audit.Len())

	fmt.Println("\n== possible execution into (***) — unlucky TimeOut ==")
	rw = axml.NewRewriter(sender, tripleStar, 1, services(true))
	rw.Audit = &axml.Audit{}
	if _, err = rw.RewriteDocument(newspaper(), axml.Possible); err != nil {
		fmt.Printf("  failed as expected: %v\n", err)
		fmt.Printf("  side effects on record: %d calls\n", rw.Audit.Len())
	} else {
		log.Fatal("unexpected success")
	}

	fmt.Println("\n== mixed execution into (***) — pre-invoke, then prove safety ==")
	rw = axml.NewRewriter(sender, tripleStar, 1, services(false))
	rw.Audit = &axml.Audit{}
	out, err = rw.RewriteDocument(newspaper(), axml.Mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  children after: %v\n", out.ChildLabels())

	fmt.Println("\n== schema-level compatibility (Section 6) ==")
	for _, tc := range []struct {
		name   string
		target *axml.Schema
	}{
		{"(**)", starStar},
		{"(***)", tripleStar},
	} {
		report, err := axml.SchemaCompatible(sender, tc.target, "", 1)
		if err != nil {
			log.Fatal(err)
		}
		if report.Safe() {
			fmt.Printf("  every (*) document safely rewrites into %s\n", tc.name)
		} else {
			fmt.Printf("  (*) does NOT safely rewrite into %s:\n", tc.name)
			for _, f := range report.Failures() {
				fmt.Printf("    %s: %s\n", f.Label, f.Reason)
			}
		}
	}
}
