package telemetry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSpanParentLinkage(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	ctx, root := StartSpan(ctx, "rewrite.safe")
	_, child := StartSpan(ctx, "invoke.Get_Temp")
	child.SetAttr("endpoint", "http://example/soap")
	child.End(errors.New("boom"))
	root.End(nil)

	spans := r.Tracer().Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// child ended first, so it is oldest
	c, rt := spans[0], spans[1]
	if c.Name != "invoke.Get_Temp" || rt.Name != "rewrite.safe" {
		t.Fatalf("unexpected order: %q, %q", c.Name, rt.Name)
	}
	if c.ParentID != rt.SpanID {
		t.Errorf("child parent = %q, want %q", c.ParentID, rt.SpanID)
	}
	if c.TraceID != rt.TraceID {
		t.Errorf("trace ids differ: %q vs %q", c.TraceID, rt.TraceID)
	}
	if c.Err != "boom" {
		t.Errorf("child err = %q, want boom", c.Err)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "endpoint" {
		t.Errorf("child attrs = %v", c.Attrs)
	}
	if rt.Duration <= 0 {
		t.Errorf("root duration = %v, want > 0", rt.Duration)
	}
}

func TestTraceIDInheritedFromContext(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	ctx = WithTraceID(ctx, "rewrite-42")
	if got := TraceIDFrom(ctx); got != "rewrite-42" {
		t.Fatalf("TraceIDFrom = %q", got)
	}
	sctx, sp := StartSpan(ctx, "rewrite.mixed")
	if sp.TraceID() != "rewrite-42" {
		t.Errorf("root span trace id = %q, want rewrite-42", sp.TraceID())
	}
	if got := TraceIDFrom(sctx); got != "rewrite-42" {
		t.Errorf("TraceIDFrom inside span = %q", got)
	}
	sp.End(nil)
}

func TestStartSpanWithoutRegistryIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("expected nil span without a registry")
	}
	// all nil-span methods must be safe
	sp.SetAttr("k", "v")
	sp.End(nil)
	if sp.TraceID() != "" {
		t.Fatal("nil span has a trace id")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("no-op StartSpan stored a span in the context")
	}
}

func TestRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.record(SpanRecord{Name: fmt.Sprintf("s%d", i), Start: time.Now()})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+6); s.Name != want {
			t.Errorf("spans[%d] = %q, want %q (oldest-first)", i, s.Name, want)
		}
	}
	if got := tr.Recorded(); got != 10 {
		t.Errorf("Recorded = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	_, sp := StartSpan(ctx, "once")
	sp.End(nil)
	sp.End(errors.New("late"))
	sp.SetAttr("late", "attr")
	spans := r.Tracer().Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	if spans[0].Err != "" || len(spans[0].Attrs) != 0 {
		t.Fatalf("post-End mutation leaked: %+v", spans[0])
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
