package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFlightSlowestEviction(t *testing.T) {
	f := NewFlight(3, 2)
	for i := 1; i <= 6; i++ {
		f.Observe(FlightRecord{Path: fmt.Sprintf("/r%d", i), Duration: time.Duration(i) * time.Millisecond})
	}
	slow := f.Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest set has %d entries, want 3", len(slow))
	}
	for i, want := range []time.Duration{6, 5, 4} {
		if slow[i].Duration != want*time.Millisecond {
			t.Errorf("slowest[%d] = %v, want %v", i, slow[i].Duration, want*time.Millisecond)
		}
	}
	// Once full, requests at or below the floor are not admitted.
	if f.Admits(3*time.Millisecond, false) {
		t.Error("recorder admits a request below the slowest-set floor")
	}
	if !f.Admits(10*time.Millisecond, false) {
		t.Error("recorder rejects a request above the floor")
	}
	if !f.Admits(time.Nanosecond, true) {
		t.Error("failed requests must always be admitted")
	}
	if f.Observed() != 6 {
		t.Errorf("observed = %d, want 6", f.Observed())
	}
}

func TestFlightFailedRing(t *testing.T) {
	f := NewFlight(1, 3)
	for i := 1; i <= 5; i++ {
		f.Observe(FlightRecord{Path: fmt.Sprintf("/f%d", i), Status: 500, Failed: true})
	}
	failed := f.Failed()
	if len(failed) != 3 {
		t.Fatalf("failure ring has %d entries, want 3", len(failed))
	}
	for i, want := range []string{"/f3", "/f4", "/f5"} {
		if failed[i].Path != want {
			t.Errorf("failed[%d] = %q, want %q (oldest first)", i, failed[i].Path, want)
		}
	}
}

// TestFlightConcurrent hammers Observe and the read side from many
// goroutines; run with -race this proves the admission threshold and the
// sorted set stay consistent under concurrent eviction.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(8, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := time.Duration(g*200+i) * time.Microsecond
				if f.Admits(d, i%17 == 0) {
					f.Observe(FlightRecord{Path: "/x", Duration: d, Failed: i%17 == 0})
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = f.Slowest()
				_ = f.Failed()
				_ = f.Admits(time.Millisecond, false)
			}
		}()
	}
	wg.Wait()
	slow := f.Slowest()
	if len(slow) != 8 {
		t.Fatalf("slowest set has %d entries, want 8", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration > slow[i-1].Duration {
			t.Fatalf("slowest set out of order at %d: %v > %v", i, slow[i].Duration, slow[i-1].Duration)
		}
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlight(2, 2)
	f.Observe(FlightRecord{
		TraceID:  "deadbeef-00000001",
		Handler:  "exchange",
		Path:     "/exchange",
		Status:   200,
		Duration: 5 * time.Millisecond,
		Stages:   map[string]float64{"parse": 0.001, "invoke": 0.003},
	})
	f.Observe(FlightRecord{Path: "/bad", Status: 500, Failed: true})

	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slow", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var got struct {
		SlowCapacity int            `json:"slow_capacity"`
		Observed     uint64         `json:"observed"`
		Slowest      []FlightRecord `json:"slowest"`
		Failed       []FlightRecord `json:"failed"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.SlowCapacity != 2 || got.Observed != 2 {
		t.Errorf("capacity/observed = %d/%d", got.SlowCapacity, got.Observed)
	}
	if len(got.Slowest) == 0 || got.Slowest[0].TraceID != "deadbeef-00000001" {
		t.Errorf("slowest = %+v", got.Slowest)
	}
	if got.Slowest[0].Stages["invoke"] != 0.003 {
		t.Errorf("stages did not round-trip: %+v", got.Slowest[0].Stages)
	}
	if len(got.Failed) != 1 || got.Failed[0].Path != "/bad" {
		t.Errorf("failed = %+v", got.Failed)
	}

	var nilF *Flight
	rr = httptest.NewRecorder()
	nilF.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slow", nil))
	if rr.Code != 503 {
		t.Errorf("nil recorder status = %d, want 503", rr.Code)
	}
}

func TestStages(t *testing.T) {
	var st Stages
	st.Set(StageParse, 2*time.Millisecond)
	st.Add(StageInvoke, time.Millisecond)
	st.Add(StageInvoke, time.Millisecond)
	got := st.Seconds()
	if got["parse"] != 0.002 || got["invoke"] != 0.002 {
		t.Errorf("Seconds() = %v", got)
	}
	if _, ok := got["rewrite"]; ok {
		t.Error("unset stage must be omitted")
	}
	var nilS *Stages
	nilS.Set(StageParse, time.Second) // must not panic
	nilS.Add(StageParse, time.Second)
	if nilS.Seconds() != nil {
		t.Error("nil Stages must report nil")
	}
	st.Set(-1, time.Second) // out of range must not panic
	st.Set(numStages, time.Second)
}
