// Command axml-loadgen drives a live axmld peer with synthetic HTTP load and
// reports client-side latency distributions, optionally cross-checked against
// the peer's own /metrics histograms.
//
//	axml-loadgen -url http://127.0.0.1:8080 -mix mixed -duration 10s
//	axml-loadgen -url ... -mix all -out BENCH_load.json -check -max-non2xx 0
//	axml-loadgen -url ... -mix skewed -rate 500 -concurrency 16 -zipf 1.4
//
// The harness discovers the peer's schema over GET /wsdl, renders an identity
// exchange schema from it, installs a generated conforming document
// population under /doc/ldg-*, then runs the selected workload mix:
//
//	exchange  90% POST /exchange (safe mode), 10% GET /doc
//	mutation  40% PUT /doc, 30% DELETE /doc (worker-private keys), 30% GET /doc
//	mixed     45% exchange, 20% GET /doc, 15% PUT /doc, 10% /wsdl, 10% /stats
//	skewed    70% exchange, 30% GET /doc, documents Zipf-distributed (hot keys)
//	store     25% PUT /doc, 15% DELETE /doc, 30% GET /doc, 15% GET /docs,
//	          15% GET /docs/by-function — storage-engine churn for the
//	          disk backend's tiering and index paths
//	stream    90% POST /exchange, 10% GET /doc, recording time-to-first-byte
//	          alongside the full round trip — point it at a peer running
//	          with -stream and grow -doc-bytes (1KiB, 64KiB, 1MiB) to watch
//	          first-byte latency decouple from document size
//	replica   30% PUT probe documents, 45% read-your-writes GETs, 25%
//	          population GETs — set -write-url to the leader and -url to a
//	          follower; reads a lagging follower answers with a 404 or an
//	          older probe are tolerated and reported as stale_reads
//
// -write-url routes every mutation (including setup population PUTs) to a
// different peer than -url; the default sends everything to -url.
//
// -rate 0 (the default) runs closed-loop: each worker issues its next request
// as soon as the previous one completes. A positive -rate runs open-loop at
// that aggregate request rate, shedding (and counting) requests the workers
// cannot absorb.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"axml/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the peer under load (reads)")
	writeURL := flag.String("write-url", "", "send mutations to this peer instead of -url (replicated pairs: the leader)")
	mix := flag.String("mix", "mixed", `workload mix: exchange, mutation, mixed, skewed, store, stream, replica, or "all"`)
	duration := flag.Duration("duration", 5*time.Second, "measured duration per mix (setup excluded)")
	concurrency := flag.Int("concurrency", 8, "number of workers")
	rate := flag.Float64("rate", 0, "aggregate open-loop request rate in req/s (0 = closed loop)")
	seed := flag.Int64("seed", 1, "seed for document generation and op sequencing")
	docs := flag.Int("docs", 32, "generated document population size")
	docBytes := flag.String("doc-bytes", "0", `pad each generated document to roughly this rendered size ("64KiB", "1MiB", plain bytes; 0 = natural size)`)
	zipf := flag.Float64("zipf", 1.2, "Zipf exponent for the skewed mix (> 1)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout only)")
	check := flag.Bool("check", false, "cross-check client histograms against the peer's /metrics (requires telemetry, exclusive access)")
	maxNon2xx := flag.Int64("max-non2xx", -1, "fail if any mix sees more than this many non-2xx responses (-1 = no gate)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP client timeout")
	flag.Parse()

	targetBytes, err := parseSize(*docBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axml-loadgen: -doc-bytes:", err)
		os.Exit(2)
	}

	mixes := []string{*mix}
	if *mix == "all" {
		mixes = loadgen.Mixes
	}

	client := &http.Client{Timeout: *timeout}
	reports := make([]*loadgen.Report, 0, len(mixes))
	failed := false
	for _, m := range mixes {
		r := loadgen.New(loadgen.Config{
			BaseURL:      *url,
			WriteURL:     *writeURL,
			Mix:          m,
			Duration:     *duration,
			Concurrency:  *concurrency,
			Rate:         *rate,
			Seed:         *seed,
			Docs:         *docs,
			DocBytes:     targetBytes,
			Zipf:         *zipf,
			Client:       client,
			CheckMetrics: *check,
		})
		rep, err := r.Run(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "axml-loadgen: mix %s: %v\n", m, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		printSummary(rep)
		if *maxNon2xx >= 0 && int64(rep.Non2xx) > *maxNon2xx {
			fmt.Fprintf(os.Stderr, "axml-loadgen: mix %s: %d non-2xx responses exceed the budget of %d\n", m, rep.Non2xx, *maxNon2xx)
			failed = true
		}
		if rep.Errors > 0 {
			fmt.Fprintf(os.Stderr, "axml-loadgen: mix %s: %d transport errors\n", m, rep.Errors)
			failed = true
		}
		if *check && !rep.ChecksOK {
			for _, c := range rep.Checks {
				if !c.OK {
					fmt.Fprintf(os.Stderr, "axml-loadgen: mix %s: metrics cross-check failed for %s: %s\n", m, c.Handler, c.Reason)
				}
			}
			failed = true
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(map[string]any{"runs": reports}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "axml-loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "axml-loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("report -> %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// parseSize reads a byte count with an optional KiB/MiB suffix.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a byte count like 65536, 64KiB, or 1MiB, got %q", s)
	}
	return n * mult, nil
}

func printSummary(rep *loadgen.Report) {
	loop := "closed"
	if rep.Rate > 0 {
		loop = fmt.Sprintf("open @ %.0f rps", rep.Rate)
	}
	fmt.Printf("mix %-9s %s loop, %d workers, %.1fs: %d reqs (%.0f rps), %d non-2xx, %d errors",
		rep.Mix, loop, rep.Concurrency, rep.Duration, rep.Requests, rep.Throughput, rep.Non2xx, rep.Errors)
	if rep.Dropped > 0 {
		fmt.Printf(", %d shed", rep.Dropped)
	}
	if rep.StaleReads > 0 {
		fmt.Printf(", %d stale reads", rep.StaleReads)
	}
	fmt.Println()
	for _, h := range []string{"exchange", "exchange_ttfb", "doc", "wsdl", "stats"} {
		hs, ok := rep.Handlers[h]
		if !ok {
			continue
		}
		fmt.Printf("  %-9s %7d reqs  p50 %8.3fms  p99 %8.3fms  p999 %8.3fms\n",
			h, hs.Count, hs.P50*1000, hs.P99*1000, hs.P999*1000)
	}
	for _, c := range rep.Checks {
		status := "ok"
		if !c.OK {
			status = "FAIL: " + c.Reason
		}
		fmt.Printf("  check %-9s client=%d server=%d %s\n", c.Handler, c.ClientCount, c.ServerCount, status)
	}
}
