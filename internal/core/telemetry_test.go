package core

import (
	"context"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/telemetry"
)

// telemetryRewriter builds a fully instrumented rewriter over the Figure 2
// fixture and a fresh registry.
func telemetryRewriter(t *testing.T, inv Invoker) (*Rewriter, *telemetry.Registry) {
	t.Helper()
	sender := schema.MustParseText(senderText, nil)
	target := targetSchema(t, sender, "title.date.temp.(TimeOut|exhibit*)")
	reg := telemetry.NewRegistry()
	rw := NewRewriterWithConfig(sender, target, RewriterConfig{
		Invoker:   inv,
		Telemetry: reg,
	})
	return rw, reg
}

func TestRewriteTelemetry(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
	}
	rw, reg := telemetryRewriter(t, inv)
	if _, err := rw.RewriteDocument(fig2doc(), Safe); err != nil {
		t.Fatal(err)
	}

	mustValue := func(name string, labels ...string) float64 {
		t.Helper()
		v, ok := reg.Value(name, labels...)
		if !ok {
			t.Fatalf("series %s %v not registered", name, labels)
		}
		return v
	}
	if v := mustValue("axml_rewrites_total", "mode", "safe"); v != 1 {
		t.Errorf("rewrites_total = %v, want 1", v)
	}
	if v := mustValue("axml_rewrite_seconds", "mode", "safe"); v != 1 {
		t.Errorf("rewrite_seconds count = %v, want 1", v)
	}
	if v := mustValue("axml_word_decisions_total", "decision", "invoke"); v != 1 {
		t.Errorf("invoke decisions = %v, want 1 (Get_Temp)", v)
	}
	if v := mustValue("axml_word_decisions_total", "decision", "keep"); v < 1 {
		t.Errorf("keep decisions = %v, want >= 1 (TimeOut kept)", v)
	}
	if v := mustValue("axml_invoke_seconds", "endpoint", "Get_Temp"); v != 1 {
		t.Errorf("invoke latency observations = %v, want 1", v)
	}
	if v := mustValue("axml_word_verdicts_total", "engine", "eager", "mode", "safe"); v < 1 {
		t.Errorf("word verdicts = %v, want >= 1", v)
	}
	if v := mustValue("axml_automaton_states", "kind", "fork"); v < 1 {
		t.Errorf("fork size observations = %v, want >= 1", v)
	}
	// pre-registered but untouched series are visible at zero
	if v := mustValue("axml_invoke_retries_total"); v != 0 {
		t.Errorf("retries = %v, want 0", v)
	}
	if v := mustValue("axml_rewrites_total", "mode", "possible"); v != 0 {
		t.Errorf("possible rewrites = %v, want 0", v)
	}
}

// TestRewriteIDStampsAuditAndSpans pins the audit/trace correlation: one
// generated ID per top-level rewrite, present on call records, policy
// events and the root span's trace ID.
func TestRewriteIDStampsAuditAndSpans(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
	}
	rw, reg := telemetryRewriter(t, inv)
	ctx := telemetry.WithTraceID(context.Background(), "rw-test-1")
	if _, err := rw.RewriteDocumentContext(ctx, fig2doc(), Safe); err != nil {
		t.Fatal(err)
	}
	calls := rw.Audit.Calls()
	if len(calls) != 1 || calls[0].Rewrite != "rw-test-1" {
		t.Fatalf("call records not stamped: %+v", calls)
	}
	var root *telemetry.SpanRecord
	for i, s := range reg.Tracer().Spans() {
		if s.Name == "rewrite.safe" {
			root = &reg.Tracer().Spans()[i]
		}
	}
	if root == nil {
		t.Fatal("no rewrite.safe span recorded")
	}
	if root.TraceID != "rw-test-1" {
		t.Errorf("span trace id = %q, want rw-test-1", root.TraceID)
	}
	var sawInvoke bool
	for _, s := range reg.Tracer().Spans() {
		if s.Name == "invoke.Get_Temp" {
			sawInvoke = true
			if s.TraceID != "rw-test-1" || s.ParentID == "" {
				t.Errorf("invoke span not linked: %+v", s)
			}
		}
	}
	if !sawInvoke {
		t.Error("no invoke.Get_Temp span recorded")
	}
}

// TestRewriteIDWithoutTelemetry: the ID machinery works with no registry
// configured — `axml rewrite -v` relies on this.
func TestRewriteIDWithoutTelemetry(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
	}
	rw := paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", inv)
	ctx := telemetry.WithTraceID(context.Background(), "rw-plain")
	if _, err := rw.RewriteDocumentContext(ctx, fig2doc(), Safe); err != nil {
		t.Fatal(err)
	}
	calls := rw.Audit.Calls()
	if len(calls) != 1 || calls[0].Rewrite != "rw-plain" {
		t.Fatalf("call records not stamped without telemetry: %+v", calls)
	}
}

// TestEventBridge drives a failing invoker in possible mode and checks the
// degraded policy event reaches both the audit (stamped) and the counters.
func TestEventBridge(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": func(*doc.Node) ([]*doc.Node, error) {
			return nil, transientStub{}
		},
		"TimeOut": ret(doc.Elem("exhibit", doc.Elem("title", doc.TextNode("expo")),
			doc.Elem("date", doc.TextNode("05/10/2002")))),
	}
	sender := schema.MustParseText(senderText, nil)
	// The target requires temp, so possible mode must invoke Get_Temp; the
	// transient failure degrades to a frozen occurrence and the rewriting
	// ultimately fails — with the degradation on record.
	target := targetSchema(t, sender, "title.date.temp.(TimeOut|exhibit*)")
	reg := telemetry.NewRegistry()
	rw := NewRewriterWithConfig(sender, target, RewriterConfig{
		Invoker:   inv,
		Telemetry: reg,
	})
	if _, err := rw.RewriteDocument(fig2doc(), Possible); err == nil {
		t.Fatal("expected the degraded rewriting to fail")
	}
	if v, _ := reg.Value("axml_invoke_degraded_total"); v != 1 {
		t.Errorf("degraded counter = %v, want 1", v)
	}
	events := rw.Audit.Events()
	var found bool
	for _, e := range events {
		if e.Kind == EventDegraded {
			found = true
			if e.Rewrite == "" {
				t.Error("degraded event not stamped with a rewrite id")
			}
		}
	}
	if !found {
		t.Fatalf("no degraded event in audit: %+v", events)
	}
}

type transientStub struct{}

func (transientStub) Error() string       { return "transient stub failure" }
func (transientStub) TransientCall() bool { return true }

// TestParallelTelemetrySingleCounting: at degree 4 the slot buffers replay
// through the stamping sink exactly once, so bridged counters match the
// sequential run.
func TestParallelTelemetrySingleCounting(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		"Get_Date": ret(doc.Elem("date", doc.TextNode("04/10/2002"))),
	}
	sender := schema.MustParseText(senderText, nil)
	target := targetSchema(t, sender, "title.date.temp.(TimeOut|exhibit*)")
	reg := telemetry.NewRegistry()
	rw := NewRewriterWithConfig(sender, target, RewriterConfig{
		Invoker:     inv,
		Telemetry:   reg,
		Parallelism: 4,
	})
	if _, err := rw.RewriteDocument(fig2doc(), Safe); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("axml_rewrites_total", "mode", "safe"); v != 1 {
		t.Errorf("rewrites = %v, want 1", v)
	}
	if v, _ := reg.Value("axml_invoke_seconds", "endpoint", "Get_Temp"); v != 1 {
		t.Errorf("Get_Temp latency observations = %v, want exactly 1", v)
	}
	calls := rw.Audit.Calls()
	if len(calls) != 1 || calls[0].Rewrite == "" {
		t.Fatalf("parallel call records not stamped: %+v", calls)
	}
}

// TestInstrumentsNilSafety: a nil *Instruments is inert on every path.
func TestInstrumentsNilSafety(t *testing.T) {
	var ins *Instruments
	ins.countKeep()
	ins.countInvoke()
	ins.countDefer()
	ins.countBacktrack()
	ins.taskStart(true)
	ins.taskEnd()
	ins.round(phaseWord, 3)
	ins.observeWordVerdict(Lazy, Possible)
	ins.observeWordAnalysis(Eager, Safe, 0)
	ins.observeLazy(nil)
	ins.observeRewrite(Mixed, 0, nil, "")
	ins.observeEvent(InvokeEvent{Kind: EventTimeout})
	if ins.endpoint("x") != nil {
		t.Fatal("nil instruments returned live handles")
	}
	if ins.Registry() != nil {
		t.Fatal("nil instruments returned a registry")
	}
}

// TestCompiledCacheInstrument: the cache registers scrape-time series and
// pushes instruments onto resident and future Compileds.
func TestCompiledCacheInstrument(t *testing.T) {
	sender := schema.MustParseText(senderText, nil)
	target := targetSchema(t, sender, "title.date.temp.(TimeOut|exhibit*)")
	cc := NewCompiledCache(8)
	resident := cc.Get(sender, target) // compiled before instrumentation
	reg := telemetry.NewRegistry()
	cc.Instrument(reg)
	if resident.instruments() == nil {
		t.Fatal("resident Compiled not instrumented")
	}
	cc.Get(sender, target) // hit
	if v, _ := reg.Value("axml_compile_cache_hits_total"); v != 1 {
		t.Errorf("compile cache hits = %v, want 1", v)
	}
	if v, _ := reg.Value("axml_compile_cache_misses_total"); v != 1 {
		t.Errorf("compile cache misses = %v, want 1", v)
	}
	if v, _ := reg.Value("axml_compile_cache_entries"); v != 1 {
		t.Errorf("compile cache entries = %v, want 1", v)
	}
	// a different pair compiled after instrumentation is timed and wired
	target2 := targetSchema(t, sender, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	c2 := cc.Get(sender, target2)
	if c2.instruments() == nil {
		t.Fatal("newly compiled entry not instrumented")
	}
	if v, _ := reg.Value("axml_compile_seconds"); v != 1 {
		t.Errorf("compile_seconds observations = %v, want 1", v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, sentinel := range []string{
		"axml_compile_cache_hits_total 1",
		"axml_word_cache_hits_total",
		"axml_compile_seconds_count 1",
	} {
		if !strings.Contains(b.String(), sentinel) {
			t.Errorf("exposition missing %q", sentinel)
		}
	}
}
