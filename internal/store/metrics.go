package store

import (
	"fmt"
	"time"

	"axml/internal/telemetry"
)

// Metrics bundles the storage engine's telemetry series. All counters are
// registered eagerly so the series appear on /metrics from boot (at zero);
// a nil *Metrics no-ops, keeping uninstrumented stores free of telemetry
// branches.
//
// Series (see DESIGN.md §11 for the catalogue):
//
//	axml_store_put_seconds        histogram  Put latency (serialize + atomic write + index)
//	axml_store_get_seconds        histogram  Get latency (hit or fault)
//	axml_store_fault_seconds      histogram  cold-read latency (file read + parse)
//	axml_store_hot_hits_total     counter    reads served from the hot cache
//	axml_store_faults_total       counter    lazy faults from disk
//	axml_store_evictions_total    counter    hot-cache evictions
//	axml_store_deletes_total      counter    document deletions
//	axml_store_index_queries_total counter   DocsWithFunction lookups
//	axml_store_index_repairs_total counter   index entries rebuilt at Open
//	axml_store_index_flushes_total counter   debounced shard-index writes
//	axml_store_documents          gauge(fn)  stored documents
//	axml_store_hot_cached         gauge(fn)  hot-cache population
//	axml_store_shard_documents    gauge(fn)  per-shard document counts {shard}
type Metrics struct {
	reg *telemetry.Registry

	putSeconds   *telemetry.Histogram
	getSeconds   *telemetry.Histogram
	faultSeconds *telemetry.Histogram

	hits         *telemetry.Counter
	faults       *telemetry.Counter
	evictions    *telemetry.Counter
	deletes      *telemetry.Counter
	indexQueries *telemetry.Counter
	indexRepairs *telemetry.Counter
	indexFlushes *telemetry.Counter
}

// NewMetrics registers the store series against reg; nil in, nil out.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg:          reg,
		putSeconds:   reg.Histogram("axml_store_put_seconds", nil),
		getSeconds:   reg.Histogram("axml_store_get_seconds", nil),
		faultSeconds: reg.Histogram("axml_store_fault_seconds", nil),
		hits:         reg.Counter("axml_store_hot_hits_total"),
		faults:       reg.Counter("axml_store_faults_total"),
		evictions:    reg.Counter("axml_store_evictions_total"),
		deletes:      reg.Counter("axml_store_deletes_total"),
		indexQueries: reg.Counter("axml_store_index_queries_total"),
		indexRepairs: reg.Counter("axml_store_index_repairs_total"),
		indexFlushes: reg.Counter("axml_store_index_flushes_total"),
	}
}

// registerDisk wires the scrape-time gauges over a live Disk: document and
// hot-cache population plus one labeled series per shard directory.
func (m *Metrics) registerDisk(d *Disk) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("axml_store_documents", func() float64 {
		return float64(d.Len())
	})
	m.reg.GaugeFunc("axml_store_hot_cached", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.hot.len())
	})
	for i := 0; i < d.shards; i++ {
		shard := i
		m.reg.GaugeFunc("axml_store_shard_documents", func() float64 {
			return float64(d.ShardSizes()[shard])
		}, "shard", fmt.Sprintf("%02x", shard))
	}
}

func (m *Metrics) observePut(d time.Duration) {
	if m == nil {
		return
	}
	m.putSeconds.Observe(d.Seconds())
}

func (m *Metrics) observeGet(d time.Duration) {
	if m == nil {
		return
	}
	m.getSeconds.Observe(d.Seconds())
}

func (m *Metrics) observeHit() {
	if m == nil {
		return
	}
	m.hits.Inc()
}

func (m *Metrics) observeFault(d time.Duration) {
	if m == nil {
		return
	}
	m.faults.Inc()
	m.faultSeconds.Observe(d.Seconds())
}

func (m *Metrics) observeEvictions(n int) {
	if m == nil {
		return
	}
	m.evictions.Add(uint64(n))
}

func (m *Metrics) observeDelete() {
	if m == nil {
		return
	}
	m.deletes.Inc()
}

func (m *Metrics) observeIndexQuery() {
	if m == nil {
		return
	}
	m.indexQueries.Inc()
}

func (m *Metrics) observeIndexRepair() {
	if m == nil {
		return
	}
	m.indexRepairs.Inc()
}

func (m *Metrics) observeIndexFlush() {
	if m == nil {
		return
	}
	m.indexFlushes.Inc()
}
