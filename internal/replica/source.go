// Package replica implements WAL-shipping replication between axml peers:
// a leader exposes its durable repository's log tail over HTTP and a
// follower applies it through the ordinary store.DocStore interface,
// serving hot-standby reads while the leader remains the single writer.
//
// The wire format is the WAL's own CRC-framed record encoding
// (wal.EncodeFrame / wal.FrameReader), so every byte a follower applies has
// passed the same checksum discipline the on-disk log uses — the transport
// is not trusted to deliver frames intact.
//
// Protocol:
//
//	GET /replica/snapshot
//	    Full-state bootstrap. Headers carry the leader epoch and the WAL
//	    sequence the capture is consistent with; the body is one OpPut
//	    frame per document. A follower resuming from this capture streams
//	    from exactly that sequence.
//
//	GET /replica/stream?after=<seq>&epoch=<epoch>&wait=<dur>
//	    Long-poll tail read. 200 returns frames for sequences after+1..N
//	    (contiguous — the follower numbers them by position, no per-frame
//	    sequence is shipped); 204 means caught up (poll again); 410 Gone
//	    means the position was evicted from the tail or the epoch does not
//	    match (leader restarted): re-bootstrap from /snapshot.
//
// Sequences are process-lifetime (wal.SeqRecord), so the epoch — minted at
// Source construction — is what makes resumption safe across leader
// restarts: a stale follower can never silently apply a new incarnation's
// records at an old offset.
package replica

import (
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/wal"
)

// Wire headers shared by both replication endpoints.
const (
	// HeaderEpoch carries the leader's boot epoch; a follower echoes it on
	// stream requests and treats any mismatch as a restart.
	HeaderEpoch = "X-Axml-Replica-Epoch"
	// HeaderHead carries the leader's current WAL head sequence, letting a
	// follower compute replication lag without an extra round trip.
	HeaderHead = "X-Axml-Replica-Head"
)

const (
	// DefaultWait bounds how long /replica/stream holds an empty long-poll
	// before answering 204.
	DefaultWait = 25 * time.Second
	// DefaultMaxBatch bounds the records returned by one stream response.
	DefaultMaxBatch = 512
)

// Source is the leader side: it serves snapshot bootstraps and long-poll
// tail reads from a DurableRepository opened with a replica tail
// (store.DurableOptions.TailRecords > 0).
type Source struct {
	repo     *store.DurableRepository
	epoch    string
	wait     time.Duration
	maxBatch int

	snapshots atomic.Uint64 // bootstraps served
	batches   atomic.Uint64 // non-empty stream responses
	gone      atomic.Uint64 // 410s issued (gap or epoch mismatch)
}

// NewSource builds a replication source over repo, minting a fresh epoch.
// reg, when non-nil, registers the leader-side axml_replica_* metrics.
func NewSource(repo *store.DurableRepository, reg *telemetry.Registry) *Source {
	s := &Source{
		repo:     repo,
		epoch:    telemetry.NewID(),
		wait:     DefaultWait,
		maxBatch: DefaultMaxBatch,
	}
	if reg != nil {
		reg.CounterFunc("axml_replica_snapshots_served_total", func() float64 {
			return float64(s.snapshots.Load())
		})
		reg.CounterFunc("axml_replica_stream_batches_total", func() float64 {
			return float64(s.batches.Load())
		})
		reg.CounterFunc("axml_replica_gone_total", func() float64 {
			return float64(s.gone.Load())
		})
	}
	return s
}

// Epoch returns the source's boot epoch.
func (s *Source) Epoch() string { return s.epoch }

// Handler returns the replication endpoints rooted at / — mount it under
// /replica/ with http.StripPrefix.
func (s *Source) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stream", s.handleStream)
	return mux
}

func (s *Source) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	docs, seq, err := s.repo.ExportState()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		buf = wal.EncodeFrame(buf, wal.Record{Op: wal.OpPut, Name: name, Data: docs[name]})
	}
	s.snapshots.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderEpoch, s.epoch)
	w.Header().Set(HeaderHead, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	_, _ = w.Write(buf)
}

func (s *Source) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, err := strconv.ParseUint(q.Get("after"), 10, 64)
	if err != nil {
		http.Error(w, "replica: bad after parameter", http.StatusBadRequest)
		return
	}
	if epoch := q.Get("epoch"); epoch != s.epoch {
		// Covers both a stale follower (old epoch) and a missing epoch:
		// resumption without epoch agreement is never safe.
		s.gone.Add(1)
		w.Header().Set(HeaderEpoch, s.epoch)
		http.Error(w, "replica: epoch mismatch, bootstrap from /replica/snapshot", http.StatusGone)
		return
	}
	wait := s.wait
	if v := q.Get("wait"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 && d < wait {
			wait = d
		}
	}
	log := s.repo.WAL()
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		// Arm the notification before reading: an append landing between
		// the two wakes the select instead of being missed.
		notify := log.AppendNotify()
		recs, gap := log.ReadAfter(after, s.maxBatch)
		if gap {
			s.gone.Add(1)
			w.Header().Set(HeaderEpoch, s.epoch)
			http.Error(w, "replica: position evicted, bootstrap from /replica/snapshot", http.StatusGone)
			return
		}
		if len(recs) > 0 {
			var buf []byte
			for _, rec := range recs {
				buf = wal.EncodeFrame(buf, rec.Record)
			}
			s.batches.Add(1)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set(HeaderEpoch, s.epoch)
			w.Header().Set(HeaderHead, strconv.FormatUint(log.HeadSeq(), 10))
			w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
			_, _ = w.Write(buf)
			return
		}
		select {
		case <-notify:
		case <-deadline.C:
			w.Header().Set(HeaderEpoch, s.epoch)
			w.Header().Set(HeaderHead, strconv.FormatUint(log.HeadSeq(), 10))
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// SourceStats is the leader-side replication report exposed under /stats.
type SourceStats struct {
	Role            string `json:"role"`
	Epoch           string `json:"epoch"`
	HeadSeq         uint64 `json:"head_seq"`
	SnapshotsServed uint64 `json:"snapshots_served"`
	StreamBatches   uint64 `json:"stream_batches"`
	Gone            uint64 `json:"gone"`
}

// Stats reports the source's current state.
func (s *Source) Stats() SourceStats {
	return SourceStats{
		Role:            "leader",
		Epoch:           s.epoch,
		HeadSeq:         s.repo.WAL().HeadSeq(),
		SnapshotsServed: s.snapshots.Load(),
		StreamBatches:   s.batches.Load(),
		Gone:            s.gone.Load(),
	}
}
