package doc

import (
	"strings"
	"testing"
)

// newspaper builds the intensional document of Figure 2.a of the paper.
func newspaper() *Node {
	return Elem("newspaper",
		Elem("title", TextNode("The Sun")),
		Elem("date", TextNode("04/10/2002")),
		Call("Get_Temp", Elem("city", TextNode("Paris"))),
		Call("TimeOut", TextNode("exhibits")),
	)
}

func TestConstructorsAndKinds(t *testing.T) {
	n := newspaper()
	if n.Kind != Element || n.Label != "newspaper" {
		t.Fatalf("root wrong: %v %q", n.Kind, n.Label)
	}
	if len(n.Children) != 4 {
		t.Fatalf("children = %d want 4", len(n.Children))
	}
	if n.Children[2].Kind != Func || n.Children[2].Label != "Get_Temp" {
		t.Error("Get_Temp call wrong")
	}
	if n.Children[0].Children[0].Kind != Text {
		t.Error("title text wrong")
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Error("unknown Kind String")
	}
	if Element.String() != "element" || Text.String() != "text" || Func.String() != "func" {
		t.Error("Kind strings wrong")
	}
}

func TestCallAt(t *testing.T) {
	ref := ServiceRef{Endpoint: "http://forecast.example/soap", Method: "Get_Temp", Namespace: "urn:weather"}
	n := CallAt(ref, Elem("city"))
	if n.Label != "Get_Temp" || n.Service == nil || n.Service.Endpoint != ref.Endpoint {
		t.Error("CallAt did not record the service reference")
	}
	// The ref must be copied, not aliased.
	ref.Endpoint = "changed"
	if n.Service.Endpoint == "changed" {
		t.Error("CallAt aliased its argument")
	}
}

func TestCloneAndEqual(t *testing.T) {
	n := newspaper()
	c := n.Clone()
	if !n.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Children[0].Children[0].Value = "The Moon"
	if n.Equal(c) {
		t.Fatal("mutating clone affected equality — aliasing bug")
	}
	if n.Children[0].Children[0].Value != "The Sun" {
		t.Fatal("clone aliased original")
	}
	var nilNode *Node
	if nilNode.Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
	if !nilNode.Equal(nil) || nilNode.Equal(n) {
		t.Error("nil equality wrong")
	}
}

func TestEqualService(t *testing.T) {
	a := CallAt(ServiceRef{Method: "f", Endpoint: "x"})
	b := CallAt(ServiceRef{Method: "f", Endpoint: "y"})
	c := Call("f")
	if a.Equal(b) {
		t.Error("different endpoints should not be equal")
	}
	if a.Equal(c) || c.Equal(a) {
		t.Error("service vs no-service should not be equal")
	}
}

func TestWalkAndCounts(t *testing.T) {
	n := newspaper()
	if got := n.Count(); got != 10 {
		t.Errorf("Count = %d want 10", got)
	}
	if got := n.CountFuncs(); got != 2 {
		t.Errorf("CountFuncs = %d want 2", got)
	}
	if !n.HasFuncs() {
		t.Error("HasFuncs should be true")
	}
	if Elem("a", TextNode("x")).HasFuncs() {
		t.Error("HasFuncs false positive")
	}
	// Prune: stop below the root.
	visited := 0
	n.Walk(func(m *Node) bool { visited++; return m == n })
	if visited != 5 {
		t.Errorf("pruned walk visited %d want 5 (root + 4 children)", visited)
	}
}

func TestChildLabels(t *testing.T) {
	n := newspaper()
	got := n.ChildLabels()
	want := []string{"title", "date", "Get_Temp", "TimeOut"}
	if len(got) != len(want) {
		t.Fatalf("ChildLabels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChildLabels = %v want %v", got, want)
		}
	}
	// Text children are skipped.
	mixed := Elem("x", TextNode("data"), Elem("a"))
	if labels := mixed.ChildLabels(); len(labels) != 1 || labels[0] != "a" {
		t.Errorf("ChildLabels with text = %v", labels)
	}
}

func TestOutermostFuncs(t *testing.T) {
	inner := Call("inner")
	outer := Call("outer", Elem("param", inner))
	root := Elem("root", outer, Call("sibling"), Elem("wrap", Call("nested")))
	got := OutermostFuncs([]*Node{root})
	if len(got) != 3 {
		t.Fatalf("OutermostFuncs = %d want 3", len(got))
	}
	for _, f := range got {
		if f == inner {
			t.Error("inner call (a parameter) reported as outermost")
		}
	}
}

func TestFuncsBottomUp(t *testing.T) {
	inner := Call("inner")
	outer := Call("outer", Elem("param", inner))
	root := Elem("root", outer)
	got := FuncsBottomUp(root)
	if len(got) != 2 {
		t.Fatalf("FuncsBottomUp = %d want 2", len(got))
	}
	if got[0] != inner || got[1] != outer {
		t.Error("bottom-up order wrong: inner must come before outer")
	}
}

func TestReplaceChild(t *testing.T) {
	n := newspaper()
	temp := Elem("temp", TextNode("15"))
	if err := n.ReplaceChild(2, []*Node{temp}); err != nil {
		t.Fatal(err)
	}
	labels := n.ChildLabels()
	if labels[2] != "temp" {
		t.Errorf("splice failed: %v", labels)
	}
	// Replace by a forest of two nodes.
	if err := n.ReplaceChild(3, []*Node{Elem("exhibit"), Elem("exhibit")}); err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 5 {
		t.Errorf("children after forest splice = %d want 5", len(n.Children))
	}
	// Replace by nothing (function returning the empty forest).
	if err := n.ReplaceChild(4, nil); err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 4 {
		t.Errorf("children after empty splice = %d want 4", len(n.Children))
	}
	if err := n.ReplaceChild(99, nil); err == nil {
		t.Error("out-of-range splice should error")
	}
	if err := n.ReplaceChild(-1, nil); err == nil {
		t.Error("negative splice should error")
	}
}

func TestIndexOfChild(t *testing.T) {
	n := newspaper()
	if got := n.IndexOfChild(n.Children[2]); got != 2 {
		t.Errorf("IndexOfChild = %d want 2", got)
	}
	if got := n.IndexOfChild(Elem("stranger")); got != -1 {
		t.Errorf("IndexOfChild of stranger = %d want -1", got)
	}
}

func TestCloneForest(t *testing.T) {
	forest := []*Node{Elem("a"), Call("f")}
	c := CloneForest(forest)
	if len(c) != 2 || !c[0].Equal(forest[0]) || !c[1].Equal(forest[1]) {
		t.Fatal("CloneForest wrong")
	}
	c[0].Label = "mutated"
	if forest[0].Label != "a" {
		t.Error("CloneForest aliased")
	}
}

func TestString(t *testing.T) {
	s := newspaper().String()
	for _, want := range []string{"<newspaper>", "@Get_Temp()", `"Paris"`, "<city>"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
	fs := ForestString([]*Node{Elem("a"), Elem("b")})
	if !strings.Contains(fs, "<a>") || !strings.Contains(fs, "<b>") {
		t.Error("ForestString wrong")
	}
}
