package regex

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the compact textual syntax used throughout the paper and this
// repository and interns all names into t. The grammar:
//
//	alt    := cat ('|' cat)*
//	cat    := rep ('.' rep)*
//	rep    := atom ('*' | '+' | '?' | '{' n (',' (n | ""))? '}')*
//	atom   := name | '(' alt ')' | '()' | '~' | '~!(' name ('|' name)* ')'
//	name   := [letter or '_'] [letter, digit, '_', '-', ':']*
//
// '()' is ε, '~' is the any-symbol wildcard, '~!(a|b)' matches any symbol
// except a and b. Whitespace is insignificant. Examples:
//
//	title.date.(Get_Temp|temp).(TimeOut|exhibit*)
//	section{1,3}.appendix?
func Parse(t *Table, src string) (*Regex, error) {
	p := &parser{t: t, src: src}
	r, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q", rune(p.src[p.pos]))
	}
	return r, nil
}

// MustParse is Parse but panics on error; intended for tests and
// package-level example setup.
func MustParse(t *Table, src string) *Regex {
	r, err := Parse(t, src)
	if err != nil {
		panic(err)
	}
	return r
}

type parser struct {
	t   *Table
	src string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("regex: parse %q at offset %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) alt() (*Regex, error) {
	first, err := p.cat()
	if err != nil {
		return nil, err
	}
	parts := []*Regex{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.cat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return Alt(parts...), nil
}

func (p *parser) cat() (*Regex, error) {
	first, err := p.rep()
	if err != nil {
		return nil, err
	}
	parts := []*Regex{first}
	for {
		p.skipSpace()
		if p.peek() != '.' {
			break
		}
		p.pos++
		next, err := p.rep()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return Concat(parts...), nil
}

func (p *parser) rep() (*Regex, error) {
	r, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			r = Star(r)
		case '+':
			p.pos++
			r = Plus(r)
		case '?':
			p.pos++
			r = Opt(r)
		case '{':
			p.pos++
			min, max, err := p.bounds()
			if err != nil {
				return nil, err
			}
			r = Repeat(r, min, max)
		default:
			return r, nil
		}
	}
}

func (p *parser) bounds() (min, max int, err error) {
	min, err = p.number()
	if err != nil {
		return 0, 0, err
	}
	p.skipSpace()
	switch p.peek() {
	case '}':
		p.pos++
		return min, min, nil
	case ',':
		p.pos++
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			return min, Unbounded, nil
		}
		max, err = p.number()
		if err != nil {
			return 0, 0, err
		}
		p.skipSpace()
		if p.peek() != '}' {
			return 0, 0, p.errorf("expected '}' after repetition bounds")
		}
		p.pos++
		if max < min {
			return 0, 0, p.errorf("repetition upper bound %d below lower bound %d", max, min)
		}
		return min, max, nil
	default:
		return 0, 0, p.errorf("expected ',' or '}' in repetition bounds")
	}
}

func (p *parser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errorf("expected number")
	}
	return strconv.Atoi(p.src[start:p.pos])
}

func (p *parser) atom() (*Regex, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		p.skipSpace()
		if p.peek() == ')' { // '()' is ε
			p.pos++
			return Empty(), nil
		}
		r, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errorf("missing ')'")
		}
		p.pos++
		return r, nil
	case c == '~':
		p.pos++
		if p.pos+1 < len(p.src) && p.src[p.pos] == '!' && p.src[p.pos+1] == '(' {
			p.pos += 2
			var syms []Symbol
			for {
				name, err := p.name()
				if err != nil {
					return nil, err
				}
				syms = append(syms, p.t.Intern(name))
				p.skipSpace()
				switch p.peek() {
				case '|':
					p.pos++
				case ')':
					p.pos++
					return ClassOf(NewClass(true, syms...)), nil
				default:
					return nil, p.errorf("expected '|' or ')' in exclusion class")
				}
			}
		}
		return Any(), nil
	case isNameStart(rune(c)):
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		return Sym(p.t.Intern(name)), nil
	case c == 0:
		return nil, p.errorf("unexpected end of expression")
	default:
		return nil, p.errorf("unexpected %q", rune(c))
	}
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isNameStart(rune(p.src[p.pos])) {
		return "", p.errorf("expected name")
	}
	p.pos++
	for p.pos < len(p.src) && isNameRune(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameRune(r rune) bool {
	return r == '_' || r == '-' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// String renders r in the textual syntax accepted by Parse, resolving symbol
// names through t.
func (r *Regex) String(t *Table) string {
	var b strings.Builder
	r.write(&b, t, precAlt)
	return b.String()
}

const (
	precAlt = iota
	precCat
	precRep
)

func (r *Regex) write(b *strings.Builder, t *Table, prec int) {
	switch r.Op {
	case OpNever:
		b.WriteString("~!()") // unreachable through Parse; printed for debugging
		// A cleaner spelling does not exist in the surface syntax: ∅ only
		// arises through the API.
	case OpEmpty:
		b.WriteString("()")
	case OpSym:
		b.WriteString(t.Name(r.Sym))
	case OpClass:
		b.WriteString(r.Cls.String(t))
	case OpConcat:
		if prec > precCat {
			b.WriteByte('(')
		}
		for i, s := range r.Subs {
			if i > 0 {
				b.WriteByte('.')
			}
			s.write(b, t, precCat+1)
		}
		if prec > precCat {
			b.WriteByte(')')
		}
	case OpAlt:
		// Render r? sugar when ε is a branch and exactly one other branch
		// exists; otherwise a plain alternation.
		if prec > precAlt {
			b.WriteByte('(')
		}
		for i, s := range r.Subs {
			if i > 0 {
				b.WriteByte('|')
			}
			s.write(b, t, precCat)
		}
		if prec > precAlt {
			b.WriteByte(')')
		}
	case OpStar:
		r.Subs[0].write(b, t, precRep)
		b.WriteByte('*')
	}
}
