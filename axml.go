// Package axml is a Go implementation of intensional XML data exchange, as
// described in Milo, Abiteboul, Amann, Benjelloun and Dang Ngoc, "Exchanging
// Intensional XML Data" (SIGMOD 2003) — the schema-enforcement core of the
// Active XML system.
//
// An intensional document is an XML tree in which some subtrees are
// *function nodes*: embedded calls to Web services that can be materialized
// (invoked and replaced by their results) either by the sender or by the
// receiver of the document. Exchange schemas — DTD-like or XML Schema_int —
// state which parts must arrive materialized and which may stay intensional.
// This package decides and executes the rewritings:
//
//   - safe rewriting (Section 4 of the paper): succeed for *every* possible
//     service answer, decided before any call is made;
//   - possible rewriting (Section 5): succeed for *some* answer, executed
//     with backtracking;
//   - mixed rewriting: speculatively invoke cheap, side-effect-free calls,
//     then require safety;
//   - schema compatibility (Section 6): will *every* document of one schema
//     safely rewrite into another?
//
// # Quick start
//
//	sender := axml.MustParseSchemaText(`
//	    root newspaper
//	    elem newspaper = title.(Get_Temp|temp)
//	    elem title = data
//	    elem temp = data
//	    elem city = data
//	    func Get_Temp = city -> temp
//	`)
//	target := axml.MustParseSchemaTextShared(sender, `
//	    root newspaper
//	    elem newspaper = title.temp
//	    elem title = data
//	    elem temp = data
//	    elem city = data
//	    func Get_Temp = city -> temp
//	`)
//	rw := axml.NewRewriter(sender, target, 2, myInvoker)
//	materialized, err := rw.RewriteDocument(docRoot, axml.Safe)
//
// The subpackage structure mirrors the system inventory of DESIGN.md; this
// package re-exports the types a downstream application needs, so that the
// internal packages can evolve freely.
package axml

import (
	"io"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/invoke"
	"axml/internal/peer"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/telemetry/obslog"
	"axml/internal/wal"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

// Core data-model types.
type (
	// Node is one node of an intensional document tree.
	Node = doc.Node
	// ServiceRef locates the Web service behind a function node.
	ServiceRef = doc.ServiceRef
	// Schema is an intensional document schema (labels, functions,
	// function patterns).
	Schema = schema.Schema
	// Predicate guards function patterns.
	Predicate = schema.Predicate
	// Rewriter drives safe/possible/mixed rewriting of documents.
	Rewriter = core.Rewriter
	// Mode selects the rewriting discipline.
	Mode = core.Mode
	// Invoker performs service calls for the rewriter. Invoke takes the
	// rewriting's context; cancelling it aborts the call.
	Invoker = core.Invoker
	// InvokerFunc adapts a context-free function to Invoker (the context is
	// still consulted for cancellation before each call).
	InvokerFunc = core.InvokerFunc
	// ContextInvokerFunc adapts a context-aware function to Invoker.
	ContextInvokerFunc = core.ContextInvokerFunc
	// LegacyInvoker is the pre-context Invoker shape; adapt with Legacy.
	LegacyInvoker = core.LegacyInvoker
	// Audit records the invocation trail of a rewriting, including policy
	// events (attempts, retries, breaker transitions, degradations).
	Audit = core.Audit
	// RewriterConfig configures NewRewriterWithConfig: depth bound, invoker,
	// invocation policies, converters, audit sink, validation switches and
	// the parallel materialization degree (Parallelism; 1 = sequential).
	RewriterConfig = core.RewriterConfig
	// InvokePolicy wraps an Invoker with cross-cutting behavior (timeout,
	// retry, circuit breaking, concurrency limiting, fault injection).
	InvokePolicy = core.InvokePolicy
	// InvokeEvent is one policy-layer event recorded in the Audit.
	InvokeEvent = core.InvokeEvent
	// RetryPolicy parameterizes WithRetry.
	RetryPolicy = invoke.Retry
	// BreakerPolicy parameterizes WithBreaker.
	BreakerPolicy = invoke.Breaker
	// PolicyError is the error policies report on exhaustion/rejection; it is
	// classified transient, so Possible-mode rewritings degrade instead of
	// aborting.
	PolicyError = invoke.PolicyError
	// FaultInjector is a deterministic fault-injecting Invoker for tests.
	FaultInjector = invoke.FaultInjector
	// Fault is one scheduled fault for a FaultInjector.
	Fault = invoke.Fault
	// FaultKind classifies injected faults.
	FaultKind = invoke.FaultKind
	// SchemaReport is the outcome of a schema-compatibility check.
	SchemaReport = core.SchemaRewriteReport
	// Converter restructures non-conforming service results (the paper's
	// "automatic converters" extension).
	Converter = core.Converter
	// Converters is an ordered converter chain for Rewriter.Converters.
	Converters = core.Converters
	// InlineConverter adapts a function to Converter.
	InlineConverter = core.ConverterFunc
	// ServiceDescription is a WSDL_int service description.
	ServiceDescription = wsdl.Description
)

// Rewriting modes.
const (
	// Safe refuses unless success is guaranteed for every service answer.
	Safe = core.Safe
	// Possible proceeds when success is reachable, backtracking on unlucky
	// answers (side effects are not undone; consult the Audit).
	Possible = core.Possible
	// Mixed pre-invokes side-effect-free zero-cost calls, then requires
	// safety on what remains.
	Mixed = core.Mixed
)

// Node kinds.
const (
	// KindElement is an ordinary element node.
	KindElement = doc.Element
	// KindText is a text leaf.
	KindText = doc.Text
	// KindFunc is a function node (embedded service call).
	KindFunc = doc.Func
)

// Document node constructors.
var (
	// Elem builds an element node.
	Elem = doc.Elem
	// Text builds a text leaf.
	Text = doc.TextNode
	// Call builds a function node.
	Call = doc.Call
	// CallAt builds a function node pinned to an endpoint.
	CallAt = doc.CallAt
)

// ParseSchemaText parses the compact text DSL (see internal/schema for the
// grammar). Predicates for function patterns are resolved through preds and
// may be nil.
func ParseSchemaText(src string, preds map[string]Predicate) (*Schema, error) {
	return schema.ParseText(src, preds)
}

// MustParseSchemaText is ParseSchemaText panicking on error.
func MustParseSchemaText(src string) *Schema {
	return schema.MustParseText(src, nil)
}

// ParseSchemaTextShared parses a schema sharing the symbol table of base —
// required when two schemas are analyzed together (sender and target).
func ParseSchemaTextShared(base *Schema, src string, preds map[string]Predicate) (*Schema, error) {
	return schema.ParseTextShared(schema.NewShared(base.Table), src, preds)
}

// MustParseSchemaTextShared is ParseSchemaTextShared panicking on error.
func MustParseSchemaTextShared(base *Schema, src string) *Schema {
	s, err := ParseSchemaTextShared(base, src, nil)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseXSD parses an XML Schema_int document. base may be nil; when given,
// the result shares its symbol table.
func ParseXSD(r io.Reader, base *Schema, preds map[string]Predicate) (*Schema, error) {
	opt := xsdint.Options{Predicates: preds}
	if base != nil {
		opt.Table = base.Table
	}
	return xsdint.Parse(r, opt)
}

// WriteXSD renders a schema as XML Schema_int. predNames maps pattern names
// to the predicate names to emit.
func WriteXSD(w io.Writer, s *Schema, predNames map[string]string) error {
	return xsdint.Write(w, s, predNames)
}

// ParseDocument reads an intensional XML document (int:fun syntax).
func ParseDocument(r io.Reader) (*Node, error) { return xmlio.Parse(r) }

// ParseDocumentString parses a document from a string.
func ParseDocumentString(src string) (*Node, error) { return xmlio.ParseString(src) }

// WriteDocument serializes a document with the int:fun syntax.
func WriteDocument(w io.Writer, n *Node) error { return xmlio.Write(w, n) }

// DocumentString serializes a document to a string, panicking on the
// (cannot-happen) serialization error.
func DocumentString(n *Node) string { return xmlio.MustString(n) }

// Validate checks that the document is an instance of the schema
// (Definition 3 of the paper). sigs optionally supplies signatures for
// functions the schema itself does not declare; it may be nil.
func Validate(s *Schema, sigs *Schema, n *Node) error {
	return schema.NewContext(s, sigs).Validate(n)
}

// NewRewriter builds a rewriter from the sender schema (declaring the
// signatures of every function documents may embed) into the exchange
// schema. Both must share a symbol table (use ParseSchemaTextShared /
// ParseXSD with base). k bounds rewriting depth; inv performs the calls and
// may be nil for check-only use.
func NewRewriter(sender, target *Schema, k int, inv Invoker) *Rewriter {
	return core.NewRewriter(sender, target, k, inv)
}

// NewRewriterWithConfig builds a rewriter from an options struct instead of
// positional parameters; zero values select the documented defaults. Policies
// listed in cfg wrap cfg.Invoker outermost-first, and a fresh Audit is
// attached when none is supplied.
func NewRewriterWithConfig(sender, target *Schema, cfg RewriterConfig) *Rewriter {
	return core.NewRewriterWithConfig(sender, target, cfg)
}

// Legacy adapts a pre-context LegacyInvoker to the Invoker interface.
func Legacy(inv LegacyInvoker) Invoker { return core.Legacy(inv) }

// ApplyPolicies wraps inv with the given policies, first outermost.
func ApplyPolicies(inv Invoker, policies []InvokePolicy) Invoker {
	return core.ApplyPolicies(inv, policies)
}

// Invocation policies. Conventional chain order, outermost first:
// concurrency limit, breaker, retry, timeout — so each retry attempt gets its
// own timeout and the breaker counts post-retry outcomes.
var (
	// WithTimeout bounds each Invoke with a deadline.
	WithTimeout = invoke.WithTimeout
	// WithRetry retries transient failures with exponential backoff.
	WithRetry = invoke.WithRetry
	// WithBreaker trips a per-endpoint circuit breaker on repeated failure.
	WithBreaker = invoke.WithBreaker
	// WithConcurrencyLimit bounds in-flight calls through the invoker.
	WithConcurrencyLimit = invoke.WithConcurrencyLimit
	// WithLatency delays every call by a fixed duration — a simulated network
	// round-trip for benchmarks and parallel-speedup experiments.
	WithLatency = invoke.WithLatency
	// NewFaultInjector builds a FaultInjector delegating to inner.
	NewFaultInjector = invoke.NewFaultInjector
)

// Fault kinds for FaultInjector plans.
const (
	// FaultError makes the call fail with the scheduled error.
	FaultError = invoke.FaultError
	// FaultLatency delays the call, then delegates.
	FaultLatency = invoke.FaultLatency
	// FaultHang blocks the call until its context is cancelled.
	FaultHang = invoke.FaultHang
	// FaultGarbage returns the scheduled (presumably non-conforming) forest.
	FaultGarbage = invoke.FaultGarbage
)

// Sentinel errors of the policy layer.
var (
	// ErrBreakerOpen is the cause inside a PolicyError when an open circuit
	// breaker rejects a call.
	ErrBreakerOpen = invoke.ErrBreakerOpen
	// ErrInjected is the default error of FaultError faults.
	ErrInjected = invoke.ErrInjected
)

// SchemaCompatible checks Definition 6: does every document of sender
// (rooted at root, defaulting to sender's declared root) safely rewrite
// into target within depth k?
func SchemaCompatible(sender, target *Schema, root string, k int) (*SchemaReport, error) {
	return core.SchemaSafeRewrite(core.Compile(sender, target), root, k)
}

// SOAPInvoker returns an Invoker that routes function nodes to their SOAP
// endpoints (a node's ServiceRef endpoint wins; defaultEndpoint covers the
// rest).
func SOAPInvoker(defaultEndpoint string) Invoker {
	return &soap.Invoker{Default: defaultEndpoint}
}

// FetchWSDL parses a WSDL_int description, sharing base's symbol table when
// base is non-nil.
func FetchWSDL(r io.Reader, base *Schema) (*ServiceDescription, error) {
	opt := xsdint.Options{}
	if base != nil {
		opt.Table = base.Table
	}
	return wsdl.Parse(r, opt)
}

// SchemaRegex exposes the content-model regular expression type for advanced
// callers (building schemas programmatically).
type SchemaRegex = regex.Regex

// Peer-and-services surface: run an Active XML node in-process.
type (
	// Peer is an Active XML peer: repository + services + the Schema
	// Enforcement module, exposable over HTTP through Peer.Handler.
	Peer = peer.Peer
	// PeerQuery declares a query-defined service over the repository.
	PeerQuery = peer.Query
	// PeerProposal is a candidate exchange schema for Peer.Negotiate.
	PeerProposal = peer.Proposal
	// PeerAgreement is a successful negotiation outcome.
	PeerAgreement = peer.Agreement
	// ServiceRegistry holds the operations a peer provides.
	ServiceRegistry = service.Registry
	// ServiceOperation is one registered operation.
	ServiceOperation = service.Operation
	// ServiceHandler implements an operation.
	ServiceHandler = service.Handler
	// Repository stores a peer's named intensional documents in memory —
	// the default DocStore backend.
	Repository = peer.Repository
	// DurableRepository is a Repository backed by a write-ahead log and
	// crash-safe snapshots (the "wal" backend of OpenStore).
	DurableRepository = peer.DurableRepository
	// DurableOptions configures OpenDurable.
	//
	// Deprecated: use StoreOptions with OpenStore.
	DurableOptions = peer.DurableOptions
	// ConflictPolicy decides what Repository.LoadDirWith does on collision.
	ConflictPolicy = peer.ConflictPolicy
	// WALSyncMode selects the WAL fsync discipline for StoreOptions and
	// DurableOptions.
	WALSyncMode = wal.SyncMode
)

// Storage engine surface (see internal/store and DESIGN.md §11): a DocStore
// is the pluggable repository behind a Peer, opened through OpenStore with
// one of three backends — "mem" (in-memory map), "wal" (durable, WAL +
// crash-safe snapshots) or "disk" (disk-sharded files with an LRU hot cache
// of decoded documents and a persistent function-node index).
type (
	// DocStore is the storage-engine interface; assign one to Peer.Repo.
	DocStore = store.DocStore
	// StoreOptions configures OpenStore; Backend selects the engine.
	StoreOptions = store.Options
	// StoreStats is the uniform backend report (DocStore.Stats).
	StoreStats = store.Stats
	// DiskStoreStats is the disk backend's tiering/sharding section.
	DiskStoreStats = store.DiskStats
	// DiskStore is the disk-sharded backend's concrete type.
	DiskStore = store.Disk
	// FunctionIndex is the optional capability of backends that index
	// function nodes: which documents hold a pending call to a function.
	// Discover with a type assertion on a DocStore.
	FunctionIndex = store.FunctionIndex
)

// Storage backend selectors for StoreOptions.Backend.
const (
	StoreMem  = store.BackendMem
	StoreWAL  = store.BackendWAL
	StoreDisk = store.BackendDisk
)

// ErrDocumentNotFound is the sentinel reported (wrapped) when a store or
// peer operation names an absent document. Test with errors.Is.
var ErrDocumentNotFound = store.ErrNotFound

// OpenStore builds the selected storage backend — the single constructor
// for every repository flavor. An empty Backend selects "mem".
func OpenStore(opts StoreOptions) (DocStore, error) { return store.Open(opts) }

// StoreFuncNames lists the distinct function labels embedded in a document,
// sorted — the record a FunctionIndex maintains per document.
func StoreFuncNames(d *Node) []string { return store.FuncNames(d) }

// LoadDir conflict policies.
const (
	KeepExisting   = peer.KeepExisting
	Overwrite      = peer.Overwrite
	FailOnConflict = peer.FailOnConflict
)

// WAL fsync disciplines.
const (
	WALSyncAlways   = wal.SyncAlways
	WALSyncInterval = wal.SyncInterval
	WALSyncNone     = wal.SyncNone
)

// NewPeer creates a peer over the given schema.
func NewPeer(name string, s *Schema) *Peer { return peer.New(name, s) }

// OpenDurable opens (or creates) a durable repository in dir, running crash
// recovery first: newest valid snapshot plus WAL tail, torn trailing records
// truncated. Assign it (or its embedded Repository) to a Peer to make every
// mutation path durable; Close writes a final snapshot.
//
// Deprecated: kept as a thin wrapper so existing callers compile unchanged;
// use OpenStore with StoreOptions{Backend: StoreWAL, Dir: dir, ...}.
func OpenDurable(dir string, opts DurableOptions) (*DurableRepository, error) {
	return peer.OpenDurable(dir, opts)
}

// Converter constructors (see internal/core for details).
var (
	// RenameLabels renames element/function labels in returned forests.
	RenameLabels = core.RenameLabels
	// UnwrapElement strips a wrapper element around returned content.
	UnwrapElement = core.Unwrap
	// MapValues rewrites text content of elements with a given label.
	MapValues = core.MapValues
)

// Predicate combinators for function patterns (the paper's UDDIF and InACL
// examples).
var (
	// RegistryListed accepts functions registered in the given registry.
	RegistryListed = service.RegistryListed
	// ACL accepts functions on an allow-list.
	ACL = service.ACL
	// AndPredicates conjoins predicates.
	AndPredicates = service.And
)

// Telemetry surface: embedders plug a registry into RewriterConfig.Telemetry
// or Peer.Telemetry, scrape it via Registry.MetricsHandler (Prometheus text)
// and Tracer.TracesHandler (recent spans as JSON), and correlate spans with
// audit records through the rewrite ID. See DESIGN.md §8 for the metric
// catalogue and span naming scheme.
type (
	// TelemetryRegistry holds named metrics and the span ring.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySpan is one in-flight traced operation (nil-safe no-op).
	TelemetrySpan = telemetry.Span
	// TelemetrySpanRecord is a finished span as served by /debug/traces.
	TelemetrySpanRecord = telemetry.SpanRecord
	// TelemetryTracer is the bounded ring of finished spans.
	TelemetryTracer = telemetry.Tracer
)

var (
	// NewTelemetry creates a registry with the default span-ring capacity.
	NewTelemetry = telemetry.NewRegistry
	// StartSpan opens a span under the registry carried by ctx (no-op
	// otherwise) and returns the derived context for parent linkage.
	StartSpan = telemetry.StartSpan
	// WithTelemetry plants a registry in a context, so StartSpan and the
	// instrumented pipeline below it report there.
	WithTelemetry = telemetry.WithRegistry
	// NewRewriteID mints the process-unique ID format used to correlate
	// one top-level rewriting across spans and audit records.
	NewRewriteID = telemetry.NewID
	// WithRewriteID pins the rewrite/trace ID for the next top-level
	// rewriting started under the context.
	WithRewriteID = telemetry.WithTraceID
	// RewriteIDFrom reads the rewrite/trace ID in effect, or "".
	RewriteIDFrom = telemetry.TraceIDFrom
)

// Observability surface (DESIGN.md §13): cross-process trace propagation,
// structured logging, and the slow-request flight recorder. A Peer with
// Logger set writes one structured line per request; with Flight set it
// serves the slowest/failed request anatomies at /debug/slow.
type (
	// Flight is the bounded slow/failed-request recorder.
	Flight = telemetry.Flight
	// FlightRecord is one admitted request with its trace evidence.
	FlightRecord = telemetry.FlightRecord
	// Health tracks daemon lifecycle for /healthz and /readyz probes.
	Health = peer.Health
	// Logger is the dependency-free leveled structured logger; derive
	// per-component loggers with With, build fields with LogField.
	Logger = obslog.Logger
	// LogField is one key/value pair on a log line.
	LogField = obslog.Field
	// LogLevel orders log severities (LogDebug … LogError).
	LogLevel = obslog.Level
	// LogFormat selects text or JSON line encoding.
	LogFormat = obslog.Format
)

// Log levels and formats for NewLogger.
const (
	LogDebug = obslog.Debug
	LogInfo  = obslog.Info
	LogWarn  = obslog.Warn
	LogError = obslog.Error

	LogText = obslog.Text
	LogJSON = obslog.JSON
)

var (
	// NewFlight builds a flight recorder keeping the slowCap slowest and
	// failCap most recent failed requests (defaults on non-positive).
	NewFlight = telemetry.NewFlight
	// NewHealth builds a not-yet-ready lifecycle tracker.
	NewHealth = peer.NewHealth
	// NewLogger builds a structured logger writing to w.
	NewLogger = obslog.New
	// LogField constructor and level/format parsers.
	LogF           = obslog.F
	ParseLogLevel  = obslog.ParseLevel
	ParseLogFormat = obslog.ParseFormat
	// InjectTraceContext writes the context's trace identity into an
	// outbound header as a W3C traceparent; ExtractTraceContext reads one
	// back, and WithRemoteTrace makes root spans join the remote trace.
	InjectTraceContext  = telemetry.InjectTraceContext
	ExtractTraceContext = telemetry.ExtractTraceContext
	WithRemoteTrace     = telemetry.WithRemoteTrace
)
