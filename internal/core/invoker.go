package core

import (
	"fmt"
	"sync"

	"axml/internal/doc"
)

// Invoker performs the actual Web-service calls during rewriting. The call
// node's children are its (already materialized) parameters; the returned
// forest replaces the node. Implementations live in internal/service (local
// registries, simulated services) and internal/soap (remote endpoints).
type Invoker interface {
	Invoke(call *doc.Node) ([]*doc.Node, error)
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(*doc.Node) ([]*doc.Node, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(call *doc.Node) ([]*doc.Node, error) { return f(call) }

// CallRecord documents one service invocation performed by a rewriting — the
// audit trail matters because possible-mode rewritings may fail *after*
// performing side-effecting calls, and the caller must know what happened.
type CallRecord struct {
	Func string
	// Depth is the invocation depth (1 = original occurrence).
	Depth int
	Cost  float64
	// ResultNodes counts the root nodes of the returned forest.
	ResultNodes int
}

// Audit accumulates the invocation trail of a rewriting. Safe for concurrent
// use: peers share one audit across requests.
type Audit struct {
	mu    sync.Mutex
	calls []CallRecord
}

// Record appends a call record.
func (a *Audit) Record(r CallRecord) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls = append(a.calls, r)
}

// Calls returns a copy of the trail.
func (a *Audit) Calls() []CallRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]CallRecord, len(a.calls))
	copy(out, a.calls)
	return out
}

// Len returns the number of recorded calls.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.calls)
}

// TotalCost sums the recorded costs.
func (a *Audit) TotalCost() float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0.0
	for _, c := range a.calls {
		total += c.Cost
	}
	return total
}

// Reset clears the trail.
func (a *Audit) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls = nil
}

func (a *Audit) String() string {
	return fmt.Sprintf("Audit{%d calls, cost %.2f}", a.Len(), a.TotalCost())
}
