package peer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// TestSaveDirAtomicReplace: SaveDir must replace files whole. A corrupted
// (crash-truncated) file from an earlier run is healed by the next save,
// and no temp files are ever left for LoadDir to trip on.
func TestSaveDirAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository()
	if err := r.Put("a", doc.Elem("a", doc.TextNode("v1"))); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Simulate the pre-atomic-write failure mode: a truncated .xml.
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte("<?xml ver"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewRepository().LoadDir(dir); err == nil {
		t.Fatal("sanity: the truncated file should poison LoadDir")
	}
	if err := r.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.LoadDir(dir); err != nil {
		t.Fatalf("save did not heal the truncated file: %v", err)
	}
	if d, ok := r2.Get("a"); !ok || d.Children[0].Value != "v1" {
		t.Errorf("reloaded doc = %v, %v", d, ok)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), wal.TempPrefix) {
			t.Errorf("temp file %s observed after SaveDir", e.Name())
		}
	}
}

// TestSaveDirCleansCrashedTemp: a temp file left by a crash mid-save is
// invisible to LoadDir and removed by the next SaveDir.
func TestSaveDirCleansCrashedTemp(t *testing.T) {
	dir := t.TempDir()
	crashed := filepath.Join(dir, wal.TempPrefix+"42")
	if err := os.WriteFile(crashed, []byte("<a>half a docu"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRepository()
	if err := r.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir observed a partially-written temp file: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("loaded %d docs from a temp file", r.Len())
	}
	if err := r.Put("a", doc.Elem("a")); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(crashed); !os.IsNotExist(err) {
		t.Error("SaveDir left the crashed temp file in place")
	}
}

// TestSaveDirReconcilesDeletes is the delete→save→load regression: a
// document deleted since the previous save must not resurrect.
func TestSaveDirReconcilesDeletes(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository()
	for _, name := range []string{"keep", "drop"} {
		if err := r.Put(name, doc.Elem(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// An unmanaged file must survive reconciliation.
	notes := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(notes, []byte("mine"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("drop"); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Get("drop"); ok {
		t.Error("deleted document resurrected after save/load")
	}
	if _, ok := r2.Get("keep"); !ok {
		t.Error("surviving document lost")
	}
	if _, err := os.Stat(notes); err != nil {
		t.Errorf("unmanaged file removed by reconciliation: %v", err)
	}
}

// TestUpdateClonesOnTheWayIn: a callback that retains its argument must not
// be able to mutate repository state after the lock is released.
func TestUpdateClonesOnTheWayIn(t *testing.T) {
	r := NewRepository()
	if err := r.Put("d", doc.Elem("d", doc.TextNode("before"))); err != nil {
		t.Fatal(err)
	}
	var retained *doc.Node
	err := r.Update("d", func(n *doc.Node) (*doc.Node, error) {
		retained = n
		return doc.Elem("d", doc.TextNode("after")), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	retained.Children[0].Value = "MUTATED"
	retained.Children = append(retained.Children, doc.Elem("extra"))
	got, _ := r.Get("d")
	if s := xmlio.MustString(got); strings.Contains(s, "MUTATED") || strings.Contains(s, "extra") {
		t.Errorf("retained callback argument mutated stored state:\n%s", s)
	}
	if got.Children[0].Value != "after" {
		t.Errorf("replacement lost: %v", got.Children[0].Value)
	}
}

func TestLoadDirConflictPolicies(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"a.xml": "<a>from-disk</a>",
		"b.xml": "<b>from-disk</b>",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	inMemory := func() *Repository {
		r := NewRepository()
		if err := r.Put("a", doc.Elem("a", doc.TextNode("in-memory"))); err != nil {
			t.Fatal(err)
		}
		return r
	}
	text := func(r *Repository, name string) string {
		d, ok := r.Get(name)
		if !ok {
			t.Fatalf("doc %q missing", name)
		}
		return d.Children[0].Value
	}

	r := inMemory()
	n, err := r.LoadDirWith(dir, KeepExisting)
	if err != nil || n != 1 {
		t.Fatalf("KeepExisting loaded %d, %v; want 1 (only b)", n, err)
	}
	if text(r, "a") != "in-memory" || text(r, "b") != "from-disk" {
		t.Errorf("KeepExisting clobbered in-memory state: a=%q b=%q", text(r, "a"), text(r, "b"))
	}

	r = inMemory()
	n, err = r.LoadDirWith(dir, Overwrite)
	if err != nil || n != 2 {
		t.Fatalf("Overwrite loaded %d, %v; want 2", n, err)
	}
	if text(r, "a") != "from-disk" {
		t.Errorf("Overwrite kept the in-memory doc: a=%q", text(r, "a"))
	}

	if _, err := inMemory().LoadDirWith(dir, FailOnConflict); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("FailOnConflict error = %v", err)
	}

	// The plain LoadDir default is the safe one.
	r = inMemory()
	if err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if text(r, "a") != "in-memory" {
		t.Error("LoadDir default must keep existing documents")
	}
}
