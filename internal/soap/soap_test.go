package soap

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/service"
)

func TestRequestRoundTrip(t *testing.T) {
	params := []*doc.Node{
		doc.Elem("city", doc.TextNode("Paris")),
		doc.Call("Inner", doc.TextNode("x")),
		doc.TextNode("raw"),
	}
	var b strings.Builder
	if err := WriteRequest(&b, "Get_Temp", "urn:weather", params); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if req.Method != "Get_Temp" || req.Namespace != "urn:weather" {
		t.Errorf("method/ns = %q %q", req.Method, req.Namespace)
	}
	if len(req.Params) != 3 {
		t.Fatalf("params = %d", len(req.Params))
	}
	if !req.Params[0].Equal(params[0]) || !req.Params[1].Equal(params[1]) {
		t.Error("params changed in transit")
	}
	if req.Params[2].Kind != doc.Text || req.Params[2].Value != "raw" {
		t.Errorf("text param = %v", req.Params[2])
	}
}

func TestResponseRoundTrip(t *testing.T) {
	result := []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}
	var b strings.Builder
	if err := WriteResponse(&b, "Get_Temp", "urn:weather", result); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Equal(result[0]) {
		t.Errorf("result changed: %v", out)
	}
}

func TestNoNamespace(t *testing.T) {
	var b strings.Builder
	if err := WriteRequest(&b, "Op", "", nil); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "Op" || req.Namespace != "" {
		t.Errorf("method/ns = %q %q", req.Method, req.Namespace)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteFault(&b, "soap:Server", "it <broke>"); err != nil {
		t.Fatal(err)
	}
	_, err := ReadResponse(strings.NewReader(b.String()))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected Fault, got %v", err)
	}
	if f.Code != "soap:Server" || f.String != "it <broke>" {
		t.Errorf("fault = %+v", f)
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<x/>",
		`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body></Body></Envelope>`,
		`<Envelope xmlns="wrong-ns"><Body><m/></Body></Envelope>`,
	} {
		if _, err := ReadRequest(strings.NewReader(src)); err == nil {
			t.Errorf("ReadRequest(%q) should fail", src)
		}
	}
	// A request envelope is not a response.
	var b strings.Builder
	_ = WriteRequest(&b, "Op", "", nil)
	if _, err := ReadResponse(strings.NewReader(b.String())); err == nil {
		t.Error("request envelope accepted as response")
	}
}

func newTestServer(t *testing.T) (*Server, *schema.Schema) {
	t.Helper()
	s := schema.MustParseText("elem city = data\nelem temp = data", nil)
	reg := service.NewRegistry()
	err := reg.RegisterFunc(s, "Get_Temp", "city", "temp", func(params []*doc.Node) ([]*doc.Node, error) {
		if len(params) != 1 || params[0].Label != "city" {
			return nil, errors.New("bad params")
		}
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Server{Registry: reg, Namespace: "urn:weather"}, s
}

func TestHTTPEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := &Client{Endpoint: ts.URL, Namespace: "urn:weather"}
	out, err := c.Call("Get_Temp", []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "temp" {
		t.Errorf("result = %v", out)
	}

	// Unknown method becomes a Fault.
	_, err = c.Call("Nope", nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected Fault, got %v", err)
	}
}

func TestHTTPHooks(t *testing.T) {
	srv, _ := newTestServer(t)
	reqHook, respHook := 0, 0
	srv.OnRequest = func(_ context.Context, method string, params []*doc.Node) ([]*doc.Node, error) {
		reqHook++
		return params, nil
	}
	srv.OnResponse = func(_ context.Context, method string, result []*doc.Node) ([]*doc.Node, error) {
		respHook++
		return result, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{Endpoint: ts.URL}
	if _, err := c.Call("Get_Temp", []*doc.Node{doc.Elem("city")}); err != nil {
		t.Fatal(err)
	}
	if reqHook != 1 || respHook != 1 {
		t.Errorf("hooks = %d %d", reqHook, respHook)
	}
	// A rejecting request hook faults the exchange.
	srv.OnRequest = func(context.Context, string, []*doc.Node) ([]*doc.Node, error) {
		return nil, errors.New("schema violation")
	}
	_, err := c.Call("Get_Temp", nil)
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "schema violation") {
		t.Errorf("expected schema-violation fault, got %v", err)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestInvokerRouting(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inv := &Invoker{Default: ts.URL}
	out, err := inv.Invoke(context.Background(), doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	if err != nil || len(out) != 1 {
		t.Fatalf("default routing failed: %v %v", out, err)
	}
	// Explicit ServiceRef endpoint wins.
	node := doc.CallAt(doc.ServiceRef{Endpoint: ts.URL, Method: "Get_Temp", Namespace: "urn:weather"},
		doc.Elem("city", doc.TextNode("Paris")))
	out, err = inv.Invoke(context.Background(), node)
	if err != nil || len(out) != 1 {
		t.Fatalf("ref routing failed: %v %v", out, err)
	}
	// No endpoint anywhere is an error.
	bare := &Invoker{}
	if _, err := bare.Invoke(context.Background(), doc.Call("X")); err == nil {
		t.Error("endpoint-less call should fail")
	}
}

func TestIntensionalResultOverHTTP(t *testing.T) {
	// The service returns an *intensional* result: a function node. It must
	// survive the envelope round trip — the essence of intensional data
	// exchange.
	s := schema.MustParseText("elem exhibit = data", nil)
	reg := service.NewRegistry()
	err := reg.RegisterFunc(s, "TimeOut", "data", "exhibit*", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{
			doc.Elem("exhibit", doc.TextNode("Dali")),
			doc.CallAt(doc.ServiceRef{Endpoint: "http://timeout.example/soap", Method: "Get_More"}),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(&Server{Registry: reg})
	defer ts.Close()
	c := &Client{Endpoint: ts.URL}
	out, err := c.Call("TimeOut", []*doc.Node{doc.TextNode("exhibits")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Kind != doc.Func || out[1].Label != "Get_More" {
		t.Fatalf("intensional result mangled: %v", out)
	}
	if out[1].Service == nil || out[1].Service.Endpoint != "http://timeout.example/soap" {
		t.Error("service ref lost in transit")
	}
}
