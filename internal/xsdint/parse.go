// Package xsdint implements XML Schema_int, the paper's extension of XML
// Schema for intensional documents (Section 7): alongside the usual element
// and complex-type machinery, schemas declare *functions* and *function
// patterns* that may be referenced wherever element particles may appear.
//
// The supported subset covers what the paper's implementation used: global
// element declarations, complexType with nested sequence/choice particles,
// element references, minOccurs/maxOccurs (including "unbounded"), atomic
// simple types (any xs:* type attribute means atomic data), wildcards
// (<any/>, plus a "not" attribute for exclusions), and the two intensional
// declarations:
//
//	<function id="Get_Temp" methodName="Get_Temp"
//	          endpointURL="http://forecast.example/soap" namespaceURI="urn:w">
//	  <params><param><element ref="city"/></param></params>
//	  <return><element ref="temp"/></return>
//	</function>
//
//	<functionPattern id="Forecast" predicate="UDDIF">
//	  <params><param><element ref="city"/></param></params>
//	  <return><element ref="temp"/></return>
//	</functionPattern>
//
// Declarations compile into an internal/schema.Schema; the one-unambiguity
// (UPA) requirement of XML Schema is enforced at the end. Parsing is
// namespace-lenient: declarations are recognized by local name whether or
// not they carry the XML Schema namespace.
package xsdint

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/xmlio"
)

// XSDNamespace is the XML Schema namespace (accepted but not required).
const XSDNamespace = "http://www.w3.org/2001/XMLSchema"

// Options configure parsing.
type Options struct {
	// Predicates resolves functionPattern predicate names.
	Predicates map[string]schema.Predicate
	// Table, when non-nil, makes the parsed schema share symbols with other
	// schemas (required to analyze schema pairs together).
	Table *regex.Table
	// SkipUPACheck disables the one-unambiguity enforcement (used by tests
	// exercising the non-deterministic complexity path).
	SkipUPACheck bool
}

// Parse reads an XML Schema_int document.
func Parse(r io.Reader, opt Options) (*schema.Schema, error) {
	table := opt.Table
	if table == nil {
		table = regex.NewTable()
	}
	// ByteSource hands the decoder an io.ByteReader so it does not allocate
	// a bufio.Reader per parse — /exchange parses one schema per request.
	src, release, err := xmlio.ByteSource(r)
	if err != nil {
		return nil, fmt.Errorf("xsdint: %w", err)
	}
	defer release()
	p := &parser{
		dec:   xml.NewDecoder(src),
		s:     schema.NewShared(table),
		preds: opt.Predicates,
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	if !opt.SkipUPACheck {
		if err := p.s.CheckDeterministic(); err != nil {
			return nil, fmt.Errorf("xsdint: %w (XML Schema requires unique particle attribution)", err)
		}
	}
	return p.s, nil
}

// ParseString parses from a string.
func ParseString(src string, opt Options) (*schema.Schema, error) {
	return Parse(strings.NewReader(src), opt)
}

// ParseAt parses a <schema> element that an embedding format (WSDL_int) has
// already opened: start must be the schema start element and dec positioned
// just after it.
func ParseAt(dec *xml.Decoder, start xml.StartElement, opt Options) (*schema.Schema, error) {
	if start.Name.Local != "schema" {
		return nil, fmt.Errorf("xsdint: ParseAt on <%s>, want <schema>", start.Name.Local)
	}
	table := opt.Table
	if table == nil {
		table = regex.NewTable()
	}
	p := &parser{dec: dec, s: schema.NewShared(table), preds: opt.Predicates, opened: true}
	if v := attr(start, "root"); v != "" {
		p.s.Root = v
	}
	if err := p.body(); err != nil {
		return nil, err
	}
	if !opt.SkipUPACheck {
		if err := p.s.CheckDeterministic(); err != nil {
			return nil, fmt.Errorf("xsdint: %w (XML Schema requires unique particle attribution)", err)
		}
	}
	return p.s, nil
}

type parser struct {
	dec    *xml.Decoder
	s      *schema.Schema
	preds  map[string]schema.Predicate
	opened bool // the <schema> start tag was consumed by the caller
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xsdint: %s", fmt.Sprintf(format, args...))
}

func (p *parser) run() error {
	root, err := p.nextStart()
	if err != nil {
		return p.errf("no root element: %v", err)
	}
	if root.Name.Local != "schema" {
		return p.errf("root element is <%s>, want <schema>", root.Name.Local)
	}
	if v := attr(root, "root"); v != "" {
		p.s.Root = v
	}
	return p.body()
}

// body parses schema content up to the closing </schema>.
func (p *parser) body() error {
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("truncated schema: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "element":
				if err := p.globalElement(t); err != nil {
					return err
				}
			case "function":
				if err := p.function(t, false); err != nil {
					return err
				}
			case "functionPattern":
				if err := p.function(t, true); err != nil {
					return err
				}
			case "annotation", "import", "include":
				if err := p.skip(); err != nil {
					return err
				}
			default:
				return p.errf("unsupported top-level <%s>", t.Name.Local)
			}
		case xml.EndElement:
			return nil
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return p.errf("stray text %q in schema", string(t))
			}
		}
	}
}

// globalElement parses a top-level <element>.
func (p *parser) globalElement(start xml.StartElement) error {
	name := attr(start, "name")
	if name == "" {
		return p.errf("global element without name")
	}
	typ := attr(start, "type")
	var content *regex.Regex
	sawComplex := false
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("inside element %q: %v", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "complexType":
				sawComplex = true
				r, err := p.complexType(name)
				if err != nil {
					return err
				}
				content = r
			case "simpleType", "annotation":
				if err := p.skip(); err != nil {
					return err
				}
			default:
				return p.errf("element %q: unsupported <%s>", name, t.Name.Local)
			}
		case xml.EndElement:
			if sawComplex {
				return p.s.SetLabelRegex(name, content)
			}
			// type attribute or nothing: atomic data (the paper's model
			// treats all simple types as one data domain).
			_ = typ
			return p.s.SetData(name)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return p.errf("element %q: stray text", name)
			}
		}
	}
}

// complexType parses <complexType> content: one optional particle group.
func (p *parser) complexType(owner string) (*regex.Regex, error) {
	content := regex.Empty()
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return nil, p.errf("complexType of %q: %v", owner, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			r, err := p.particle(t, owner)
			if err != nil {
				return nil, err
			}
			content = regex.Concat(content, r)
		case xml.EndElement:
			return content, nil
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, p.errf("complexType of %q: stray text", owner)
			}
		}
	}
}

// particle parses one content particle and applies its occurrence bounds.
func (p *parser) particle(start xml.StartElement, owner string) (*regex.Regex, error) {
	min, max, err := occurs(start)
	if err != nil {
		return nil, p.errf("%q: %v", owner, err)
	}
	var core *regex.Regex
	switch start.Name.Local {
	case "sequence", "choice":
		var parts []*regex.Regex
		for {
			tok, err := p.dec.Token()
			if err != nil {
				return nil, p.errf("%s in %q: %v", start.Name.Local, owner, err)
			}
			switch t := tok.(type) {
			case xml.StartElement:
				r, err := p.particle(t, owner)
				if err != nil {
					return nil, err
				}
				parts = append(parts, r)
			case xml.EndElement:
				if start.Name.Local == "sequence" {
					core = regex.Concat(parts...)
				} else {
					core = regex.Alt(parts...)
				}
				return boundedRepeat(core, min, max), nil
			case xml.CharData:
				if strings.TrimSpace(string(t)) != "" {
					return nil, p.errf("%s in %q: stray text", start.Name.Local, owner)
				}
			}
		}
	case "element", "function", "functionPattern":
		name := attr(start, "ref")
		if name == "" {
			name = attr(start, "name")
		}
		if name == "" {
			return nil, p.errf("%q: <%s> particle without ref or name", owner, start.Name.Local)
		}
		if err := p.skip(); err != nil {
			return nil, err
		}
		core = regex.Sym(p.s.Table.Intern(name))
		return boundedRepeat(core, min, max), nil
	case "any":
		not := strings.Fields(attr(start, "not"))
		if err := p.skip(); err != nil {
			return nil, err
		}
		syms := make([]regex.Symbol, len(not))
		for i, n := range not {
			syms[i] = p.s.Table.Intern(n)
		}
		core = regex.ClassOf(regex.NewClass(true, syms...))
		return boundedRepeat(core, min, max), nil
	case "annotation":
		if err := p.skip(); err != nil {
			return nil, err
		}
		return regex.Empty(), nil
	default:
		return nil, p.errf("%q: unsupported particle <%s>", owner, start.Name.Local)
	}
}

// boundedRepeat applies minOccurs/maxOccurs.
func boundedRepeat(r *regex.Regex, min, max int) *regex.Regex {
	if min == 1 && max == 1 {
		return r
	}
	return regex.Repeat(r, min, max)
}

func occurs(start xml.StartElement) (min, max int, err error) {
	min, max = 1, 1
	if v := attr(start, "minOccurs"); v != "" {
		min, err = strconv.Atoi(v)
		if err != nil || min < 0 {
			return 0, 0, fmt.Errorf("bad minOccurs %q", v)
		}
	}
	if v := attr(start, "maxOccurs"); v != "" {
		if v == "unbounded" {
			max = regex.Unbounded
		} else {
			max, err = strconv.Atoi(v)
			if err != nil || (max != regex.Unbounded && max < min) {
				return 0, 0, fmt.Errorf("bad maxOccurs %q", v)
			}
		}
	}
	return min, max, nil
}

// function parses a <function> or <functionPattern> declaration.
func (p *parser) function(start xml.StartElement, isPattern bool) error {
	name := attr(start, "id")
	if name == "" {
		name = attr(start, "methodName")
	}
	if name == "" {
		return p.errf("function declaration without id or methodName")
	}
	var in, out *regex.Regex
	inIsData, outIsData := true, true
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("function %q: %v", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "params":
				r, some, err := p.params(name)
				if err != nil {
					return err
				}
				in, inIsData = r, !some
			case "return", "result":
				r, err := p.wrapperParticle(name)
				if err != nil {
					return err
				}
				out, outIsData = r, false
			case "annotation":
				if err := p.skip(); err != nil {
					return err
				}
			default:
				return p.errf("function %q: unsupported <%s>", name, t.Name.Local)
			}
		case xml.EndElement:
			return p.declare(start, name, in, inIsData, out, outIsData, isPattern)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return p.errf("function %q: stray text", name)
			}
		}
	}
}

func (p *parser) declare(start xml.StartElement, name string, in *regex.Regex, inIsData bool, out *regex.Regex, outIsData bool, isPattern bool) error {
	if inIsData {
		in = nil
	}
	if outIsData {
		out = nil
	}
	if isPattern {
		var pred schema.Predicate
		predName := attr(start, "predicate")
		if predName == "" {
			predName = attr(start, "methodName")
		}
		if predName != "" {
			pred = p.preds[predName]
			if pred == nil {
				return p.errf("functionPattern %q: unknown predicate %q", name, predName)
			}
		}
		if err := p.s.SetPattern(name, "data", "data", pred); err != nil {
			return err
		}
		d := p.s.Patterns[name]
		d.In, d.Out = in, out
		if attr(start, "invocable") == "false" {
			d.Invocable = false
		}
		return nil
	}
	err := p.s.SetFuncDef(name, "data", "data", func(d *schema.FuncDef) {
		d.Endpoint = attr(start, "endpointURL")
		d.Namespace = attr(start, "namespaceURI")
		if attr(start, "invocable") == "false" {
			d.Invocable = false
		}
		if attr(start, "sideEffects") == "true" {
			d.SideEffects = true
		}
		if v := attr(start, "cost"); v != "" {
			if c, err := strconv.ParseFloat(v, 64); err == nil {
				d.Cost = c
			}
		}
	})
	if err != nil {
		return err
	}
	d := p.s.Funcs[name]
	d.In, d.Out = in, out
	return nil
}

// params parses <params> as a sequence of <param> wrappers; the input type
// is the concatenation of the per-param particles. some reports whether any
// param appeared (no params means atomic data input).
func (p *parser) params(owner string) (*regex.Regex, bool, error) {
	parts := []*regex.Regex{}
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return nil, false, p.errf("params of %q: %v", owner, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "param" {
				return nil, false, p.errf("params of %q: unexpected <%s>", owner, t.Name.Local)
			}
			r, err := p.wrapperParticle(owner)
			if err != nil {
				return nil, false, err
			}
			parts = append(parts, r)
		case xml.EndElement:
			if len(parts) == 0 {
				return nil, false, nil
			}
			return regex.Concat(parts...), true, nil
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, false, p.errf("params of %q: stray text", owner)
			}
		}
	}
}

// wrapperParticle parses the content of a wrapper element (param, return)
// as a particle sequence up to the wrapper's end tag.
func (p *parser) wrapperParticle(owner string) (*regex.Regex, error) {
	parts := []*regex.Regex{}
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return nil, p.errf("inside %q: %v", owner, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			r, err := p.particle(t, owner)
			if err != nil {
				return nil, err
			}
			parts = append(parts, r)
		case xml.EndElement:
			return regex.Concat(parts...), nil
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, p.errf("inside %q: stray text", owner)
			}
		}
	}
}

// skip consumes the current element's remaining content.
func (p *parser) skip() error {
	depth := 1
	for depth > 0 {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("truncated element: %v", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
		}
	}
	return nil
}

func (p *parser) nextStart() (xml.StartElement, error) {
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if s, ok := tok.(xml.StartElement); ok {
			return s, nil
		}
	}
}

func attr(start xml.StartElement, name string) string {
	for _, a := range start.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}
