package schema

import (
	"fmt"
	"strings"

	"axml/internal/doc"
	"axml/internal/regex"
)

// Context bundles everything needed to check documents against a schema:
// the target schema itself and the schema supplying function signatures
// (normally the sender's schema s0, holding the WSDL descriptions of every
// function appearing in documents). Both must intern into the same symbol
// table.
type Context struct {
	Target *Schema
	// Sigs supplies signatures for functions the target schema does not
	// declare (pattern matching needs them). Defaults to Target.
	Sigs *Schema
	// Strict makes validation fail on subtrees whose labels are mentioned
	// in content models but never declared; when false (the default) such
	// subtrees are accepted unconstrained, mirroring the leniency real
	// validators apply to foreign content.
	Strict bool
}

// NewContext builds a validation context. sigs may be nil, defaulting to
// target. It panics if the two schemas do not share a symbol namespace —
// either the same table or one extending the other via an overlay — because
// every downstream automaton construction would silently confuse symbols.
func NewContext(target, sigs *Schema) *Context {
	if sigs == nil {
		sigs = target
	}
	if !target.Table.Extends(sigs.Table) && !sigs.Table.Extends(target.Table) {
		panic("schema: target and signature schemas must share one symbol table")
	}
	return &Context{Target: target, Sigs: sigs}
}

// LookupFunc resolves a function declaration, target schema first.
func (c *Context) LookupFunc(name string) *FuncDef {
	if d := c.Target.Funcs[name]; d != nil {
		return d
	}
	return c.Sigs.Funcs[name]
}

// LookupLabel resolves an element declaration, target schema first.
func (c *Context) LookupLabel(name string) *LabelDef {
	if d := c.Target.Labels[name]; d != nil {
		return d
	}
	return c.Sigs.Labels[name]
}

// AdmissibleSyms returns the schema symbols a document child can be read as
// when matching a content model: its own name, plus — for function nodes —
// every declared pattern that admits it (predicate passes and signatures
// agree).
func (c *Context) AdmissibleSyms(n *doc.Node) []regex.Symbol {
	sym := c.Target.Table.Intern(n.Label)
	out := []regex.Symbol{sym}
	if n.Kind != doc.Func {
		return out
	}
	def := c.LookupFunc(n.Label)
	if def == nil {
		return out
	}
	for _, pname := range c.Target.SortedPatterns() {
		if FuncMatchesPattern(def, c.Target.Patterns[pname]) {
			out = append(out, c.Target.Table.Intern(pname))
		}
	}
	return out
}

// matchLetters runs the Glushkov automaton of r over a word whose letters
// are *sets* of admissible symbols: an edge fires when its class contains
// any admissible symbol of the letter.
func matchLetters(r *regex.Regex, letters [][]regex.Symbol) bool {
	info := regex.Positions(r)
	contains := func(cls regex.Class, letter []regex.Symbol) bool {
		for _, s := range letter {
			if cls.Contains(s) {
				return true
			}
		}
		return false
	}
	if len(letters) == 0 {
		return info.Nullable
	}
	// Dense position sets: positions are small ints (1..len(Classes)), so two
	// reused bool slices beat a fresh map per letter.
	cur := make([]bool, len(info.Classes)+1)
	next := make([]bool, len(info.Classes)+1)
	alive := false
	for _, p := range info.First {
		if contains(info.Classes[p-1], letters[0]) {
			cur[p] = true
			alive = true
		}
	}
	if !alive {
		return false
	}
	for _, letter := range letters[1:] {
		clear(next)
		alive = false
		for p := 1; p < len(cur); p++ {
			if !cur[p] {
				continue
			}
			for _, q := range info.Follow[p-1] {
				if contains(info.Classes[q-1], letter) {
					next[q] = true
					alive = true
				}
			}
		}
		cur, next = next, cur
		if !alive {
			return false
		}
	}
	for _, p := range info.Last {
		if cur[p] {
			return true
		}
	}
	return false
}

// MatchWord reports whether the (non-text) children of a node, resolved
// through patterns, form a word of the content model r.
func (c *Context) MatchWord(r *regex.Regex, children []*doc.Node) bool {
	letters := make([][]regex.Symbol, 0, len(children))
	for _, ch := range children {
		if ch.Kind == doc.Text {
			continue
		}
		letters = append(letters, c.AdmissibleSyms(ch))
	}
	return matchLetters(r, letters)
}

// ValidationError reports the first schema violation found, with the path of
// the offending node.
type ValidationError struct {
	Path string
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("schema: %s: %s", e.Path, e.Msg)
}

func errAt(path []string, format string, args ...any) error {
	return &ValidationError{Path: "/" + strings.Join(path, "/"), Msg: fmt.Sprintf(format, args...)}
}

// Validate checks that n is an instance of the target schema (Definition 3):
// every element's children form a word of its content model, every function
// node's parameters form a word of its input type, and data elements hold
// only text.
func (c *Context) Validate(n *doc.Node) error {
	return c.validate(n, []string{n.Label})
}

func (c *Context) validate(n *doc.Node, path []string) error {
	switch n.Kind {
	case doc.Text:
		return nil
	case doc.Element:
		def := c.Target.Labels[n.Label]
		if def == nil {
			if c.Strict {
				return errAt(path, "element %q is not declared", n.Label)
			}
			return nil // lenient: foreign content is unconstrained
		}
		if def.IsData() {
			for _, ch := range n.Children {
				if ch.Kind != doc.Text {
					return errAt(path, "data element contains non-text child %q", ch.Label)
				}
			}
			return nil
		}
		if err := c.checkContentAndText(n, def.Content, path); err != nil {
			return err
		}
		return c.validateChildren(n, path)
	case doc.Func:
		def := c.LookupFunc(n.Label)
		if def == nil {
			if c.Strict {
				return errAt(path, "function %q is not declared", n.Label)
			}
			return nil
		}
		if def.In == nil {
			for _, ch := range n.Children {
				if ch.Kind != doc.Text {
					return errAt(path, "function %q takes atomic data but was given %q", n.Label, ch.Label)
				}
			}
			return nil
		}
		if !c.MatchWord(def.In, n.Children) {
			return errAt(path, "parameters of %q do not match input type %s",
				n.Label, def.In.String(c.Target.Table))
		}
		return c.validateChildren(n, path)
	}
	return errAt(path, "unknown node kind %d", n.Kind)
}

func (c *Context) checkContentAndText(n *doc.Node, content *regex.Regex, path []string) error {
	for _, ch := range n.Children {
		if ch.Kind == doc.Text && strings.TrimSpace(ch.Value) != "" {
			return errAt(path, "element has structured content model but contains text %q", ch.Value)
		}
	}
	if !c.MatchWord(content, n.Children) {
		return errAt(path, "children %v do not match content model %s",
			childLabels(n), content.String(c.Target.Table))
	}
	return nil
}

func (c *Context) validateChildren(n *doc.Node, path []string) error {
	for i, ch := range n.Children {
		if ch.Kind == doc.Text {
			continue
		}
		if err := c.validate(ch, append(path, fmt.Sprintf("%s[%d]", ch.Label, i))); err != nil {
			return err
		}
	}
	return nil
}

func childLabels(n *doc.Node) []string { return n.ChildLabels() }

// IsInputInstance checks that params is an input instance of function f
// (Definition 3): the root labels form a word of τ_in(f) and every tree is
// an instance of the schema.
func (c *Context) IsInputInstance(f string, params []*doc.Node) error {
	def := c.LookupFunc(f)
	if def == nil {
		return fmt.Errorf("schema: function %q is not declared", f)
	}
	return c.isForestInstance(def.In, params, fmt.Sprintf("input of %s", f))
}

// IsOutputInstance checks that result is an output instance of function f.
func (c *Context) IsOutputInstance(f string, result []*doc.Node) error {
	def := c.LookupFunc(f)
	if def == nil {
		return fmt.Errorf("schema: function %q is not declared", f)
	}
	return c.isForestInstance(def.Out, result, fmt.Sprintf("output of %s", f))
}

func (c *Context) isForestInstance(typ *regex.Regex, forest []*doc.Node, what string) error {
	if typ == nil {
		for _, n := range forest {
			if n.Kind != doc.Text {
				return fmt.Errorf("schema: %s must be atomic data, got %q", what, n.Label)
			}
		}
		return nil
	}
	if !c.MatchWord(typ, forest) {
		return fmt.Errorf("schema: %s %v does not match type %s",
			what, forestLabels(forest), typ.String(c.Target.Table))
	}
	for _, n := range forest {
		if n.Kind == doc.Text {
			continue
		}
		if err := c.validate(n, []string{n.Label}); err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
	}
	return nil
}

func forestLabels(forest []*doc.Node) []string {
	out := make([]string, 0, len(forest))
	for _, n := range forest {
		if n.Kind != doc.Text {
			out = append(out, n.Label)
		}
	}
	return out
}

// WordOf converts the non-text children of n into the symbol word the core
// algorithms rewrite, interning labels as needed.
func (c *Context) WordOf(n *doc.Node) []regex.Symbol {
	out := make([]regex.Symbol, 0, len(n.Children))
	for _, ch := range n.Children {
		if ch.Kind == doc.Text {
			continue
		}
		out = append(out, c.Target.Table.Intern(ch.Label))
	}
	return out
}
