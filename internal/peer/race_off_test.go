//go:build !race

package peer

// raceEnabled reports whether the race detector is active; the allocation
// regression gate skips under it.
const raceEnabled = false
