package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docset appends n put records and returns the expected state.
func docset(t *testing.T, l *Log, n int, gen string) map[string]string {
	t.Helper()
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%d", i)
		data := fmt.Sprintf("<d gen=%q>%d</d>", gen, i)
		if err := l.Append(OpPut, name, []byte(data)); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	return want
}

func assertState(t *testing.T, got map[string][]byte, want map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d docs, want %d (%v)", len(got), len(want), keys(got))
	}
	for k, v := range want {
		if g, ok := got[k]; !ok || string(g) != v {
			t.Errorf("doc %q = %q (present=%v), want %q", k, g, ok, v)
		}
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// compact runs the full rotate-then-snapshot protocol on the current docs.
func compact(t *testing.T, l *Log, docs map[string]string) uint64 {
	t.Helper()
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	enc := make(map[string][]byte, len(docs))
	for k, v := range docs {
		enc[k] = []byte(v)
	}
	if err := l.WriteSnapshot(seq, enc); err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	want := docset(t, l, 8, "g0")
	seq := compact(t, l, want)
	if seq != 1 {
		t.Fatalf("first rotation seq = %d, want 1", seq)
	}
	// Mutations after the snapshot go to the new generation's WAL.
	if err := l.Append(OpDelete, "d0", nil); err != nil {
		t.Fatal(err)
	}
	delete(want, "d0")
	if err := l.Append(OpPut, "d1", []byte("<d>post-snap</d>")); err != nil {
		t.Fatal(err)
	}
	want["d1"] = "<d>post-snap</d>"
	l.Close()

	// Compaction removed the generation-0 WAL.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Errorf("superseded wal-0 still present: %v", err)
	}

	_, state := mustOpen(t, dir, Options{})
	if state.SnapshotSeq != 1 {
		t.Errorf("recovered from snapshot seq %d, want 1", state.SnapshotSeq)
	}
	if state.ReplayedRecords != 2 {
		t.Errorf("replayed %d, want 2 (only the post-snapshot tail)", state.ReplayedRecords)
	}
	assertState(t, state.Docs, want)
}

// Crash window 1: rotation happened, snapshot never landed. Recovery must
// replay BOTH generations' WALs over the previous snapshot, in order.
func TestCrashBetweenRotateAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	want := docset(t, l, 4, "g0")
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	// "Crash": no WriteSnapshot. Post-rotation mutations still happen.
	if err := l.Append(OpPut, "late", []byte("<late/>")); err != nil {
		t.Fatal(err)
	}
	want["late"] = "<late/>"
	l.Close()

	_, state := mustOpen(t, dir, Options{})
	if state.SnapshotSeq != 0 {
		t.Errorf("snapshot seq %d, want 0 (none written)", state.SnapshotSeq)
	}
	if state.ReplayedRecords != 5 {
		t.Errorf("replayed %d, want 5 (both generations)", state.ReplayedRecords)
	}
	assertState(t, state.Docs, want)
}

// Crash window 2: snapshot landed but the superseded files were not yet
// removed. Replaying must start at the snapshot — the stale older WAL must
// not clobber newer state — and recovery cleans the stale files up.
func TestStaleWalIgnoredAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	docset(t, l, 4, "g0")
	// Manually run the protocol so we can resurrect the stale WAL after
	// WriteSnapshot's cleanup (simulating a crash before cleanup).
	stale, err := os.ReadFile(filepath.Join(dir, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"d0": "<d>only</d>"}
	compact(t, l, want) // snapshot pretends d1..d3 were deleted
	if err := os.WriteFile(filepath.Join(dir, walName(0)), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, state := mustOpen(t, dir, Options{})
	assertState(t, state.Docs, want)
	if state.ReplayedRecords != 0 {
		t.Errorf("replayed %d stale records, want 0", state.ReplayedRecords)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Error("recovery did not remove the stale generation-0 WAL")
	}
}

// Crash window 3: a torn snapshot temp file is ignored; a corrupt *.snap
// falls back to the previous valid generation.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	want := docset(t, l, 3, "g0")
	compact(t, l, want)
	l.Close()

	// A half-written temp file from a crashed atomic write.
	if err := os.WriteFile(filepath.Join(dir, TempPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A later snapshot whose bytes rotted.
	bad := append([]byte(snapMagic), []byte("garbage-frame")...)
	if err := os.WriteFile(filepath.Join(dir, snapName(5)), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	_, state := mustOpen(t, dir, Options{})
	if state.SkippedSnapshots != 1 {
		t.Errorf("skipped %d snapshots, want 1", state.SkippedSnapshots)
	}
	if state.SnapshotSeq != 1 {
		t.Errorf("fell back to seq %d, want 1", state.SnapshotSeq)
	}
	assertState(t, state.Docs, want)
	if _, err := os.Stat(filepath.Join(dir, TempPrefix+"123")); !os.IsNotExist(err) {
		t.Error("crashed temp file not cleaned up")
	}
}

func TestSnapshotMagicRequired(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, state := mustOpen(t, dir, Options{})
	if state.SkippedSnapshots != 1 || state.SnapshotSeq != 0 {
		t.Errorf("state = %+v, want the bogus snapshot skipped", state)
	}
}

func TestRepeatedCompactionsAdvanceGenerations(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	var want map[string]string
	for round := 0; round < 3; round++ {
		want = docset(t, l, 4, fmt.Sprintf("g%d", round))
		compact(t, l, want)
	}
	if st := l.Stats(); st.Generation != 3 || st.Snapshots != 3 {
		t.Errorf("stats after 3 compactions: %+v", st)
	}
	l.Close()
	walSeqs, snapSeqs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(walSeqs) != 1 || walSeqs[0] != 3 || len(snapSeqs) != 1 || snapSeqs[0] != 3 {
		t.Errorf("leftover files: wals=%v snaps=%v, want only generation 3", walSeqs, snapSeqs)
	}
	_, state := mustOpen(t, dir, Options{})
	assertState(t, state.Docs, want)
}

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := WriteFileAtomic(path, []byte("first version"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	info, _ := os.Stat(path)
	if info.Mode().Perm() != 0o600 {
		t.Errorf("perm = %v, want 0600", info.Mode().Perm())
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Error("write into missing directory should fail")
	}
}
