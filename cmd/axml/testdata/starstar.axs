# Schema (**): the temperature must arrive materialized.
root newspaper
elem newspaper = title.date.temp.(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
