package regex

import "sync"

// Derive returns the Brzozowski derivative of r with respect to symbol a:
// the language { w : aw ∈ L(r) }. Derivatives power the lazy variant of the
// paper's Section 7 — the (complement of the) target content model is
// explored as a DFA whose states are derivative expressions, built only as
// far as the rewriting search actually needs.
func Derive(r *Regex, a Symbol) *Regex {
	switch r.Op {
	case OpNever, OpEmpty:
		return never
	case OpSym:
		if r.Sym == a {
			return empty
		}
		return never
	case OpClass:
		if r.Cls.Contains(a) {
			return empty
		}
		return never
	case OpAlt:
		parts := make([]*Regex, len(r.Subs))
		for i, s := range r.Subs {
			parts[i] = Derive(s, a)
		}
		return Alt(parts...)
	case OpConcat:
		// d(r1.r2...rn) = d(r1).r2...rn  |  (if r1 nullable) d(r2...rn)
		rest := Concat(r.Subs[1:]...)
		first := Concat(Derive(r.Subs[0], a), rest)
		if r.Subs[0].Nullable() {
			return Alt(first, Derive(rest, a))
		}
		return first
	case OpStar:
		return Concat(Derive(r.Subs[0], a), r)
	}
	panic("regex: bad op")
}

// Match reports whether the word (a sequence of symbols) is in L(r),
// by repeated derivation. It is linear in len(word) times derivative cost
// and requires no automaton construction.
func Match(r *Regex, word []Symbol) bool {
	for _, a := range word {
		r = Derive(r, a)
		if r.Op == OpNever {
			return false
		}
	}
	return r.Nullable()
}

// Deriver memoizes derivatives of a root expression, giving an implicit DFA:
// states are canonical derivative keys, transitions are computed on demand.
// It is the engine behind the lazy safe-rewriting variant. A Deriver is safe
// for concurrent use, so one table of derivatives can be shared by all lazy
// analyses running against the same compiled schema pair.
type Deriver struct {
	mu   sync.RWMutex
	memo map[string]map[Symbol]*Regex
}

// NewDeriver returns an empty derivative cache.
func NewDeriver() *Deriver {
	return &Deriver{memo: make(map[string]map[Symbol]*Regex)}
}

// Derive returns the memoized derivative of r by a.
func (d *Deriver) Derive(r *Regex, a Symbol) *Regex {
	k := r.Key()
	d.mu.RLock()
	out, ok := d.memo[k][a]
	d.mu.RUnlock()
	if ok {
		return out
	}
	out = Derive(r, a)
	d.mu.Lock()
	defer d.mu.Unlock()
	row := d.memo[k]
	if row == nil {
		row = make(map[Symbol]*Regex)
		d.memo[k] = row
	}
	if prev, ok := row[a]; ok {
		// A racing writer got here first; hand out the published node so
		// every caller sees one canonical derivative per (state, symbol).
		return prev
	}
	row[a] = out
	return out
}

// States reports how many distinct expressions have had a derivative taken —
// a proxy for "DFA states explored", used by the lazy-vs-eager experiments.
func (d *Deriver) States() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.memo)
}
