package core

import (
	"context"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

// patternSchemas builds a sender with concrete weather services and a target
// whose newspaper slot admits any Forecast-pattern function.
func patternSchemas(t *testing.T) (*schema.Schema, *schema.Schema) {
	t.Helper()
	preds := map[string]schema.Predicate{
		"uddi": func(name string, in, out *regex.Regex) bool {
			return strings.HasPrefix(name, "Get_")
		},
	}
	sender := schema.MustParseText(`
root newspaper
elem newspaper = title.(Get_Temp|Rogue_Temp|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
func Rogue_Temp = city -> temp
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), `
root newspaper
elem newspaper = title.(Forecast|temp)
elem title = data
elem temp = data
elem city = data
pattern Forecast = city -> temp {pred=uddi}
`, preds)
	if err != nil {
		t.Fatal(err)
	}
	return sender, target
}

// TestPatternKeepSafe: a concrete function matching the target's pattern may
// be kept — the pattern expansion makes Get_Temp a word of the target model.
func TestPatternKeepSafe(t *testing.T) {
	sender, target := patternSchemas(t)
	rw := NewRewriter(sender, target, 1, stubInvoker{})
	rw.Audit = &Audit{}
	good := doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("t")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	out, err := rw.RewriteDocument(good, Safe)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Audit.Len() != 0 {
		t.Errorf("pattern-matching call should be kept, %d calls made", rw.Audit.Len())
	}
	if err := rw.Context().Validate(out); err != nil {
		t.Errorf("result invalid: %v", err)
	}
}

// TestPatternRejectedMustMaterialize: a function failing the predicate does
// not match the pattern; the only safe move is invoking it.
func TestPatternRejectedMustMaterialize(t *testing.T) {
	sender, target := patternSchemas(t)
	inv := stubInvoker{
		"Rogue_Temp": ret(doc.Elem("temp", doc.TextNode("12"))),
	}
	rw := NewRewriter(sender, target, 1, inv)
	rw.Audit = &Audit{}
	rogue := doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("t")),
		doc.Call("Rogue_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	out, err := rw.RewriteDocument(rogue, Safe)
	if err != nil {
		t.Fatal(err)
	}
	calls := rw.Audit.Calls()
	if len(calls) != 1 || calls[0].Func != "Rogue_Temp" {
		t.Errorf("audit = %+v, want one Rogue_Temp call", calls)
	}
	if out.Children[1].Label != "temp" {
		t.Errorf("children = %v", out.ChildLabels())
	}
}

// TestPatternLazyAgrees: pattern expansion behaves identically under the
// lazy engine.
func TestPatternLazyAgrees(t *testing.T) {
	sender, target := patternSchemas(t)
	for _, callName := range []string{"Get_Temp", "Rogue_Temp"} {
		d := doc.Elem("newspaper",
			doc.Elem("title", doc.TextNode("t")),
			doc.Call(callName, doc.Elem("city", doc.TextNode("Paris"))))
		eager := NewRewriter(sender, target, 1, nil)
		lazy := NewRewriter(sender, target, 1, nil)
		lazy.Engine = Lazy
		// Safe either way (keep for Get_Temp, call for Rogue_Temp).
		errE := eager.CheckDocument(d, Safe)
		errL := lazy.CheckDocument(d, Safe)
		if (errE == nil) != (errL == nil) {
			t.Errorf("%s: eager=%v lazy=%v", callName, errE, errL)
		}
	}
}

// TestAbstractPatternInOutputType: a service's output type mentions a
// pattern ("returns some Forecast-style function"); keeping the abstract
// occurrence matches the target's same pattern, and invoking it uses the
// pattern's output type.
func TestAbstractPatternInOutputType(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = Directory
elem temp = data
elem city = data
func Directory = data -> Forecast
pattern Forecast = city -> temp
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), `
root page
elem page = Forecast|temp
elem temp = data
elem city = data
pattern Forecast = city -> temp
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(sender, target)
	w := WordTokens([]regex.Symbol{c.Table.Intern("Directory")})
	// Calling Directory yields an abstract Forecast occurrence, which the
	// target admits — safe at k=1.
	targetModel := regex.MustParse(c.Table, "Forecast|temp")
	safe, err := WordSafe(c, w, targetModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Error("keeping the returned Forecast function should be safe")
	}
	// Requiring a concrete temp needs the abstract function invoked too:
	// depth 2.
	tempOnly := regex.MustParse(c.Table, "temp")
	safe1, err := WordSafe(c, w, tempOnly, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safe1 {
		t.Error("k=1 cannot invoke the returned function")
	}
	safe2, err := WordSafe(c, w, tempOnly, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !safe2 {
		t.Error("k=2 should invoke the returned Forecast function")
	}
}

// TestWildcardTarget: targets containing wildcards admit arbitrary kept
// content; exclusions force materialization.
func TestWildcardTarget(t *testing.T) {
	c, w := paperCompiled(t), []Token(nil)
	_ = w
	word := paperWord(c)
	// title.date.~* admits everything after title.date, functions included.
	anyTail := regex.MustParse(c.Table, "title.date.~*")
	safe, err := WordSafe(c, word, anyTail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Error("wildcard tail should accept the word as-is")
	}
	// Excluding Get_Temp forces its materialization.
	noGetTemp := regex.MustParse(c.Table, "title.date.~!(Get_Temp)*")
	safe0, err := WordSafe(c, word, noGetTemp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if safe0 {
		t.Error("k=0 cannot remove the excluded Get_Temp")
	}
	safe1, err := WordSafe(c, word, noGetTemp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !safe1 {
		t.Error("k=1 materializes Get_Temp into temp, which the wildcard admits")
	}
	// Lazy agreement on wildcard targets.
	lazy, err := LazySafe(c, word, noGetTemp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.Verdict {
		t.Error("lazy disagrees on wildcard target")
	}
}

// TestWildcardInOutputType: a service may return arbitrary elements; safety
// against a closed target must treat the wildcard adversarially.
func TestWildcardInOutputType(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = Anything
elem a = data
func Anything = data -> ~*
`, nil)
	c := Compile(s, s)
	w := WordTokens([]regex.Symbol{c.Table.Intern("Anything")})
	// A closed target cannot be guaranteed: the wildcard may produce
	// anything at all.
	closed := regex.MustParse(c.Table, "a*")
	safe, err := WordSafe(c, w, closed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("calling a wildcard-output service can never be safe against a closed target")
	}
	possible, err := WordPossible(c, w, closed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !possible {
		t.Error("it is possible though (the service may return only a's)")
	}
	// An open target is safe.
	open := regex.MustParse(c.Table, "~*")
	safeOpen, err := WordSafe(c, w, open, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !safeOpen {
		t.Error("wildcard target accepts whatever comes back")
	}
	// Lazy agreement across all three.
	for _, tc := range []struct {
		target *regex.Regex
		k      int
		want   bool
	}{{closed, 1, false}, {open, 1, true}} {
		l, err := LazySafe(c, w, tc.target, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if l.Verdict != tc.want {
			t.Errorf("lazy wildcard verdict = %v want %v", l.Verdict, tc.want)
		}
	}
}

// TestAuditCosts: cost metadata flows into the audit.
func TestAuditCosts(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = temp.temp
elem temp = data
elem city = data
func Cheap = city -> temp {cost=1}
func Pricey = city -> temp {cost=10}
`, nil)
	inv := stubInvoker{
		"Cheap":  ret(doc.Elem("temp", doc.TextNode("1"))),
		"Pricey": ret(doc.Elem("temp", doc.TextNode("2"))),
	}
	rw := NewRewriter(sender, sender, 1, inv)
	rw.Audit = &Audit{}
	root := doc.Elem("page",
		doc.Call("Cheap", doc.Elem("city")),
		doc.Call("Pricey", doc.Elem("city")))
	// Target requires both materialized.
	if _, err := rw.RewriteForest([]*doc.Node{root}, regex.MustParse(sender.Table, "page"), Safe); err != nil {
		t.Fatal(err)
	}
	if got := rw.Audit.TotalCost(); got != 11 {
		t.Errorf("TotalCost = %v want 11", got)
	}
	if rw.Audit.String() == "" {
		t.Error("Audit.String empty")
	}
}

// TestTokensOfForest and fork statistics.
func TestForkStatistics(t *testing.T) {
	c, _ := PaperPairForTest(t)
	forest := []*doc.Node{
		doc.Elem("title"),
		doc.TextNode("skip me"),
		doc.Call("Get_Temp", doc.Elem("city")),
	}
	tokens := TokensOfForest(c, forest)
	if len(tokens) != 2 {
		t.Fatalf("tokens = %d", len(tokens))
	}
	fork, err := BuildFork(c, tokens, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fork.NumStates() < 3 || fork.NumEdges() < 3 {
		t.Errorf("stats: states=%d edges=%d", fork.NumStates(), fork.NumEdges())
	}
	a, err := AnalyzePossible(c, tokens, regex.MustParse(c.Table, "title.temp"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumProdStates() == 0 {
		t.Error("possible product empty")
	}
	sa, err := AnalyzeSafe(c, tokens, regex.MustParse(c.Table, "title.temp"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa.NumProdEdges() == 0 {
		t.Error("safe product has no edges")
	}
}

// PaperPairForTest exposes the paper fixture for sibling test files.
func PaperPairForTest(t *testing.T) (*Compiled, []Token) {
	t.Helper()
	c := paperCompiled(t)
	return c, paperWord(c)
}

// TestModeAndErrorStrings: formatting helpers.
func TestModeAndErrorStrings(t *testing.T) {
	if Safe.String() != "safe" || Possible.String() != "possible" || Mixed.String() != "mixed" {
		t.Error("mode strings wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode string")
	}
	e := &NotSafeError{Msg: "boom"}
	if !strings.Contains(e.Error(), "boom") || strings.Contains(e.Error(), "//") {
		t.Errorf("error = %q", e.Error())
	}
	e2 := &NotSafeError{Path: "/a/b", Msg: "boom"}
	if !strings.Contains(e2.Error(), "/a/b") {
		t.Errorf("error = %q", e2.Error())
	}
}

// TestDocumentTypeErrors: root resolution corner cases.
func TestDocumentTypeErrors(t *testing.T) {
	s := schema.MustParseText("elem a = data", nil) // no root declared
	rw := NewRewriter(s, s, 1, nil)
	if err := rw.CheckDocument(doc.Call("F"), Safe); err == nil {
		t.Error("function root without schema root should fail")
	}
	if err := rw.CheckDocument(doc.Elem("undeclared"), Safe); err == nil {
		t.Error("undeclared root label should fail")
	}
	if err := rw.CheckDocument(doc.Elem("a", doc.TextNode("x")), Safe); err != nil {
		t.Errorf("declared data root should pass: %v", err)
	}
}

// TestInvokerFuncAdapter covers the function adapter.
func TestInvokerFuncAdapter(t *testing.T) {
	inv := InvokerFunc(func(call *doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.TextNode(call.Label)}, nil
	})
	out, err := inv.Invoke(context.Background(), doc.Call("X"))
	if err != nil || len(out) != 1 || out[0].Value != "X" {
		t.Errorf("adapter broken: %v %v", out, err)
	}
}
