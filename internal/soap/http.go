package soap

import (
	"bytes"
	"fmt"
	"net/http"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/service"
)

// Server exposes a service registry as a SOAP endpoint. The OnRequest and
// OnResponse hooks are where the peer's Schema Enforcement module plugs in:
// they may rewrite (materialize) the forests or reject the exchange.
type Server struct {
	Registry  *service.Registry
	Namespace string
	// OnRequest intercepts decoded parameters before dispatch.
	OnRequest func(method string, params []*doc.Node) ([]*doc.Node, error)
	// OnResponse intercepts results before they are written back.
	OnResponse func(method string, result []*doc.Node) ([]*doc.Node, error)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoints accept POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := ReadRequest(r.Body)
	if err != nil {
		s.fault(w, http.StatusBadRequest, "soap:Client", err)
		return
	}
	params := req.Params
	if s.OnRequest != nil {
		params, err = s.OnRequest(req.Method, params)
		if err != nil {
			s.fault(w, http.StatusBadRequest, "soap:Client", err)
			return
		}
	}
	result, err := s.Registry.Call(req.Method, params)
	if err != nil {
		s.fault(w, http.StatusInternalServerError, "soap:Server", err)
		return
	}
	if s.OnResponse != nil {
		result, err = s.OnResponse(req.Method, result)
		if err != nil {
			s.fault(w, http.StatusInternalServerError, "soap:Server", err)
			return
		}
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, req.Method, s.Namespace, result); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) fault(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	_ = WriteFault(w, code, err.Error())
}

// Client calls a fixed SOAP endpoint.
type Client struct {
	Endpoint  string
	Namespace string
	HTTP      *http.Client
}

// Call performs one SOAP request/response round trip.
func (c *Client) Call(method string, params []*doc.Node) ([]*doc.Node, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, method, c.Namespace, params); err != nil {
		return nil, err
	}
	resp, err := httpc.Post(c.Endpoint, "text/xml; charset=utf-8", &buf)
	if err != nil {
		return nil, fmt.Errorf("soap: calling %s at %s: %w", method, c.Endpoint, err)
	}
	defer resp.Body.Close()
	out, err := ReadResponse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("soap: %s at %s: %w", method, c.Endpoint, err)
	}
	return out, nil
}

// Invoker routes function nodes to SOAP endpoints: a node's ServiceRef
// endpoint wins; Default is used for nodes without one. It implements
// core.Invoker, making remote services directly usable by the rewriter.
type Invoker struct {
	// Default is the endpoint for calls without an explicit ServiceRef.
	Default string
	// Namespace stamps outgoing body elements.
	Namespace string
	HTTP      *http.Client
}

// Invoke implements core.Invoker.
func (i *Invoker) Invoke(call *doc.Node) ([]*doc.Node, error) {
	endpoint := i.Default
	ns := i.Namespace
	if call.Service != nil {
		if call.Service.Endpoint != "" {
			endpoint = call.Service.Endpoint
		}
		if call.Service.Namespace != "" {
			ns = call.Service.Namespace
		}
	}
	if endpoint == "" {
		return nil, fmt.Errorf("soap: no endpoint for %q", call.Label)
	}
	c := &Client{Endpoint: endpoint, Namespace: ns, HTTP: i.HTTP}
	return c.Call(call.Label, call.Children)
}

var _ core.Invoker = (*Invoker)(nil)
