package automata

import (
	"fmt"
	"sort"
	"strings"

	"axml/internal/regex"
)

// DFA is a deterministic automaton over an explicit effective alphabet plus
// one implicit "other" column standing for every symbol outside it. The
// other column is what lets complement automata be *complete* over the
// unbounded name universe, as required by step (4) of the paper's Figure 3
// algorithm.
//
// Trans[s] has len(Alphabet)+1 entries; the last is the other column. A
// NoState entry means the transition is missing (the DFA is incomplete).
type DFA struct {
	Alphabet []regex.Symbol // sorted, deduplicated
	Start    State
	Accept   []bool
	Trans    [][]State
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Accept) }

// otherCol is the index of the implicit other column.
func (d *DFA) otherCol() int { return len(d.Alphabet) }

// Col returns the transition column for symbol x: its alphabet index, or the
// other column when x is outside the effective alphabet.
func (d *DFA) Col(x regex.Symbol) int {
	i := sort.Search(len(d.Alphabet), func(i int) bool { return d.Alphabet[i] >= x })
	if i < len(d.Alphabet) && d.Alphabet[i] == x {
		return i
	}
	return d.otherCol()
}

// Step returns the successor of s on symbol x (NoState if missing).
func (d *DFA) Step(s State, x regex.Symbol) State { return d.Trans[s][d.Col(x)] }

// Accepts reports whether the DFA accepts the word.
func (d *DFA) Accepts(word []regex.Symbol) bool {
	s := d.Start
	for _, x := range word {
		s = d.Step(s, x)
		if s == NoState {
			return false
		}
	}
	return d.Accept[s]
}

// Determinize runs the subset construction on a over the given effective
// alphabet. The alphabet is extended internally with every symbol mentioned
// by the automaton's edge classes; after that extension, all symbols outside
// the alphabet behave identically on every edge (a class either excludes
// none of them or all of them), which makes the single other column sound.
func Determinize(a *NFA, alphabet []regex.Symbol) *DFA {
	sigma := append([]regex.Symbol(nil), alphabet...)
	sigma = append(sigma, a.MentionedSymbols()...)
	sort.Slice(sigma, func(i, j int) bool { return sigma[i] < sigma[j] })
	sigma = dedupStates(sigma)

	d := &DFA{Alphabet: sigma}
	index := map[string]State{}
	var subsets [][]State

	intern := func(set []State) (State, bool) {
		k := subsetKey(set)
		if s, ok := index[k]; ok {
			return s, false
		}
		s := State(len(subsets))
		index[k] = s
		subsets = append(subsets, set)
		acc := false
		for _, q := range set {
			if a.Accept[q] {
				acc = true
				break
			}
		}
		d.Accept = append(d.Accept, acc)
		d.Trans = append(d.Trans, make([]State, len(sigma)+1))
		return s, true
	}

	start := a.EpsClosure([]State{a.Start})
	s0, _ := intern(start)
	d.Start = s0
	work := []State{s0}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		set := subsets[s]
		for col := 0; col <= len(sigma); col++ {
			var next []State
			if col < len(sigma) {
				next = a.Move(set, sigma[col])
			} else {
				next = moveOther(a, set, sigma)
			}
			if len(next) == 0 {
				d.Trans[s][col] = NoState
				continue
			}
			t, fresh := intern(next)
			d.Trans[s][col] = t
			if fresh {
				work = append(work, t)
			}
		}
	}
	return d
}

// moveOther computes the ε-closed successor set for an arbitrary symbol not
// in sigma: exactly the targets of negated-class edges (a negated class
// whose exceptions are all in sigma matches every outside symbol; positive
// classes match none of them).
func moveOther(a *NFA, states []State, sigma []regex.Symbol) []State {
	var next []State
	for _, s := range states {
		for _, e := range a.Edges[s] {
			if !e.Eps && e.Cls.Negated {
				next = append(next, e.To)
			}
		}
	}
	_ = sigma
	return a.EpsClosure(next)
}

func subsetKey(set []State) string {
	var b strings.Builder
	for _, s := range set {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

func dedupStates[T comparable](s []T) []T {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Complete returns a DFA accepting the same language with a total transition
// function: missing transitions are redirected to a fresh non-accepting sink
// state. If d is already complete it is returned unchanged.
func (d *DFA) Complete() *DFA {
	complete := true
outer:
	for _, row := range d.Trans {
		for _, t := range row {
			if t == NoState {
				complete = false
				break outer
			}
		}
	}
	if complete {
		return d
	}
	n := d.NumStates()
	out := &DFA{
		Alphabet: d.Alphabet,
		Start:    d.Start,
		Accept:   append(append([]bool(nil), d.Accept...), false),
		Trans:    make([][]State, n+1),
	}
	sink := State(n)
	for s := 0; s < n; s++ {
		row := append([]State(nil), d.Trans[s]...)
		for i, t := range row {
			if t == NoState {
				row[i] = sink
			}
		}
		out.Trans[s] = row
	}
	sinkRow := make([]State, len(d.Alphabet)+1)
	for i := range sinkRow {
		sinkRow[i] = sink
	}
	out.Trans[sink] = sinkRow
	return out
}

// Complement returns a complete DFA accepting exactly the words d rejects.
func (d *DFA) Complement() *DFA {
	c := d.Complete()
	acc := make([]bool, len(c.Accept))
	for i, a := range c.Accept {
		acc[i] = !a
	}
	return &DFA{Alphabet: c.Alphabet, Start: c.Start, Accept: acc, Trans: c.Trans}
}

// ComplementOfRegex builds the complete complement automaton Ā of a content
// model — step (4) of the paper's Figure 3 — in one call.
func ComplementOfRegex(r *regex.Regex, alphabet []regex.Symbol) *DFA {
	return Determinize(FromRegex(r), alphabet).Complement()
}

// DeadStates returns the states from which no accepting state is reachable.
// In a complement automaton these are exactly the "sink" accepting regions
// the lazy variant of the paper (Fig. 12) prunes at.
func (d *DFA) DeadStates() []bool {
	n := d.NumStates()
	// Build the reverse adjacency once, then BFS from accepting states.
	rev := make([][]State, n)
	for s := 0; s < n; s++ {
		for _, t := range d.Trans[s] {
			if t != NoState {
				rev[t] = append(rev[t], State(s))
			}
		}
	}
	alive := make([]bool, n)
	var queue []State
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			alive[s] = true
			queue = append(queue, State(s))
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range rev[s] {
			if !alive[p] {
				alive[p] = true
				queue = append(queue, p)
			}
		}
	}
	dead := make([]bool, n)
	for s := range dead {
		dead[s] = !alive[s]
	}
	return dead
}

// IsEmpty reports whether L(d) = ∅.
func (d *DFA) IsEmpty() bool {
	dead := d.DeadStates()
	return dead[d.Start]
}

// Intersect returns the product DFA accepting L(d) ∩ L(e). Both operands
// must share sorted effective alphabets; the result's alphabet is the union.
func Intersect(d, e *DFA) *DFA { return product(d, e, func(a, b bool) bool { return a && b }) }

// Union returns the product DFA accepting L(d) ∪ L(e) (operands are
// completed first so that missing rows do not truncate the union).
func Union(d, e *DFA) *DFA {
	return product(d.Complete(), e.Complete(), func(a, b bool) bool { return a || b })
}

// Difference returns a DFA accepting L(d) ∖ L(e).
func Difference(d, e *DFA) *DFA {
	return product(d, e.Complement(), func(a, b bool) bool { return a && b })
}

func product(d, e *DFA, combine func(a, b bool) bool) *DFA {
	sigma := append(append([]regex.Symbol(nil), d.Alphabet...), e.Alphabet...)
	sort.Slice(sigma, func(i, j int) bool { return sigma[i] < sigma[j] })
	sigma = dedupStates(sigma)

	type pair struct{ a, b State }
	out := &DFA{Alphabet: sigma}
	index := map[pair]State{}
	var pairs []pair
	intern := func(p pair) (State, bool) {
		if s, ok := index[p]; ok {
			return s, false
		}
		s := State(len(pairs))
		index[p] = s
		pairs = append(pairs, p)
		out.Accept = append(out.Accept, combine(d.Accept[p.a], e.Accept[p.b]))
		out.Trans = append(out.Trans, make([]State, len(sigma)+1))
		return s, true
	}
	s0, _ := intern(pair{d.Start, e.Start})
	out.Start = s0
	work := []State{s0}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		p := pairs[s]
		step := func(col int, x regex.Symbol, other bool) {
			var ta, tb State
			if other {
				ta, tb = d.Trans[p.a][d.otherCol()], e.Trans[p.b][e.otherCol()]
			} else {
				ta, tb = d.Step(p.a, x), e.Step(p.b, x)
			}
			if ta == NoState || tb == NoState {
				out.Trans[s][col] = NoState
				return
			}
			t, fresh := intern(pair{ta, tb})
			out.Trans[s][col] = t
			if fresh {
				work = append(work, t)
			}
		}
		for col, x := range sigma {
			step(col, x, false)
		}
		step(len(sigma), 0, true)
	}
	return out
}

// Equivalent reports whether two DFAs accept the same language, via a
// synchronized BFS that demands acceptance agreement on every reachable
// pair (both operands are completed first).
func Equivalent(d, e *DFA) bool {
	dc, ec := d.Complete(), e.Complete()
	sigma := append(append([]regex.Symbol(nil), dc.Alphabet...), ec.Alphabet...)
	sort.Slice(sigma, func(i, j int) bool { return sigma[i] < sigma[j] })
	sigma = dedupStates(sigma)

	type pair struct{ a, b State }
	seen := map[pair]bool{}
	queue := []pair{{dc.Start, ec.Start}}
	seen[queue[0]] = true
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if dc.Accept[p.a] != ec.Accept[p.b] {
			return false
		}
		for _, x := range sigma {
			q := pair{dc.Step(p.a, x), ec.Step(p.b, x)}
			if !seen[q] {
				seen[q] = true
				queue = append(queue, q)
			}
		}
		q := pair{dc.Trans[p.a][dc.otherCol()], ec.Trans[p.b][ec.otherCol()]}
		if !seen[q] {
			seen[q] = true
			queue = append(queue, q)
		}
	}
	return true
}

func (d *DFA) String() string {
	return fmt.Sprintf("DFA{states: %d, alphabet: %d, start: %d}", d.NumStates(), len(d.Alphabet), d.Start)
}
