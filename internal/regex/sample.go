package regex

import (
	"math/rand"
)

// Sampler draws random words from regular languages. It backs the simulated
// Web services of this repository: a simulated service answers a call with
// an arbitrary *output instance* of its declared signature, which at the
// word level is exactly a random member of the output type's language.
//
// Star repetitions are drawn geometrically with parameter StarContinue so
// that expected word lengths stay bounded; fresh symbols for negated-class
// wildcards are drawn through Fresh.
type Sampler struct {
	Rng *rand.Rand
	// StarContinue is the probability of taking one more iteration of a
	// starred subexpression. Must be in [0,1). Default 0.5.
	StarContinue float64
	// MaxStar caps iterations of any single star (safety net). Default 8.
	MaxStar int
	// Fresh supplies a symbol matched by a negated class c; it may intern a
	// brand-new name. If nil, sampling a wildcard panics.
	Fresh func(c Class) Symbol
}

// NewSampler returns a sampler with the given source and default tuning.
func NewSampler(rng *rand.Rand) *Sampler {
	return &Sampler{Rng: rng, StarContinue: 0.5, MaxStar: 8}
}

// Sample returns a uniform-ish random word of L(r), and false iff L(r) is
// empty. The distribution is not uniform over the language (which may be
// infinite); it is the natural top-down distribution with geometric stars,
// which is exactly what an "arbitrary output instance" needs.
func (s *Sampler) Sample(r *Regex) ([]Symbol, bool) {
	if emptyLanguage(r) {
		return nil, false
	}
	word := make([]Symbol, 0, 8)
	word, ok := s.append(word, r)
	return word, ok
}

func (s *Sampler) append(word []Symbol, r *Regex) ([]Symbol, bool) {
	switch r.Op {
	case OpNever:
		return word, false
	case OpEmpty:
		return word, true
	case OpSym:
		return append(word, r.Sym), true
	case OpClass:
		if !r.Cls.Negated {
			if len(r.Cls.Syms) == 0 {
				return word, false
			}
			return append(word, r.Cls.Syms[s.Rng.Intn(len(r.Cls.Syms))]), true
		}
		if s.Fresh == nil {
			panic("regex: Sampler.Fresh not set but language has wildcards")
		}
		return append(word, s.Fresh(r.Cls)), true
	case OpConcat:
		ok := true
		for _, sub := range r.Subs {
			word, ok = s.append(word, sub)
			if !ok {
				return word, false
			}
		}
		return word, true
	case OpAlt:
		// Choose uniformly among non-empty branches.
		live := make([]*Regex, 0, len(r.Subs))
		for _, sub := range r.Subs {
			if !emptyLanguage(sub) {
				live = append(live, sub)
			}
		}
		if len(live) == 0 {
			return word, false
		}
		return s.append(word, live[s.Rng.Intn(len(live))])
	case OpStar:
		maxIter := s.MaxStar
		if maxIter <= 0 {
			maxIter = 8
		}
		p := s.StarContinue
		if p <= 0 || p >= 1 {
			p = 0.5
		}
		for i := 0; i < maxIter; i++ {
			if s.Rng.Float64() >= p {
				break
			}
			var ok bool
			word, ok = s.append(word, r.Subs[0])
			if !ok {
				// Body language empty: star contributes only ε.
				return word, true
			}
		}
		return word, true
	}
	panic("regex: bad op")
}

// emptyLanguage reports whether L(r) = ∅. Because constructors propagate ∅
// everywhere except inside Star (where it normalizes away) this reduces to
// checking for the canonical ∅ node and empty positive classes.
func emptyLanguage(r *Regex) bool {
	switch r.Op {
	case OpNever:
		return true
	case OpClass:
		return r.Cls.IsEmpty()
	case OpConcat:
		for _, s := range r.Subs {
			if emptyLanguage(s) {
				return true
			}
		}
		return false
	case OpAlt:
		for _, s := range r.Subs {
			if !emptyLanguage(s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ShortestWord returns a minimum-length word of L(r) and false iff the
// language is empty. Used to build representative documents for the
// schema-rewriting reduction (Section 6) and minimal counter-examples in
// error messages.
func ShortestWord(r *Regex) ([]Symbol, bool) {
	switch r.Op {
	case OpNever:
		return nil, false
	case OpEmpty, OpStar:
		if r.Op == OpStar {
			return []Symbol{}, true
		}
		return []Symbol{}, true
	case OpSym:
		return []Symbol{r.Sym}, true
	case OpClass:
		if r.Cls.IsEmpty() {
			return nil, false
		}
		if !r.Cls.Negated {
			return []Symbol{r.Cls.Syms[0]}, true
		}
		// A wildcard's shortest word needs an arbitrary symbol; callers that
		// can reach here must handle wildcards themselves.
		panic("regex: ShortestWord over a wildcard class")
	case OpConcat:
		var out []Symbol
		for _, s := range r.Subs {
			w, ok := ShortestWord(s)
			if !ok {
				return nil, false
			}
			out = append(out, w...)
		}
		return out, true
	case OpAlt:
		var best []Symbol
		found := false
		for _, s := range r.Subs {
			w, ok := ShortestWord(s)
			if ok && (!found || len(w) < len(best)) {
				best, found = w, true
			}
		}
		return best, found
	}
	panic("regex: bad op")
}
