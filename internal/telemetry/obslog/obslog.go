// Package obslog is a dependency-free leveled structured logger for the
// serving path. Lines render as JSON (one object per line, machine
// ingestible) or text (human readable); both carry the trace ID in
// effect on the calling context so a request-log line, its span tree in
// /debug/traces, and its audit events correlate on one ID.
//
// A nil *Logger no-ops on every method, so components take a logger
// field without branching on whether logging is configured.
package obslog

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"axml/internal/telemetry"
)

// Level orders log severities.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel parses a level name (case-insensitive; "warning" is
// accepted for "warn").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return Debug, nil
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("unknown log level %q (debug|info|warn|error)", s)
}

// Format selects the line encoding.
type Format uint8

const (
	Text Format = iota
	JSON
)

// ParseFormat parses a format name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text":
		return Text, nil
	case "json":
		return JSON, nil
	}
	return Text, fmt.Errorf("unknown log format %q (text|json)", s)
}

// Field is one key/value pair attached to a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Err builds an "error" field (skipped when err is nil).
func Err(err error) Field {
	if err == nil {
		return Field{}
	}
	return Field{Key: "error", Value: err.Error()}
}

// Logger writes leveled structured lines to one writer. Loggers derived
// via With share the writer and its mutex, so lines from all of them
// interleave whole.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	format Format
	base   []Field
	now    func() time.Time
}

// New returns a logger writing lines at or above level to w.
func New(w io.Writer, level Level, format Format) *Logger {
	return &Logger{
		mu:     new(sync.Mutex),
		w:      w,
		level:  level,
		format: format,
		now:    time.Now,
	}
}

// With returns a logger that stamps fields on every line it writes.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	d := *l
	d.base = append(append(make([]Field, 0, len(l.base)+len(fields)), l.base...), fields...)
	return &d
}

// Enabled reports whether lines at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// Debug logs at Debug level.
func (l *Logger) Debug(ctx context.Context, msg string, fields ...Field) {
	l.Log(ctx, Debug, msg, fields...)
}

// Info logs at Info level.
func (l *Logger) Info(ctx context.Context, msg string, fields ...Field) {
	l.Log(ctx, Info, msg, fields...)
}

// Warn logs at Warn level.
func (l *Logger) Warn(ctx context.Context, msg string, fields ...Field) {
	l.Log(ctx, Warn, msg, fields...)
}

// Error logs at Error level.
func (l *Logger) Error(ctx context.Context, msg string, fields ...Field) {
	l.Log(ctx, Error, msg, fields...)
}

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Log writes one line. The trace ID in effect on ctx (an enclosing span
// or an extracted traceparent) is stamped as trace_id; a nil ctx skips
// it. Fields with empty keys are dropped, letting Err(nil) no-op.
func (l *Logger) Log(ctx context.Context, lv Level, msg string, fields ...Field) {
	if !l.Enabled(lv) {
		return
	}
	traceID := telemetry.TraceIDFrom(ctx)
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	if l.format == JSON {
		b = append(b, `{"ts":"`...)
		b = l.now().UTC().AppendFormat(b, time.RFC3339Nano)
		b = append(b, `","level":"`...)
		b = append(b, lv.String()...)
		b = append(b, `","msg":`...)
		b = appendJSONString(b, msg)
		if traceID != "" {
			b = append(b, `,"trace_id":`...)
			b = appendJSONString(b, traceID)
		}
		for _, f := range l.base {
			b = appendJSONField(b, f)
		}
		for _, f := range fields {
			b = appendJSONField(b, f)
		}
		b = append(b, '}', '\n')
	} else {
		b = l.now().UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
		b = append(b, ' ')
		lvs := strings.ToUpper(lv.String())
		b = append(b, lvs...)
		for i := len(lvs); i < 5; i++ {
			b = append(b, ' ')
		}
		b = append(b, ' ')
		b = append(b, msg...)
		if traceID != "" {
			b = append(b, " trace_id="...)
			b = appendTextValue(b, traceID)
		}
		for _, f := range l.base {
			b = appendTextField(b, f)
		}
		for _, f := range fields {
			b = appendTextField(b, f)
		}
		b = append(b, '\n')
	}
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
	*bp = b[:0]
	bufPool.Put(bp)
}

func appendJSONField(b []byte, f Field) []byte {
	if f.Key == "" {
		return b
	}
	b = append(b, ',')
	b = appendJSONString(b, f.Key)
	b = append(b, ':')
	return appendJSONValue(b, f.Value)
}

func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...)
	case string:
		return appendJSONString(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case time.Duration:
		return appendJSONString(b, x.String())
	case time.Time:
		return appendJSONString(b, x.UTC().Format(time.RFC3339Nano))
	case error:
		return appendJSONString(b, x.Error())
	case fmt.Stringer:
		return appendJSONString(b, x.String())
	default:
		return appendJSONString(b, fmt.Sprint(x))
	}
}

func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			const hexdigits = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hexdigits[c>>4], hexdigits[c&0xf])
		default:
			// Multi-byte UTF-8 passes through unescaped; JSON allows it.
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func appendTextField(b []byte, f Field) []byte {
	if f.Key == "" {
		return b
	}
	b = append(b, ' ')
	b = append(b, f.Key...)
	b = append(b, '=')
	return appendTextValue(b, textValue(f.Value))
}

func textValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	default:
		return fmt.Sprint(x)
	}
}

func appendTextValue(b []byte, s string) []byte {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}
