// Search-engine handles over real SOAP (Sections 3 and 7 of the paper): a
// search peer returns a page of URLs plus a Get_More function node — an
// intensional "next page" handle. A client whose exchange schema demands
// plain data must chase the handle; the k-depth bound (Definition 7) decides
// how far it will go.
//
// The example starts an Active XML peer on a random localhost port, fetches
// its WSDL_int description, and exchanges documents over HTTP.
//
//	go run ./examples/searchengine
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"axml"
)

const searchSchema = `
root results
elem results = url*.Get_More?
elem url = data
func Search = data -> url*.Get_More?
func Get_More = data -> url*.Get_More?
`

func main() {
	s := axml.MustParseSchemaText(searchSchema)
	p := axml.NewPeer("search", s)

	// The engine has 7 hits and serves them 3 per page, returning a
	// Get_More handle while more remain.
	hits := []string{"a.example", "b.example", "c.example", "d.example", "e.example", "f.example", "g.example"}
	page := func(from int) []*axml.Node {
		var out []*axml.Node
		end := from + 3
		if end > len(hits) {
			end = len(hits)
		}
		for _, h := range hits[from:end] {
			out = append(out, axml.Elem("url", axml.Text("http://"+h)))
		}
		if end < len(hits) {
			out = append(out, axml.Call("Get_More", axml.Text(fmt.Sprint(end))))
		}
		return out
	}
	pageHandler := func(params []*axml.Node) ([]*axml.Node, error) {
		from := 0
		if len(params) > 0 && params[0].Kind == axml.KindText {
			fmt.Sscan(params[0].Value, &from)
		}
		return page(from), nil
	}
	for _, op := range []string{"Search", "Get_More"} {
		err := p.Services.Register(&axml.ServiceOperation{Name: op, Def: s.Funcs[op], Handler: pageHandler})
		if err != nil {
			log.Fatal(err)
		}
	}
	// The repository holds an intensional result document: first page plus
	// handle.
	p.Repo.Put("query-42", axml.Elem("results", page(0)...))

	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	p.Endpoint = ts.URL + "/soap"
	fmt.Printf("search peer serving at %s\n", ts.URL)

	// A client fetches the peer's WSDL_int description.
	resp, err := http.Get(ts.URL + "/wsdl")
	if err != nil {
		log.Fatal(err)
	}
	desc, err := axml.FetchWSDL(resp.Body, nil)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered service %q with operations %v\n\n", desc.Name, desc.Operations())

	// Exchange the stored document under increasingly demanding schemas.
	// The function nodes carry no endpoint, so the client routes calls to
	// the peer's default SOAP address.
	invoker := axml.SOAPInvoker(ts.URL + "/soap")

	fetch := func() *axml.Node {
		r, err := http.Get(ts.URL + "/doc/query-42")
		if err != nil {
			log.Fatal(err)
		}
		defer r.Body.Close()
		d, err := axml.ParseDocument(r.Body)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	intensional := axml.MustParseSchemaTextShared(s, searchSchema)
	flat := axml.MustParseSchemaTextShared(s, strings.Replace(searchSchema,
		"elem results = url*.Get_More?",
		"elem results = url*", 1))

	fmt.Println("receiver accepts intensional results (keep the handle):")
	rw := axml.NewRewriter(s, intensional, 1, invoker)
	rw.Audit = &axml.Audit{}
	out, err := rw.RewriteDocument(fetch(), axml.Safe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v  (calls: %d)\n\n", out.ChildLabels(), rw.Audit.Len())

	fmt.Println("receiver demands plain data — chase the handle (possible mode):")
	for _, k := range []int{1, 2, 3} {
		rw := axml.NewRewriter(s, flat, k, invoker)
		rw.Audit = &axml.Audit{}
		out, err := rw.RewriteDocument(fetch(), axml.Possible)
		if err != nil {
			fmt.Printf("  k=%d: failed (%d calls): handle still alive beyond the depth bound\n", k, rw.Audit.Len())
			continue
		}
		urls := 0
		for _, ch := range out.Children {
			if ch.Label == "url" {
				urls++
			}
		}
		fmt.Printf("  k=%d: %d urls, %d calls, intensional=%v\n", k, urls, rw.Audit.Len(), out.HasFuncs())
	}

	fmt.Println("\nsafe mode can never promise a flat result (the handle may recur):")
	rw = axml.NewRewriter(s, flat, 3, invoker)
	if err := rw.CheckDocument(fetch(), axml.Safe); err != nil {
		fmt.Printf("  refused: %v\n", err)
	} else {
		log.Fatal("safe flattening of a recursive handle should be refused")
	}
}
