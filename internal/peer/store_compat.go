// Package peer implements an Active XML peer (Section 7 of the paper): a
// repository of intensional documents, services defined over the repository,
// SOAP exchange with other peers, and the *Schema Enforcement* module, which
// applies the safe/possible/mixed rewriting algorithms of internal/core to
// every document sent, every parameter list received, and every result
// returned.
//
// The repository itself lives in internal/store (the pluggable storage
// engine); this file keeps the historical peer.* names working as thin
// aliases so existing callers compile unchanged. New code should use
// internal/store (or the axml facade's OpenStore) directly.
package peer

import "axml/internal/store"

// Storage types, re-exported from internal/store.
//
// Deprecated: use the store package (store.Repository and friends) or the
// axml facade's OpenStore.
type (
	// Repository is the in-memory document store.
	Repository = store.Repository
	// DurableRepository is the WAL-backed durable store.
	DurableRepository = store.DurableRepository
	// DurableOptions configures OpenDurable.
	DurableOptions = store.DurableOptions
	// ConflictPolicy decides what LoadDir does on a name collision.
	ConflictPolicy = store.ConflictPolicy
)

// LoadDir conflict policies.
const (
	KeepExisting   = store.KeepExisting
	Overwrite      = store.Overwrite
	FailOnConflict = store.FailOnConflict
)

// ErrNotFound is the sentinel reported (wrapped) when an operation names a
// document the repository does not hold. Test with errors.Is.
var ErrNotFound = store.ErrNotFound

// NewRepository returns an empty in-memory repository.
func NewRepository() *Repository { return store.NewRepository() }

// OpenDurable opens (or creates) the durable repository stored in dir.
//
// Deprecated: use store.Open with Backend "wal" (or axml.OpenStore).
func OpenDurable(dir string, opts DurableOptions) (*DurableRepository, error) {
	return store.OpenDurable(dir, opts)
}

// ValidateDocName rejects names that cannot safely become file names.
func ValidateDocName(name string) error { return store.ValidateDocName(name) }
