package core

import (
	"fmt"

	"axml/internal/automata"
	"axml/internal/doc"
	"axml/internal/regex"
)

// Token is one letter of the word being rewritten — at the tree level, one
// non-text child of the node under consideration.
type Token struct {
	Sym regex.Symbol
	// Depth counts how many invocations produced this occurrence (0 for the
	// original children). A function token may be invoked only while
	// Depth < k, implementing the k-depth restriction of Definition 7.
	Depth int
	// Frozen suppresses the call option: the function is non-invocable,
	// its parameters cannot be made into an input instance, or an earlier
	// left-to-right decision already chose to keep it.
	Frozen bool
	// MustCall suppresses the *keep* option instead: the occurrence is
	// replaced by its output type unconditionally. It encodes the virtual
	// function of the Section 6 schema-rewriting reduction ("a single
	// function element with an output of that type"). MustCall requires a
	// declared output type and overrides Frozen.
	MustCall bool
	// Node back-references the document child for executors; nil in pure
	// word-level analyses.
	Node *doc.Node
}

// TokensOf builds depth-0 tokens from the non-text children of n.
func TokensOf(c *Compiled, n *doc.Node) []Token {
	out := make([]Token, 0, len(n.Children))
	for _, ch := range n.Children {
		if ch.Kind == doc.Text {
			continue
		}
		out = append(out, Token{Sym: c.Table.Intern(ch.Label), Node: ch})
	}
	return out
}

// TokensOfForest builds depth-0 tokens from the non-text roots of a forest.
func TokensOfForest(c *Compiled, forest []*doc.Node) []Token {
	out := make([]Token, 0, len(forest))
	for _, ch := range forest {
		if ch.Kind == doc.Text {
			continue
		}
		out = append(out, Token{Sym: c.Table.Intern(ch.Label), Node: ch})
	}
	return out
}

// WordTokens builds depth-0 tokens from bare symbols (word-level entry
// point, used by tests and the schema-rewriting reduction).
func WordTokens(word []regex.Symbol) []Token {
	out := make([]Token, len(word))
	for i, s := range word {
		out[i] = Token{Sym: s}
	}
	return out
}

// ForkEdge is a transition of the fork automaton A_w^k.
type ForkEdge struct {
	// Eps marks ε-transitions (copy plumbing and call options).
	Eps bool
	// Cls is the symbol class consumed by non-ε edges.
	Cls regex.Class
	To  int
	// IsCall marks the ε edge that represents invoking a function; its
	// Partner is the index (within the same adjacency slice) of the edge
	// that represents keeping the same occurrence, and vice versa.
	// Partner is -1 for edges that are not part of a fork.
	IsCall  bool
	Partner int
	// FuncSym is the function of a keep/call pair.
	FuncSym regex.Symbol
	// Depth is the number of invocations that produced this occurrence.
	Depth int
	// TokenIdx indexes the original token for depth-0 word edges; -1
	// elsewhere. Executors use it to map fork decisions back to children.
	TokenIdx int
}

// Fork is the automaton A_w^k of Figure 3, steps 5–10: the linear automaton
// of the word w, extended — k times, at every invocable function edge — with
// a copy of the Glushkov automaton of the function's output type, reachable
// through an ε "call" edge forking against the "keep" edge.
type Fork struct {
	Compiled *Compiled
	K        int
	Accept   []bool
	Edges    [][]ForkEdge

	numForks int
	// Stats for the experiments.
	CopiesAttached int
}

// MaxForkStates caps A_w^k growth: the construction is exponential in k by
// design (the paper's complexity bound O((|s0|+|w|)^k)), so runaway schemas
// fail fast instead of exhausting memory.
const MaxForkStates = 1 << 18

// BuildFork constructs A_w^k for the given tokens, sharing attached output
// copies between fork edges with identical (function, successor, depth).
func BuildFork(c *Compiled, tokens []Token, k int) (*Fork, error) {
	return buildFork(c, tokens, k, true)
}

// BuildForkUnshared is the literal per-edge attachment of Figure 3, without
// copy sharing — exponential for recursive output types. It exists for the
// copy-sharing ablation experiment; use BuildFork everywhere else.
func BuildForkUnshared(c *Compiled, tokens []Token, k int) (*Fork, error) {
	return buildFork(c, tokens, k, false)
}

func buildFork(c *Compiled, tokens []Token, k int, share bool) (*Fork, error) {
	f := &Fork{Compiled: c, K: k}
	addState := func(accept bool) int {
		f.Accept = append(f.Accept, accept)
		f.Edges = append(f.Edges, nil)
		return len(f.Accept) - 1
	}
	// Spine: one state per word position.
	for i := 0; i <= len(tokens); i++ {
		addState(i == len(tokens))
	}
	type pending struct {
		from, edge int
		mustCall   bool
	}
	var work []pending
	for i, tok := range tokens {
		if tok.MustCall {
			// Keep option suppressed: the spine edge is a placeholder the
			// attach step replaces by a forced ε into the output copy. We
			// still record the edge so attach logic can reuse To/Depth.
			if fi := c.Func(tok.Sym); fi == nil {
				return nil, fmt.Errorf("core: MustCall token %q is not a declared function", c.Table.Name(tok.Sym))
			}
			f.Edges[i] = append(f.Edges[i], ForkEdge{
				Cls:      regex.NewClass(false, tok.Sym),
				To:       i + 1,
				Partner:  -1,
				FuncSym:  tok.Sym,
				Depth:    tok.Depth,
				TokenIdx: i,
			})
			work = append(work, pending{i, 0, true})
			continue
		}
		e := ForkEdge{
			Cls:      regex.NewClass(false, tok.Sym),
			To:       i + 1,
			Partner:  -1,
			FuncSym:  regex.NoSymbol,
			Depth:    tok.Depth,
			TokenIdx: i,
		}
		if fi := c.Func(tok.Sym); fi != nil {
			e.FuncSym = tok.Sym
		}
		f.Edges[i] = append(f.Edges[i], e)
		if f.callable(tokens[i], c) {
			work = append(work, pending{from: i, edge: 0})
		}
	}

	// Iteratively attach output-type copies (the j = 1..k loop of Fig. 3).
	// Copies are shared between fork edges with the same function, successor
	// state and depth: their attached automata would be identical, and
	// without sharing a recursive output type (Get_More -> url*.Get_More?)
	// attaches 2^k copies instead of k.
	type copyKey struct {
		fn    regex.Symbol
		to    int
		depth int
	}
	copyBase := map[copyKey]int{}
	for len(work) > 0 {
		p := work[0]
		work = work[1:]
		keep := f.Edges[p.from][p.edge]
		fi := c.Func(keep.FuncSym)
		out := fi.Out
		if out == nil {
			out = regex.Empty() // data-returning: ε at the word level
		}
		if out.IsNever() {
			continue // a function that can return nothing has no call option
		}
		depth := keep.Depth + 1
		ck := copyKey{keep.FuncSym, keep.To, depth}
		base, shared := copyBase[ck]
		if !share {
			shared = false
		}
		if !shared {
			nfa := automata.FromRegex(out)
			base = len(f.Accept)
			if base+nfa.Len() > MaxForkStates {
				return nil, fmt.Errorf("core: A_w^%d exceeds %d states; lower k or simplify output types", k, MaxForkStates)
			}
			for s := 0; s < nfa.Len(); s++ {
				addState(false)
			}
			copyBase[ck] = base
			f.CopiesAttached++
			for s := 0; s < nfa.Len(); s++ {
				from := base + s
				for _, e := range nfa.Edges[s] {
					fe := ForkEdge{
						Eps:      e.Eps,
						Cls:      e.Cls,
						To:       base + int(e.To),
						Partner:  -1,
						FuncSym:  regex.NoSymbol,
						Depth:    depth,
						TokenIdx: -1,
					}
					if !e.Eps && !e.Cls.Negated && len(e.Cls.Syms) == 1 && c.Func(e.Cls.Syms[0]) != nil {
						fe.FuncSym = e.Cls.Syms[0]
					}
					f.Edges[from] = append(f.Edges[from], fe)
					if fe.FuncSym != regex.NoSymbol && depth < k && c.invocable(fe.FuncSym) {
						work = append(work, pending{from: from, edge: len(f.Edges[from]) - 1})
					}
				}
				if nfa.Accept[s] {
					f.Edges[from] = append(f.Edges[from], ForkEdge{
						Eps: true, To: keep.To, Partner: -1, FuncSym: regex.NoSymbol, Depth: depth, TokenIdx: -1,
					})
				}
			}
		}
		if p.mustCall {
			// Forced invocation: the spine edge becomes a plain ε into the
			// copy — no keep option, no fork.
			f.Edges[p.from][p.edge] = ForkEdge{
				Eps:      true,
				To:       base + 0,
				Partner:  -1,
				FuncSym:  keep.FuncSym,
				Depth:    depth,
				TokenIdx: keep.TokenIdx,
			}
			continue
		}
		// The call option: ε from the fork node to the copy's start.
		callIdx := len(f.Edges[p.from])
		f.Edges[p.from] = append(f.Edges[p.from], ForkEdge{
			Eps:      true,
			To:       base + 0,
			IsCall:   true,
			Partner:  p.edge,
			FuncSym:  keep.FuncSym,
			Depth:    depth,
			TokenIdx: keep.TokenIdx,
		})
		f.Edges[p.from][p.edge].Partner = callIdx
		f.numForks++
	}
	return f, nil
}

// callable reports whether a depth-0 token's function may be invoked at all.
func (f *Fork) callable(tok Token, c *Compiled) bool {
	if tok.Frozen || tok.Depth >= f.K {
		return false
	}
	fi := c.Func(tok.Sym)
	return fi != nil && fi.Invocable
}

// invocable reports whether a function symbol occurring inside an output
// type may be invoked (no per-token freezing applies at depth > 0: returned
// occurrences are output instances whose parameters conform by definition).
func (c *Compiled) invocable(sym regex.Symbol) bool {
	fi := c.Func(sym)
	return fi != nil && fi.Invocable
}

// NumStates returns the number of states of A_w^k.
func (f *Fork) NumStates() int { return len(f.Accept) }

// NumForks returns the number of keep/call forks.
func (f *Fork) NumForks() int { return f.numForks }

// NumEdges returns the total number of transitions.
func (f *Fork) NumEdges() int {
	n := 0
	for _, es := range f.Edges {
		n += len(es)
	}
	return n
}

// Accepts reports whether word belongs to L(A_w^k) — the set of words
// reachable from w by some k-depth left-to-right rewriting (call edges are
// ordinary ε-moves for language purposes).
func (f *Fork) Accepts(word []regex.Symbol) bool {
	cur := f.closure(map[int]bool{0: true})
	for _, x := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, e := range f.Edges[s] {
				if !e.Eps && e.Cls.Contains(x) {
					next[e.To] = true
				}
			}
		}
		cur = f.closure(next)
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if f.Accept[s] {
			return true
		}
	}
	return false
}

func (f *Fork) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range f.Edges[s] {
			if e.Eps && !set[e.To] {
				set[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return set
}
