package peer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"axml/internal/core"
	"axml/internal/soap"
	"axml/internal/telemetry"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

// Handler exposes the peer over HTTP:
//
//	POST /soap             — SOAP endpoint for the peer's operations, with
//	                         schema enforcement on parameters and results
//	GET  /wsdl             — the peer's WSDL_int description
//	GET  /doc/{name}       — a repository document, as stored (intensional)
//	PUT  /doc/{name}       — store the request body as the named document
//	DELETE /doc/{name}     — remove the named document (idempotent)
//	POST /exchange/{name}  — the Figure 1 scenario: the request body is an
//	                         XML Schema_int exchange schema; the response is
//	                         the document rewritten to conform to it.
//	                         ?mode=safe|possible|mixed (default: the peer's)
//	GET  /stats            — enforcement-cache and audit counters, as JSON
//
// When Telemetry is set, every route is wrapped with per-handler request
// metrics and spans, and two further routes appear:
//
//	GET  /metrics          — Prometheus text exposition of the registry
//	GET  /debug/traces     — the recent-span ring, as JSON
func (p *Peer) Handler() http.Handler {
	p.instruments() // wire cache scrape-time series before traffic
	mux := http.NewServeMux()
	handle := func(pattern, name string, h http.Handler) {
		mux.Handle(pattern, telemetry.InstrumentHandler(p.Telemetry, name, h))
	}
	handle("/soap", "soap", &soap.Server{
		Registry:        p.Services,
		Namespace:       "urn:axml:" + p.Name,
		OnRequest:       p.EnforceInContext,
		OnResponse:      p.EnforceOutContext,
		MaxRequestBytes: p.MaxRequestBytes,
	})
	handle("/wsdl", "wsdl", http.HandlerFunc(p.handleWSDL))
	handle("/doc/", "doc", http.HandlerFunc(p.handleDoc))
	handle("/exchange/", "exchange", http.HandlerFunc(p.handleExchange))
	handle("/stats", "stats", http.HandlerFunc(p.handleStats))
	if p.Telemetry != nil {
		mux.Handle("/metrics", p.Telemetry.MetricsHandler())
		mux.Handle("/debug/traces", p.Telemetry.Tracer().TracesHandler())
	}
	return mux
}

func (p *Peer) handleWSDL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	if err := wsdl.Write(w, p.Description(), nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleDoc serves GET (the stored intensional document), and — so that a
// durable daemon can be driven entirely over HTTP — PUT (store the request
// body as the named document) and DELETE. With a durability layer installed
// a 2xx answer means the mutation is journaled: a WAL append failure surfaces
// as 500 and the repository is unchanged.
func (p *Peer) handleDoc(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/doc/")
	switch r.Method {
	case http.MethodGet:
		d, ok := p.Repo.Get(name)
		if !ok {
			http.Error(w, fmt.Sprintf("no document %q", name), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_ = xmlio.Write(w, d)
	case http.MethodPut:
		if err := ValidateDocName(name); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body := p.limitBody(w, r)
		d, err := xmlio.Parse(body)
		if err != nil {
			http.Error(w, err.Error(), body.errorStatus(err))
			return
		}
		if err := p.Repo.Put(name, d); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := p.Repo.Delete(name); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET, PUT or DELETE only", http.StatusMethodNotAllowed)
	}
}

func (p *Peer) handleExchange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/exchange/")
	mode := p.Mode
	switch r.URL.Query().Get("mode") {
	case "safe":
		mode = core.Safe
	case "possible":
		mode = core.Possible
	case "mixed":
		mode = core.Mixed
	case "":
	default:
		http.Error(w, "mode must be safe, possible or mixed", http.StatusBadRequest)
		return
	}
	// The exchange schema is parsed into a request-scoped *overlay* of the
	// peer's table: shared symbols resolve identically (so the rewriter can
	// relate the two schemas and the enforcement cache still hits on repeated
	// schemas), while labels this peer has never seen intern into the
	// throwaway overlay — N distinct hostile schemas leave the shared table,
	// and therefore peer memory, untouched. The body is capped like every
	// other write path.
	body := p.limitBody(w, r)
	exchange, err := xsdint.Parse(body, xsdint.Options{Table: p.Schema.Table.Overlay()})
	if err != nil {
		http.Error(w, err.Error(), body.errorStatus(err))
		return
	}
	out, err := p.SendDocumentContext(r.Context(), name, exchange, mode)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "no document") {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_ = xmlio.Write(w, out)
}

// handleStats reports the enforcement cache's effectiveness: compile-cache
// hits and misses (misses == core.Compile runs since start), the aggregated
// word-verdict memo counters, and the invocation audit size. With Telemetry
// configured the cache numbers are read back from the registry's
// axml_compile_cache_* / axml_word_cache_* series — the registry is the
// single source of truth and /stats is a JSON view of it (see DESIGN.md §8
// for the field-to-series mapping); the JSON shape is unchanged either way,
// except for a "telemetry" flag reporting which source served the numbers.
// cappedBody is a request body behind http.MaxBytesReader that remembers
// whether the cap tripped: parsers in the read path (xsdint, xml.Decoder)
// do not all preserve the *http.MaxBytesError through their error wrapping,
// so the 413-vs-400 decision cannot rely on errors.As alone.
type cappedBody struct {
	r       io.Reader
	tripped bool
}

func (c *cappedBody) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			c.tripped = true
		}
	}
	return n, err
}

// errorStatus maps a body-read/parse error to a status: 413 when the body
// cap tripped, 400 for everything else.
func (c *cappedBody) errorStatus(err error) int {
	var tooBig *http.MaxBytesError
	if c.tripped || errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// limitBody wraps a request body with the peer's MaxRequestBytes cap — the
// same discipline the SOAP endpoint applies: 0 selects the SOAP default,
// negative disables the limit.
func (p *Peer) limitBody(w http.ResponseWriter, r *http.Request) *cappedBody {
	limit := p.MaxRequestBytes
	if limit == 0 {
		limit = soap.DefaultMaxRequestBytes
	}
	if limit <= 0 {
		return &cappedBody{r: r.Body}
	}
	return &cappedBody{r: http.MaxBytesReader(w, r.Body, limit)}
}

func (p *Peer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	compiled := p.Enforcement.Stats()
	words := p.Enforcement.WordStats()
	if reg := p.Telemetry; reg != nil && p.instruments() != nil {
		compiled = registryCacheStats(reg, "axml_compile_cache", compiled)
		words = registryCacheStats(reg, "axml_word_cache", words)
	}
	stats := map[string]any{
		"peer":          p.Name,
		"documents":     p.Repo.Len(),
		"compile_cache": compiled,
		"word_cache":    words,
		"invocations":   p.Audit.Len(),
		"parallelism":   max(p.Parallelism, 1),
		"telemetry":     p.Telemetry != nil,
	}
	if p.Durable != nil {
		stats["wal"] = p.Durable.Stats()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(stats)
}

// registryCacheStats reassembles a CacheStats from the four scrape-time
// series the enforcement cache registers under the given prefix.
func registryCacheStats(reg *telemetry.Registry, prefix string, fallback core.CacheStats) core.CacheStats {
	hits, ok1 := reg.Value(prefix + "_hits_total")
	misses, ok2 := reg.Value(prefix + "_misses_total")
	evictions, ok3 := reg.Value(prefix + "_evictions_total")
	size, ok4 := reg.Value(prefix + "_entries")
	if !(ok1 && ok2 && ok3 && ok4) {
		return fallback
	}
	return core.CacheStats{
		Hits:      uint64(hits),
		Misses:    uint64(misses),
		Evictions: uint64(evictions),
		Size:      int(size),
	}
}
