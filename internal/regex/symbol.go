// Package regex implements symbolic regular expressions over alphabets of
// interned element and function names, as used by intensional-XML content
// models (Milo et al., "Exchanging Intensional XML Data", SIGMOD 2003).
//
// Unlike text regexps, the alphabet here is a set of *names* (element names
// such as "title", function names such as "Get_Temp", and function-pattern
// names). Names are interned into dense integer Symbols through a Table so
// that automata built from these expressions can use slice-indexed
// transition structures on hot paths.
//
// The package provides:
//
//   - an AST with smart constructors that keep expressions in a light
//     canonical form (flattened, ∅/ε-normalized),
//   - a parser for a compact textual syntax mirroring the paper's notation
//     ("title.date.(Get_Temp|temp).exhibit*"),
//   - Brzozowski derivatives and nullability (powering the lazy rewriting
//     variant of Section 7 of the paper),
//   - the Glushkov position automaton and the one-unambiguity check that
//     XML Schema imposes on content models (the paper's determinism
//     requirement), and
//   - random sampling of words from a language (powering simulated Web
//     services whose replies are arbitrary output instances).
package regex

import (
	"fmt"
	"sort"
	"sync"
)

// Symbol is an interned name. Symbols are dense small integers handed out by
// a Table; the zero Table hands out 0, 1, 2, ... in interning order.
type Symbol int32

// NoSymbol is returned by lookups that fail.
const NoSymbol Symbol = -1

// Table interns names to Symbols. The zero value is not usable; create one
// with NewTable. Tables are safe for concurrent use: peers share one table
// across HTTP requests that may intern fresh names (e.g. labels of an
// incoming exchange schema).
type Table struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]Symbol
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{ids: make(map[string]Symbol)}
}

// Intern returns the Symbol for name, creating it if necessary.
func (t *Table) Intern(name string) Symbol {
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	s = Symbol(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = s
	return s
}

// Lookup returns the Symbol for name if it has been interned.
func (t *Table) Lookup(name string) (Symbol, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.ids[name]
	if !ok {
		return NoSymbol, false
	}
	return s, true
}

// Name returns the name interned as s. It panics if s was not handed out by
// this table.
func (t *Table) Name(s Symbol) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if s < 0 || int(s) >= len(t.names) {
		panic(fmt.Sprintf("regex: symbol %d not in table (len %d)", s, len(t.names)))
	}
	return t.names[s]
}

// Len reports how many symbols have been interned.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Symbols returns all interned symbols in interning order.
func (t *Table) Symbols() []Symbol {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Symbol, len(t.names))
	for i := range out {
		out[i] = Symbol(i)
	}
	return out
}

// Names returns a copy of all interned names in interning order.
func (t *Table) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Class is a set (or complemented set) of symbols, used for wildcard leaves:
// XML Schema's <any> compiles to a negated empty Class, and namespace
// exclusions compile to negated non-empty Classes. The Syms slice is always
// sorted and duplicate-free.
type Class struct {
	Negated bool
	Syms    []Symbol
}

// NewClass builds a normalized Class from the given symbols.
func NewClass(negated bool, syms ...Symbol) Class {
	c := Class{Negated: negated, Syms: append([]Symbol(nil), syms...)}
	sort.Slice(c.Syms, func(i, j int) bool { return c.Syms[i] < c.Syms[j] })
	c.Syms = dedupSymbols(c.Syms)
	return c
}

// AnyClass matches every symbol.
func AnyClass() Class { return Class{Negated: true} }

func dedupSymbols(s []Symbol) []Symbol {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Contains reports whether the class matches symbol s.
func (c Class) Contains(s Symbol) bool {
	i := sort.Search(len(c.Syms), func(i int) bool { return c.Syms[i] >= s })
	in := i < len(c.Syms) && c.Syms[i] == s
	return in != c.Negated
}

// IsEmpty reports whether the class matches no symbol at all. (Only a
// non-negated empty set is empty; a negated set always matches the infinitely
// many yet-uninterned symbols.)
func (c Class) IsEmpty() bool { return !c.Negated && len(c.Syms) == 0 }

// Overlaps reports whether two classes share at least one symbol. Because
// the symbol universe is unbounded (new names can always be interned), two
// negated classes always overlap.
func (c Class) Overlaps(d Class) bool {
	switch {
	case !c.Negated && !d.Negated:
		return intersectSorted(c.Syms, d.Syms)
	case c.Negated && d.Negated:
		return true
	case c.Negated:
		c, d = d, c
		fallthrough
	default:
		// c positive, d negated: overlap unless every symbol of c is excluded.
		for _, s := range c.Syms {
			if d.Contains(s) {
				return true
			}
		}
		return false
	}
}

func intersectSorted(a, b []Symbol) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Equal reports structural equality of two classes.
func (c Class) Equal(d Class) bool {
	if c.Negated != d.Negated || len(c.Syms) != len(d.Syms) {
		return false
	}
	for i := range c.Syms {
		if c.Syms[i] != d.Syms[i] {
			return false
		}
	}
	return true
}

// String renders the class using the table for names.
func (c Class) String(t *Table) string {
	if c.Negated && len(c.Syms) == 0 {
		return "~"
	}
	s := ""
	for i, sym := range c.Syms {
		if i > 0 {
			s += "|"
		}
		s += t.Name(sym)
	}
	if c.Negated {
		return "~!(" + s + ")"
	}
	return "(" + s + ")"
}
