package store_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/store"
	"axml/internal/store/storetest"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// TestConformance runs the shared storetest contract against every backend.
func TestConformance(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		storetest.Run(t, storetest.Factory{
			Name: "mem",
			Open: func(t *testing.T) store.DocStore { return store.NewRepository() },
		})
	})

	t.Run("wal", func(t *testing.T) {
		var dir string
		open := func(t *testing.T) store.DocStore {
			d, err := store.OpenDurable(dir, store.DurableOptions{Sync: wal.SyncNone})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			return d
		}
		storetest.Run(t, storetest.Factory{
			Name: "wal",
			Open: func(t *testing.T) store.DocStore {
				dir = t.TempDir()
				return open(t)
			},
			Reopen: open,
		})
	})

	t.Run("disk", func(t *testing.T) {
		var dir string
		// A deliberately tiny hot cache: the conformance corpus exceeds
		// it, so every subtest also exercises faulting and eviction.
		open := func(t *testing.T) store.DocStore {
			d, err := store.OpenDisk(dir, store.DiskOptions{HotCache: 3, Shards: 4})
			if err != nil {
				t.Fatalf("OpenDisk: %v", err)
			}
			return d
		}
		storetest.Run(t, storetest.Factory{
			Name: "disk",
			Open: func(t *testing.T) store.DocStore {
				dir = t.TempDir()
				return open(t)
			},
			Reopen: open,
		})
	})
}

// TestOpenSelectsBackend pins the constructor's dispatch and validation.
func TestOpenSelectsBackend(t *testing.T) {
	s, err := store.Open(store.Options{})
	if err != nil || s.Stats().Backend != store.BackendMem {
		t.Errorf("Open default = %v backend %q, want mem", err, s.Stats().Backend)
	}
	dir := t.TempDir()
	for _, backend := range []string{store.BackendWAL, store.BackendDisk} {
		s, err := store.Open(store.Options{Backend: backend, Dir: filepath.Join(dir, backend), Sync: wal.SyncNone})
		if err != nil {
			t.Fatalf("Open(%s) = %v", backend, err)
		}
		if got := s.Stats().Backend; got != backend {
			t.Errorf("Stats().Backend = %q, want %q", got, backend)
		}
		s.Close()
		if _, err := store.Open(store.Options{Backend: backend}); err == nil {
			t.Errorf("Open(%s) without Dir should fail", backend)
		}
	}
	if _, err := store.Open(store.Options{Backend: "ramdisk"}); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("Open(ramdisk) = %v", err)
	}
}

func putCorpus(t *testing.T, s store.DocStore, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		d := doc.Elem("page",
			doc.TextNode(fmt.Sprintf("body %d", i)),
			doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
		if err := s.Put(fmt.Sprintf("doc-%03d", i), d); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiskTiering drives a population well past the hot-cache budget and
// watches the tiering counters: cold reads fault document files in on
// demand, hot reads hit, and the cache never exceeds its cap.
func TestDiskTiering(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir(), store.DiskOptions{HotCache: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 24
	putCorpus(t, d, n)

	st := d.Stats().Disk
	if st.Evictions == 0 {
		t.Errorf("writing %d docs through a 4-doc cache evicted nothing: %+v", n, st)
	}
	if st.HotCached > 4 {
		t.Errorf("hot cache over budget: %d > 4", st.HotCached)
	}

	// A full sweep must fault in at least the cold majority...
	for i := 0; i < n; i++ {
		if _, ok := d.Get(fmt.Sprintf("doc-%03d", i)); !ok {
			t.Fatalf("doc-%03d missing", i)
		}
	}
	st = d.Stats().Disk
	if st.Faults < n-4 {
		t.Errorf("full sweep faulted %d times, want >= %d", st.Faults, n-4)
	}
	// ...while re-reading the most recent resident stays in memory.
	before := st.Hits
	last := fmt.Sprintf("doc-%03d", n-1)
	for i := 0; i < 3; i++ {
		d.Get(last)
	}
	if st = d.Stats().Disk; st.Hits < before+3 {
		t.Errorf("hot re-reads: hits %d -> %d, want +3", before, st.Hits)
	}

	sizes := d.ShardSizes()
	total := 0
	for _, c := range sizes {
		total += c
	}
	if total != n || len(sizes) < 2 {
		t.Errorf("ShardSizes = %v (total %d), want %d docs spread over shards", sizes, total, n)
	}
}

// TestDiskIndexSelfHeal corrupts the persisted per-shard index in the two
// ways a crash can (stale entry for a changed file; index missing entirely)
// and proves Open notices, re-parses exactly the disagreeing documents, and
// serves correct answers from the repaired index.
func TestDiskIndexSelfHeal(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.DiskOptions{HotCache: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	putCorpus(t, d, 6)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite one document file behind the store's back, swapping its
	// function call: the index entry's (size, mtime) no longer match.
	var victim string
	err = filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err == nil && !de.IsDir() && strings.HasSuffix(path, "doc-002.xml") {
			victim = path
		}
		return err
	})
	if err != nil || victim == "" {
		t.Fatalf("victim file not found under %s: %v", dir, err)
	}
	swapped := xmlio.MustString(doc.Elem("page", doc.Call("Get_Time")))
	if err := os.WriteFile(victim, []byte(swapped), 0o644); err != nil {
		t.Fatal(err)
	}
	// And delete another shard's index outright.
	var droppedIndex string
	filepath.WalkDir(dir, func(path string, de os.DirEntry, _ error) error {
		if !de.IsDir() && filepath.Base(path) == "index.json" && !strings.Contains(path, filepath.Dir(victim)) {
			droppedIndex = path
		}
		return nil
	})
	if droppedIndex == "" {
		t.Fatal("no second shard index to drop")
	}
	if err := os.Remove(droppedIndex); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDisk(dir, store.DiskOptions{HotCache: 8, Shards: 2})
	if err != nil {
		t.Fatalf("reopen over a damaged index: %v", err)
	}
	defer d2.Close()
	if got := d2.Stats().Disk.IndexRepairs; got < 2 {
		t.Errorf("IndexRepairs = %d, want >= 2 (rewritten file + dropped index)", got)
	}
	if got := d2.Len(); got != 6 {
		t.Errorf("Len after heal = %d, want 6", got)
	}
	if node, ok := d2.Get("doc-002"); !ok || node.Children[0].Kind != doc.Func || node.Children[0].Label != "Get_Time" {
		t.Errorf("rewritten document not re-read: %v, %v", node, ok)
	}
	docs, err := d2.DocsWithFunction("Get_Time")
	if err != nil || fmt.Sprint(docs) != fmt.Sprint([]string{"doc-002"}) {
		t.Errorf("healed index: Get_Time in %v (%v), want [doc-002]", docs, err)
	}
	if docs, _ := d2.DocsWithFunction("Get_Temp"); len(docs) != 5 {
		t.Errorf("healed index: Get_Temp in %d docs, want 5", len(docs))
	}
}

// indexedDocs sums the entries across every shard index.json under dir.
func indexedDocs(t *testing.T, dir string) int {
	t.Helper()
	total := 0
	filepath.WalkDir(dir, func(path string, de os.DirEntry, _ error) error {
		if de.IsDir() || filepath.Base(path) != "index.json" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var idx map[string]json.RawMessage
		if err := json.Unmarshal(data, &idx); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		total += len(idx)
		return nil
	})
	return total
}

// TestDiskIndexDebounce: mutations defer the shard-index rewrite; Scan and
// Close are flush points; a crash (reopen without Close) in the deferral
// window is absorbed by the (size, mtime) self-heal.
func TestDiskIndexDebounce(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.DiskOptions{HotCache: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	putCorpus(t, d, 6)
	if got := indexedDocs(t, dir); got != 0 {
		t.Errorf("after 6 Puts, %d docs indexed on disk; the rewrite must be deferred", got)
	}
	if got := d.Stats().Disk.IndexFlushes; got != 0 {
		t.Errorf("IndexFlushes = %d before any flush point", got)
	}

	// Scan is a flush point: the on-disk index catches up.
	if _, _, err := d.Scan("", 100); err != nil {
		t.Fatal(err)
	}
	if got := indexedDocs(t, dir); got != 6 {
		t.Errorf("after Scan, %d docs indexed on disk, want 6", got)
	}
	if got := d.Stats().Disk.IndexFlushes; got == 0 {
		t.Error("Scan flushed no shard index")
	}

	// Mutate past the flush and crash: drop the handle without Close. The
	// on-disk index now lags (one new doc, one deleted doc).
	if err := d.Put("doc-new", doc.Elem("page", doc.Call("Get_Time"))); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("doc-000"); err != nil {
		t.Fatal(err)
	}
	if got := indexedDocs(t, dir); got != 6 {
		t.Errorf("deferral window: %d docs indexed on disk, want the stale 6", got)
	}

	d2, err := store.OpenDisk(dir, store.DiskOptions{HotCache: 8, Shards: 2})
	if err != nil {
		t.Fatalf("reopen over a stale index: %v", err)
	}
	defer d2.Close()
	if got := d2.Len(); got != 6 {
		t.Errorf("Len after crash-reopen = %d, want 6 (doc-new in, doc-000 out)", got)
	}
	if got := d2.Stats().Disk.IndexRepairs; got < 1 {
		t.Errorf("IndexRepairs = %d, want >= 1 (doc-new was never indexed)", got)
	}
	if docs, err := d2.DocsWithFunction("Get_Time"); err != nil || fmt.Sprint(docs) != fmt.Sprint([]string{"doc-new"}) {
		t.Errorf("healed index: Get_Time in %v (%v), want [doc-new]", docs, err)
	}
	if _, ok := d2.Get("doc-000"); ok {
		t.Error("deleted document resurrected by the stale index")
	}
	// loadShard pruned and repaired: the reopened directory is fully
	// indexed again without any explicit flush.
	if got := indexedDocs(t, dir); got != 6 {
		t.Errorf("after self-heal, %d docs indexed on disk, want 6", got)
	}

	// Close is the other flush point.
	if err := d2.Put("doc-final", doc.Elem("page", doc.TextNode("bye"))); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := indexedDocs(t, dir); got != 7 {
		t.Errorf("after Close, %d docs indexed on disk, want 7", got)
	}
	d3, err := store.OpenDisk(dir, store.DiskOptions{HotCache: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := d3.Stats().Disk.IndexRepairs; got != 0 {
		t.Errorf("clean Close then reopen repaired %d entries, want 0", got)
	}
}

// TestDiskSweepsTempFiles: an interrupted atomic write leaves a temp file;
// reopening the shard removes it and ignores it as a document.
func TestDiskSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.DiskOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	putCorpus(t, d, 2)
	d.Close()

	shard := filepath.Join(dir, "shard-00")
	stray := filepath.Join(shard, wal.TempPrefix+"doc-xyz.xml")
	if err := os.WriteFile(stray, []byte("<torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := store.OpenDisk(dir, store.DiskOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 2 {
		t.Errorf("Len = %d, want 2 (temp file must not count)", d2.Len())
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("temp file not swept: %v", err)
	}
}

// TestDiskReshard reopens a populated directory with a different shard
// count: existing files stay readable under their original shards.
func TestDiskReshard(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.DiskOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	putCorpus(t, d, 10)
	d.Close()

	d2, err := store.OpenDisk(dir, store.DiskOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 10 {
		t.Fatalf("Len after reshard = %d, want 10", d2.Len())
	}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("doc-%03d", i)
		if _, ok := d2.Get(name); !ok {
			t.Errorf("%s lost after reshard", name)
		}
		// Overwrites must land on the document's existing shard, not
		// strand a second copy under the new hash.
		if err := d2.Put(name, doc.Elem("page", doc.TextNode("v2"))); err != nil {
			t.Fatal(err)
		}
	}
	files := 0
	filepath.WalkDir(dir, func(path string, de os.DirEntry, _ error) error {
		if !de.IsDir() && strings.HasSuffix(path, ".xml") {
			files++
		}
		return nil
	})
	if files != 10 {
		t.Errorf("%d document files on disk, want 10 (no strands)", files)
	}
}
