package invoke

import (
	"context"
	"errors"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
)

// ErrBreakerOpen is the cause carried by *PolicyError when a call is
// short-circuited by an open breaker.
var ErrBreakerOpen = errors.New("invoke: circuit breaker open")

// Breaker configures WithBreaker: a simple consecutive-failure circuit
// breaker kept per endpoint. Closed until Failures consecutive failures,
// then open for Cooldown (calls fail fast with ErrBreakerOpen), then
// half-open: one probe call is let through, closing the circuit on success
// and re-opening it on failure.
type Breaker struct {
	// Failures is the consecutive-failure threshold that opens the circuit;
	// values below 1 select DefaultBreakerFailures.
	Failures int
	// Cooldown is how long an open circuit rejects calls before probing;
	// 0 selects DefaultBreakerCooldown.
	Cooldown time.Duration
	// Now supplies the clock; nil selects time.Now. Tests inject a fake.
	Now func() time.Time
}

// Breaker defaults.
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = 30 * time.Second
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// endpointBreaker is the per-endpoint state machine.
type endpointBreaker struct {
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// WithBreaker installs a per-endpoint circuit breaker. State is owned by
// this policy instance: wrap one shared invoker to make breaker memory span
// messages (peers do exactly that), or build per-rewriter chains for
// isolated state. Transitions and rejections are reported as breaker-*
// events.
func WithBreaker(cfg Breaker) Policy {
	threshold := cfg.Failures
	if threshold < 1 {
		threshold = DefaultBreakerFailures
	}
	cooldown := cfg.Cooldown
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	var mu sync.Mutex
	states := make(map[string]*endpointBreaker)
	return func(next core.Invoker) core.Invoker {
		return core.ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
			endpoint := core.EndpointOf(call)
			mu.Lock()
			b := states[endpoint]
			if b == nil {
				b = &endpointBreaker{}
				states[endpoint] = b
			}
			switch b.state {
			case breakerOpen:
				if now().Sub(b.openedAt) < cooldown {
					mu.Unlock()
					core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
						Kind: core.EventBreakerReject, Err: ErrBreakerOpen.Error()})
					return nil, &PolicyError{Policy: "breaker", Func: call.Label,
						Endpoint: endpoint, Err: ErrBreakerOpen}
				}
				b.state = breakerHalfOpen
				b.probing = false
				core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
					Kind: core.EventBreakerHalfOpen})
			case breakerHalfOpen:
				if b.probing {
					// Only one probe at a time; concurrent calls fail fast.
					mu.Unlock()
					core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
						Kind: core.EventBreakerReject, Err: ErrBreakerOpen.Error()})
					return nil, &PolicyError{Policy: "breaker", Func: call.Label,
						Endpoint: endpoint, Err: ErrBreakerOpen}
				}
			}
			if b.state == breakerHalfOpen {
				b.probing = true
			}
			mu.Unlock()

			res, err := next.Invoke(ctx, call)

			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				if b.state != breakerClosed {
					core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
						Kind: core.EventBreakerClose})
				}
				b.state = breakerClosed
				b.failures = 0
				b.probing = false
				return res, nil
			}
			b.probing = false
			b.failures++
			if b.state == breakerHalfOpen || b.failures >= threshold {
				if b.state != breakerOpen {
					core.Emit(ctx, core.InvokeEvent{Func: call.Label, Endpoint: endpoint,
						Kind: core.EventBreakerOpen, Err: err.Error()})
				}
				b.state = breakerOpen
				b.openedAt = now()
				b.failures = 0
			}
			return nil, err
		})
	}
}
