package wsdl

import (
	"strings"
	"testing"

	"axml/internal/schema"
	"axml/internal/xsdint"
)

func testDescription(t *testing.T) *Description {
	t.Helper()
	s := schema.MustParseText(`
elem city = data
elem temp = data
func Get_Temp = city -> temp {endpoint=http://forecast.example/soap, ns=urn:weather}
func Get_Forecast = city -> temp*
`, nil)
	return &Description{
		Name:            "WeatherService",
		TargetNamespace: "urn:weather",
		Endpoint:        "http://forecast.example/soap",
		Schema:          s,
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := testDescription(t)
	out, err := String(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(out, xsdint.Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if back.Name != d.Name || back.TargetNamespace != d.TargetNamespace || back.Endpoint != d.Endpoint {
		t.Errorf("metadata changed: %+v", back)
	}
	ops := back.Operations()
	if len(ops) != 2 || ops[0] != "Get_Forecast" || ops[1] != "Get_Temp" {
		t.Errorf("operations = %v", ops)
	}
	gt := back.Schema.Funcs["Get_Temp"]
	if gt == nil || gt.Endpoint != "http://forecast.example/soap" {
		t.Errorf("operation attrs lost: %+v", gt)
	}
	if gt.In.String(back.Schema.Table) != "city" {
		t.Errorf("input type = %s", gt.In.String(back.Schema.Table))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`<definitions xmlns="http://schemas.xmlsoap.org/wsdl/"/>`, // no schema
		`<definitions><definitions/></definitions>`,
		`<definitions><types><schema><element/></schema></types></definitions>`,
	} {
		if _, err := ParseString(src, xsdint.Options{}); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestSharedTableAcrossDescriptions(t *testing.T) {
	d := testDescription(t)
	out, err := String(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	table := d.Schema.Table
	back, err := ParseString(out, xsdint.Options{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := table.Lookup("city")
	b, _ := back.Schema.Table.Lookup("city")
	if a != b {
		t.Error("symbol tables diverged")
	}
}

func TestWriteContainsEmbeddedSchema(t *testing.T) {
	d := testDescription(t)
	out, err := String(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<types>", "<schema", `function id="Get_Temp"`, `<address location="http://forecast.example/soap"/>`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
