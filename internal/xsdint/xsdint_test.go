package xsdint

import (
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

// paperXSD is the newspaper schema of Section 7 in XML Schema_int syntax,
// including the Forecast function pattern.
const paperXSD = `
<schema xmlns="http://www.w3.org/2001/XMLSchema" root="newspaper">
  <element name="newspaper">
    <complexType>
      <sequence>
        <element ref="title"/>
        <element ref="date"/>
        <choice>
          <functionPattern ref="Forecast"/>
          <element ref="temp"/>
        </choice>
        <choice>
          <function ref="TimeOut"/>
          <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
        </choice>
      </sequence>
    </complexType>
  </element>
  <element name="title" type="xs:string"/>
  <element name="date" type="xs:string"/>
  <element name="temp" type="xs:string"/>
  <element name="city" type="xs:string"/>
  <element name="exhibit">
    <complexType>
      <sequence>
        <element ref="title"/>
        <choice>
          <function ref="Get_Date"/>
          <element ref="date"/>
        </choice>
      </sequence>
    </complexType>
  </element>
  <function id="Get_Temp" methodName="Get_Temp"
            endpointURL="http://www.forecast.com/soap" namespaceURI="urn:xmethods-weather">
    <params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return>
  </function>
  <function id="TimeOut" methodName="TimeOut" endpointURL="http://www.timeout.com/paris">
    <params></params>
    <return>
      <choice minOccurs="0" maxOccurs="unbounded">
        <element ref="exhibit"/>
        <element ref="performance"/>
      </choice>
    </return>
  </function>
  <function id="Get_Date" methodName="Get_Date">
    <params><param><element ref="title"/></param></params>
    <return><element ref="date"/></return>
  </function>
  <functionPattern id="Forecast" predicate="UDDIF">
    <params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return>
  </functionPattern>
</schema>
`

func parsePaper(t *testing.T) *schema.Schema {
	t.Helper()
	preds := map[string]schema.Predicate{
		"UDDIF": func(name string, in, out *regex.Regex) bool {
			return strings.HasPrefix(name, "Get_")
		},
	}
	s, err := ParseString(paperXSD, Options{Predicates: preds})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParsePaperSchema(t *testing.T) {
	s := parsePaper(t)
	if s.Root != "newspaper" {
		t.Errorf("root = %q", s.Root)
	}
	if len(s.Labels) != 6 || len(s.Funcs) != 3 || len(s.Patterns) != 1 {
		t.Fatalf("decls: %d labels %d funcs %d patterns", len(s.Labels), len(s.Funcs), len(s.Patterns))
	}
	if !s.Labels["title"].IsData() {
		t.Error("title should be data")
	}
	np := s.Labels["newspaper"]
	if np.IsData() {
		t.Fatal("newspaper should be structured")
	}
	want := "title.date.(Forecast|temp).(TimeOut|exhibit*)"
	if got := np.Content.String(s.Table); got != want {
		// Structure may differ (e.g. exhibit{0,} vs exhibit*); compare by
		// language on representative words instead of failing outright.
		c := schema.NewContext(s, nil)
		okDoc := doc.Elem("newspaper",
			doc.Elem("title"), doc.Elem("date"), doc.Elem("temp"),
			doc.Elem("exhibit", doc.Elem("title"), doc.Elem("date")))
		if err := c.Validate(okDoc); err != nil {
			t.Errorf("content model %q does not accept the expected document: %v", got, err)
		}
	}
	gt := s.Funcs["Get_Temp"]
	if gt.Endpoint != "http://www.forecast.com/soap" || gt.Namespace != "urn:xmethods-weather" {
		t.Errorf("Get_Temp attrs: %+v", gt)
	}
	if gt.In.String(s.Table) != "city" || gt.Out.String(s.Table) != "temp" {
		t.Errorf("Get_Temp signature: %s -> %s", gt.In.String(s.Table), gt.Out.String(s.Table))
	}
	if s.Funcs["TimeOut"].In != nil {
		t.Error("TimeOut should take atomic data (empty params)")
	}
	p := s.Patterns["Forecast"]
	if p == nil || p.Pred == nil {
		t.Fatal("Forecast pattern or predicate missing")
	}
	if !p.Pred("Get_Anything", nil, nil) || p.Pred("Rogue", nil, nil) {
		t.Error("predicate not wired")
	}
}

func TestParsedSchemaValidatesPaperDocument(t *testing.T) {
	s := parsePaper(t)
	c := schema.NewContext(s, nil)
	n := doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		doc.Call("TimeOut", doc.TextNode("exhibits")),
	)
	if err := c.Validate(n); err != nil {
		t.Errorf("paper document rejected: %v", err)
	}
	// Get_Temp matches via the Forecast pattern (predicate passes, signature
	// equal); a wrong-signature function must not.
	bad := n.Clone()
	bad.Children[2] = doc.Call("Get_Date", doc.Elem("title")) // returns date, not temp
	if err := c.Validate(bad); err == nil {
		t.Error("Get_Date should not match the Forecast slot")
	}
}

func TestUPAEnforcement(t *testing.T) {
	src := `
<schema>
  <element name="a">
    <complexType>
      <sequence>
        <element ref="b" minOccurs="0" maxOccurs="unbounded"/>
        <element ref="b"/>
      </sequence>
    </complexType>
  </element>
  <element name="b" type="xs:string"/>
</schema>`
	if _, err := ParseString(src, Options{}); err == nil {
		t.Fatal("b*.b must violate UPA")
	}
	if _, err := ParseString(src, Options{SkipUPACheck: true}); err != nil {
		t.Fatalf("SkipUPACheck should accept it: %v", err)
	}
}

func TestOccursBounds(t *testing.T) {
	src := `
<schema>
  <element name="a">
    <complexType>
      <sequence>
        <element ref="b" minOccurs="2" maxOccurs="4"/>
      </sequence>
    </complexType>
  </element>
  <element name="b" type="xs:string"/>
</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := schema.NewContext(s, nil)
	mk := func(n int) *doc.Node {
		kids := make([]*doc.Node, n)
		for i := range kids {
			kids[i] = doc.Elem("b")
		}
		return doc.Elem("a", kids...)
	}
	for n := 0; n <= 6; n++ {
		err := c.Validate(mk(n))
		want := n >= 2 && n <= 4
		if (err == nil) != want {
			t.Errorf("b{2,4}: n=%d got err=%v", n, err)
		}
	}
}

func TestWildcard(t *testing.T) {
	src := `
<schema>
  <element name="a">
    <complexType>
      <sequence>
        <any not="b" minOccurs="0" maxOccurs="unbounded"/>
      </sequence>
    </complexType>
  </element>
  <element name="b" type="xs:string"/>
</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := schema.NewContext(s, nil)
	if err := c.Validate(doc.Elem("a", doc.Elem("zzz"), doc.Elem("www"))); err != nil {
		t.Errorf("wildcard should admit foreign elements: %v", err)
	}
	if err := c.Validate(doc.Elem("a", doc.Elem("b"))); err == nil {
		t.Error("excluded b admitted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<notschema/>`,
		`<schema><element/></schema>`, // nameless element
		`<schema><element name="a"><complexType><bogus/></complexType></element></schema>`,
		`<schema><function><params/></function></schema>`, // nameless function
		`<schema><functionPattern id="p" predicate="nope"/></schema>`,
		`<schema><element name="a"><complexType><sequence><element/></sequence></complexType></element></schema>`,
		`<schema><element name="a"><complexType><sequence><element ref="b" minOccurs="-1"/></sequence></complexType></element></schema>`,
		`<schema><element name="a"><complexType><sequence><element ref="b" minOccurs="3" maxOccurs="2"/></sequence></complexType></element></schema>`,
	}
	for _, src := range cases {
		if _, err := ParseString(src, Options{}); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	s := parsePaper(t)
	out, err := String(s, map[string]string{"Forecast": "UDDIF"})
	if err != nil {
		t.Fatal(err)
	}
	preds := map[string]schema.Predicate{
		"UDDIF": func(name string, in, out *regex.Regex) bool { return true },
	}
	s2, err := ParseString(out, Options{Predicates: preds})
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if len(s2.Labels) != len(s.Labels) || len(s2.Funcs) != len(s.Funcs) || len(s2.Patterns) != len(s.Patterns) {
		t.Fatalf("round trip lost declarations:\n%s", out)
	}
	// Language-level agreement of every content model and signature.
	for name, d := range s.Labels {
		d2 := s2.Labels[name]
		if d2 == nil || d.IsData() != d2.IsData() {
			t.Fatalf("label %q changed", name)
		}
		if !d.IsData() && !sameLanguage(t, s, d.Content, s2, d2.Content) {
			t.Errorf("label %q content changed: %s vs %s",
				name, d.Content.String(s.Table), d2.Content.String(s2.Table))
		}
	}
	for name, d := range s.Funcs {
		d2 := s2.Funcs[name]
		if d2 == nil {
			t.Fatalf("function %q lost", name)
		}
		if d.Endpoint != d2.Endpoint || d.Namespace != d2.Namespace {
			t.Errorf("function %q attrs changed", name)
		}
		if !sameLanguage(t, s, d.Out, s2, d2.Out) {
			t.Errorf("function %q output type changed", name)
		}
	}
}

// sameLanguage compares two content models by sampling words from each and
// cross-checking membership (symbols resolved by name across tables).
func sameLanguage(t *testing.T, s1 *schema.Schema, r1 *regex.Regex, s2 *schema.Schema, r2 *regex.Regex) bool {
	t.Helper()
	if (r1 == nil) != (r2 == nil) {
		return false
	}
	if r1 == nil {
		return true
	}
	translate := func(from, to *schema.Schema, w []regex.Symbol) []regex.Symbol {
		out := make([]regex.Symbol, len(w))
		for i, sym := range w {
			out[i] = to.Table.Intern(from.Table.Name(sym))
		}
		return out
	}
	w1, ok1 := regex.ShortestWord(r1)
	w2, ok2 := regex.ShortestWord(r2)
	if ok1 != ok2 {
		return false
	}
	if ok1 && (!regex.Match(r2, translate(s1, s2, w1)) || !regex.Match(r1, translate(s2, s1, w2))) {
		return false
	}
	return true
}

func TestRoundTripOptionsAttrs(t *testing.T) {
	src := `
<schema>
  <element name="receipt" type="xs:string"/>
  <function id="Pay" invocable="false" sideEffects="true" cost="2.5">
    <return><element ref="receipt"/></return>
  </function>
</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Funcs["Pay"]
	if d.Invocable || !d.SideEffects || d.Cost != 2.5 {
		t.Fatalf("attrs: %+v", d)
	}
	out, err := String(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseString(out, Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	d2 := s2.Funcs["Pay"]
	if d2.Invocable || !d2.SideEffects || d2.Cost != 2.5 {
		t.Errorf("attrs lost in round trip: %+v", d2)
	}
}

func TestSharedTable(t *testing.T) {
	table := regex.NewTable()
	s1, err := ParseString(`<schema><element name="a" type="xs:string"/></schema>`, Options{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseString(`<schema><element name="a" type="xs:string"/></schema>`, Options{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Table != s2.Table {
		t.Error("tables not shared")
	}
	sym1, _ := s1.Table.Lookup("a")
	sym2, _ := s2.Table.Lookup("a")
	if sym1 != sym2 {
		t.Error("symbols diverged")
	}
}
