package peer

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

const newspaperSchema = `
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`

// newsPeer builds a peer holding the Figure 2 newspaper document with local
// implementations of Get_Temp and TimeOut.
func newsPeer(t testing.TB) *Peer {
	t.Helper()
	s := schema.MustParseText(newspaperSchema, nil)
	p := New("news", s)
	p.Repo.Put("today", doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		doc.Call("TimeOut", doc.TextNode("exhibits")),
	))
	must(t, p.Services.Register(opOf(t, p, "Get_Temp", func(params []*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})))
	must(t, p.Services.Register(opOf(t, p, "TimeOut", func(params []*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("exhibit", doc.Elem("title", doc.TextNode("Dali")), doc.Elem("date", doc.TextNode("2002")))}, nil
	})))
	return p
}

func opOf(t testing.TB, p *Peer, name string, h func([]*doc.Node) ([]*doc.Node, error)) *service.Operation {
	t.Helper()
	if p.Schema.Funcs[name] == nil {
		t.Fatalf("function %q not declared", name)
	}
	return &service.Operation{Name: name, Def: p.Schema.Funcs[name], Handler: h}
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepositoryBasics(t *testing.T) {
	r := NewRepository()
	d := doc.Elem("a", doc.TextNode("x"))
	r.Put("one", d)
	d.Children[0].Value = "mutated"
	got, ok := r.Get("one")
	if !ok || got.Children[0].Value != "x" {
		t.Error("Put did not clone")
	}
	got.Children[0].Value = "mutated2"
	got2, _ := r.Get("one")
	if got2.Children[0].Value != "x" {
		t.Error("Get did not clone")
	}
	if r.Len() != 1 || len(r.Names()) != 1 {
		t.Error("Len/Names wrong")
	}
	if err := r.Update("one", func(n *doc.Node) (*doc.Node, error) {
		return doc.Elem("b"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if got3, _ := r.Get("one"); got3.Label != "b" {
		t.Error("Update did not replace")
	}
	if err := r.Update("ghost", nil); err == nil {
		t.Error("Update of missing doc should fail")
	}
	r.Delete("one")
	if _, ok := r.Get("one"); ok {
		t.Error("Delete failed")
	}
}

func TestRepositorySaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository()
	r.Put("news", doc.Elem("newspaper", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris")))))
	r.Put("plain", doc.Elem("note", doc.TextNode("hi")))
	if err := r.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("loaded %d docs", r2.Len())
	}
	a, _ := r.Get("news")
	b, _ := r2.Get("news")
	if !a.Equal(b) {
		t.Error("persistence round trip changed the document")
	}
}

func TestSendDocumentMaterializesPerReceiver(t *testing.T) {
	p := newsPeer(t)
	// Receiver (**): temp must be materialized, TimeOut may stay.
	exch, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), strings.Replace(newspaperSchema,
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = title.date.temp.(TimeOut|exhibit*)", 1), nil)
	must(t, err)
	out, err := p.SendDocument("today", exch, core.Safe)
	if err != nil {
		t.Fatal(err)
	}
	labels := out.ChildLabels()
	if labels[2] != "temp" || labels[3] != "TimeOut" {
		t.Errorf("children = %v", labels)
	}
	// The repository copy is untouched.
	stored, _ := p.Repo.Get("today")
	if stored.ChildLabels()[2] != "Get_Temp" {
		t.Error("repository copy was mutated")
	}
	if p.Audit.Len() != 1 {
		t.Errorf("audit = %d calls", p.Audit.Len())
	}
}

func TestMaterializeInPlace(t *testing.T) {
	p := newsPeer(t)
	if err := p.Materialize("today", core.Possible); err != nil {
		t.Fatal(err)
	}
	stored, _ := p.Repo.Get("today")
	if err := schema.NewContext(p.Schema, nil).Validate(stored); err != nil {
		t.Errorf("materialized doc invalid: %v", err)
	}
}

func TestEnforceInRewritesParams(t *testing.T) {
	s := schema.MustParseText(`
elem city = data
elem temp = data
func Get_Temp = city -> temp
func Guess_City = data -> city
`, nil)
	p := New("w", s)
	must(t, p.Services.Register(opOf(t, p, "Guess_City", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}, nil
	})))
	// Conforming params pass through untouched.
	params := []*doc.Node{doc.Elem("city", doc.TextNode("Nice"))}
	out, err := p.EnforceIn("Get_Temp", params)
	if err != nil || len(out) != 1 || out[0] != params[0] {
		t.Fatalf("pass-through failed: %v %v", out, err)
	}
	// Intensional params are materialized.
	out, err = p.EnforceIn("Get_Temp", []*doc.Node{doc.Call("Guess_City", doc.TextNode("fr"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "city" {
		t.Errorf("enforced params = %v", out)
	}
	// Unknown operations and hopeless params fail.
	if _, err := p.EnforceIn("Nope", nil); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := p.EnforceIn("Get_Temp", []*doc.Node{doc.Elem("temp")}); err == nil {
		t.Error("hopeless params accepted")
	}
}

func TestQueryService(t *testing.T) {
	s := schema.MustParseText(`
root guide
elem guide = exhibit*
elem exhibit = title.date
elem title = data
elem date = data
`, nil)
	p := New("timeout", s)
	p.Repo.Put("guide", doc.Elem("guide",
		doc.Elem("exhibit", doc.Elem("title", doc.TextNode("Dali")), doc.Elem("date", doc.TextNode("2002"))),
		doc.Elem("exhibit", doc.Elem("title", doc.TextNode("Monet")), doc.Elem("date", doc.TextNode("2003"))),
	))
	must(t, p.DefineQueryService("All_Exhibits", "data", "exhibit*", Query{Doc: "guide", Path: []string{"exhibit"}}))
	must(t, p.DefineQueryService("Find_Exhibit", "title", "exhibit*", Query{Doc: "guide", Path: []string{"exhibit"}, Where: "title"}))

	out, err := p.Services.Call("All_Exhibits", nil)
	if err != nil || len(out) != 2 {
		t.Fatalf("All_Exhibits = %v, %v", out, err)
	}
	out, err = p.Services.Call("Find_Exhibit", []*doc.Node{doc.Elem("title", doc.TextNode("Monet"))})
	if err != nil || len(out) != 1 {
		t.Fatalf("Find_Exhibit = %v, %v", out, err)
	}
	if childTextOf(out[0], "date") != "2003" {
		t.Errorf("wrong exhibit: %v", out[0])
	}
	// Query over a missing document errors at call time.
	must(t, p.DefineQueryService("Broken", "data", "exhibit*", Query{Doc: "ghost"}))
	if _, err := p.Services.Call("Broken", nil); err == nil {
		t.Error("query over missing doc should fail")
	}
}

func childTextOf(n *doc.Node, label string) string {
	for _, ch := range n.Children {
		if ch.Kind != doc.Text && ch.Label == label && len(ch.Children) == 1 {
			return ch.Children[0].Value
		}
	}
	return ""
}

func TestHTTPExchangeEndpoint(t *testing.T) {
	p := newsPeer(t)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	exchangeXSD := `
<schema root="newspaper">
  <element name="newspaper"><complexType><sequence>
    <element ref="title"/><element ref="date"/><element ref="temp"/>
    <choice><function ref="TimeOut"/><element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/></choice>
  </sequence></complexType></element>
  <element name="title" type="xs:string"/>
  <element name="date" type="xs:string"/>
  <element name="temp" type="xs:string"/>
  <element name="city" type="xs:string"/>
  <element name="exhibit"><complexType><sequence>
    <element ref="title"/><element ref="date"/>
  </sequence></complexType></element>
  <element name="performance" type="xs:string"/>
  <function id="Get_Temp"><params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return></function>
  <function id="TimeOut">
    <return><choice minOccurs="0" maxOccurs="unbounded">
      <element ref="exhibit"/><element ref="performance"/>
    </choice></return></function>
</schema>`
	resp, err := http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml", strings.NewReader(exchangeXSD))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	got, err := xmlio.ParseString(string(body))
	if err != nil {
		t.Fatal(err)
	}
	labels := got.ChildLabels()
	if len(labels) != 4 || labels[2] != "temp" || labels[3] != "TimeOut" {
		t.Errorf("exchanged children = %v", labels)
	}

	// An unsafe request is rejected with 422.
	resp2, err := http.Post(ts.URL+"/exchange/today?mode=bogus", "text/xml", strings.NewReader(exchangeXSD))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("bogus mode status = %d", resp2.StatusCode)
	}
	resp3, err := http.Post(ts.URL+"/exchange/ghost", "text/xml", strings.NewReader(exchangeXSD))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Errorf("missing doc status = %d", resp3.StatusCode)
	}
}

func TestHTTPDocAndWSDL(t *testing.T) {
	p := newsPeer(t)
	p.Endpoint = "http://example.test/soap"
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/doc/today")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "int:fun") {
		t.Errorf("doc endpoint: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	wsdlBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	desc, err := wsdl.ParseString(string(wsdlBody), xsdint.Options{})
	if err != nil {
		t.Fatalf("served WSDL unparseable: %v\n%s", err, wsdlBody)
	}
	if len(desc.Operations()) != 2 {
		t.Errorf("operations = %v", desc.Operations())
	}
}

// TestTwoPeerExchange is the E-C8 integration scenario: a reader peer calls
// the news peer's service over SOAP; the news peer's Schema Enforcement
// module materializes the result to honor its declared output type.
func TestTwoPeerExchange(t *testing.T) {
	news := newsPeer(t)
	// The news peer offers Front_Page: data -> newspaper, declared to return
	// a *materialized* temp (the receiver-friendly type): title.date.temp....
	must(t, news.Schema.SetLabel("frontpage", "title.date.temp.exhibit*"))
	must(t, news.Schema.SetFunc("Front_Page", "data", "frontpage"))
	must(t, news.Services.Register(opOf(t, news, "Front_Page", func([]*doc.Node) ([]*doc.Node, error) {
		// The implementation returns the raw intensional document wrapped
		// in frontpage; enforcement must materialize Get_Temp and TimeOut.
		d, _ := news.Repo.Get("today")
		return []*doc.Node{doc.Elem("frontpage", d.Children...)}, nil
	})))
	news.Mode = core.Possible // TimeOut's output type includes performances

	ts := httptest.NewServer(news.Handler())
	defer ts.Close()

	client := &soap.Client{Endpoint: ts.URL + "/soap", Namespace: "urn:axml:news"}
	out, err := client.Call("Front_Page", []*doc.Node{doc.TextNode("paris-edition")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("result = %d roots", len(out))
	}
	fp := out[0]
	labels := fp.ChildLabels()
	if len(labels) < 3 || labels[2] != "temp" {
		t.Errorf("frontpage children = %v (temp should be materialized)", labels)
	}
	if fp.HasFuncs() {
		t.Error("enforced result still intensional")
	}
}
