package peer

import (
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/schema"
)

func negotiationProposals(t *testing.T, p *Peer) []Proposal {
	t.Helper()
	mk := func(name, model string) Proposal {
		s, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), strings.Replace(newspaperSchema,
			"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
			"elem newspaper = "+model, 1), nil)
		must(t, err)
		return Proposal{Name: name, Schema: s}
	}
	return []Proposal{
		mk("strict", "title.date.temp.exhibit*"),                           // (***): only possible
		mk("relaxed", "title.date.temp.(TimeOut|exhibit*)"),                // (**): safe with one call
		mk("intensional", "title.date.(Get_Temp|temp).(TimeOut|exhibit*)"), // (*): as-is
	}
}

func TestNegotiatePrefersAsIs(t *testing.T) {
	p := newsPeer(t)
	props := negotiationProposals(t, p)
	agreement, err := p.Negotiate("today", props)
	if err != nil {
		t.Fatal(err)
	}
	if agreement.Proposal.Name != "intensional" || !agreement.AsIs {
		t.Errorf("agreement = %+v, want as-is intensional", agreement)
	}
}

func TestNegotiateFallsBackToSafe(t *testing.T) {
	p := newsPeer(t)
	props := negotiationProposals(t, p)[:2] // drop the as-is candidate
	agreement, err := p.Negotiate("today", props)
	if err != nil {
		t.Fatal(err)
	}
	if agreement.Proposal.Name != "relaxed" || agreement.Mode != core.Safe || agreement.AsIs {
		t.Errorf("agreement = %+v, want safe relaxed", agreement)
	}
}

func TestNegotiateFallsBackToPossible(t *testing.T) {
	p := newsPeer(t)
	props := negotiationProposals(t, p)[:1] // only the strict candidate
	agreement, err := p.Negotiate("today", props)
	if err != nil {
		t.Fatal(err)
	}
	if agreement.Proposal.Name != "strict" || agreement.Mode != core.Possible {
		t.Errorf("agreement = %+v, want possible strict", agreement)
	}
}

func TestNegotiateFailure(t *testing.T) {
	p := newsPeer(t)
	hopeless, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), strings.Replace(newspaperSchema,
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = title.title", 1), nil)
	must(t, err)
	if _, err := p.Negotiate("today", []Proposal{{Name: "hopeless", Schema: hopeless}}); err == nil {
		t.Error("hopeless negotiation should fail")
	}
	if _, err := p.Negotiate("ghost", nil); err == nil {
		t.Error("negotiation over a missing document should fail")
	}
}

func TestNegotiateSchemas(t *testing.T) {
	p := newsPeer(t)
	props := negotiationProposals(t, p)
	agreement, err := p.NegotiateSchemas(props, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "strict" fails Definition 6, "relaxed" passes for every instance.
	if agreement.Proposal.Name != "relaxed" {
		t.Errorf("agreement = %+v, want relaxed", agreement)
	}
	if _, err := p.NegotiateSchemas(props[:1], 1); err == nil {
		t.Error("strict-only schema negotiation should fail")
	}
}
