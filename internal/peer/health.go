package peer

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Health tracks the daemon lifecycle for load-balancer probes. Liveness
// (/healthz) answers 200 whenever the process serves HTTP; readiness
// (/readyz) answers 200 only between SetReady(true) — store open, WAL
// recovery complete — and StartDrain, flipping to 503 before
// http.Server.Shutdown begins so balancers stop routing ahead of
// connection draining. A nil *Health reports always-ready, covering
// embedded peers without a daemon lifecycle.
type Health struct {
	ready    atomic.Bool
	draining atomic.Bool
}

// NewHealth returns a not-yet-ready Health.
func NewHealth() *Health { return &Health{} }

// SetReady marks the peer ready (or not) to receive traffic.
func (h *Health) SetReady(v bool) {
	if h != nil {
		h.ready.Store(v)
	}
}

// StartDrain marks the beginning of graceful shutdown; readiness reports
// 503 from here on while liveness stays 200.
func (h *Health) StartDrain() {
	if h != nil {
		h.draining.Store(true)
	}
}

// Ready reports whether the peer should receive new traffic.
func (h *Health) Ready() bool {
	if h == nil {
		return true
	}
	return h.ready.Load() && !h.draining.Load()
}

// Draining reports whether graceful shutdown has begun.
func (h *Health) Draining() bool {
	return h != nil && h.draining.Load()
}

// refuseWrites reports whether HTTP mutations must currently be rejected
// (503 + Retry-After) and why: the peer is a read-only replication
// follower, or graceful shutdown has begun and the store will close under
// any write still in flight. Reads are unaffected in both cases.
func (p *Peer) refuseWrites() (msg string, refused bool) {
	if p.ReadOnly {
		return "read-only follower: send writes to the leader", true
	}
	if p.Health.Draining() {
		return "draining: peer is shutting down", true
	}
	return "", false
}

// handleHealthz is the liveness probe: the process is up and serving.
func (p *Peer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodGet {
		_, _ = w.Write([]byte("ok\n"))
	}
}

// handleReadyz is the readiness probe.
func (p *Peer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ready := p.Health.Ready()
	status := http.StatusOK
	reason := ""
	if !ready {
		status = http.StatusServiceUnavailable
		if p.Health.Draining() {
			reason = "draining"
		} else {
			reason = "starting"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if r.Method != http.MethodGet {
		return
	}
	resp := map[string]any{"ready": ready}
	if reason != "" {
		resp["reason"] = reason
	}
	_ = json.NewEncoder(w).Encode(resp)
}
