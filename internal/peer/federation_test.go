package peer

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
)

// TestDrainRejectsWritesMidBurst hammers PUT /doc from several goroutines,
// flips StartDrain mid-burst, and checks the shared write guard: once a
// client sees 503 it never sees another acknowledgement (no post-drain
// write lands), the 503 carries Retry-After, and reads keep working.
func TestDrainRejectsWritesMidBurst(t *testing.T) {
	p := newsPeer(t)
	p.Health = NewHealth()
	p.Health.SetReady(true)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	const writers = 4
	var (
		wg          sync.WaitGroup
		ackedAfter  atomic.Int64 // 204s observed after a 503 — must stay 0
		sawRefusal  atomic.Int64
		missingWait atomic.Int64 // 503s without Retry-After — must stay 0
	)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			refused := false
			for i := 0; i < 10_000; i++ {
				resp := doReq(t, http.MethodPut,
					fmt.Sprintf("%s/doc/burst-g%d-%d", ts.URL, g, i), "<d>v</d>")
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusNoContent:
					if refused {
						ackedAfter.Add(1)
					}
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						missingWait.Add(1)
					}
					sawRefusal.Add(1)
					if refused {
						return // two refusals in a row: drain is sticky, stop
					}
					refused = true
				default:
					t.Errorf("PUT status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	p.Health.StartDrain()
	wg.Wait()

	if sawRefusal.Load() == 0 {
		t.Fatal("no writer observed a 503 after StartDrain")
	}
	if n := ackedAfter.Load(); n != 0 {
		t.Fatalf("%d writes acknowledged after a drain refusal", n)
	}
	if n := missingWait.Load(); n != 0 {
		t.Fatalf("%d refusals lacked a Retry-After header", n)
	}
	// Post-drain: every mutation refused, reads still served.
	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/late", "<d/>"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain PUT = %d, want 503", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodDelete, ts.URL+"/doc/burst-g0-0", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain DELETE = %d, want 503", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodGet, ts.URL+"/docs", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain read = %d, want 200", resp.StatusCode)
	}
}

// TestReadOnlyFollowerRejectsWrites checks the follower half of the shared
// guard: ReadOnly rejects PUT and DELETE with 503 + Retry-After while GET
// serves the replicated corpus.
func TestReadOnlyFollowerRejectsWrites(t *testing.T) {
	p := newsPeer(t)
	must(t, p.Repo.Put("replicated", doc.Elem("d", doc.TextNode("from-leader"))))
	p.ReadOnly = true
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp := doReq(t, http.MethodPut, ts.URL+"/doc/x", "<d/>")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower PUT = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("follower 503 lacks Retry-After")
	}
	if resp := doReq(t, http.MethodDelete, ts.URL+"/doc/replicated", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower DELETE = %d, want 503", resp.StatusCode)
	}
	if _, ok := p.Repo.Get("replicated"); !ok {
		t.Fatal("refused DELETE mutated the store")
	}
	if resp := doReq(t, http.MethodGet, ts.URL+"/doc/replicated", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower GET = %d, want 200 (hot-standby reads)", resp.StatusCode)
	}
}

// TestCrossPeerDocumentFetch exercises the tentpole's invocation leg: a
// function node whose service ref is peer://<name>/<doc> resolves through
// the roster to the remote peer's HTTP surface — the raw document without
// parameters, the enforcing /exchange endpoint with a schema parameter.
func TestCrossPeerDocumentFetch(t *testing.T) {
	remote := newsPeer(t)
	must(t, remote.Repo.Put("weather", doc.Elem("weather", doc.TextNode("sunny"))))
	ts := httptest.NewServer(remote.Handler())
	defer ts.Close()

	local := newsPeer(t)
	local.Peers = core.Roster{"remote": ts.URL}

	call := doc.CallAt(doc.ServiceRef{Endpoint: "peer://remote/weather", Method: "fetch"})
	out, err := local.Invoker().Invoke(context.Background(), call)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Label != "weather" {
		t.Fatalf("fetched forest = %+v", out)
	}
	if len(out[0].Children) != 1 || out[0].Children[0].Value != "sunny" {
		t.Fatalf("fetched document = %+v", out[0])
	}

	// An unknown peer is a roster error, reported without a round trip.
	bad := doc.CallAt(doc.ServiceRef{Endpoint: "peer://nowhere/weather", Method: "fetch"})
	if _, err := local.Invoker().Invoke(context.Background(), bad); err == nil ||
		!strings.Contains(err.Error(), "unknown peer") {
		t.Fatalf("unknown peer error = %v", err)
	}

	// Non-peer refs pass through untouched (here: to the local registry,
	// which does not know the operation).
	plain := doc.Call("not-registered")
	if _, err := local.Invoker().Invoke(context.Background(), plain); err == nil {
		t.Fatal("non-peer call must reach the ordinary resolution chain")
	}
}

func TestParseRoster(t *testing.T) {
	r, err := core.ParseRoster("east=http://a:8080/, west=http://b:8080")
	if err != nil {
		t.Fatal(err)
	}
	if r["east"] != "http://a:8080" || r["west"] != "http://b:8080" {
		t.Fatalf("roster = %v", r)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "east" || got[1] != "west" {
		t.Fatalf("names = %v", got)
	}
	for _, bad := range []string{"", "nourl", "a=,b=x", "a=x,a=y"} {
		if _, err := core.ParseRoster(bad); err == nil {
			t.Errorf("ParseRoster(%q) accepted", bad)
		}
	}
}
