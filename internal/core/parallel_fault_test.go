// Fault-injection tests for the parallel materialization engine. They live
// in package core_test because internal/invoke imports internal/core: the
// injector and retry policies cannot be imported from within package core.
package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/invoke"
	"axml/internal/schema"
)

const faultSenderText = `
root page
elem page = a.b
elem a = (GetA|val)
elem b = (GetB|val)
elem val = data
func GetA = data -> val
func GetB = data -> val
`

// faultPair builds the two-branch sender and a target where both branches
// (or, with keepA, only b) must be materialized.
func faultPair(t *testing.T, keepA bool) (*schema.Schema, *schema.Schema) {
	t.Helper()
	sender := schema.MustParseText(faultSenderText, nil)
	text := strings.Replace(faultSenderText, "elem b = (GetB|val)", "elem b = val", 1)
	if !keepA {
		text = strings.Replace(text, "elem a = (GetA|val)", "elem a = val", 1)
	}
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), text, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sender, target
}

func faultDoc() *doc.Node {
	return doc.Elem("page",
		doc.Elem("a", doc.Call("GetA", doc.TextNode("x"))),
		doc.Elem("b", doc.Call("GetB", doc.TextNode("y"))))
}

// stubInv answers every call with a single val element.
type stubInv struct{}

func (stubInv) Invoke(_ context.Context, call *doc.Node) ([]*doc.Node, error) {
	return []*doc.Node{doc.Elem("val", doc.TextNode(call.Label))}, nil
}

// instantRetry wraps inv in a single-attempt retry policy: any failure
// surfaces as a transient *invoke.PolicyError, the class Possible/Mixed
// rewritings degrade over.
func instantRetry(inv core.Invoker) core.Invoker {
	return invoke.Chain(inv, invoke.WithRetry(invoke.Retry{
		Attempts: 1,
		Sleep:    func(context.Context, time.Duration) error { return nil },
	}))
}

// TestFaultParallelSafeCancelsSiblings: in safe mode a failed concurrent
// call must abort the whole rewriting promptly — the in-flight sibling (a
// hang that only ends on context cancellation) is cancelled rather than
// awaited to its own timeout.
func TestFaultParallelSafeCancelsSiblings(t *testing.T) {
	sender, target := faultPair(t, false)
	fi := invoke.NewFaultInjector(nil)
	// GetA: 100ms, then fail (nil inner). The delay gives GetB's hang time
	// to start so the test observes a genuine in-flight cancellation.
	fi.Plan("GetA", invoke.Fault{Kind: invoke.FaultLatency, Latency: 100 * time.Millisecond})
	fi.Plan("GetB", invoke.Fault{Kind: invoke.FaultHang})

	rw := core.NewRewriter(sender, target, 2, fi)
	rw.Audit = &core.Audit{}
	rw.Parallelism = 4
	start := time.Now()
	_, err := rw.RewriteDocument(faultDoc(), core.Safe)
	elapsed := time.Since(start)
	if !errors.Is(err, invoke.ErrInjected) {
		t.Fatalf("want ErrInjected from GetA, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("rewriting took %v: the hung sibling was not cancelled", elapsed)
	}
	if got := fi.Calls("GetB"); got != 1 {
		t.Errorf("GetB started %d times, want 1 (dispatched concurrently, then cancelled)", got)
	}
}

// TestFaultParallelPossibleDegrades: a transient failure on a concurrent
// call in possible mode must degrade to backtracking — the occurrence is
// frozen, EventDegraded is audited, and the rewriting fails only at final
// verification because the frozen call cannot match the target.
func TestFaultParallelPossibleDegrades(t *testing.T) {
	sender, target := faultPair(t, false)
	fi := invoke.NewFaultInjector(stubInv{})
	fi.Plan("GetA", invoke.Fault{Kind: invoke.FaultError})

	rw := core.NewRewriter(sender, target, 2, instantRetry(fi))
	rw.Audit = &core.Audit{}
	rw.Parallelism = 4
	_, err := rw.RewriteDocument(faultDoc(), core.Possible)
	var nse *core.NotSafeError
	if !errors.As(err, &nse) {
		t.Fatalf("want NotSafeError after degradation, got %v", err)
	}
	degraded := false
	for _, e := range rw.Audit.Events() {
		if e.Kind == core.EventDegraded && e.Func == "GetA" {
			degraded = true
		}
	}
	if !degraded {
		t.Error("no EventDegraded for GetA in the audit: failure did not degrade to backtracking")
	}
}

// TestFaultParallelMixedPreInvokeDegrades: in the batched pre-invocation a
// transient failure freezes that occurrence and leaves it intensional while
// the rest of the batch lands; the rewriting still succeeds when the target
// admits the kept call.
func TestFaultParallelMixedPreInvokeDegrades(t *testing.T) {
	sender, target := faultPair(t, true) // target keeps (GetA|val) for a
	fi := invoke.NewFaultInjector(stubInv{})
	fi.Plan("GetA", invoke.Fault{Kind: invoke.FaultError})

	rw := core.NewRewriter(sender, target, 2, instantRetry(fi))
	rw.Audit = &core.Audit{}
	rw.Parallelism = 4
	out, err := rw.RewriteDocument(faultDoc(), core.Mixed)
	if err != nil {
		t.Fatalf("mixed rewriting must survive the degraded pre-invocation: %v", err)
	}
	a, b := out.Children[0], out.Children[1]
	if len(a.Children) != 1 || a.Children[0].Kind != doc.Func || a.Children[0].Label != "GetA" {
		t.Errorf("a = %v, want the intensional GetA kept", a.ChildLabels())
	}
	if len(b.Children) != 1 || b.Children[0].Label != "val" {
		t.Errorf("b = %v, want the pre-invoked val", b.ChildLabels())
	}
	degraded := false
	for _, e := range rw.Audit.Events() {
		if e.Kind == core.EventDegraded && e.Func == "GetA" {
			degraded = true
		}
	}
	if !degraded {
		t.Error("no EventDegraded for GetA in the audit")
	}
	if got := fi.Calls("GetB"); got != 1 {
		t.Errorf("GetB called %d times, want 1 (batch proceeds past the fault)", got)
	}
}
