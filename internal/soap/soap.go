// Package soap implements the minimal SOAP 1.1 transport the Active XML
// system exchanges intensional documents over: document-style envelopes
// whose bodies carry a method element with an intensional parameter forest,
// an http.Handler exposing a service registry, and a client-side
// core.Invoker that routes function nodes to their endpoints.
//
// The envelope subset is deliberately small — one body entry, no headers,
// standard Fault reporting — which is all the paper's data-exchange scenario
// requires; everything interesting rides inside the intensional XML payload.
package soap

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"axml/internal/doc"
	"axml/internal/xmlio"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// Fault is a decoded SOAP fault.
type Fault struct {
	Code   string
	String string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.String)
}

// Request is a decoded call request.
type Request struct {
	Method    string
	Namespace string
	Params    []*doc.Node
}

// WriteRequest encodes a call envelope.
func WriteRequest(w io.Writer, method, namespace string, params []*doc.Node) error {
	return writeEnvelope(w, method, namespace, params)
}

// WriteResponse encodes a reply envelope; the body element is
// <m:<method>Response>.
func WriteResponse(w io.Writer, method, namespace string, result []*doc.Node) error {
	return writeEnvelope(w, method+"Response", namespace, result)
}

// WriteFault encodes a fault envelope.
func WriteFault(w io.Writer, code, msg string) error {
	var b strings.Builder
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, "<soap:Envelope xmlns:soap=%q>\n  <soap:Body>\n    <soap:Fault>\n", EnvelopeNS)
	fmt.Fprintf(&b, "      <faultcode>%s</faultcode>\n", escape(code))
	fmt.Fprintf(&b, "      <faultstring>%s</faultstring>\n", escape(msg))
	b.WriteString("    </soap:Fault>\n  </soap:Body>\n</soap:Envelope>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

func writeEnvelope(w io.Writer, bodyElem, namespace string, forest []*doc.Node) error {
	var b strings.Builder
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, "<soap:Envelope xmlns:soap=%q xmlns:int=%q>\n", EnvelopeNS, xmlio.Namespace)
	b.WriteString("  <soap:Body>\n")
	ns := ""
	if namespace != "" {
		ns = fmt.Sprintf(" xmlns:m=%q", namespace)
	}
	prefix := ""
	if namespace != "" {
		prefix = "m:"
	}
	fmt.Fprintf(&b, "    <%s%s%s>\n", prefix, bodyElem, ns)
	for _, n := range forest {
		if err := xmlio.WriteFragment(&b, n, 3, false); err != nil {
			return err
		}
	}
	fmt.Fprintf(&b, "    </%s%s>\n", prefix, bodyElem)
	b.WriteString("  </soap:Body>\n</soap:Envelope>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadRequest decodes a call envelope.
func ReadRequest(r io.Reader) (*Request, error) {
	method, ns, forest, fault, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if fault != nil {
		return nil, fault
	}
	return &Request{Method: method, Namespace: ns, Params: forest}, nil
}

// ReadResponse decodes a reply envelope, returning the result forest; SOAP
// faults surface as *Fault errors.
func ReadResponse(r io.Reader) ([]*doc.Node, error) {
	method, _, forest, fault, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if fault != nil {
		return nil, fault
	}
	if !strings.HasSuffix(method, "Response") {
		return nil, fmt.Errorf("soap: body element %q is not a response", method)
	}
	return forest, nil
}

// readEnvelope walks Envelope/Body and decodes the single body entry.
func readEnvelope(r io.Reader) (method, namespace string, forest []*doc.Node, fault *Fault, err error) {
	dec := xml.NewDecoder(r)
	if err := expectStart(dec, EnvelopeNS, "Envelope"); err != nil {
		return "", "", nil, nil, err
	}
	if err := expectStart(dec, EnvelopeNS, "Body"); err != nil {
		return "", "", nil, nil, err
	}
	start, err2 := nextStart(dec)
	if err2 != nil {
		return "", "", nil, nil, fmt.Errorf("soap: empty body: %w", err2)
	}
	if start.Name.Space == EnvelopeNS && start.Name.Local == "Fault" {
		f, err3 := readFault(dec)
		return "", "", nil, f, err3
	}
	forest, err = xmlio.ParseChildrenAt(dec, start.Name)
	if err != nil {
		return "", "", nil, nil, fmt.Errorf("soap: body entry: %w", err)
	}
	return start.Name.Local, start.Name.Space, forest, nil, nil
}

func readFault(dec *xml.Decoder) (*Fault, error) {
	f := &Fault{}
	depth := 1
	var field *string
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("soap: truncated fault: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch t.Name.Local {
			case "faultcode":
				field = &f.Code
			case "faultstring":
				field = &f.String
			default:
				field = nil
			}
		case xml.CharData:
			if field != nil {
				*field += strings.TrimSpace(string(t))
			}
		case xml.EndElement:
			depth--
			field = nil
		}
	}
	return f, nil
}

// nextStart returns the next StartElement, skipping whitespace and comments.
func nextStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return t, nil
		case xml.EndElement:
			return xml.StartElement{}, fmt.Errorf("soap: unexpected </%s>", t.Name.Local)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return xml.StartElement{}, fmt.Errorf("soap: unexpected text %q", string(t))
			}
		}
	}
}

func expectStart(dec *xml.Decoder, space, local string) error {
	start, err := nextStart(dec)
	if err != nil {
		return fmt.Errorf("soap: expected <%s>: %w", local, err)
	}
	if start.Name.Space != space || start.Name.Local != local {
		return fmt.Errorf("soap: expected <%s> in %s, got <%s> in %s", local, space, start.Name.Local, start.Name.Space)
	}
	return nil
}
