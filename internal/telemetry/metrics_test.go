package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("axml_test_total", "op", "x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("axml_test_total", "op", "x"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("axml_test_gauge")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("axml_test_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // +Inf bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	if got := h.Sum(); got != 100.55 {
		t.Fatalf("histogram sum = %v, want 100.55", got)
	}
}

func TestValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("axml_hits_total").Add(7)
	r.Gauge("axml_depth", "peer", "p").Set(3)
	r.Histogram("axml_lat_seconds", nil).Observe(1)
	r.CounterFunc("axml_fn_total", func() float64 { return 42 })

	cases := []struct {
		name   string
		labels []string
		want   float64
	}{
		{"axml_hits_total", nil, 7},
		{"axml_depth", []string{"peer", "p"}, 3},
		{"axml_lat_seconds", nil, 1}, // histograms report their count
		{"axml_fn_total", nil, 42},
	}
	for _, tc := range cases {
		got, ok := r.Value(tc.name, tc.labels...)
		if !ok || got != tc.want {
			t.Errorf("Value(%s) = %v, %v; want %v, true", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := r.Value("axml_missing"); ok {
		t.Error("Value on a missing series reported ok")
	}
}

// TestPrometheusGolden pins the full exposition text: TYPE lines,
// family and label-block ordering, cumulative le buckets, escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("axml_b_total", "mode", "safe").Add(3)
	r.Counter("axml_b_total", "mode", "possible").Add(1)
	r.Gauge("axml_a_gauge").Set(1.5)
	h := r.Histogram("axml_c_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	r.Counter("axml_d_total", "path", `a\b"c`+"\n").Inc()
	r.GaugeFunc("axml_e_live", func() float64 { return 9 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE axml_a_gauge gauge
axml_a_gauge 1.5
# TYPE axml_b_total counter
axml_b_total{mode="possible"} 1
axml_b_total{mode="safe"} 3
# TYPE axml_c_seconds histogram
axml_c_seconds_bucket{le="0.5"} 1
axml_c_seconds_bucket{le="1"} 2
axml_c_seconds_bucket{le="+Inf"} 3
axml_c_seconds_sum 3
axml_c_seconds_count 3
# TYPE axml_d_total counter
axml_d_total{path="a\\b\"c\n"} 1
# TYPE axml_e_live gauge
axml_e_live 9
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("axml_x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("axml_x_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("axml_nil_total")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("axml_nil_gauge")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("axml_nil_seconds", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	r.CounterFunc("axml_nil_fn", func() float64 { return 1 })
	r.GaugeFunc("axml_nil_fn2", func() float64 { return 1 })
	if _, ok := r.Value("axml_nil_fn"); ok {
		t.Fatal("nil registry returned a value")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry returned a tracer")
	}
}

// TestConcurrentHammer drives every metric kind plus exposition from
// many goroutines; run under -race it proves the registry is safe, and
// the counter total proves no increments are lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("axml_hammer_total", "worker", []string{"a", "b"}[g%2]).Inc()
				r.Gauge("axml_hammer_gauge").Add(1)
				r.Histogram("axml_hammer_seconds", nil).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := r.Counter("axml_hammer_total", "worker", "a").Value() +
		r.Counter("axml_hammer_total", "worker", "b").Value()
	if total != goroutines*iters {
		t.Fatalf("counter total = %d, want %d", total, goroutines*iters)
	}
	if got := r.Gauge("axml_hammer_gauge").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("axml_hammer_seconds", nil).Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
}
