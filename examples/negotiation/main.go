// Negotiation and automatic converters — the two extensions sketched in the
// paper's conclusion (§8). A sender peer holds an intensional document and
// three receivers propose different exchange schemas; the negotiator picks
// the weakest discipline that works for each. A legacy weather service then
// returns data in a synonymous vocabulary, and a converter chain heals it.
//
//	go run ./examples/negotiation
package main

import (
	"fmt"
	"log"

	"axml"
)

const senderSrc = `
root newspaper
elem newspaper = title.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem temp = data
elem city = data
elem exhibit = title
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`

func main() {
	s := axml.MustParseSchemaText(senderSrc)
	p := axml.NewPeer("news", s)
	p.Repo.Put("today", axml.Elem("newspaper",
		axml.Elem("title", axml.Text("The Sun")),
		axml.Call("Get_Temp", axml.Elem("city", axml.Text("Paris"))),
		axml.Call("TimeOut", axml.Text("exhibits")),
	))

	mk := func(model string) *axml.Schema {
		return axml.MustParseSchemaTextShared(s, `
root newspaper
elem newspaper = `+model+`
elem title = data
elem temp = data
elem city = data
elem exhibit = title
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`)
	}

	fmt.Println("== negotiating an exchange schema per receiver ==")
	receivers := []struct {
		name      string
		proposals []string
	}{
		{"browser (wants everything concrete)", []string{"title.temp.exhibit*"}},
		{"cautious peer (temp concrete, listing may stay a call)", []string{"title.temp.(TimeOut|exhibit*)"}},
		{"axml peer (accepts fully intensional)", []string{
			"title.(Get_Temp|temp).(TimeOut|exhibit*)",
			"title.temp.(TimeOut|exhibit*)",
		}},
	}
	for _, rcv := range receivers {
		var props []axml.PeerProposal
		for i, model := range rcv.proposals {
			props = append(props, axml.PeerProposal{
				Name:   fmt.Sprintf("option-%d (%s)", i+1, model),
				Schema: mk(model),
			})
		}
		agreement, err := p.Negotiate("today", props)
		if err != nil {
			fmt.Printf("  %-55s no agreement: %v\n", rcv.name, err)
			continue
		}
		how := string(agreement.Mode.String())
		if agreement.AsIs {
			how = "as-is (zero calls)"
		}
		fmt.Printf("  %-55s -> %s via %s rewriting\n", rcv.name, agreement.Proposal.Name, how)
	}

	fmt.Println("\n== converters heal a legacy service's vocabulary ==")
	legacy := axml.InvokerFunc(func(call *axml.Node) ([]*axml.Node, error) {
		switch call.Label {
		case "Get_Temp":
			// Legacy vocabulary AND an envelope wrapper.
			return []*axml.Node{axml.Elem("weatherResult",
				axml.Elem("temperature", axml.Text("15")))}, nil
		case "TimeOut":
			return []*axml.Node{axml.Elem("exhibit", axml.Elem("title", axml.Text("Dali")))}, nil
		default:
			return nil, fmt.Errorf("unknown service %q", call.Label)
		}
	})
	target := mk("title.temp.exhibit*")
	rw := axml.NewRewriter(s, target, 1, legacy)
	rw.Audit = &axml.Audit{}

	stored, _ := p.Repo.Get("today")
	if _, err := rw.RewriteDocument(stored.Clone(), axml.Possible); err != nil {
		fmt.Printf("  without converters: %v\n", err)
	}
	rw.Converters = axml.Converters{axml.InlineConverter(
		func(fn string, forest []*axml.Node) ([]*axml.Node, bool) {
			unwrapped, ok1 := axml.UnwrapElement("weatherResult").Convert(fn, forest)
			if !ok1 {
				unwrapped = forest
			}
			renamed, ok2 := axml.RenameLabels(map[string]string{"temperature": "temp"}).Convert(fn, unwrapped)
			if !ok2 {
				renamed = unwrapped
			}
			return renamed, ok1 || ok2
		})}
	out, err := rw.RewriteDocument(stored, axml.Possible)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with converters: %v\n", out.ChildLabels())
	if err := axml.Validate(target, s, out); err != nil {
		log.Fatal("result invalid: ", err)
	}
	fmt.Println("  healed result conforms to the exchange schema ✓")
}
