// Package storetest is the conformance suite every DocStore backend must
// pass: one set of subtests pinning the interface contract — clone-in/
// clone-out aliasing, ErrNotFound/ErrClosed sentinels, Scan pagination,
// function-index maintenance, concurrency under -race, and (for backends
// that persist) reopen recovery. New backends get the whole contract for
// the price of a Factory.
package storetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"axml/internal/doc"
	"axml/internal/store"
)

// Factory describes one backend under test.
type Factory struct {
	// Name labels the subtest tree ("mem", "wal", "disk").
	Name string
	// Open returns a fresh, empty store. Cleanup (including Close) is the
	// suite's job, not Open's.
	Open func(t *testing.T) store.DocStore
	// Reopen returns a new store over the same underlying state as the
	// last Open/Reopen from the same test, after the suite has Closed it.
	// Nil for ephemeral backends; non-nil enables the recovery subtests.
	Reopen func(t *testing.T) store.DocStore
}

// Run drives the full conformance suite against one backend.
func Run(t *testing.T, f Factory) {
	t.Run("BasicCRUD", func(t *testing.T) { testBasicCRUD(t, f) })
	t.Run("CloneInCloneOut", func(t *testing.T) { testCloneAliasing(t, f) })
	t.Run("Update", func(t *testing.T) { testUpdate(t, f) })
	t.Run("ScanPagination", func(t *testing.T) { testScan(t, f) })
	t.Run("FunctionIndex", func(t *testing.T) { testFunctionIndex(t, f) })
	t.Run("ClosedStore", func(t *testing.T) { testClosed(t, f) })
	t.Run("ConcurrentHammer", func(t *testing.T) { testConcurrent(t, f) })
	if f.Reopen != nil {
		t.Run("ReopenRecovers", func(t *testing.T) { testReopen(t, f) })
	}
}

func newsDoc(body string) *doc.Node {
	return doc.Elem("page", doc.TextNode(body), doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
}

func mustPut(t *testing.T, s store.DocStore, name string, d *doc.Node) {
	t.Helper()
	if err := s.Put(name, d); err != nil {
		t.Fatalf("Put(%q) = %v", name, err)
	}
}

func testBasicCRUD(t *testing.T, f Factory) {
	s := f.Open(t)
	defer s.Close()

	if _, ok := s.Get("missing"); ok {
		t.Error("Get on an empty store reported ok")
	}
	mustPut(t, s, "a", newsDoc("one"))
	mustPut(t, s, "b", newsDoc("two"))
	if got := s.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	d, ok := s.Get("a")
	if !ok || d.Children[0].Value != "one" {
		t.Fatalf("Get(a) = %v, %v", d, ok)
	}

	// Put replaces.
	mustPut(t, s, "a", newsDoc("uno"))
	if d, _ := s.Get("a"); d.Children[0].Value != "uno" {
		t.Errorf("Put did not replace: %v", d)
	}
	if got := s.Len(); got != 2 {
		t.Errorf("Len after replace = %d, want 2", got)
	}

	wantNames := []string{"a", "b"}
	if got := s.Names(); fmt.Sprint(got) != fmt.Sprint(wantNames) {
		t.Errorf("Names = %v, want %v (sorted)", got, wantNames)
	}

	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete = %v", err)
	}
	if _, ok := s.Get("a"); ok {
		t.Error("document survived Delete")
	}
	// Deleting an absent name is a no-op, not an error.
	if err := s.Delete("a"); err != nil {
		t.Errorf("repeat Delete = %v, want nil", err)
	}
	if got := s.Len(); got != 1 {
		t.Errorf("Len after delete = %d, want 1", got)
	}
}

// The aliasing contract: a caller can never mutate stored state through a
// node it handed in or got back.
func testCloneAliasing(t *testing.T, f Factory) {
	s := f.Open(t)
	defer s.Close()

	in := newsDoc("original")
	mustPut(t, s, "memo", in)
	in.Children[0].Value = "scribbled-after-put"
	if d, _ := s.Get("memo"); d.Children[0].Value != "original" {
		t.Errorf("mutating the input after Put leaked into the store: %v", d)
	}

	out, _ := s.Get("memo")
	out.Children[0].Value = "scribbled-on-output"
	if d, _ := s.Get("memo"); d.Children[0].Value != "original" {
		t.Errorf("mutating a returned node leaked into the store: %v", d)
	}
}

func testUpdate(t *testing.T, f Factory) {
	s := f.Open(t)
	defer s.Close()
	mustPut(t, s, "memo", newsDoc("v1"))

	// The happy path commits fn's return.
	err := s.Update("memo", func(d *doc.Node) (*doc.Node, error) {
		d.Children[0].Value = "v2"
		return d, nil
	})
	if err != nil {
		t.Fatalf("Update = %v", err)
	}
	if d, _ := s.Get("memo"); d.Children[0].Value != "v2" {
		t.Errorf("Update not committed: %v", d)
	}

	// An fn error aborts and leaves the document unchanged.
	boom := errors.New("boom")
	err = s.Update("memo", func(d *doc.Node) (*doc.Node, error) {
		d.Children[0].Value = "must-not-commit"
		return d, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("Update error = %v, want the fn error", err)
	}
	if d, _ := s.Get("memo"); d.Children[0].Value != "v2" {
		t.Errorf("aborted Update mutated the store: %v", d)
	}

	// A miss is the ErrNotFound sentinel, wrapped.
	err = s.Update("absent", func(d *doc.Node) (*doc.Node, error) { return d, nil })
	if !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Update miss = %v, want errors.Is ErrNotFound", err)
	}
}

func testScan(t *testing.T, f Factory) {
	s := f.Open(t)
	defer s.Close()
	const n = 7
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("doc-%02d", i), newsDoc("x"))
	}

	// Page through with limit 3: pages of 3, 3, 1.
	var all []string
	after, pages := "", 0
	for {
		names, more, err := s.Scan(after, 3)
		if err != nil {
			t.Fatalf("Scan = %v", err)
		}
		all = append(all, names...)
		pages++
		if !more {
			break
		}
		if len(names) == 0 {
			t.Fatal("Scan reported more with an empty page")
		}
		after = names[len(names)-1]
	}
	if pages != 3 || len(all) != n {
		t.Errorf("paged %d names over %d pages, want %d over 3", len(all), pages, n)
	}
	for i, name := range all {
		if want := fmt.Sprintf("doc-%02d", i); name != want {
			t.Errorf("page order: got %q at %d, want %q", name, i, want)
		}
	}

	// The cursor is exclusive; limit <= 0 selects a backend default that
	// covers this small corpus in one page.
	names, more, err := s.Scan("doc-04", 0)
	if err != nil || more {
		t.Fatalf("Scan(doc-04, 0) = %v, more=%v", err, more)
	}
	if fmt.Sprint(names) != fmt.Sprint([]string{"doc-05", "doc-06"}) {
		t.Errorf("Scan after doc-04 = %v", names)
	}

	// A cursor past the end is an empty final page.
	names, more, err = s.Scan("zzz", 5)
	if err != nil || more || len(names) != 0 {
		t.Errorf("Scan past the end = %v, %v, %v", names, more, err)
	}
}

func testFunctionIndex(t *testing.T, f Factory) {
	s := f.Open(t)
	defer s.Close()
	fi, ok := s.(store.FunctionIndex)
	if !ok {
		t.Skipf("%s does not implement store.FunctionIndex", f.Name)
	}

	mustPut(t, s, "w1", newsDoc("a"))                                  // Get_Temp
	mustPut(t, s, "w2", newsDoc("b"))                                  // Get_Temp
	mustPut(t, s, "plain", doc.Elem("page", doc.TextNode("no calls"))) // none
	mustPut(t, s, "times", doc.Elem("page", doc.Call("Get_Time")))

	docs, err := fi.DocsWithFunction("Get_Temp")
	if err != nil {
		t.Fatalf("DocsWithFunction = %v", err)
	}
	if fmt.Sprint(docs) != fmt.Sprint([]string{"w1", "w2"}) {
		t.Errorf("DocsWithFunction(Get_Temp) = %v, want [w1 w2]", docs)
	}
	if docs, _ := fi.DocsWithFunction("Nope"); len(docs) != 0 {
		t.Errorf("unknown function indexed: %v", docs)
	}

	// Overwriting a document re-indexes it: w1 loses Get_Temp, gains
	// Get_Time.
	mustPut(t, s, "w1", doc.Elem("page", doc.Call("Get_Time")))
	if docs, _ := fi.DocsWithFunction("Get_Temp"); fmt.Sprint(docs) != fmt.Sprint([]string{"w2"}) {
		t.Errorf("after overwrite, DocsWithFunction(Get_Temp) = %v, want [w2]", docs)
	}
	if docs, _ := fi.DocsWithFunction("Get_Time"); fmt.Sprint(docs) != fmt.Sprint([]string{"times", "w1"}) {
		t.Errorf("after overwrite, DocsWithFunction(Get_Time) = %v, want [times w1]", docs)
	}

	// Update re-indexes: materialize w2's call and it leaves the index.
	err = s.Update("w2", func(d *doc.Node) (*doc.Node, error) {
		return doc.Elem("page", doc.Elem("temp", doc.TextNode("21"))), nil
	})
	if err != nil {
		t.Fatalf("Update = %v", err)
	}
	if docs, _ := fi.DocsWithFunction("Get_Temp"); len(docs) != 0 {
		t.Errorf("materialized call still indexed: %v", docs)
	}

	// Delete drops the document's index entries.
	if err := s.Delete("times"); err != nil {
		t.Fatal(err)
	}
	if docs, _ := fi.DocsWithFunction("Get_Time"); fmt.Sprint(docs) != fmt.Sprint([]string{"w1"}) {
		t.Errorf("after delete, DocsWithFunction(Get_Time) = %v, want [w1]", docs)
	}
}

func testClosed(t *testing.T, f Factory) {
	s := f.Open(t)
	mustPut(t, s, "memo", newsDoc("survives"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	// Idempotent.
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}

	if err := s.Put("late", newsDoc("x")); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Put after Close = %v, want errors.Is ErrClosed", err)
	}
	if err := s.Delete("memo"); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Delete after Close = %v, want errors.Is ErrClosed", err)
	}
	err := s.Update("memo", func(d *doc.Node) (*doc.Node, error) { return d, nil })
	if !errors.Is(err, store.ErrClosed) {
		t.Errorf("Update after Close = %v, want errors.Is ErrClosed", err)
	}

	// Reads keep working against the last committed state.
	if d, ok := s.Get("memo"); !ok || d.Children[0].Value != "survives" {
		t.Errorf("Get after Close = %v, %v", d, ok)
	}
	if got := s.Len(); got != 1 {
		t.Errorf("Len after Close = %d", got)
	}
}

// testConcurrent hammers one store from many goroutines; run the suite with
// -race to make this a data-race detector, and check invariants afterwards.
func testConcurrent(t *testing.T, f Factory) {
	s := f.Open(t)
	defer s.Close()
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("worker-%d", w)
			for i := 0; i < rounds; i++ {
				if err := s.Put(name, newsDoc(fmt.Sprintf("round %d", i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if d, ok := s.Get(name); ok && len(d.Children) == 0 {
					t.Error("Get returned an empty document")
					return
				}
				_ = s.Update(name, func(d *doc.Node) (*doc.Node, error) {
					d.Children[0].Value = "updated"
					return d, nil
				})
				s.Get(fmt.Sprintf("worker-%d", (w+1)%workers))
				if _, _, err := s.Scan("", 4); err != nil {
					t.Errorf("Scan: %v", err)
					return
				}
				if fi, ok := s.(store.FunctionIndex); ok {
					if _, err := fi.DocsWithFunction("Get_Temp"); err != nil {
						t.Errorf("DocsWithFunction: %v", err)
						return
					}
				}
				if i%10 == 9 {
					if err := s.Delete(name); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every worker's last round Put then Updated without deleting.
	if got := s.Len(); got != workers {
		t.Errorf("Len after hammer = %d, want %d", got, workers)
	}
	for w := 0; w < workers; w++ {
		if d, ok := s.Get(fmt.Sprintf("worker-%d", w)); !ok || d.Children[0].Value != "updated" {
			t.Errorf("worker-%d document = %v, %v", w, d, ok)
		}
	}
}

// testReopen is the crash-recovery half of the contract: everything
// acknowledged before Close is there after a reopen, including the
// function index.
func testReopen(t *testing.T, f Factory) {
	s := f.Open(t)
	mustPut(t, s, "keep", newsDoc("persisted"))
	mustPut(t, s, "gone", newsDoc("deleted"))
	mustPut(t, s, "fresh", doc.Elem("page", doc.Call("Get_Time")))
	if err := s.Update("keep", func(d *doc.Node) (*doc.Node, error) {
		d.Children[0].Value = "persisted-v2"
		return d, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}

	s2 := f.Reopen(t)
	defer s2.Close()
	if got := s2.Len(); got != 2 {
		t.Errorf("Len after reopen = %d, want 2", got)
	}
	if d, ok := s2.Get("keep"); !ok || d.Children[0].Value != "persisted-v2" {
		t.Errorf("keep after reopen = %v, %v", d, ok)
	}
	if _, ok := s2.Get("gone"); ok {
		t.Error("deleted document resurrected by reopen")
	}
	if fi, ok := s2.(store.FunctionIndex); ok {
		if docs, _ := fi.DocsWithFunction("Get_Temp"); fmt.Sprint(docs) != fmt.Sprint([]string{"keep"}) {
			t.Errorf("index after reopen: Get_Temp in %v, want [keep]", docs)
		}
		if docs, _ := fi.DocsWithFunction("Get_Time"); fmt.Sprint(docs) != fmt.Sprint([]string{"fresh"}) {
			t.Errorf("index after reopen: Get_Time in %v, want [fresh]", docs)
		}
	}
}
