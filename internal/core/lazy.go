package core

import (
	"fmt"

	"axml/internal/regex"
)

// The lazy variant (Section 7 of the paper, Figure 12) explores the product
// A_w^k × Ā on the fly instead of constructing it up front. The complement
// automaton Ā is never built: its states are Brzozowski derivatives of the
// target content model, complete by construction, with
//
//   - the derivative ∅ playing the role of Ā's accepting *sink* — once the
//     consumed prefix cannot be completed into a target word, every
//     continuation is accepted by the complement, so the product state is
//     marked immediately and nothing below it is explored ("Sink nodes"
//     pruning); and
//   - exploration of a state stopping at the first group found lost —
//     all options marked for a rewriter fork, any option marked for an
//     adversarial group ("Marked nodes" pruning).
//
// Cycles through states still under exploration are recorded optimistically
// and resolved by the same backward attractor as the eager algorithm,
// restricted to the explored subgraph. This is sound: marking information
// only ever flows backward along recorded edges, and every recorded option's
// target has itself been explored.

// LazyResult carries a verdict plus the exploration statistics the
// lazy-vs-eager experiment (E-C5 / Figure 12) reports.
type LazyResult struct {
	// Verdict is "safe" for LazySafe, "possible" for LazyPossible.
	Verdict bool
	// StatesExplored counts product states materialized lazily; compare
	// against SafeAnalysis.NumProdStates / PossibleAnalysis.NumProdStates.
	StatesExplored int
	// SinkPrunes counts states cut by the ∅-derivative rule; MarkPrunes
	// counts states whose group expansion stopped early.
	SinkPrunes int
	MarkPrunes int
}

type lazyStatus uint8

const (
	lazyUnknown lazyStatus = iota
	lazyOnStack
	lazyMarked
	lazyRecorded // groups recorded; final mark decided by the attractor
)

type lazySafe struct {
	fork    *Fork
	deriver *regex.Deriver
	fresh   regex.Symbol

	index  map[string]int
	qOf    []int
	dOf    []*regex.Regex
	status []lazyStatus
	groups [][]Group

	sinkPrunes int
	markPrunes int
}

// LazySafe answers the same question as AnalyzeSafe with lazy exploration.
func LazySafe(c *Compiled, tokens []Token, target *regex.Regex, k int) (*LazyResult, error) {
	fork, err := BuildFork(c, tokens, k)
	if err != nil {
		return nil, err
	}
	expanded := c.ExpandPatterns(target)
	ls := &lazySafe{
		fork:    fork,
		deriver: c.Deriver(),
		fresh:   freshSymbol(c.Table, expanded),
		index:   map[string]int{},
	}
	init := ls.intern(0, expanded)
	ls.explore(init)
	ls.attractor()
	return &LazyResult{
		Verdict:        ls.status[init] != lazyMarked,
		StatesExplored: len(ls.qOf),
		SinkPrunes:     ls.sinkPrunes,
		MarkPrunes:     ls.markPrunes,
	}, nil
}

// freshSymbol returns a symbol mentioned by none of the given expressions,
// standing in for "any symbol outside the effective alphabet" when deriving.
func freshSymbol(t *regex.Table, rs ...*regex.Regex) regex.Symbol {
	used := map[regex.Symbol]bool{}
	for _, r := range rs {
		if r == nil {
			continue
		}
		for _, s := range r.Alphabet(nil) {
			used[s] = true
		}
	}
	for i := 0; ; i++ {
		s := t.Intern(fmt.Sprintf("\x00other%d", i))
		if !used[s] {
			return s
		}
	}
}

func (ls *lazySafe) intern(q int, d *regex.Regex) int {
	key := fmt.Sprintf("%d|%s", q, d.Key())
	if s, ok := ls.index[key]; ok {
		return s
	}
	s := len(ls.qOf)
	ls.index[key] = s
	ls.qOf = append(ls.qOf, q)
	ls.dOf = append(ls.dOf, d)
	ls.status = append(ls.status, lazyUnknown)
	ls.groups = append(ls.groups, nil)
	return s
}

// explore runs the pruned DFS. Every state it interns, it also explores, so
// no lazyUnknown states survive it.
func (ls *lazySafe) explore(s int) {
	switch ls.status[s] {
	case lazyOnStack, lazyMarked, lazyRecorded:
		return
	}
	q, d := ls.qOf[s], ls.dOf[s]
	// Sink rule: the complement accepts everything from here on, and A_w^k
	// can always complete its word, so the rewriter has already lost.
	if d.IsNever() {
		ls.status[s] = lazyMarked
		ls.sinkPrunes++
		return
	}
	// Seed rule: word complete and outside the target language.
	if ls.fork.Accept[q] && !d.Nullable() {
		ls.status[s] = lazyMarked
		return
	}
	ls.status[s] = lazyOnStack
	var groups []Group
	edges := ls.fork.Edges[q]
	pruned := false
edgeLoop:
	for _, e := range edges {
		if e.IsCall {
			continue
		}
		for _, g := range ls.expandEdge(e, edges, d) {
			// Explore the options, then test whether this group is already
			// lost with the knowledge gathered so far. A state on the DFS
			// stack counts as unmarked (optimistic); the attractor repairs
			// any cycle that turns out marked.
			lost := g.Fork
			for _, o := range g.Options {
				ls.explore(o.To)
				marked := ls.status[o.To] == lazyMarked
				if g.Fork {
					lost = lost && marked
				} else {
					lost = lost || marked
				}
			}
			groups = append(groups, g)
			if lost {
				ls.status[s] = lazyMarked
				ls.markPrunes++
				pruned = true
				break edgeLoop
			}
		}
	}
	if !pruned {
		ls.status[s] = lazyRecorded
	}
	ls.groups[s] = groups
}

// expandEdge converts one fork edge into product groups against derivative
// state d: ε edges and fork pairs yield one group; a class-labeled word edge
// yields one adversarial singleton group per admissible symbol (collapsed
// to distinct derivative targets).
func (ls *lazySafe) expandEdge(e ForkEdge, edges []ForkEdge, d *regex.Regex) []Group {
	if e.Eps {
		return []Group{{Options: []ProdEdge{{To: ls.intern(e.To, d), Sym: regex.NoSymbol}}}}
	}
	if e.Partner >= 0 {
		f := e.FuncSym
		keepTo := ls.intern(e.To, ls.deriver.Derive(d, f))
		call := edges[e.Partner]
		callTo := ls.intern(call.To, d)
		return []Group{{
			Fork:     true,
			FuncSym:  f,
			TokenIdx: e.TokenIdx,
			Options: []ProdEdge{
				{To: keepTo, FuncSym: f, TokenIdx: e.TokenIdx, Sym: f},
				{To: callTo, ViaCall: true, FuncSym: f, TokenIdx: e.TokenIdx, Sym: regex.NoSymbol},
			},
		}}
	}
	var groups []Group
	add := func(to int, x regex.Symbol) {
		groups = append(groups, Group{Options: []ProdEdge{{To: to, Sym: x, TokenIdx: e.TokenIdx, FuncSym: regex.NoSymbol}}})
	}
	if !e.Cls.Negated {
		for _, x := range e.Cls.Syms {
			add(ls.intern(e.To, ls.deriver.Derive(d, x)), x)
		}
		return groups
	}
	seen := map[int]bool{}
	for _, x := range relevantSymbols(d, e.Cls) {
		to := ls.intern(e.To, ls.deriver.Derive(d, x))
		if !seen[to] {
			seen[to] = true
			add(to, x)
		}
	}
	if to := ls.intern(e.To, ls.deriver.Derive(d, ls.fresh)); !seen[to] {
		add(to, regex.NoSymbol)
	}
	return groups
}

// relevantSymbols lists the symbols of d's alphabet admitted by the class —
// the only symbols whose derivatives can differ from the fresh symbol's.
func relevantSymbols(d *regex.Regex, cls regex.Class) []regex.Symbol {
	var out []regex.Symbol
	for _, x := range d.Alphabet(nil) {
		if cls.Contains(x) {
			out = append(out, x)
		}
	}
	return out
}

// attractor finalizes marking over the recorded subgraph, exactly as in the
// eager algorithm: a fork group is lost when all options are marked, any
// other group when its single option is.
func (ls *lazySafe) attractor() {
	n := len(ls.qOf)
	type dep struct{ s, g int }
	incoming := map[int][]dep{}
	remaining := make([][]int, n)
	var queue []int
	for s := 0; s < n; s++ {
		if ls.status[s] == lazyMarked {
			queue = append(queue, s)
		}
		remaining[s] = make([]int, len(ls.groups[s]))
		for g, grp := range ls.groups[s] {
			remaining[s][g] = len(grp.Options)
			for _, o := range grp.Options {
				incoming[o.To] = append(incoming[o.To], dep{s, g})
			}
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, d := range incoming[t] {
			if ls.status[d.s] == lazyMarked {
				continue
			}
			remaining[d.s][d.g]--
			if remaining[d.s][d.g] == 0 {
				ls.status[d.s] = lazyMarked
				queue = append(queue, d.s)
			}
		}
	}
}

// LazyPossible answers Figure 9's question by pruned DFS reachability:
// search for an accepting product state, never expanding past the ∅
// derivative (nothing accepts beyond the sink).
func LazyPossible(c *Compiled, tokens []Token, target *regex.Regex, k int) (*LazyResult, error) {
	fork, err := BuildFork(c, tokens, k)
	if err != nil {
		return nil, err
	}
	expanded := c.ExpandPatterns(target)
	deriver := c.Deriver()
	fresh := freshSymbol(c.Table, expanded)
	type key struct {
		q int
		k string
	}
	seen := map[key]bool{}
	explored, sinkPrunes := 0, 0

	var dfs func(q int, d *regex.Regex) bool
	dfs = func(q int, d *regex.Regex) bool {
		kk := key{q, d.Key()}
		if seen[kk] {
			return false
		}
		seen[kk] = true
		explored++
		if d.IsNever() {
			sinkPrunes++
			return false
		}
		if fork.Accept[q] && d.Nullable() {
			return true
		}
		for _, e := range fork.Edges[q] {
			switch {
			case e.Eps:
				if dfs(e.To, d) {
					return true
				}
			case !e.Cls.Negated:
				for _, x := range e.Cls.Syms {
					if dfs(e.To, deriver.Derive(d, x)) {
						return true
					}
				}
			default:
				for _, x := range relevantSymbols(d, e.Cls) {
					if dfs(e.To, deriver.Derive(d, x)) {
						return true
					}
				}
				if dfs(e.To, deriver.Derive(d, fresh)) {
					return true
				}
			}
		}
		return false
	}
	found := dfs(0, expanded)
	return &LazyResult{Verdict: found, StatesExplored: explored, SinkPrunes: sinkPrunes}, nil
}
