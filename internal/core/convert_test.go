package core

import (
	"strconv"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/schema"
)

// TestConverterRename: a service speaks a synonymous vocabulary; the rename
// converter reconciles it.
func TestConverterRename(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	inv := stubInvoker{
		// Returns <temperature> instead of the declared <temp>.
		"Get_Temp": ret(doc.Elem("temperature", doc.TextNode("15"))),
	}
	rw := NewRewriter(sender, sender, 1, inv)
	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))

	// Without converters the exchange fails.
	if _, err := rw.RewriteDocument(root.Clone(), Safe); err == nil {
		t.Fatal("non-conforming result should fail without converters")
	}
	// With the rename converter it heals.
	rw.Converters = Converters{RenameLabels(map[string]string{"temperature": "temp"})}
	out, err := rw.RewriteDocument(root.Clone(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[0].Label != "temp" {
		t.Errorf("converted result = %v", out.Children[0])
	}
}

// TestConverterUnwrap: the service wraps its answer in an envelope element.
func TestConverterUnwrap(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("result", doc.Elem("temp", doc.TextNode("15")))),
	}
	rw := NewRewriter(sender, sender, 1, inv)
	rw.Converters = Converters{Unwrap("result")}
	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	out, err := rw.RewriteDocument(root, Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[0].Label != "temp" {
		t.Errorf("unwrapped result = %v", out.Children[0])
	}
}

// TestConverterMapValues: the paper's Celsius-to-Fahrenheit example — the
// value is translated, the structure already matches.
func TestConverterMapValues(t *testing.T) {
	// The structure conforms but the value is in the wrong unit; structural
	// validation cannot see that, so this test exercises MapValues directly
	// combined with a renaming that makes the structural mismatch visible.
	celsiusToF := func(s string) (string, bool) {
		c, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return "", false
		}
		return strconv.FormatFloat(c*9/5+32, 'g', -1, 64), true
	}
	conv := MapValues("temp", celsiusToF)
	out, ok := conv.Convert("Get_Temp", []*doc.Node{doc.Elem("temp", doc.TextNode("15"))})
	if !ok {
		t.Fatal("conversion refused")
	}
	if out[0].Children[0].Value != "59" {
		t.Errorf("15°C = %s°F, want 59", out[0].Children[0].Value)
	}
	// Non-numeric content refuses, leaving the original untouched.
	orig := []*doc.Node{doc.Elem("temp", doc.TextNode("warm"))}
	if _, ok := conv.Convert("Get_Temp", orig); ok {
		t.Error("non-numeric conversion should refuse")
	}
	if orig[0].Children[0].Value != "warm" {
		t.Error("failed conversion mutated its input")
	}
}

// TestConverterChainOrder: the first conforming restructuring wins; failing
// converters are skipped.
func TestConverterChainOrder(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("warmth", doc.TextNode("15"))),
	}
	rw := NewRewriter(sender, sender, 1, inv)
	rw.Converters = Converters{
		Unwrap("result"), // does not apply
		RenameLabels(map[string]string{"warmth": "wrongname"}), // applies but still invalid
		RenameLabels(map[string]string{"warmth": "temp"}),      // heals
	}
	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	out, err := rw.RewriteDocument(root, Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[0].Label != "temp" {
		t.Errorf("result = %v", out.Children[0])
	}
}
