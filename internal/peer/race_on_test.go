//go:build race

package peer

const raceEnabled = true
