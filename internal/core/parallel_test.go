package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"axml/internal/doc"
	"axml/internal/schema"
)

// recordingInvoker is a pure, concurrency-safe service simulator: the result
// depends only on the call (label + first text parameter), so rewritten
// trees are identical no matter what order — or how concurrently — the calls
// execute. Every call is recorded for invocation-set comparisons.
type recordingInvoker struct {
	mu    sync.Mutex
	calls []string
	// wide makes every call return two val elements instead of one.
	wideFor string
}

func (r *recordingInvoker) key(call *doc.Node) string {
	key := call.Label
	if len(call.Children) == 1 && call.Children[0].Kind == doc.Text {
		key += ":" + call.Children[0].Value
	}
	return key
}

func (r *recordingInvoker) Invoke(_ context.Context, call *doc.Node) ([]*doc.Node, error) {
	key := r.key(call)
	r.mu.Lock()
	r.calls = append(r.calls, key)
	r.mu.Unlock()
	out := []*doc.Node{doc.Elem("val", doc.TextNode(key))}
	if r.wideFor != "" && key == r.wideFor {
		out = append(out, doc.Elem("val", doc.TextNode(key)))
	}
	return out, nil
}

func (r *recordingInvoker) sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.calls...)
	sort.Strings(out)
	return out
}

const stressSenderText = `
root page
elem page = sec*
elem sec = (Get|val)
elem val = data
func Get = data -> val
`

// stressPair builds the sender/target pair for the subtree-fan-out stress
// shape: every sec must materialize its Get into a val.
func stressPair(t *testing.T) (*schema.Schema, *schema.Schema) {
	t.Helper()
	sender := schema.MustParseText(stressSenderText, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), strings.Replace(
		stressSenderText, "elem sec = (Get|val)", "elem sec = val", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sender, target
}

// stressDoc builds a page of n sec elements, each holding one Get call with
// a distinct parameter.
func stressDoc(n int) *doc.Node {
	kids := make([]*doc.Node, n)
	for i := range kids {
		kids[i] = doc.Elem("sec", doc.Call("Get", doc.TextNode(fmt.Sprintf("p%d", i))))
	}
	return doc.Elem("page", kids...)
}

// TestParallelStressIdenticalAcrossDegrees materializes a 500-function
// document at parallelism 1, 4 and GOMAXPROCS under every mode and asserts
// the resulting trees and the invocation sets are identical. Run under
// -race, this is also the engine's data-race stress.
func TestParallelStressIdenticalAcrossDegrees(t *testing.T) {
	const funcs = 500
	sender, target := stressPair(t)
	degrees := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, mode := range []Mode{Safe, Possible, Mixed} {
		var refTree *doc.Node
		var refCalls []string
		for _, degree := range degrees {
			inv := &recordingInvoker{}
			rw := NewRewriterFor(Compile(sender, target), 2, inv)
			rw.Audit = &Audit{}
			rw.Parallelism = degree
			out, err := rw.RewriteDocument(stressDoc(funcs), mode)
			if err != nil {
				t.Fatalf("mode %v degree %d: %v", mode, degree, err)
			}
			if err := rw.Context().Validate(out); err != nil {
				t.Fatalf("mode %v degree %d: invalid result: %v", mode, degree, err)
			}
			if got := rw.Audit.Len(); got != funcs {
				t.Errorf("mode %v degree %d: audit has %d calls, want %d", mode, degree, got, funcs)
			}
			calls := inv.sorted()
			if refTree == nil {
				refTree, refCalls = out, calls
				continue
			}
			if !out.Equal(refTree) {
				t.Errorf("mode %v degree %d: tree differs from degree %d", mode, degree, degrees[0])
			}
			if len(calls) != len(refCalls) {
				t.Fatalf("mode %v degree %d: %d calls, want %d", mode, degree, len(calls), len(refCalls))
			}
			for i := range calls {
				if calls[i] != refCalls[i] {
					t.Fatalf("mode %v degree %d: invocation set differs at %d: %s vs %s",
						mode, degree, i, calls[i], refCalls[i])
				}
			}
		}
	}
}

// TestParallelWordPipeline exercises the within-word batch: one element
// whose content word holds hundreds of independent calls. Trees and call
// sets must match the sequential engine's.
func TestParallelWordPipeline(t *testing.T) {
	const funcs = 300
	text := `
root page
elem page = (Get|val)*
elem val = data
func Get = data -> val
`
	sender := schema.MustParseText(text, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), strings.Replace(
		text, "elem page = (Get|val)*", "elem page = val*", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	kids := make([]*doc.Node, funcs)
	for i := range kids {
		kids[i] = doc.Call("Get", doc.TextNode(fmt.Sprintf("p%d", i)))
	}
	build := func() *doc.Node { return doc.Elem("page", doc.CloneForest(kids)...) }

	var refTree *doc.Node
	for _, degree := range []int{1, 8} {
		inv := &recordingInvoker{}
		rw := NewRewriterFor(Compile(sender, target), 2, inv)
		rw.Audit = &Audit{}
		rw.Parallelism = degree
		out, err := rw.RewriteDocument(build(), Safe)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		if err := rw.Context().Validate(out); err != nil {
			t.Fatalf("degree %d: invalid result: %v", degree, err)
		}
		// The batch buffers audits per slot and flushes in document order, so
		// even the call-record order is document order at every degree.
		records := rw.Audit.Calls()
		if len(records) != funcs {
			t.Fatalf("degree %d: %d calls, want %d", degree, len(records), funcs)
		}
		want := make([]string, funcs)
		for i := range want {
			want[i] = fmt.Sprintf("Get:p%d", i)
		}
		sort.Strings(want)
		got := inv.sorted()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("degree %d: call set differs at %d: %s vs %s", degree, i, got[i], want[i])
			}
		}
		if refTree == nil {
			refTree = out
		} else if !out.Equal(refTree) {
			t.Errorf("degree %d: tree differs from sequential", degree)
		}
	}
}

// TestParallelAuditDeterministic: per-slot audit buffering flushed in
// document order makes the call-record order deterministic — document order,
// in fact — at every fixed degree, concurrent execution notwithstanding.
func TestParallelAuditDeterministic(t *testing.T) {
	const funcs = 120
	sender, target := stressPair(t)
	for _, degree := range []int{1, 4} {
		for run := 0; run < 2; run++ {
			inv := &recordingInvoker{}
			rw := NewRewriterFor(Compile(sender, target), 2, inv)
			rw.Audit = &Audit{}
			rw.Parallelism = degree
			if _, err := rw.RewriteDocument(stressDoc(funcs), Safe); err != nil {
				t.Fatalf("degree %d: %v", degree, err)
			}
			records := rw.Audit.Calls()
			if len(records) != funcs {
				t.Fatalf("degree %d: %d records, want %d", degree, len(records), funcs)
			}
			for i, c := range records {
				if c.Func != "Get" || c.Depth != 1 {
					t.Fatalf("degree %d: record %d = %+v", degree, i, c)
				}
			}
		}
	}
}

// TestParallelAdaptiveDeferral is the regression for the within-word
// deferral rule: when a pending call's output language has more than one
// word, the safe strategy for a later occurrence may depend on the actual
// answer (here: keep G when F returns val, call G when F returns w). Fixing
// G's verdict while F is in flight would wrongly invoke it and finish on
// val.val, which the target rejects. The engine must defer G's decision to
// the round after F's result is spliced — exactly the sequential decision.
func TestParallelAdaptiveDeferral(t *testing.T) {
	text := `
root page
elem page = F.G
elem val = data
elem w = data
func F = data -> (val|w)
func G = data -> val
`
	sender := schema.MustParseText(text, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), strings.Replace(
		text, "elem page = F.G", "elem page = (val.G)|(w.val)", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, degree := range []int{1, 8} {
		calls := 0
		var mu sync.Mutex
		inv := ContextInvokerFunc(func(_ context.Context, call *doc.Node) ([]*doc.Node, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return []*doc.Node{doc.Elem("val", doc.TextNode(call.Label))}, nil
		})
		rw := NewRewriterFor(Compile(sender, target), 2, inv)
		rw.Audit = &Audit{}
		rw.Parallelism = degree
		root := doc.Elem("page",
			doc.Call("F", doc.TextNode("x")),
			doc.Call("G", doc.TextNode("y")))
		out, err := rw.RewriteDocument(root, Safe)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		labels := out.ChildLabels()
		if len(labels) != 2 || labels[0] != "val" || labels[1] != "G" {
			t.Errorf("degree %d: children = %v, want [val G] (G kept)", degree, labels)
		}
		if calls != 1 {
			t.Errorf("degree %d: %d calls, want 1 (only F)", degree, calls)
		}
	}
}

// TestChildPathNoAliasing is the regression for the append-based path
// construction: with spare capacity in the parent slice, two sibling
// extensions used to share a backing array and the second overwrote the
// first's segment.
func TestChildPathNoAliasing(t *testing.T) {
	base := make([]string, 1, 8)
	base[0] = "root"
	a := childPath(base, "a")
	b := childPath(base, "b")
	if a[1] != "a" {
		t.Fatalf("sibling extension clobbered the first path: %v", a)
	}
	if b[1] != "b" || b[0] != "root" || a[0] != "root" {
		t.Fatalf("childPath built wrong paths: %v %v", a, b)
	}
	a[0] = "mutated"
	if base[0] != "root" {
		t.Fatal("childPath shares the parent's backing array")
	}
}

// TestParallelErrorPathWideFanout: error paths reported out of a wide
// fan-out must name the failing subtree exactly, at every degree — the
// end-to-end face of the aliasing fix.
func TestParallelErrorPathWideFanout(t *testing.T) {
	const funcs = 60
	sender, target := stressPair(t)
	for _, degree := range []int{1, 4} {
		inv := &recordingInvoker{wideFor: "Get:p37"}
		rw := NewRewriterFor(Compile(sender, target), 2, inv)
		rw.Audit = &Audit{}
		rw.Parallelism = degree
		rw.ValidateReturns = false // let the bad splice reach the word check
		_, err := rw.RewriteDocument(stressDoc(funcs), Possible)
		if err == nil {
			t.Fatalf("degree %d: sec[37]'s double val must fail", degree)
		}
		var nse *NotSafeError
		if !errors.As(err, &nse) {
			t.Fatalf("degree %d: want NotSafeError, got %v", degree, err)
		}
		if nse.Path != "/page[0]/sec[37]" {
			t.Errorf("degree %d: error path = %q, want /page[0]/sec[37]", degree, nse.Path)
		}
	}
}

// TestSingletonWord pins the conservative singleton-language test the
// deferral rule relies on.
func TestSingletonWord(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = a.b
elem a = data
elem b = data
func One = data -> a.b
func Many = data -> (a|b)
func Star = data -> a*
func Opt = data -> a?
func Data = data -> data
`, nil)
	c := Compile(s, s)
	rw := NewRewriterFor(c, 1, nil)
	ex := &executor{rw: rw}
	for fn, want := range map[string]bool{
		"One": true, "Many": false, "Star": false, "Opt": false, "Data": true,
	} {
		if got := ex.singletonOutput(doc.Call(fn)); got != want {
			t.Errorf("singletonOutput(%s) = %v, want %v", fn, got, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the error/audit-path string builders.

func BenchmarkPathString(b *testing.B) {
	path := []string{"page[0]", "sec[12]", "item[3]", "@Get", "city[0]"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := pathString(path); len(s) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkForestLabels(b *testing.B) {
	forest := make([]*doc.Node, 0, 24)
	for i := 0; i < 16; i++ {
		forest = append(forest, doc.Elem(fmt.Sprintf("sec%d", i)))
		if i%2 == 0 {
			forest = append(forest, doc.TextNode("x"))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := forestLabels(forest); len(s) == 0 {
			b.Fatal("empty")
		}
	}
}
