package soap

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"axml/internal/doc"
	"axml/internal/service"
)

// TestClientHTTPErrors is the fault/HTTP-error round-trip table: the client
// must distinguish SOAP faults (any status) from non-SOAP error bodies — a
// proxy error page, a plain-text http.Error — and report the latter with the
// HTTP status and a body excerpt instead of a confusing XML parse error.
func TestClientHTTPErrors(t *testing.T) {
	cases := []struct {
		name      string
		handler   http.HandlerFunc
		wantFault string // non-empty: expect *Fault containing this
		wantErr   []string
	}{
		{
			name: "plain-text 500 from http.Error",
			handler: func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "backend exploded", http.StatusInternalServerError)
			},
			wantErr: []string{"500", "backend exploded"},
		},
		{
			name: "HTML error page from a proxy",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/html")
				w.WriteHeader(http.StatusBadGateway)
				_, _ = w.Write([]byte("<html><body>Bad Gateway</body></html>"))
			},
			wantErr: []string{"502", "Bad Gateway", "text/html"},
		},
		{
			name: "soap fault with 400 status",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/xml; charset=utf-8")
				w.WriteHeader(http.StatusBadRequest)
				_ = WriteFault(w, "soap:Client", "no such method")
			},
			wantFault: "no such method",
		},
		{
			name: "soap fault with 500 status",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/xml")
				w.WriteHeader(http.StatusInternalServerError)
				_ = WriteFault(w, "soap:Server", "handler failed")
			},
			wantFault: "handler failed",
		},
		{
			name: "200 with non-XML body",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write([]byte(`{"ok":true}`))
			},
			wantErr: []string{"200", "application/json"},
		},
		{
			name: "200 with unparsable XML",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/xml")
				_, _ = w.Write([]byte("<notsoap/>"))
			},
			wantErr: []string{"Envelope"},
		},
		{
			name: "empty 503 body",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/plain")
				w.WriteHeader(http.StatusServiceUnavailable)
			},
			wantErr: []string{"503", "empty body"},
		},
		{
			name: "valid envelope on a 500 status",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/xml")
				w.WriteHeader(http.StatusInternalServerError)
				_ = WriteResponse(w, "Op", "", []*doc.Node{doc.TextNode("x")})
			},
			wantErr: []string{"500"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			c := &Client{Endpoint: ts.URL}
			_, err := c.Call("Op", []*doc.Node{doc.TextNode("x")})
			if err == nil {
				t.Fatal("expected an error")
			}
			var fault *Fault
			if tc.wantFault != "" {
				if !errors.As(err, &fault) {
					t.Fatalf("want *Fault, got %T: %v", err, err)
				}
				if !strings.Contains(fault.String, tc.wantFault) {
					t.Errorf("fault %q does not mention %q", fault.String, tc.wantFault)
				}
				return
			}
			if errors.As(err, &fault) {
				t.Fatalf("non-SOAP body surfaced as *Fault: %v", err)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestServerRequestBodyLimit: an oversized request is rejected with a 413
// soap:Client fault the client surfaces as *Fault, and the limit does not
// clip legitimate requests.
func TestServerRequestBodyLimit(t *testing.T) {
	reg := service.NewRegistry()
	err := reg.Register(&service.Operation{
		Name: "Echo",
		Handler: func(params []*doc.Node) ([]*doc.Node, error) {
			return params, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Registry: reg, MaxRequestBytes: 2048}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{Endpoint: ts.URL}

	if _, err := c.Call("Echo", []*doc.Node{doc.TextNode("small")}); err != nil {
		t.Fatalf("small request rejected: %v", err)
	}

	big := strings.Repeat("y", 4096)
	_, err = c.Call("Echo", []*doc.Node{doc.TextNode(big)})
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("oversized request: want *Fault, got %T: %v", err, err)
	}
	if !strings.Contains(fault.String, "exceeds") {
		t.Errorf("fault %q does not mention the limit", fault.String)
	}
}

// TestClientResponseBodyLimit: the client refuses to slurp an unbounded
// response.
func TestClientResponseBodyLimit(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		_, _ = w.Write([]byte(strings.Repeat("z", 8192)))
	}))
	defer ts.Close()
	c := &Client{Endpoint: ts.URL, MaxResponseBytes: 1024}
	_, err := c.Call("Op", nil)
	if err == nil || !strings.Contains(err.Error(), "exceeds 1024 bytes") {
		t.Fatalf("oversized response: got %v", err)
	}
}

// TestDefaultClientHasTimeout guards the hung-remote fix: the package-level
// client (used whenever Client.HTTP / Invoker.HTTP is nil) must not wait
// forever.
func TestDefaultClientHasTimeout(t *testing.T) {
	if DefaultClient.Timeout <= 0 {
		t.Error("DefaultClient has no timeout")
	}
}

// countingListener counts accepted connections — every new TCP connection
// the client dials is one Accept.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestDefaultClientReusesConnections guards the pooling fix: under
// cross-peer fan-out the shared DefaultClient must keep a burst's worth of
// connections to one peer warm instead of churning through them. The stock
// transport's MaxIdleConnsPerHost of 2 fails the second half of this test:
// after a concurrent burst of 8 it retains two connections and redials the
// rest on the next burst.
func TestDefaultClientReusesConnections(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.Register(&service.Operation{
		Name:    "Echo",
		Handler: func(params []*doc.Node) ([]*doc.Node, error) { return params, nil },
	}); err != nil {
		t.Fatal(err)
	}

	// A per-burst barrier holds every response until the whole burst has
	// arrived, forcing the client to open one true connection per in-flight
	// call instead of serializing over a lucky early reuse.
	var barrier atomic.Pointer[burstBarrier]
	soapSrv := &Server{Registry: reg}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b := barrier.Load(); b != nil {
			b.arrive()
		}
		soapSrv.ServeHTTP(w, r)
	}))
	cl := &countingListener{Listener: ts.Listener}
	ts.Listener = cl
	ts.Start()
	defer ts.Close()

	c := &Client{Endpoint: ts.URL} // nil HTTP selects DefaultClient
	call := func() {
		if _, err := c.Call("Echo", []*doc.Node{doc.TextNode("x")}); err != nil {
			t.Errorf("call: %v", err)
		}
	}

	// Sequential calls ride one connection.
	for i := 0; i < 10; i++ {
		call()
	}
	if got := cl.accepts.Load(); got != 1 {
		t.Fatalf("10 sequential calls opened %d connections, want 1", got)
	}

	const burst = 8
	if DefaultTransport.MaxIdleConnsPerHost < burst {
		t.Fatalf("MaxIdleConnsPerHost = %d, want >= %d for federation fan-out",
			DefaultTransport.MaxIdleConnsPerHost, burst)
	}
	runBurst := func() {
		barrier.Store(newBurstBarrier(burst))
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); call() }()
		}
		wg.Wait()
		barrier.Store(nil)
	}
	runBurst()
	afterFirst := cl.accepts.Load()
	if afterFirst < burst {
		t.Fatalf("first burst of %d opened only %d connections (barrier broken)", burst, afterFirst)
	}
	// The second burst must be served entirely from the idle pool.
	runBurst()
	if got := cl.accepts.Load(); got != afterFirst {
		t.Fatalf("second burst redialed %d connections (pool churn): %d accepts before, %d after",
			got-afterFirst, afterFirst, got)
	}
}

// burstBarrier releases every arriving request once n have arrived.
type burstBarrier struct {
	n       int64
	arrived atomic.Int64
	release chan struct{}
}

func newBurstBarrier(n int) *burstBarrier {
	return &burstBarrier{n: int64(n), release: make(chan struct{})}
}

func (b *burstBarrier) arrive() {
	if b.arrived.Add(1) == b.n {
		close(b.release)
	}
	<-b.release
}
