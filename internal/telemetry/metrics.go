// Package telemetry is a dependency-free observability layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text exposition, plus a lightweight
// span/tracing API with context-based parent linkage and a bounded
// in-memory ring of recent spans.
//
// Every handle type is nil-safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Histogram values whose methods are no-ops, so
// instrumented code never needs a "telemetry enabled?" branch.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds, spanning
// sub-automaton-lookup times (~100µs rewrites) up to slow remote calls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are byte-size buckets for request/response payloads.
var SizeBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// ByteBuckets extend SizeBuckets upward for resident-memory measurements
// (buffered streaming frontiers) that may exceed payload sizes.
var ByteBuckets = append(append([]float64{}, SizeBuckets...), 16777216, 67108864)

// CountBuckets are power-of-two buckets for small cardinalities:
// automaton states, batch sizes, forest widths.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// metric is anything the registry can hold and expose.
type metric interface {
	// writeTo appends exposition lines for one series. labels is the
	// canonical `k="v",...` block without braces ("" when unlabeled).
	// openMetrics selects the OpenMetrics dialect, which may attach
	// exemplars; the default 0.0.4 text output must stay byte-stable.
	writeTo(w io.Writer, family, labels string, openMetrics bool) error
}

// Registry is a set of named metric families. All methods are safe for
// concurrent use; registration of an already-registered (name, labels)
// pair returns the existing handle, so call sites may re-register
// freely instead of caching handles.
type Registry struct {
	mu      sync.RWMutex
	types   map[string]string            // family name -> counter|gauge|histogram
	metrics map[string]map[string]metric // family name -> label block -> metric
	tracer  *Tracer
}

// NewRegistry returns an empty registry with an attached span tracer of
// DefaultTraceCapacity.
func NewRegistry() *Registry {
	return &Registry{
		types:   make(map[string]string),
		metrics: make(map[string]map[string]metric),
		tracer:  NewTracer(DefaultTraceCapacity),
	}
}

// Tracer returns the registry's span ring; nil for a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) writeTo(w io.Writer, family, labels string, _ bool) error {
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(family, labels), c.Value())
	return err
}

// Gauge is a float64 that can go up and down, stored as IEEE bits for
// lock-free access. The zero value reads 0; a nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by d (d may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) writeTo(w io.Writer, family, labels string, _ bool) error {
	_, err := fmt.Fprintf(w, "%s %s\n", seriesName(family, labels), formatFloat(g.Value()))
	return err
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts per upper bound plus an implicit +Inf bucket, a running
// sum, and a total count. A nil *Histogram no-ops.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	// ex holds the most recent exemplar per bucket (len(upper)+1),
	// lazily allocated on the first ObserveExemplar so plain histograms
	// pay nothing. Slots are swapped whole so readers never see a torn
	// exemplar.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, so a
// p99 outlier bucket in /metrics points straight at its recorded trace.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// observe returns the bucket index the value landed in.
func (h *Histogram) observe(v float64) int {
	// Prometheus buckets are `le` (inclusive): first upper bound >= v.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return i
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// stamps it as the bucket's exemplar. The default text exposition is
// unchanged; exemplars surface only in the OpenMetrics dialect.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
}

// Exemplars returns the current per-bucket exemplars (nil entries for
// buckets that never saw one), ordered like the upper bounds with the
// +Inf bucket last.
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.ex))
	for i := range h.ex {
		out[i] = h.ex[i].Load()
	}
	return out
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) writeTo(w io.Writer, family, labels string, openMetrics bool) error {
	var cum uint64
	for i := 0; i <= len(h.upper); i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		line := seriesName(family+"_bucket", joinLabels(labels, `le="`+le+`"`)) +
			" " + strconv.FormatUint(cum, 10)
		if openMetrics {
			if ex := h.ex[i].Load(); ex != nil {
				line += " # {trace_id=\"" + escapeLabelValue(ex.TraceID) + "\"} " +
					formatFloat(ex.Value) + " " +
					strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64)
			}
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	if err := writeLine(w, family+"_sum", labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	return writeLine(w, family+"_count", labels, strconv.FormatUint(cum, 10))
}

// funcMetric exposes a value computed at scrape time — used to surface
// counters that already live elsewhere (e.g. the compiled-schema cache)
// without double-accounting.
type funcMetric struct {
	fn func() float64
}

func (f *funcMetric) writeTo(w io.Writer, family, labels string, _ bool) error {
	_, err := fmt.Fprintf(w, "%s %s\n", seriesName(family, labels), formatFloat(f.fn()))
	return err
}

// Counter registers (or fetches) a counter. labels are alternating
// key/value pairs; the same name must always be used with the same
// metric type or Counter panics. Nil registries return nil handles.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, "counter", labels, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic("telemetry: " + name + " already registered with a different kind")
	}
	return c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, "gauge", labels, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("telemetry: " + name + " already registered with a different kind")
	}
	return g
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds (DefBuckets when nil). Bucket layout is fixed at first
// registration; later calls with different buckets get the original.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, "histogram", labels, func() metric { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic("telemetry: " + name + " already registered with a different kind")
	}
	return h
}

// CounterFunc registers a scrape-time counter callback. Re-registering
// the same series replaces the callback (so idempotent wiring is safe).
// fn must not call back into the registry.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.registerFunc(name, "counter", fn, labels)
}

// GaugeFunc registers a scrape-time gauge callback; see CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.registerFunc(name, "gauge", fn, labels)
}

func (r *Registry) register(name, typ string, labels []string, mk func() metric) metric {
	block := canonLabels(labels)
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.types[name]; ok && have != typ {
		panic("telemetry: " + name + " registered as " + have + ", requested as " + typ)
	}
	r.types[name] = typ
	fam := r.metrics[name]
	if fam == nil {
		fam = make(map[string]metric)
		r.metrics[name] = fam
	}
	if m, ok := fam[block]; ok {
		return m
	}
	m := mk()
	fam[block] = m
	return m
}

func (r *Registry) registerFunc(name, typ string, fn func() float64, labels []string) {
	block := canonLabels(labels)
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.types[name]; ok && have != typ {
		panic("telemetry: " + name + " registered as " + have + ", requested as " + typ)
	}
	r.types[name] = typ
	fam := r.metrics[name]
	if fam == nil {
		fam = make(map[string]metric)
		r.metrics[name] = fam
	}
	fam[block] = &funcMetric{fn: fn}
}

// Value reads one series by name and labels: counters return their
// count, gauges and func metrics their value, histograms their
// observation count. The second result is false when the series does
// not exist.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	block := canonLabels(labels)
	r.mu.RLock()
	fam := r.metrics[name]
	m, ok := fam[block]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch v := m.(type) {
	case *Counter:
		return float64(v.Value()), true
	case *Gauge:
		return v.Value(), true
	case *Histogram:
		return float64(v.Count()), true
	case *funcMetric:
		return v.fn(), true
	}
	return 0, false
}

// WritePrometheus writes every family in text exposition format 0.0.4,
// families sorted by name and series sorted by label block. Callback
// metrics are evaluated outside the registry lock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics writes the OpenMetrics dialect: the same families and
// ordering as WritePrometheus, plus per-bucket exemplars on histograms
// and the terminating `# EOF` marker. Scrapers opt in via the Accept
// header; the default exposition stays byte-identical to 0.0.4.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeExposition(w, true); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	if r == nil {
		return nil
	}
	type series struct {
		labels string
		m      metric
	}
	type family struct {
		name, typ string
		series    []series
	}
	r.mu.RLock()
	fams := make([]family, 0, len(r.metrics))
	for name, byLabel := range r.metrics {
		f := family{name: name, typ: r.types[name]}
		for block, m := range byLabel {
			f.series = append(f.series, series{labels: block, m: m})
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := s.m.writeTo(w, f.name, s.labels, openMetrics); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesName renders `family{labels}` (braces dropped when unlabeled).
func seriesName(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

func writeLine(w io.Writer, name, labels, value string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, labels), value)
	return err
}

func joinLabels(block, extra string) string {
	if block == "" {
		return extra
	}
	return block + "," + extra
}

// canonLabels turns alternating key/value pairs into the canonical
// sorted `k="v",...` block used as the series key.
func canonLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd number of label arguments")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		mustValidLabelKey(labels[i])
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func mustValidName(name string) {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func mustValidLabelKey(k string) {
	if k == "" {
		panic("telemetry: empty label key")
	}
	for i, c := range k {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			panic("telemetry: invalid label key " + strconv.Quote(k))
		}
	}
}
