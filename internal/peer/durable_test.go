package peer

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"axml/internal/doc"
	"axml/internal/wal"
)

func openDurable(t *testing.T, dir string, opts DurableOptions) *DurableRepository {
	t.Helper()
	d, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Put("news", doc.Elem("news", doc.TextNode("day1"))); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("weather", doc.Elem("weather")); err != nil {
		t.Fatal(err)
	}
	if err := d.Update("news", func(n *doc.Node) (*doc.Node, error) {
		n.Children[0].Value = "day2"
		return n, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("weather"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	if d2.Len() != 1 {
		t.Fatalf("recovered %d docs (%v), want 1", d2.Len(), d2.Names())
	}
	got, ok := d2.Get("news")
	if !ok || got.Children[0].Value != "day2" {
		t.Errorf("recovered news = %v, %v", got, ok)
	}
	if _, ok := d2.Get("weather"); ok {
		t.Error("deleted document resurrected after restart")
	}
	if st := d2.Stats(); st.RecoveredDocuments != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// Recovery with no snapshot at all (a crash before the first compaction):
// the WAL tail alone must reconstruct everything acknowledged.
func TestDurableRecoveryFromWALTailOnly(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := fmt.Sprintf("<d>%d</d>", i)
		if err := l.Append(wal.OpPut, fmt.Sprintf("doc%02d", i), []byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(wal.OpDelete, "doc05", nil); err != nil {
		t.Fatal(err)
	}
	l.Close() // closes the file but writes no snapshot, like a crash would

	d := openDurable(t, dir, DurableOptions{})
	if d.Len() != 19 {
		t.Fatalf("recovered %d docs, want 19", d.Len())
	}
	if _, ok := d.Get("doc05"); ok {
		t.Error("deleted document resurrected")
	}
	if st := d.Stats(); st.WAL.RecoveryReplayed != 21 || st.WAL.RecoveryTruncated != 0 {
		t.Errorf("recovery stats = %+v", st)
	}
}

func TestDurableAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{SnapshotEvery: 8, Sync: wal.SyncNone})
	for i := 0; i < 50; i++ {
		if err := d.Put(fmt.Sprintf("doc%02d", i%10), doc.Elem("d", doc.TextNode(fmt.Sprint(i)))); err != nil {
			t.Fatal(err)
		}
	}
	// The compactor runs off the mutation path; give it time to take the
	// kick before Close writes the final snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().WAL.Snapshots == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if st := d.Stats(); st.WAL.Snapshots == 0 {
		t.Errorf("no automatic compaction after 50 mutations with SnapshotEvery=8 (stats %+v)", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.WAL.Snapshots < 2 {
		t.Errorf("expected automatic + final compactions, got %d snapshots (stats %+v)", st.WAL.Snapshots, st)
	}
	d2 := openDurable(t, dir, DurableOptions{})
	if d2.Len() != 10 {
		t.Errorf("recovered %d docs, want 10", d2.Len())
	}
}

func TestDurableClosedRejectsMutations(t *testing.T) {
	d := openDurable(t, t.TempDir(), DurableOptions{})
	if err := d.Put("a", doc.Elem("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("b", doc.Elem("b")); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("put after close = %v", err)
	}
	if err := d.Delete("a"); err == nil {
		t.Error("delete after close accepted")
	}
	if err := d.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Reads still work: the in-memory state is intact.
	if _, ok := d.Get("a"); !ok {
		t.Error("read after close lost the document")
	}
}

// TestDurableSeedDoesNotClobberRecovery: the LoadDir conflict policy must
// keep WAL-recovered state when a seed directory collides.
func TestDurableSeedDoesNotClobberRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Put("a", doc.Elem("a", doc.TextNode("recovered"))); err != nil {
		t.Fatal(err)
	}
	d.Close()

	seed := t.TempDir()
	for name, content := range map[string]string{"a.xml": "<a>seed</a>", "b.xml": "<b>seed</b>"} {
		if err := os.WriteFile(filepath.Join(seed, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d2 := openDurable(t, dir, DurableOptions{})
	n, err := d2.LoadDirWith(seed, KeepExisting)
	if err != nil || n != 1 {
		t.Fatalf("seed load = %d, %v; want 1", n, err)
	}
	got, _ := d2.Get("a")
	if got.Children[0].Value != "recovered" {
		t.Errorf("seed clobbered recovered state: %v", got.Children[0].Value)
	}
	d2.Close()

	// The seeded document was journaled and survives the next restart.
	d3 := openDurable(t, dir, DurableOptions{})
	if _, ok := d3.Get("b"); !ok {
		t.Error("seeded document not persisted")
	}
}

// TestDurableConcurrentHammer drives concurrent Put/Update/Delete against
// the WAL writer (run under -race in CI) and checks the recovered state
// equals the final in-memory state exactly.
func TestDurableConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{Sync: wal.SyncNone, SnapshotEvery: 64})
	const workers = 8
	const opsPerWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				name := fmt.Sprintf("doc%d", (w*7+i)%20)
				switch i % 5 {
				case 0, 1, 2:
					if err := d.Put(name, doc.Elem("d", doc.TextNode(fmt.Sprintf("%d-%d", w, i)))); err != nil {
						t.Error(err)
						return
					}
				case 3:
					_ = d.Update(name, func(n *doc.Node) (*doc.Node, error) {
						n.Children = append(n.Children, doc.Elem("upd"))
						return n, nil
					}) // may fail on absent name; fine
				case 4:
					if err := d.Delete(name); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	final := map[string]string{}
	for _, name := range d.Names() {
		n, _ := d.Get(name)
		final[name] = n.String()
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	if d2.Len() != len(final) {
		t.Fatalf("recovered %d docs, want %d", d2.Len(), len(final))
	}
	for name, want := range final {
		n, ok := d2.Get(name)
		if !ok || n.String() != want {
			t.Errorf("doc %q: recovered %v (present=%v), want %v", name, n, ok, want)
		}
	}
}

func TestOpenDurableRejectsUnparseableState(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.OpPut, "bad", []byte("<unclosed>")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := OpenDurable(dir, DurableOptions{}); err == nil {
		t.Error("unparseable logged document silently accepted")
	}
}
