package peer

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/telemetry/obslog"
	"axml/internal/wsdl"
)

// Peer is one Active XML node: repository + services + enforcement.
type Peer struct {
	Name string
	// Schema is the peer's own schema s0: its document types and the WSDL_int
	// signatures of every function its documents embed or its registry
	// provides.
	Schema *schema.Schema
	// Repo stores the peer's intensional documents. Any storage backend
	// works (see internal/store); New installs an in-memory Repository.
	Repo store.DocStore
	// Services are the operations this peer provides.
	Services *service.Registry
	// K is the rewriting depth bound used by enforcement.
	K int
	// Mode is the default rewriting discipline for enforcement (Safe).
	Mode core.Mode
	// Remote performs outbound calls for function nodes this peer does not
	// implement locally (typically a soap.Invoker). May be nil.
	Remote core.Invoker
	// Endpoint is this peer's public SOAP address, advertised in WSDL_int.
	Endpoint string
	// Audit records every invocation made by enforcement rewritings.
	Audit *core.Audit
	// Enforcement caches compiled schema-pair analyses (core.Compile plus
	// the word-level products and markings) across messages: safe rewriting
	// depends only on the schema pair, depth bound and mode — never on the
	// document — so one peer serving heavy traffic pays the analysis once
	// per distinct pair instead of once per request.
	Enforcement *core.CompiledCache
	// MaxRequestBytes caps SOAP request bodies accepted by Handler; 0
	// selects soap.DefaultMaxRequestBytes, negative disables the limit.
	MaxRequestBytes int64
	// Policies discipline every invocation enforcement rewritings perform
	// (per-call timeouts, retries, circuit breaking — see internal/invoke).
	// Policies[0] is outermost. Set before the peer serves traffic: the
	// wrapped invoker is built once on first use so stateful policies
	// (breakers, concurrency limits) persist across messages.
	Policies []core.InvokePolicy
	// Parallelism is the degree of the parallel materialization engine used
	// by enforcement rewritings (concurrent sibling subtrees, batched
	// pre-invocation, pipelined safe-mode calls). Values <= 1 keep the
	// sequential engine.
	Parallelism int
	// Streaming opts /exchange responses into the one-pass streaming
	// enforcement engine: validated output bytes leave while the document is
	// still being rewritten, with O(depth) buffering. Configurations the
	// streaming engine cannot serve byte-identically (non-Safe modes,
	// targets admitting kept functions) fall back to the tree path
	// automatically; see core.Rewriter.RewriteDocumentStream.
	Streaming bool
	// Telemetry, if set, instruments the whole peer against this registry:
	// enforcement rewritings, the compiled-schema and word-verdict caches,
	// the invocation layer's policy events, and (through Handler) per-HTTP-
	// handler metrics plus the /metrics and /debug/traces endpoints. Set
	// before the peer serves traffic.
	Telemetry *telemetry.Registry
	// Durable, if set, is the durability layer behind Repo (Repo ==
	// Durable or Repo == Durable.Repository): /stats then reports WAL
	// counters and the daemon closes it on shutdown for a final snapshot.
	// Nil means Repo is not WAL-backed (in-memory or disk-sharded).
	Durable *DurableRepository
	// Logger, if set, emits structured logs through Handler: one line per
	// request (method, route, status, bytes, duration, trace ID) and one
	// per notable invocation-policy event (retries, timeouts, breaker
	// transitions). Works with or without Telemetry; nil disables logging.
	Logger *obslog.Logger
	// Flight, if set, records the slowest and all failed requests — span
	// tree, audit events, per-stage latency — served at /debug/slow.
	Flight *telemetry.Flight
	// Health tracks readiness for the /healthz and /readyz probes; nil
	// reports always-ready (embedded peers without a daemon lifecycle).
	Health *Health
	// Peers is the static federation roster: peer name to base URL. When
	// set, Invoker resolves peer:// service references against it, so a
	// function node can name another axmld peer's operation or document
	// (see core.PeerRouter).
	Peers core.Roster
	// ReadOnly rejects HTTP mutations with 503 + Retry-After: a
	// replication follower serves hot-standby reads while its store is
	// owned by the apply loop, never by clients.
	ReadOnly bool
	// Replica, when set, is mounted under /replica/ — the leader's
	// replication endpoints (see internal/replica.Source.Handler).
	Replica http.Handler
	// ReplicaStats, when set, contributes the "replica" object of /stats
	// (leader or follower replication report).
	ReplicaStats func() any

	invOnce sync.Once
	inv     core.Invoker

	insOnce sync.Once
	ins     *core.Instruments

	evtOnce sync.Once
	evt     core.EventSink
}

// New creates a peer over the given schema.
func New(name string, s *schema.Schema) *Peer {
	return &Peer{
		Name:        name,
		Schema:      s,
		Repo:        NewRepository(),
		Services:    service.NewRegistry(),
		K:           2,
		Mode:        core.Safe,
		Audit:       &core.Audit{},
		Enforcement: core.NewCompiledCache(core.DefaultCompiledCacheSize),
	}
}

// Invoker resolves function nodes: locally registered operations first, then
// the remote transport; with a federation roster configured, peer://
// service references are resolved first of all (core.PeerRouter over the
// soap transports). The result is not policy-wrapped; enforcement
// rewritings go through the cached policy chain instead (see Policies).
func (p *Peer) Invoker() core.Invoker {
	var inv core.Invoker = p.Services
	if p.Remote != nil {
		inv = service.Chain{p.Services, p.Remote}
	}
	if len(p.Peers) > 0 {
		inv = &core.PeerRouter{Roster: p.Peers, Next: inv, Fetch: soap.CallExchange}
	}
	return inv
}

// policyInvoker returns the peer's invoker wrapped in its policy chain,
// built once so breaker and limiter state spans messages.
func (p *Peer) policyInvoker() core.Invoker {
	p.invOnce.Do(func() {
		p.inv = core.ApplyPolicies(p.Invoker(), p.Policies)
	})
	return p.inv
}

// instruments lazily wires the peer's telemetry: the enforcement cache's
// scrape-time series plus the pipeline instruments shared by every
// enforcement rewriter. Built once; nil when Telemetry is unset.
func (p *Peer) instruments() *core.Instruments {
	p.insOnce.Do(func() {
		if p.Telemetry == nil {
			return
		}
		p.ins = p.Enforcement.Instrument(p.Telemetry)
		// The shared symbol table is long-lived peer state: its size must be
		// observable so unbounded growth (e.g. a leak of untrusted labels
		// past the request-scoped overlays) is visible, not silent.
		table := p.Schema.Table
		p.Telemetry.GaugeFunc("axml_symbol_table_symbols", func() float64 {
			return float64(table.Len())
		})
	})
	return p.ins
}

// rewriter builds an enforcement rewriter against a target schema (which
// must share the peer schema's symbol table). The expensive schema-pair
// analysis comes from the Enforcement cache; only the cheap per-message
// rewriter state is fresh.
func (p *Peer) rewriter(target *schema.Schema) *core.Rewriter {
	ins := p.instruments()
	rw := core.NewRewriterFor(p.Enforcement.Get(p.Schema, target), p.K, p.policyInvoker())
	rw.Audit = p.Audit
	rw.Events = p.eventSink()
	rw.Parallelism = p.Parallelism
	rw.Instruments = ins
	return rw
}

// eventSink lazily builds the peer's policy-event observer: a sink that
// narrates notable invocation events (retries, exhaustion, timeouts,
// breaker transitions, degradations) through the structured logger,
// stamped with the rewrite/trace ID. Nil when no Logger is configured,
// so unlogged peers pay nothing.
func (p *Peer) eventSink() core.EventSink {
	p.evtOnce.Do(func() {
		if p.Logger != nil {
			p.evt = &eventLogSink{log: p.Logger}
		}
	})
	return p.evt
}

// eventLogSink bridges core.InvokeEvent onto the structured logger.
type eventLogSink struct {
	log *obslog.Logger
}

func (s *eventLogSink) RecordEvent(e core.InvokeEvent) {
	var lv obslog.Level
	switch e.Kind {
	case core.EventAttempt:
		return // one per call: far too chatty for a log stream
	case core.EventRetryWait, core.EventBreakerHalfOpen, core.EventBreakerClose:
		lv = obslog.Info
	default:
		// exhausted, timeout, fault, degraded, breaker open/reject
		lv = obslog.Warn
	}
	fields := make([]obslog.Field, 0, 6)
	fields = append(fields, obslog.F("kind", e.Kind), obslog.F("func", e.Func))
	if e.Endpoint != "" {
		fields = append(fields, obslog.F("endpoint", e.Endpoint))
	}
	if e.Attempt > 0 {
		fields = append(fields, obslog.F("attempt", e.Attempt))
	}
	if e.Wait > 0 {
		fields = append(fields, obslog.F("wait", e.Wait))
	}
	if e.Rewrite != "" {
		fields = append(fields, obslog.F("trace_id", e.Rewrite))
	}
	if e.Err != "" {
		fields = append(fields, obslog.F("error", e.Err))
	}
	s.log.Log(nil, lv, "invoke event", fields...)
}

// SendDocument is the paper's Figure 1 scenario: materialize the named
// repository document just enough to conform to the receiver's exchange
// schema, and return the result. The repository copy is left untouched —
// the same document can be sent to differently-abled receivers.
// Context-free wrapper over SendDocumentContext.
func (p *Peer) SendDocument(name string, exchange *schema.Schema, mode core.Mode) (*doc.Node, error) {
	return p.SendDocumentContext(context.Background(), name, exchange, mode)
}

// SendDocumentContext is SendDocument under a context: the enforcement
// rewriting and every service call it schedules abort once ctx is done.
func (p *Peer) SendDocumentContext(ctx context.Context, name string, exchange *schema.Schema, mode core.Mode) (*doc.Node, error) {
	d, ok := p.Repo.Get(name)
	if !ok {
		return nil, fmt.Errorf("peer %s: no document %q: %w", p.Name, name, store.ErrNotFound)
	}
	st := telemetry.StagesFrom(ctx)
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	rw := p.rewriter(exchange)
	if st != nil {
		st.Set(telemetry.StageCompile, time.Since(t0))
		t0 = time.Now()
	}
	out, err := rw.RewriteDocumentContext(ctx, d, mode)
	if st != nil {
		st.Set(telemetry.StageRewrite, time.Since(t0))
	}
	if err != nil {
		return nil, fmt.Errorf("peer %s: sending %q: %w", p.Name, name, err)
	}
	return out, nil
}

// SendDocumentStream is the Figure 1 scenario with a streaming response: the
// named document is enforced against the exchange schema and serialized to w
// in one pass, the first bytes leaving before rewriting completes whenever
// the configuration allows (see Peer.Streaming). The returned StreamResult
// reports whether the streaming engine served the request and its buffering
// peaks. On error, w may have received a partial document prefix — HTTP
// callers must check StreamResult.BytesWritten before choosing a status.
func (p *Peer) SendDocumentStream(ctx context.Context, name string, exchange *schema.Schema, mode core.Mode, w io.Writer) (*core.StreamResult, error) {
	d, ok := p.Repo.Get(name)
	if !ok {
		return nil, fmt.Errorf("peer %s: no document %q: %w", p.Name, name, store.ErrNotFound)
	}
	st := telemetry.StagesFrom(ctx)
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	rw := p.rewriter(exchange)
	if st != nil {
		st.Set(telemetry.StageCompile, time.Since(t0))
		t0 = time.Now()
	}
	res, err := rw.RewriteDocumentStream(ctx, d, w, mode)
	if st != nil {
		// The streaming engine serializes as it rewrites; the combined
		// pass is attributed to the rewrite stage.
		st.Set(telemetry.StageRewrite, time.Since(t0))
	}
	if err != nil {
		return res, fmt.Errorf("peer %s: sending %q: %w", p.Name, name, err)
	}
	return res, nil
}

// Materialize rewrites a repository document in place against the peer's own
// schema — the "active" enrichment feature. Context-free wrapper over
// MaterializeContext.
func (p *Peer) Materialize(name string, mode core.Mode) error {
	return p.MaterializeContext(context.Background(), name, mode)
}

// MaterializeContext is Materialize under a context.
func (p *Peer) MaterializeContext(ctx context.Context, name string, mode core.Mode) error {
	return p.Repo.Update(name, func(d *doc.Node) (*doc.Node, error) {
		// Update hands fn a clone, so the rewriter may consume d in place.
		rw := p.rewriter(p.Schema)
		return rw.RewriteDocumentContext(ctx, d, mode)
	})
}

// EnforceIn implements the receive-side of the Schema Enforcement module:
// incoming parameters must be (or be rewritten into) an input instance of
// the operation's declared signature. Context-free wrapper over
// EnforceInContext.
func (p *Peer) EnforceIn(method string, params []*doc.Node) ([]*doc.Node, error) {
	return p.EnforceInContext(context.Background(), method, params)
}

// EnforceInContext is EnforceIn under a context; Handler wires the request
// context through it, so a disconnected client stops the rewriting.
func (p *Peer) EnforceInContext(ctx context.Context, method string, params []*doc.Node) ([]*doc.Node, error) {
	typ, isData, ok := p.inputType(method)
	if !ok {
		return nil, fmt.Errorf("peer %s: operation %q is not declared", p.Name, method)
	}
	sctx := schema.NewContext(p.Schema, nil)
	if err := sctx.IsInputInstance(method, params); err == nil {
		return params, nil // (i) conforms as-is
	}
	if isData {
		return nil, fmt.Errorf("peer %s: %q expects atomic data parameters", p.Name, method)
	}
	rw := p.rewriter(p.Schema)
	out, err := rw.RewriteForestContext(ctx, params, typ, p.Mode) // (ii) try to rewrite
	if err != nil {
		return nil, fmt.Errorf("peer %s: parameters of %q: %w", p.Name, method, err) // (iii) report
	}
	return out, nil
}

// EnforceOut is the send-side: results must conform to the declared output
// type before leaving the peer. Context-free wrapper over
// EnforceOutContext.
func (p *Peer) EnforceOut(method string, result []*doc.Node) ([]*doc.Node, error) {
	return p.EnforceOutContext(context.Background(), method, result)
}

// EnforceOutContext is EnforceOut under a context.
func (p *Peer) EnforceOutContext(ctx context.Context, method string, result []*doc.Node) ([]*doc.Node, error) {
	def := p.Schema.Funcs[method]
	if def == nil {
		return nil, fmt.Errorf("peer %s: operation %q is not declared", p.Name, method)
	}
	sctx := schema.NewContext(p.Schema, nil)
	if err := sctx.IsOutputInstance(method, result); err == nil {
		return result, nil
	}
	if def.Out == nil {
		return nil, fmt.Errorf("peer %s: %q must return atomic data", p.Name, method)
	}
	rw := p.rewriter(p.Schema)
	out, err := rw.RewriteForestContext(ctx, result, def.Out, p.Mode)
	if err != nil {
		return nil, fmt.Errorf("peer %s: result of %q: %w", p.Name, method, err)
	}
	return out, nil
}

func (p *Peer) inputType(method string) (r *regex.Regex, isData, ok bool) {
	def := p.Schema.Funcs[method]
	if def == nil {
		return nil, false, false
	}
	if def.In == nil {
		return nil, true, true
	}
	return def.In, false, true
}

// Call invokes an operation on a remote peer with client-side enforcement —
// the context-free wrapper over CallContext.
func (p *Peer) Call(desc *wsdl.Description, method string, params []*doc.Node, mode core.Mode) ([]*doc.Node, error) {
	return p.CallContext(context.Background(), desc, method, params, mode)
}

// CallContext invokes an operation on a remote peer with client-side
// enforcement: the parameters are first rewritten into the remote's declared
// input type (materializing whatever the remote should not or cannot
// evaluate), and the result is validated against the declared output type.
// The context governs both the local enforcement rewriting and the remote
// round trip.
func (p *Peer) CallContext(ctx context.Context, desc *wsdl.Description, method string, params []*doc.Node, mode core.Mode) ([]*doc.Node, error) {
	def := desc.Schema.Funcs[method]
	if def == nil {
		return nil, fmt.Errorf("peer %s: %q is not an operation of service %q", p.Name, method, desc.Name)
	}
	if desc.Schema.Table != p.Schema.Table {
		return nil, fmt.Errorf("peer %s: remote description must be parsed with this peer's symbol table", p.Name)
	}
	if def.In != nil {
		rw := p.rewriter(desc.Schema)
		out, err := rw.RewriteForestContext(ctx, params, def.In, mode)
		if err != nil {
			return nil, fmt.Errorf("peer %s: parameters for %s.%s: %w", p.Name, desc.Name, method, err)
		}
		params = out
	}
	endpoint := def.Endpoint
	if endpoint == "" {
		endpoint = desc.Endpoint
	}
	client := &soap.Client{Endpoint: endpoint, Namespace: desc.TargetNamespace}
	result, err := client.CallContext(ctx, method, params)
	if err != nil {
		return nil, err
	}
	sctx := schema.NewContext(desc.Schema, p.Schema)
	if err := sctx.IsOutputInstance(method, result); err != nil {
		return nil, fmt.Errorf("peer %s: %s.%s returned non-conforming data: %w", p.Name, desc.Name, method, err)
	}
	return result, nil
}

// Description builds this peer's WSDL_int description.
func (p *Peer) Description() *wsdl.Description {
	return &wsdl.Description{
		Name:            p.Name,
		TargetNamespace: "urn:axml:" + p.Name,
		Endpoint:        p.Endpoint,
		Schema:          p.Schema,
	}
}

// Query is a declarative service body: it selects subtrees of a repository
// document by a label path, optionally filtered on the text value of a
// child element matched against the call's first (atomic) parameter.
type Query struct {
	// Doc names the repository document.
	Doc string
	// Path walks child labels from the root (the root's own label is not
	// part of the path). Empty selects the root itself.
	Path []string
	// Where, when set, keeps only subtrees having a child with this label
	// whose text equals the first parameter.
	Where string
}

// DefineQueryService declares and registers a service whose implementation
// evaluates a query over the repository — the paper's "services defined
// declaratively as queries over the repository documents".
func (p *Peer) DefineQueryService(name, in, out string, q Query) error {
	if p.Schema.Funcs[name] == nil {
		if err := p.Schema.SetFunc(name, in, out); err != nil {
			return err
		}
	}
	def := p.Schema.Funcs[name]
	handler := func(params []*doc.Node) ([]*doc.Node, error) {
		root, ok := p.Repo.Get(q.Doc)
		if !ok {
			return nil, fmt.Errorf("peer %s: query service %q: no document %q: %w", p.Name, name, q.Doc, store.ErrNotFound)
		}
		nodes := []*doc.Node{root}
		for _, label := range q.Path {
			var next []*doc.Node
			for _, n := range nodes {
				for _, ch := range n.Children {
					if ch.Kind != doc.Text && ch.Label == label {
						next = append(next, ch)
					}
				}
			}
			nodes = next
		}
		if q.Where != "" {
			want, ok := firstText(params)
			if !ok {
				// Without an atomic parameter there is nothing to compare
				// against; matching "" would silently select exactly the
				// rows *lacking* the Where child.
				return nil, fmt.Errorf("peer %s: query service %q: Where %q filter requires an atomic parameter", p.Name, name, q.Where)
			}
			var filtered []*doc.Node
			for _, n := range nodes {
				if got, ok := childText(n, q.Where); ok && got == want {
					filtered = append(filtered, n)
				}
			}
			nodes = filtered
		}
		return nodes, nil
	}
	return p.Services.Register(&service.Operation{Name: name, Def: def, Handler: handler})
}

// firstText extracts the first atomic parameter of a call: a bare text node
// or an element wrapping a single text node. ok is false when no parameter
// is atomic — distinct from an atomic parameter whose value is "".
func firstText(params []*doc.Node) (value string, ok bool) {
	for _, n := range params {
		if n.Kind == doc.Text {
			return n.Value, true
		}
		if len(n.Children) == 1 && n.Children[0].Kind == doc.Text {
			return n.Children[0].Value, true
		}
	}
	return "", false
}

// childText extracts the text value of n's first child labeled label. ok is
// false when no such child exists or when it has structured content — such
// rows never match a Where filter, even one comparing against "".
func childText(n *doc.Node, label string) (value string, ok bool) {
	for _, ch := range n.Children {
		if ch.Kind == doc.Text || ch.Label != label {
			continue
		}
		switch {
		case len(ch.Children) == 0:
			return "", true // present but empty: matches want == ""
		case len(ch.Children) == 1 && ch.Children[0].Kind == doc.Text:
			return ch.Children[0].Value, true
		}
		return "", false
	}
	return "", false
}
