package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// MetricsHandler serves the registry in Prometheus text format 0.0.4,
// or — when the scraper's Accept header asks for
// `application/openmetrics-text` — in the OpenMetrics dialect with
// per-bucket exemplars. A nil registry serves 503 so a disabled daemon
// still answers.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		openMetrics := strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text")
		if openMetrics {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		if req.Method == http.MethodHead {
			return
		}
		if openMetrics {
			_ = r.WriteOpenMetrics(w)
		} else {
			_ = r.WritePrometheus(w)
		}
	})
}

// TracesHandler serves the retained spans as JSON, oldest first.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if t == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		spans := t.Spans()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"capacity": t.Capacity(),
			"recorded": t.Recorded(),
			"dropped":  t.Dropped(),
			"spans":    spans,
		})
	})
}

// statusStrings holds pre-rendered decimal forms of the valid HTTP status
// range so stamping a span status doesn't allocate per request.
var statusStrings = func() (s [500]string) {
	for i := range s {
		s[i] = strconv.Itoa(100 + i)
	}
	return
}()

func statusString(code int) string {
	if code >= 100 && code < 600 {
		return statusStrings[code-100]
	}
	return strconv.Itoa(code)
}

// statusWriter captures the status code and body size a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RequestInfo is the per-request summary handed to a HandlerHook after
// the response is written.
type RequestInfo struct {
	Handler       string
	Method        string
	Path          string
	Status        int
	RequestBytes  int64
	ResponseBytes int64
	Start         time.Time
	Duration      time.Duration
	TraceID       string
}

// HandlerHook customizes InstrumentHandlerWith. Stages plants a Stages
// timer in the request context (see WithStages) so handlers downstream
// can attribute latency per pipeline stage; OnDone runs after the
// response with the request summary — the peer uses it for structured
// request logs and flight-recorder admission. The hook runs even with a
// nil registry, so structured logging works with telemetry disabled.
type HandlerHook struct {
	Stages bool
	OnDone func(ctx context.Context, info RequestInfo)
}

// InstrumentHandler wraps h with per-handler request metrics and an
// `http.<name>` span, and plants reg in the request context so deeper
// layers (the rewriter, the invoke chain) join the same trace. The
// metric families are:
//
//	axml_http_requests_total{handler,code}   counter, code is a class (2xx…)
//	axml_http_request_seconds{handler}       histogram
//	axml_http_request_bytes{handler}         histogram (Content-Length)
//	axml_http_response_bytes{handler}        histogram
//
// Status-class counters are pre-registered so every class appears in
// the exposition from boot. A nil registry returns h unchanged.
func InstrumentHandler(reg *Registry, name string, h http.Handler) http.Handler {
	return InstrumentHandlerWith(reg, name, h, nil)
}

// InstrumentHandlerWith is InstrumentHandler plus a HandlerHook. An
// incoming `traceparent` header is extracted before the span opens, so
// the request's root span — and everything stamped with its trace ID —
// joins the caller's trace; the request-latency histogram records the
// trace ID as that bucket's exemplar. With both reg and hook nil, h is
// returned unchanged (the uninstrumented path stays zero-cost).
func InstrumentHandlerWith(reg *Registry, name string, h http.Handler, hook *HandlerHook) http.Handler {
	if reg == nil && hook == nil {
		return h
	}
	classes := [5]*Counter{}
	if reg != nil {
		for i := range classes {
			classes[i] = reg.Counter("axml_http_requests_total",
				"handler", name, "code", strconv.Itoa(i+1)+"xx")
		}
	}
	seconds := reg.Histogram("axml_http_request_seconds", DefBuckets, "handler", name)
	reqBytes := reg.Histogram("axml_http_request_bytes", SizeBuckets, "handler", name)
	respBytes := reg.Histogram("axml_http_response_bytes", SizeBuckets, "handler", name)
	spanName := "http." + name
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		ctx := req.Context()
		if tid, pid, ok := ExtractTraceContext(req.Header); ok {
			ctx = WithRemoteTrace(ctx, tid, pid)
		}
		ctx, span := startSpanWith(ctx, reg, spanName)
		span.SetAttr("method", req.Method)
		span.SetAttr("path", req.URL.Path)
		if hook != nil && hook.Stages {
			ctx = WithStages(ctx, new(Stages))
		}
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, req.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		traceID := span.TraceID()
		if traceID == "" {
			traceID = TraceIDFrom(ctx)
		}
		if cls := sw.status/100 - 1; cls >= 0 && cls < len(classes) {
			classes[cls].Inc()
		}
		seconds.ObserveExemplar(elapsed.Seconds(), traceID)
		if req.ContentLength >= 0 {
			reqBytes.Observe(float64(req.ContentLength))
		}
		respBytes.Observe(float64(sw.bytes))
		span.SetAttr("status", statusString(sw.status))
		// End before the hook runs so a flight-recorder snapshot taken in
		// OnDone sees this request's root span already in the ring.
		span.End(nil)
		if hook != nil && hook.OnDone != nil {
			hook.OnDone(ctx, RequestInfo{
				Handler:       name,
				Method:        req.Method,
				Path:          req.URL.Path,
				Status:        sw.status,
				RequestBytes:  max64(req.ContentLength, 0),
				ResponseBytes: sw.bytes,
				Start:         start,
				Duration:      elapsed,
				TraceID:       traceID,
			})
		}
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
