package xsdint

import (
	"fmt"
	"io"
	"strings"

	"axml/internal/regex"
	"axml/internal/schema"
)

// Write renders the schema as an XML Schema_int document that Parse accepts
// back (predicates print as their names only when registered under the
// names supplied in predNames — an inverse mapping the caller maintains,
// since Go function values have no portable identity).
func Write(w io.Writer, s *schema.Schema, predNames map[string]string) error {
	pr := &xsdPrinter{s: s, predNames: predNames}
	var b strings.Builder
	pr.schema(&b)
	if pr.err != nil {
		return pr.err
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the schema as an XSD_int string.
func String(s *schema.Schema, predNames map[string]string) (string, error) {
	var b strings.Builder
	if err := Write(&b, s, predNames); err != nil {
		return "", err
	}
	return b.String(), nil
}

type xsdPrinter struct {
	s         *schema.Schema
	predNames map[string]string
	err       error
}

func (p *xsdPrinter) schema(b *strings.Builder) {
	rootAttr := ""
	if p.s.Root != "" {
		rootAttr = fmt.Sprintf(" root=%q", p.s.Root)
	}
	fmt.Fprintf(b, "<schema xmlns=%q%s>\n", XSDNamespace, rootAttr)
	for _, name := range p.s.SortedLabels() {
		d := p.s.Labels[name]
		if d.IsData() {
			fmt.Fprintf(b, "  <element name=%q type=\"xs:string\"/>\n", name)
			continue
		}
		fmt.Fprintf(b, "  <element name=%q>\n    <complexType>\n", name)
		p.particle(b, d.Content, 6, false)
		fmt.Fprintf(b, "    </complexType>\n  </element>\n")
	}
	for _, name := range p.s.SortedFuncs() {
		d := p.s.Funcs[name]
		attrs := fmt.Sprintf(" id=%q methodName=%q", name, name)
		if d.Endpoint != "" {
			attrs += fmt.Sprintf(" endpointURL=%q", d.Endpoint)
		}
		if d.Namespace != "" {
			attrs += fmt.Sprintf(" namespaceURI=%q", d.Namespace)
		}
		if !d.Invocable {
			attrs += ` invocable="false"`
		}
		if d.SideEffects {
			attrs += ` sideEffects="true"`
		}
		if d.Cost != 0 {
			attrs += fmt.Sprintf(" cost=%q", fmt.Sprintf("%g", d.Cost))
		}
		fmt.Fprintf(b, "  <function%s>\n", attrs)
		p.signature(b, d.In, d.Out)
		fmt.Fprintf(b, "  </function>\n")
	}
	for _, name := range p.s.SortedPatterns() {
		d := p.s.Patterns[name]
		attrs := fmt.Sprintf(" id=%q", name)
		if pn := p.predNames[name]; pn != "" {
			attrs += fmt.Sprintf(" predicate=%q", pn)
		}
		if !d.Invocable {
			attrs += ` invocable="false"`
		}
		fmt.Fprintf(b, "  <functionPattern%s>\n", attrs)
		p.signature(b, d.In, d.Out)
		fmt.Fprintf(b, "  </functionPattern>\n")
	}
	b.WriteString("</schema>\n")
}

func (p *xsdPrinter) signature(b *strings.Builder, in, out *regex.Regex) {
	if in != nil {
		b.WriteString("    <params>\n      <param>\n")
		p.particle(b, in, 8, false)
		b.WriteString("      </param>\n    </params>\n")
	}
	if out != nil {
		b.WriteString("    <return>\n")
		p.particle(b, out, 6, false)
		b.WriteString("    </return>\n")
	}
}

// particle renders one regex as XSD particles. inChoice suppresses the
// implicit single-child unwrapping inside choices.
func (p *xsdPrinter) particle(b *strings.Builder, r *regex.Regex, indent int, inChoice bool) {
	pad := strings.Repeat(" ", indent)
	switch r.Op {
	case regex.OpEmpty:
		// ε renders as an empty sequence (only meaningful standalone).
		fmt.Fprintf(b, "%s<sequence/>\n", pad)
	case regex.OpNever:
		p.err = fmt.Errorf("xsdint: the empty language ∅ has no XSD_int rendering")
	case regex.OpSym:
		p.symParticle(b, r.Sym, pad, "")
	case regex.OpClass:
		p.classParticle(b, r.Cls, pad, "")
	case regex.OpStar:
		p.repeated(b, r.Subs[0], indent, ` minOccurs="0" maxOccurs="unbounded"`)
	case regex.OpConcat:
		fmt.Fprintf(b, "%s<sequence>\n", pad)
		for _, s := range r.Subs {
			p.particle(b, s, indent+2, false)
		}
		fmt.Fprintf(b, "%s</sequence>\n", pad)
	case regex.OpAlt:
		// (x|ε) sugar: optional particle.
		if len(r.Subs) == 2 {
			var other *regex.Regex
			if r.Subs[0].Op == regex.OpEmpty {
				other = r.Subs[1]
			} else if r.Subs[1].Op == regex.OpEmpty {
				other = r.Subs[0]
			}
			if other != nil {
				p.repeated(b, other, indent, ` minOccurs="0"`)
				return
			}
		}
		fmt.Fprintf(b, "%s<choice>\n", pad)
		for _, s := range r.Subs {
			if s.Op == regex.OpEmpty {
				// ε inside a wider choice: minOccurs=0 on the whole choice
				// would change the language of the siblings; approximate by
				// an empty sequence branch.
				fmt.Fprintf(b, "%s  <sequence/>\n", pad)
				continue
			}
			p.particle(b, s, indent+2, true)
		}
		fmt.Fprintf(b, "%s</choice>\n", pad)
	}
}

// repeated renders r with occurrence attributes, wrapping composites in a
// sequence.
func (p *xsdPrinter) repeated(b *strings.Builder, r *regex.Regex, indent int, occursAttrs string) {
	pad := strings.Repeat(" ", indent)
	switch r.Op {
	case regex.OpSym:
		p.symParticle(b, r.Sym, pad, occursAttrs)
	case regex.OpClass:
		p.classParticle(b, r.Cls, pad, occursAttrs)
	case regex.OpConcat:
		fmt.Fprintf(b, "%s<sequence%s>\n", pad, occursAttrs)
		for _, s := range r.Subs {
			p.particle(b, s, indent+2, false)
		}
		fmt.Fprintf(b, "%s</sequence>\n", pad)
	case regex.OpAlt:
		fmt.Fprintf(b, "%s<choice%s>\n", pad, occursAttrs)
		for _, s := range r.Subs {
			p.particle(b, s, indent+2, true)
		}
		fmt.Fprintf(b, "%s</choice>\n", pad)
	case regex.OpStar:
		// (x*)? and (x*)* both equal x*: drop the redundant wrapper.
		p.repeated(b, r.Subs[0], indent, ` minOccurs="0" maxOccurs="unbounded"`)
	case regex.OpEmpty:
		fmt.Fprintf(b, "%s<sequence/>\n", pad)
	default:
		p.err = fmt.Errorf("xsdint: cannot render repeated %v", r.Op)
	}
}

func (p *xsdPrinter) symParticle(b *strings.Builder, sym regex.Symbol, pad, occursAttrs string) {
	name := p.s.Table.Name(sym)
	tag := "element"
	switch p.s.Kind(name) {
	case schema.KindFunc:
		tag = "function"
	case schema.KindPattern:
		tag = "functionPattern"
	}
	fmt.Fprintf(b, "%s<%s ref=%q%s/>\n", pad, tag, name, occursAttrs)
}

func (p *xsdPrinter) classParticle(b *strings.Builder, cls regex.Class, pad, occursAttrs string) {
	if cls.Negated {
		not := ""
		if len(cls.Syms) > 0 {
			names := make([]string, len(cls.Syms))
			for i, s := range cls.Syms {
				names[i] = p.s.Table.Name(s)
			}
			not = fmt.Sprintf(" not=%q", strings.Join(names, " "))
		}
		fmt.Fprintf(b, "%s<any%s%s/>\n", pad, not, occursAttrs)
		return
	}
	if len(cls.Syms) == 1 {
		p.symParticle(b, cls.Syms[0], pad, occursAttrs)
		return
	}
	fmt.Fprintf(b, "%s<choice%s>\n", pad, occursAttrs)
	for _, s := range cls.Syms {
		p.symParticle(b, s, pad+"  ", "")
	}
	fmt.Fprintf(b, "%s</choice>\n", pad)
}
