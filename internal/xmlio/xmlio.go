// Package xmlio maps intensional documents to and from the XML syntax of
// Section 7 of the paper: function nodes are represented by elements in the
// namespace http://www.activexml.com/ns/int —
//
//	<int:fun endpointURL="http://forecast.example/soap"
//	         methodName="Get_Temp" namespaceURI="urn:weather">
//	  <int:params>
//	    <int:param><city>Paris</city></int:param>
//	  </int:params>
//	</int:fun>
//
// — appearing anywhere ordinary elements may appear. Parsing resolves
// namespaces through encoding/xml; serialization declares the int prefix on
// the root element whenever the document contains function nodes.
//
// Following the paper's single label domain, element namespaces other than
// the intensional one are not modeled: prefixed names collapse to their
// local part on parse, and labels should not contain ':'.
package xmlio

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"axml/internal/doc"
)

// Namespace is the intensional-markup namespace of the Active XML system.
const Namespace = "http://www.activexml.com/ns/int"

// Parse reads one intensional XML document.
func Parse(r io.Reader) (*doc.Node, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmlio: no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("xmlio: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return parseElement(dec, t)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xmlio: stray text %q before root element", string(t))
			}
		case xml.ProcInst, xml.Comment, xml.Directive:
			// skip prolog
		}
	}
}

// ParseString parses from a string.
func ParseString(s string) (*doc.Node, error) { return Parse(strings.NewReader(s)) }

// parseElement parses the element that start opens, dispatching on the
// intensional namespace.
func parseElement(dec *xml.Decoder, start xml.StartElement) (*doc.Node, error) {
	if start.Name.Space == Namespace {
		if start.Name.Local != "fun" {
			return nil, fmt.Errorf("xmlio: unexpected intensional element <int:%s>", start.Name.Local)
		}
		return parseFun(dec, start)
	}
	n := doc.Elem(start.Name.Local)
	children, err := parseChildren(dec, start.Name)
	if err != nil {
		return nil, err
	}
	n.Children = children
	return n, nil
}

// parseChildren consumes tokens until the matching end element, dropping
// whitespace-only text when element children are present.
func parseChildren(dec *xml.Decoder, parent xml.Name) ([]*doc.Node, error) {
	var children []*doc.Node
	hasElem := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <%s>: %w", parent.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			hasElem = true
			child, err := parseElement(dec, t)
			if err != nil {
				return nil, err
			}
			children = append(children, child)
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) != "" {
				children = append(children, doc.TextNode(strings.TrimSpace(s)))
			}
		case xml.EndElement:
			_ = hasElem
			return children, nil
		}
	}
}

// parseFun parses an <int:fun> element.
func parseFun(dec *xml.Decoder, start xml.StartElement) (*doc.Node, error) {
	ref := doc.ServiceRef{}
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "endpointURL":
			ref.Endpoint = a.Value
		case "methodName":
			ref.Method = a.Value
		case "namespaceURI":
			ref.Namespace = a.Value
		}
	}
	if ref.Method == "" {
		return nil, fmt.Errorf("xmlio: <int:fun> without methodName")
	}
	var n *doc.Node
	if ref.Endpoint == "" && ref.Namespace == "" {
		n = doc.Call(ref.Method)
	} else {
		n = doc.CallAt(ref)
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <int:fun %s>: %w", ref.Method, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == Namespace && t.Name.Local == "params" {
				params, err := parseParams(dec)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, params...)
				continue
			}
			return nil, fmt.Errorf("xmlio: unexpected <%s> inside <int:fun>", t.Name.Local)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xmlio: stray text inside <int:fun>")
			}
		case xml.EndElement:
			return n, nil
		}
	}
}

// parseParams parses <int:params> as a sequence of <int:param> wrappers,
// each contributing its content nodes as parameters.
func parseParams(dec *xml.Decoder) ([]*doc.Node, error) {
	var out []*doc.Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <int:params>: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space != Namespace || t.Name.Local != "param" {
				return nil, fmt.Errorf("xmlio: unexpected <%s> inside <int:params>", t.Name.Local)
			}
			kids, err := parseChildren(dec, t.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, kids...)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xmlio: stray text inside <int:params>")
			}
		case xml.EndElement:
			return out, nil
		}
	}
}

// Write serializes the document with two-space indentation and an XML
// declaration.
func Write(w io.Writer, n *doc.Node) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	p := &printer{w: w}
	p.node(n, 0, n.HasFuncs())
	if p.err != nil {
		return p.err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// String serializes to a string.
func String(n *doc.Node) (string, error) {
	var b strings.Builder
	if err := Write(&b, n); err != nil {
		return "", err
	}
	return b.String(), nil
}

// MustString serializes, panicking on error (nodes cannot normally fail).
func MustString(n *doc.Node) string {
	s, err := String(n)
	if err != nil {
		panic(err)
	}
	return s
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) escaped(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil && p.err == nil {
		p.err = err
	}
	return b.String()
}

func (p *printer) node(n *doc.Node, depth int, declareNS bool) {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case doc.Text:
		p.printf("%s%s\n", indent, p.escaped(n.Value))
	case doc.Element:
		ns := ""
		if declareNS {
			ns = fmt.Sprintf(" xmlns:int=%q", Namespace)
		}
		if len(n.Children) == 0 {
			p.printf("%s<%s%s/>\n", indent, n.Label, ns)
			return
		}
		if len(n.Children) == 1 && n.Children[0].Kind == doc.Text {
			p.printf("%s<%s%s>%s</%s>\n", indent, n.Label, ns, p.escaped(n.Children[0].Value), n.Label)
			return
		}
		p.printf("%s<%s%s>\n", indent, n.Label, ns)
		for _, c := range n.Children {
			p.node(c, depth+1, false)
		}
		p.printf("%s</%s>\n", indent, n.Label)
	case doc.Func:
		ref := doc.ServiceRef{Method: n.Label}
		if n.Service != nil {
			ref = *n.Service
		}
		ns := ""
		if declareNS {
			ns = fmt.Sprintf(" xmlns:int=%q", Namespace)
		}
		attrs := fmt.Sprintf(" methodName=%q", ref.Method)
		if ref.Endpoint != "" {
			attrs = fmt.Sprintf(" endpointURL=%q", ref.Endpoint) + attrs
		}
		if ref.Namespace != "" {
			attrs += fmt.Sprintf(" namespaceURI=%q", ref.Namespace)
		}
		if len(n.Children) == 0 {
			p.printf("%s<int:fun%s%s/>\n", indent, ns, attrs)
			return
		}
		p.printf("%s<int:fun%s%s>\n", indent, ns, attrs)
		p.printf("%s  <int:params>\n", indent)
		for _, c := range n.Children {
			p.printf("%s    <int:param>\n", indent)
			p.node(c, depth+3, false)
			p.printf("%s    </int:param>\n", indent)
		}
		p.printf("%s  </int:params>\n", indent)
		p.printf("%s</int:fun>\n", indent)
	}
}
