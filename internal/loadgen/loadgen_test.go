package loadgen

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"axml/internal/doc"
	"axml/internal/peer"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/telemetry"
	"axml/internal/xmlio"
)

// --- histogram unit tests ---

func TestClientBucketsSupersetOfDefBuckets(t *testing.T) {
	bounds := clientBuckets()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}
	for _, def := range telemetry.DefBuckets {
		found := false
		for _, b := range bounds {
			if b == def {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("DefBuckets bound %v missing from client buckets", def)
		}
	}
}

func TestHistObserveQuantileRebin(t *testing.T) {
	h := newHist([]float64{0.001, 0.01, 0.1, 1})
	// 90 fast, 9 medium, 1 slow: p50 in the first bucket, p99 in the third.
	for i := 0; i < 90; i++ {
		h.observe(0.0005)
	}
	for i := 0; i < 9; i++ {
		h.observe(0.005)
	}
	h.observe(0.05)
	if got := h.count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.quantile(0.50); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := h.quantile(0.99); got != 0.01 {
		t.Errorf("p99 = %v, want 0.01", got)
	}
	if got := h.quantile(0.999); got != 0.1 {
		t.Errorf("p999 = %v, want 0.1", got)
	}

	cum, total := h.rebin([]float64{0.01, 1})
	if total != 100 {
		t.Fatalf("rebin total = %d, want 100", total)
	}
	if cum[0] != 99 || cum[1] != 100 {
		t.Errorf("rebin cum = %v, want [99 100]", cum)
	}
}

func TestHistRebinOntoDefBuckets(t *testing.T) {
	// Observations recorded at client resolution must fold exactly onto the
	// server grid: a value between two DefBuckets bounds lands in the finer
	// client bucket but the same server bucket.
	h := newHist(clientBuckets())
	h.observe(0.0003) // between 0.00025 and 0.0005
	h.observe(0.0004)
	h.observe(0.002) // between 0.001 and 0.0025
	cum, total := h.rebin(telemetry.DefBuckets)
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
	// DefBuckets: 0.0001, 0.00025, 0.0005, 0.001, 0.0025, ...
	want := []uint64{0, 0, 2, 2, 3}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum[:6])
		}
	}
}

// --- metrics parser tests ---

const sampleExposition = `# HELP axml_http_request_seconds HTTP request latency.
# TYPE axml_http_request_seconds histogram
axml_http_request_seconds_bucket{handler="exchange",le="0.001"} 5
axml_http_request_seconds_bucket{handler="exchange",le="0.01"} 9
axml_http_request_seconds_bucket{handler="exchange",le="+Inf"} 10
axml_http_request_seconds_sum{handler="exchange"} 0.5
axml_http_request_seconds_count{handler="exchange"} 10
axml_http_request_seconds_bucket{handler="doc",le="0.001"} 3
axml_http_request_seconds_bucket{handler="doc",le="+Inf"} 3
other_metric_total 42
`

func TestParseMetrics(t *testing.T) {
	s, err := parseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.handlerCount("exchange"); got != 10 {
		t.Errorf("exchange count = %d, want 10", got)
	}
	if got := s.handlerCount("doc"); got != 3 {
		t.Errorf("doc count = %d, want 3", got)
	}
	if got := s.buckets["exchange"][0.001]; got != 5 {
		t.Errorf("exchange le=0.001 = %d, want 5", got)
	}
	if q, ok := s.quantileBucket("exchange", 0.50, nil); !ok || q != 0.001 {
		t.Errorf("exchange p50 bucket = %v/%v, want 0.001", q, ok)
	}
	if q, ok := s.quantileBucket("exchange", 0.99, nil); !ok || !math.IsInf(q, 1) {
		t.Errorf("exchange p99 bucket = %v/%v, want +Inf", q, ok)
	}
	if _, ok := s.quantileBucket("missing", 0.5, nil); ok {
		t.Error("quantileBucket on a missing handler should report !ok")
	}
}

func TestQuantileBucketDelta(t *testing.T) {
	before, err := parseMetrics(strings.NewReader(
		`axml_http_request_seconds_bucket{handler="exchange",le="0.001"} 5
axml_http_request_seconds_bucket{handler="exchange",le="0.01"} 5
axml_http_request_seconds_bucket{handler="exchange",le="+Inf"} 5
`))
	if err != nil {
		t.Fatal(err)
	}
	after, err := parseMetrics(strings.NewReader(
		`axml_http_request_seconds_bucket{handler="exchange",le="0.001"} 5
axml_http_request_seconds_bucket{handler="exchange",le="0.01"} 15
axml_http_request_seconds_bucket{handler="exchange",le="+Inf"} 15
`))
	if err != nil {
		t.Fatal(err)
	}
	// All 10 delta requests fell in (0.001, 0.01]: every quantile is 0.01.
	if q, ok := after.quantileBucket("exchange", 0.5, before); !ok || q != 0.01 {
		t.Errorf("delta p50 = %v/%v, want 0.01", q, ok)
	}
}

func TestCrossCheckCountMismatch(t *testing.T) {
	h := newHist(clientBuckets())
	h.observe(0.0003)
	empty := &scrape{buckets: map[string]map[float64]uint64{}}
	chk := crossCheck("exchange", h, empty, empty)
	if chk.OK {
		t.Fatalf("cross-check passed despite count mismatch: %+v", chk)
	}
	if chk.ClientCount != 1 || chk.ServerCount != 0 {
		t.Errorf("counts = %d/%d, want 1/0", chk.ClientCount, chk.ServerCount)
	}
}

// --- live-peer smoke tests (the -race concurrent loadgen smoke rides on
// these: `go test -race ./internal/loadgen/` drives every mix with multiple
// workers against an in-process Peer.Handler()) ---

const newsSchema = `
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
`

// testPeer builds the Figure 1 newspaper peer with local service
// implementations and telemetry, the fixture every smoke test serves.
func testPeer(t testing.TB) *peer.Peer {
	t.Helper()
	s := schema.MustParseText(newsSchema, nil)
	p := peer.New("news", s)
	p.Telemetry = telemetry.NewRegistry()
	register := func(name string, h func([]*doc.Node) ([]*doc.Node, error)) {
		if err := p.Services.Register(&service.Operation{Name: name, Def: s.Funcs[name], Handler: h}); err != nil {
			t.Fatal(err)
		}
	}
	register("Get_Temp", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
	})
	register("TimeOut", func([]*doc.Node) ([]*doc.Node, error) {
		return []*doc.Node{doc.Elem("exhibit", doc.Elem("title", doc.TextNode("Dali")), doc.Elem("date", doc.TextNode("2002")))}, nil
	})
	return p
}

func runMix(t *testing.T, mix string, mutate func(*Config)) *Report {
	t.Helper()
	ts := httptest.NewServer(testPeer(t).Handler())
	defer ts.Close()
	cfg := Config{
		BaseURL:     ts.URL,
		Mix:         mix,
		Duration:    400 * time.Millisecond,
		Concurrency: 4,
		Seed:        7,
		Docs:        8,
		Client:      ts.Client(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunMixes(t *testing.T) {
	for _, mix := range Mixes {
		t.Run(mix, func(t *testing.T) {
			rep := runMix(t, mix, nil)
			if rep.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if rep.Non2xx != 0 {
				t.Errorf("%d non-2xx responses: %v", rep.Non2xx, rep.Status)
			}
			if rep.Errors != 0 {
				t.Errorf("%d transport errors", rep.Errors)
			}
			if rep.Throughput <= 0 {
				t.Errorf("throughput = %v", rep.Throughput)
			}
			if len(rep.Handlers) == 0 {
				t.Error("no handler stats recorded")
			}
			for name, hs := range rep.Handlers {
				if hs.P50 <= 0 || hs.P99 < hs.P50 || hs.P999 < hs.P99 {
					t.Errorf("handler %s: implausible quantiles %+v", name, hs)
				}
			}
		})
	}
}

// TestInflate: padding lands exactly on the rendered-size target, spreads
// over text leaves, and never touches function parameters.
func TestInflate(t *testing.T) {
	root := doc.Elem("page",
		doc.Elem("title", doc.TextNode("t")),
		doc.Elem("date", doc.TextNode("2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	var buf bytes.Buffer
	if err := xmlio.Write(&buf, root); err != nil {
		t.Fatal(err)
	}
	base := buf.Len()
	if !inflate(root, 1000) {
		t.Fatal("inflate found no text to pad")
	}
	buf.Reset()
	if err := xmlio.Write(&buf, root); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != base+1000 {
		t.Errorf("rendered size = %d, want exactly %d", buf.Len(), base+1000)
	}
	if got := root.Children[2].Children[0].Children[0].Value; got != "Paris" {
		t.Errorf("function parameter padded: %q", got)
	}
	if inflate(doc.Elem("empty"), 100) {
		t.Error("a text-free document reported as inflated")
	}
}

// TestRunStreamDocBytes: the stream mix records a client-only first-byte
// histogram and DocBytes inflates the generated population.
func TestRunStreamDocBytes(t *testing.T) {
	rep := runMix(t, "stream", func(c *Config) {
		c.DocBytes = 8 << 10
		c.Docs = 4
	})
	if rep.Requests == 0 || rep.Non2xx != 0 || rep.Errors != 0 {
		t.Fatalf("reqs=%d non2xx=%d errors=%d: %v", rep.Requests, rep.Non2xx, rep.Errors, rep.Status)
	}
	if rep.DocBytes != 8<<10 {
		t.Errorf("report DocBytes = %d, want %d", rep.DocBytes, 8<<10)
	}
	hs, ok := rep.Handlers["exchange_ttfb"]
	if !ok || hs.Count == 0 {
		t.Fatal("no first-byte latency recorded")
	}
	full := rep.Handlers["exchange"]
	if hs.Count != full.Count {
		t.Errorf("ttfb count %d != exchange count %d", hs.Count, full.Count)
	}
	if hs.P50 > full.P50 {
		t.Errorf("first-byte p50 %v above full-drain p50 %v", hs.P50, full.P50)
	}
}

// TestRunReplicaMixSplitsWrites points WriteURL and BaseURL at two unrelated
// peers: every mutation (setup population included) must land on the write
// side only, and reads against the never-replicated read side must surface as
// tolerated stale reads, not errors or non-2xx failures.
func TestRunReplicaMixSplitsWrites(t *testing.T) {
	writePeer := testPeer(t)
	writeSide := httptest.NewServer(writePeer.Handler())
	defer writeSide.Close()
	readPeer := testPeer(t)
	readSide := httptest.NewServer(readPeer.Handler())
	defer readSide.Close()

	rep, err := New(Config{
		BaseURL:     readSide.URL,
		WriteURL:    writeSide.URL,
		Mix:         "replica",
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Seed:        7,
		Docs:        4,
		Client:      readSide.Client(),
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("reqs=%d errors=%d", rep.Requests, rep.Errors)
	}
	if rep.Non2xx != 0 {
		t.Errorf("%d non-2xx — lag must be stale reads, not failures: %v", rep.Non2xx, rep.Status)
	}
	if rep.StaleReads == 0 {
		t.Error("no stale reads recorded against an empty read side")
	}
	if writePeer.Repo.Len() == 0 {
		t.Error("no documents landed on the write side")
	}
	if readPeer.Repo.Len() != 0 {
		t.Errorf("%d documents leaked onto the read side", readPeer.Repo.Len())
	}
}

func TestRunUnknownMix(t *testing.T) {
	ts := httptest.NewServer(testPeer(t).Handler())
	defer ts.Close()
	_, err := New(Config{BaseURL: ts.URL, Mix: "bogus", Duration: 10 * time.Millisecond, Docs: 1, Client: ts.Client()}).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown mix") {
		t.Fatalf("err = %v, want unknown mix", err)
	}
}

func TestRunOpenLoopRate(t *testing.T) {
	rep := runMix(t, "exchange", func(c *Config) {
		c.Rate = 100
		c.Duration = 500 * time.Millisecond
	})
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	// An open loop at 100 rps for 0.5s issues ~50 requests; allow generous
	// slack for ticker startup and scheduling, but it must stay well below
	// what the closed loop achieves (thousands).
	if rep.Requests > 120 {
		t.Errorf("open loop at 100 rps issued %d requests in %.2fs", rep.Requests, rep.Duration)
	}
	if rep.Non2xx != 0 || rep.Errors != 0 {
		t.Errorf("non2xx=%d errors=%d", rep.Non2xx, rep.Errors)
	}
}

func TestRunMetricsCrossCheck(t *testing.T) {
	rep := runMix(t, "mixed", func(c *Config) { c.CheckMetrics = true })
	if len(rep.Checks) == 0 {
		t.Fatal("no metrics cross-checks recorded")
	}
	for _, chk := range rep.Checks {
		if chk.ClientCount != chk.ServerCount {
			t.Errorf("handler %s: client saw %d requests, server histogram %d",
				chk.Handler, chk.ClientCount, chk.ServerCount)
		}
		if !chk.OK {
			t.Errorf("handler %s: cross-check failed: %s", chk.Handler, chk.Reason)
		}
	}
	if !rep.ChecksOK {
		t.Error("ChecksOK = false")
	}
}
