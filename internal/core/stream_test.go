package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/xmlio"
)

// pureInvoker is a deterministic, concurrency-safe invoker: the result is a
// pure function of the call's name and first text parameter, so tree and
// streaming runs over clones of one document receive identical answers.
type pureInvoker struct {
	mu    sync.Mutex
	calls []string
	// out maps function names to the label of the single element returned;
	// "page" results carry a conforming hdr child instead of text.
	out map[string]string
}

func newPureInvoker() *pureInvoker {
	return &pureInvoker{out: map[string]string{
		"Get": "val", "Deep": "val", "MkTtl": "ttl",
		"Stamp": "stamp", "Note": "note", "Mk": "page",
	}}
}

func firstText(n *doc.Node) string {
	if n.Kind == doc.Text {
		return n.Value
	}
	for _, c := range n.Children {
		if v := firstText(c); v != "" {
			return v
		}
	}
	return ""
}

func (p *pureInvoker) Invoke(_ context.Context, call *doc.Node) ([]*doc.Node, error) {
	label, ok := p.out[call.Label]
	if !ok {
		return nil, errors.New("pureInvoker: no result shape for " + call.Label)
	}
	key := call.Label + ":" + firstText(call)
	p.mu.Lock()
	p.calls = append(p.calls, key)
	p.mu.Unlock()
	if label == "page" {
		return []*doc.Node{doc.Elem("page", doc.Elem("hdr", doc.TextNode(key)))}, nil
	}
	return []*doc.Node{doc.Elem(label, doc.TextNode(key))}, nil
}

func (p *pureInvoker) sorted() []string {
	p.mu.Lock()
	out := append([]string(nil), p.calls...)
	p.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// propSenderText is the sender schema of the streaming property tests: a
// page of sections whose content mixes plain elements, directly invocable
// functions, and a function (Deep) whose parameters need a nested call.
const propSenderText = `
root page
elem page = hdr.sec*.ftr*
elem hdr = data
elem ftr = (Stamp|stamp)
elem stamp = data
elem sec = ttl.(Get|val|Deep)*.sub*
elem ttl = data
elem sub = (Get|val).(Note|note)
elem note = data
elem val = data
func Get = data -> val
func Deep = ttl -> val
func MkTtl = data -> ttl
func Stamp = data -> stamp
func Note = data -> note
func Mk = data -> page
`

// propTargetText strips every function alternative out of the content
// models, making the target streamable: functions can only be invoked.
func propTargetText() string {
	r := strings.NewReplacer(
		"(Stamp|stamp)", "stamp",
		"(Get|val|Deep)*", "val*",
		"(Get|val).(Note|note)", "val.note",
	)
	return r.Replace(propSenderText)
}

func propRewriter(t *testing.T, degree int) (*Rewriter, *pureInvoker) {
	t.Helper()
	sender := schema.MustParseText(propSenderText, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), propTargetText(), nil)
	if err != nil {
		t.Fatal(err)
	}
	inv := newPureInvoker()
	rw := NewRewriterForConfig(Compile(sender, target), RewriterConfig{
		Depth: 2, Invoker: inv, Parallelism: degree,
	})
	return rw, inv
}

// propDoc builds a random page instance: every random choice flows from rng,
// so a seed fully determines the document.
func propDoc(rng *rand.Rand, secs int) *doc.Node {
	kids := []*doc.Node{doc.Elem("hdr", doc.TextNode("h"))}
	for i := 0; i < secs; i++ {
		sk := []*doc.Node{doc.Elem("ttl", doc.TextNode(fmt.Sprintf("t%d", i)))}
		for j, m := 0, rng.Intn(4); j < m; j++ {
			switch rng.Intn(3) {
			case 0:
				sk = append(sk, doc.Call("Get", doc.TextNode(fmt.Sprintf("g%d.%d", i, j))))
			case 1:
				sk = append(sk, doc.Call("Deep", doc.Call("MkTtl", doc.TextNode(fmt.Sprintf("d%d.%d", i, j)))))
			default:
				sk = append(sk, doc.Elem("val", doc.TextNode("v")))
			}
		}
		for s, m := 0, rng.Intn(3); s < m; s++ {
			var first, second *doc.Node
			if rng.Intn(2) == 0 {
				first = doc.Call("Get", doc.TextNode(fmt.Sprintf("s%d.%d", i, s)))
			} else {
				first = doc.Elem("val", doc.TextNode("v"))
			}
			if rng.Intn(2) == 0 {
				second = doc.Call("Note", doc.TextNode(fmt.Sprintf("n%d.%d", i, s)))
			} else {
				second = doc.Elem("note", doc.TextNode("n"))
			}
			sk = append(sk, doc.Elem("sub", first, second))
		}
		kids = append(kids, doc.Elem("sec", sk...))
	}
	if rng.Intn(2) == 0 {
		if rng.Intn(2) == 0 {
			kids = append(kids, doc.Elem("ftr", doc.Call("Stamp", doc.TextNode("f"))))
		} else {
			kids = append(kids, doc.Elem("ftr", doc.Elem("stamp", doc.TextNode("s"))))
		}
	}
	return doc.Elem("page", kids...)
}

func auditKeys(a *Audit) []string {
	calls := a.Calls()
	out := make([]string, len(calls))
	for i, c := range calls {
		out[i] = fmt.Sprintf("%s/d%d/n%d", c.Func, c.Depth, c.ResultNodes)
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// streamVsTree runs one document through the tree engine plus batch
// serialization and through RewriteDocumentStream, demanding the same
// verdict; on success, byte-identical output and identical audit trails.
// The tree-side reference bytes come from xmlio.Write, so the fallback
// path's WriteTo is cross-checked against the original serializer too.
func streamVsTree(t *testing.T, mk func() *Rewriter, root *doc.Node, mode Mode) *StreamResult {
	t.Helper()
	ctx := context.Background()
	rwT := mk()
	outT, errT := rwT.RewriteDocumentContext(ctx, root.Clone(), mode)
	var want bytes.Buffer
	if errT == nil {
		if err := xmlio.Write(&want, outT); err != nil {
			t.Fatal(err)
		}
	}
	rwS := mk()
	var got bytes.Buffer
	res, errS := rwS.RewriteDocumentStream(ctx, root.Clone(), &got, mode)
	if (errT == nil) != (errS == nil) {
		t.Fatalf("mode %v: verdict diverged: tree err=%v, stream err=%v", mode, errT, errS)
	}
	if errT != nil {
		return res
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("mode %v: output diverged\n--- tree ---\n%s\n--- stream ---\n%s", mode, want.Bytes(), got.Bytes())
	}
	if tk, sk := auditKeys(rwT.Audit), auditKeys(rwS.Audit); !eqStrings(tk, sk) {
		t.Fatalf("mode %v: audit diverged\ntree:   %v\nstream: %v", mode, tk, sk)
	}
	return res
}

// streamableFigSchemas builds the Figure 2 rewriter over a target whose
// content models admit no function symbol: schema (**) with the TimeOut
// alternative dropped from newspaper and Get_Date dropped from exhibit.
func streamableFigRewriter(t *testing.T, inv Invoker) *Rewriter {
	t.Helper()
	text := strings.NewReplacer(
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = title.date.temp.exhibit*",
		"elem exhibit = title.(Get_Date|date)",
		"elem exhibit = title.date",
	).Replace(senderText)
	sender := schema.MustParseText(senderText, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), text, nil)
	if err != nil {
		t.Fatal(err)
	}
	rw := NewRewriter(sender, target, 2, inv)
	rw.Audit = &Audit{}
	return rw
}

// TestStreamFig2Streamed: the paper's document, minus the kept TimeOut call,
// streams against a function-free target and invokes exactly Get_Temp.
func TestStreamFig2Streamed(t *testing.T) {
	root := doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
	)
	mk := func() *Rewriter {
		return streamableFigRewriter(t, stubInvoker{
			"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		})
	}
	if ok, reason := mk().CanStream(Safe); !ok {
		t.Fatalf("expected streamable configuration, got fallback %q", reason)
	}
	res := streamVsTree(t, mk, root, Safe)
	if !res.Streamed {
		t.Fatalf("expected streamed execution, got fallback %q", res.FallbackReason)
	}
	if res.Calls != 1 {
		t.Errorf("calls = %d, want 1", res.Calls)
	}
	if res.PeakBufferedNodes == 0 || res.BytesWritten == 0 {
		t.Errorf("missing stream accounting: %+v", res)
	}
}

// TestStreamFig2FallbackTarget: schema (**) itself admits TimeOut in the
// newspaper content model, so streaming falls back — with identical output.
func TestStreamFig2FallbackTarget(t *testing.T) {
	mk := func() *Rewriter {
		return paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", stubInvoker{
			"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		})
	}
	if mk().Compiled.StreamableTarget() {
		t.Fatal("target admitting TimeOut must not be streamable")
	}
	res := streamVsTree(t, mk, fig2doc(), Safe)
	if res.Streamed || res.FallbackReason != "target" {
		t.Fatalf("want target fallback, got %+v", res)
	}
}

// TestStreamFig8RefusalEquivalence: against the streamable target, the full
// Figure 2 document (TimeOut included) is refused by both engines without a
// single invocation.
func TestStreamFig8RefusalEquivalence(t *testing.T) {
	mk := func() *Rewriter {
		return streamableFigRewriter(t, InvokerFunc(func(*doc.Node) ([]*doc.Node, error) {
			t.Error("refused rewriting must not invoke")
			return nil, nil
		}))
	}
	res := streamVsTree(t, mk, fig2doc(), Safe)
	if !res.Streamed {
		t.Fatalf("refusal should happen on the streaming path, got fallback %q", res.FallbackReason)
	}
}

// TestStreamFallbackMode: non-Safe modes take the tree path with identical
// results.
func TestStreamFallbackMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	root := propDoc(rng, 4)
	for _, mode := range []Mode{Possible, Mixed} {
		mk := func() *Rewriter { rw, _ := propRewriter(t, 1); return rw }
		res := streamVsTree(t, mk, root, mode)
		if res.Streamed || res.FallbackReason != "mode" {
			t.Fatalf("mode %v: want mode fallback, got %+v", mode, res)
		}
	}
}

// TestStreamFallbackFuncRoot: a function-node document root cannot stream
// (there is no element event to anchor the frame stack on the tree path's
// terms) and falls back, byte-identically.
func TestStreamFallbackFuncRoot(t *testing.T) {
	mk := func() *Rewriter { rw, _ := propRewriter(t, 1); return rw }
	res := streamVsTree(t, mk, doc.Call("Mk", doc.TextNode("m")), Safe)
	if res.Streamed || res.FallbackReason != "func-root" {
		t.Fatalf("want func-root fallback, got %+v", res)
	}
}

// Wildcard schemas: x is mentioned by page's content model but never
// declared, so x subtrees are foreign content both engines pass through.
const wildSenderText = `
root page
elem page = hdr.x*
elem hdr = data
elem val = data
func Get = data -> val
`

func wildRewriter(t *testing.T, degree int) *Rewriter {
	t.Helper()
	sender := schema.MustParseText(wildSenderText, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), wildSenderText, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewRewriterForConfig(Compile(sender, target), RewriterConfig{
		Depth: 2, Invoker: newPureInvoker(), Parallelism: degree,
	})
}

// TestStreamWildPassthrough: foreign subtrees stream through verbatim in
// lenient mode, and a strict context refuses them on both engines.
func TestStreamWildPassthrough(t *testing.T) {
	root := doc.Elem("page",
		doc.Elem("hdr", doc.TextNode("h")),
		doc.Elem("x",
			doc.Elem("y", doc.TextNode("w")),
			doc.TextNode("free  text"),
			doc.Elem("z"),
		),
		doc.Elem("x", doc.TextNode("only")),
		doc.Elem("x"),
	)
	mk := func() *Rewriter { return wildRewriter(t, 1) }
	res := streamVsTree(t, mk, root, Safe)
	if !res.Streamed {
		t.Fatalf("wildcard content without functions should stream, got fallback %q", res.FallbackReason)
	}

	strict := func() *Rewriter {
		rw := wildRewriter(t, 1)
		rw.Context().Strict = true
		return rw
	}
	streamVsTree(t, strict, root, Safe) // both must refuse; divergence fails the test
}

// TestStreamFallbackWildFunc: a function under a wildcard element survives
// rewriting untouched, which the emitter cannot represent; the tree path
// takes over and the bytes still match.
func TestStreamFallbackWildFunc(t *testing.T) {
	root := doc.Elem("page",
		doc.Elem("hdr", doc.TextNode("h")),
		doc.Elem("x", doc.Call("Get", doc.TextNode("frozen"))),
	)
	mk := func() *Rewriter { return wildRewriter(t, 1) }
	res := streamVsTree(t, mk, root, Safe)
	if res.Streamed || res.FallbackReason != "wild-func" {
		t.Fatalf("want wild-func fallback, got %+v", res)
	}
}

// TestStreamPropertyRandomized is the satellite equivalence property: over
// seeded random documents, engines, degrees and modes, the streaming path
// and the tree path agree on verdict, bytes and audit trail.
func TestStreamPropertyRandomized(t *testing.T) {
	for _, degree := range []int{1, 4} {
		for _, engine := range []EngineKind{Eager, Lazy} {
			for seed := int64(0); seed < 10; seed++ {
				rng := rand.New(rand.NewSource(seed))
				root := propDoc(rng, 1+rng.Intn(7))
				mk := func() *Rewriter {
					rw, _ := propRewriter(t, degree)
					rw.Engine = engine
					return rw
				}
				res := streamVsTree(t, mk, root, Safe)
				if !res.Streamed {
					t.Fatalf("degree %d engine %d seed %d: unexpected fallback %q",
						degree, engine, seed, res.FallbackReason)
				}
				if degree == 1 && engine == Eager {
					res = streamVsTree(t, mk, root, Possible)
					if res.Streamed {
						t.Fatalf("seed %d: Possible mode must not stream", seed)
					}
				}
			}
		}
	}
}

// TestStreamReaderSourceEquivalence drives RewriteStream from serialized
// bytes — no tree on the streaming side at all — and compares with the tree
// engine run on the parsed equivalent.
func TestStreamReaderSourceEquivalence(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		rng := rand.New(rand.NewSource(seed))
		root := propDoc(rng, 1+rng.Intn(6))
		var input bytes.Buffer
		if err := xmlio.Write(&input, root); err != nil {
			t.Fatal(err)
		}

		rwT, _ := propRewriter(t, 1)
		outT, err := rwT.RewriteDocumentContext(context.Background(), root.Clone(), Safe)
		if err != nil {
			t.Fatalf("seed %d: tree: %v", seed, err)
		}
		var want bytes.Buffer
		if err := xmlio.Write(&want, outT); err != nil {
			t.Fatal(err)
		}

		rwS, _ := propRewriter(t, 1)
		src := xmlio.NewReaderSource(bytes.NewReader(input.Bytes()))
		var got bytes.Buffer
		res, err := rwS.RewriteStream(context.Background(), src, &got, Safe)
		src.Close()
		if err != nil {
			t.Fatalf("seed %d: stream: %v", seed, err)
		}
		if !res.Streamed {
			t.Fatalf("seed %d: reader source must stream", seed)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("seed %d: output diverged\n--- tree ---\n%s\n--- stream ---\n%s",
				seed, want.Bytes(), got.Bytes())
		}
		if tk, sk := auditKeys(rwT.Audit), auditKeys(rwS.Audit); !eqStrings(tk, sk) {
			t.Fatalf("seed %d: audit diverged\ntree:   %v\nstream: %v", seed, tk, sk)
		}
	}
}

// TestStreamReaderErrors: malformed, truncated and unsupported inputs fail
// cleanly on the pure streaming entry point.
func TestStreamReaderErrors(t *testing.T) {
	rw, _ := propRewriter(t, 1)

	t.Run("unsupported target", func(t *testing.T) {
		bad := paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", newPureInvoker())
		src := xmlio.NewReaderSource(strings.NewReader("<newspaper/>"))
		defer src.Close()
		var out bytes.Buffer
		res, err := bad.RewriteStream(context.Background(), src, &out, Safe)
		if !errors.Is(err, ErrStreamUnsupported) {
			t.Fatalf("err = %v, want ErrStreamUnsupported", err)
		}
		if res.FallbackReason != "target" {
			t.Fatalf("reason = %q, want target", res.FallbackReason)
		}
	})

	t.Run("unsupported mode", func(t *testing.T) {
		src := xmlio.NewReaderSource(strings.NewReader("<page><hdr>h</hdr></page>"))
		defer src.Close()
		var out bytes.Buffer
		if _, err := rw.RewriteStream(context.Background(), src, &out, Possible); !errors.Is(err, ErrStreamUnsupported) {
			t.Fatalf("err = %v, want ErrStreamUnsupported", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		rng := rand.New(rand.NewSource(99))
		var input bytes.Buffer
		if err := xmlio.Write(&input, propDoc(rng, 5)); err != nil {
			t.Fatal(err)
		}
		cut := input.Bytes()[:input.Len()/2]
		src := xmlio.NewReaderSource(bytes.NewReader(cut))
		defer src.Close()
		var out bytes.Buffer
		if _, err := rw.RewriteStream(context.Background(), src, &out, Safe); err == nil {
			t.Fatal("truncated stream must fail")
		}
	})

	t.Run("mismatched tag", func(t *testing.T) {
		src := xmlio.NewReaderSource(strings.NewReader("<page><hdr>h</hdrr></page>"))
		defer src.Close()
		var out bytes.Buffer
		if _, err := rw.RewriteStream(context.Background(), src, &out, Safe); err == nil {
			t.Fatal("mismatched close tag must fail")
		}
	})

	t.Run("stray intensional element", func(t *testing.T) {
		src := xmlio.NewReaderSource(strings.NewReader(
			`<page xmlns:int="http://www.activexml.com/ns/int"><int:bogus/></page>`))
		defer src.Close()
		var out bytes.Buffer
		if _, err := rw.RewriteStream(context.Background(), src, &out, Safe); err == nil {
			t.Fatal("unknown intensional element must fail")
		}
	})

	t.Run("wild func mid-stream", func(t *testing.T) {
		wrw := wildRewriter(t, 1)
		var input bytes.Buffer
		if err := xmlio.Write(&input, doc.Elem("page",
			doc.Elem("hdr", doc.TextNode("h")),
			doc.Elem("x", doc.Call("Get", doc.TextNode("frozen"))),
		)); err != nil {
			t.Fatal(err)
		}
		src := xmlio.NewReaderSource(bytes.NewReader(input.Bytes()))
		defer src.Close()
		var out bytes.Buffer
		if _, err := wrw.RewriteStream(context.Background(), src, &out, Safe); !errors.Is(err, ErrStreamUnsupported) {
			t.Fatalf("err = %v, want ErrStreamUnsupported", err)
		}
	})

	t.Run("func root via reader", func(t *testing.T) {
		frw, _ := propRewriter(t, 1)
		var input bytes.Buffer
		if err := xmlio.Write(&input, doc.Call("Mk", doc.TextNode("m"))); err != nil {
			t.Fatal(err)
		}
		src := xmlio.NewReaderSource(bytes.NewReader(input.Bytes()))
		defer src.Close()
		var out bytes.Buffer
		res, err := frw.RewriteStream(context.Background(), src, &out, Safe)
		if err != nil {
			t.Fatalf("function root via reader should stream: %v", err)
		}
		if !res.Streamed || res.Calls == 0 {
			t.Fatalf("unexpected result %+v", res)
		}
		if !strings.Contains(out.String(), "<page>") {
			t.Fatalf("output missing materialized page:\n%s", out.String())
		}
	})
}

// TestStreamPeakBufferedBounded is the O(depth) acceptance check: on a wide
// megabyte-scale document with sparse function nodes, the streamed rewrite
// buffers a small fraction of the document while producing identical bytes.
func TestStreamPeakBufferedBounded(t *testing.T) {
	fat := strings.Repeat("x", 200)
	var kids []*doc.Node
	kids = append(kids, doc.Elem("hdr", doc.TextNode("h")))
	for i := 0; i < 1500; i++ {
		sk := []*doc.Node{doc.Elem("ttl", doc.TextNode(fat))}
		for j := 0; j < 3; j++ {
			sk = append(sk, doc.Elem("val", doc.TextNode(fat)))
		}
		if i%8 == 0 {
			sk = append(sk, doc.Call("Get", doc.TextNode(fmt.Sprintf("g%d", i))))
		}
		kids = append(kids, doc.Elem("sec", sk...))
	}
	root := doc.Elem("page", kids...)

	var input bytes.Buffer
	if err := xmlio.Write(&input, root); err != nil {
		t.Fatal(err)
	}
	docBytes := input.Len()
	if docBytes < 1<<20 {
		t.Fatalf("test document too small: %d bytes", docBytes)
	}

	mk := func() *Rewriter { rw, _ := propRewriter(t, 1); return rw }
	res := streamVsTree(t, mk, root, Safe)
	if !res.Streamed {
		t.Fatalf("unexpected fallback %q", res.FallbackReason)
	}
	if res.PeakBufferedBytes >= docBytes/10 {
		t.Errorf("peak buffered %d bytes on a %d-byte document; want ≪ doc size",
			res.PeakBufferedBytes, docBytes)
	}
	if res.BytesWritten < int64(docBytes)/2 {
		t.Errorf("only %d bytes written for a %d-byte document", res.BytesWritten, docBytes)
	}
	if res.FirstByte <= 0 {
		t.Error("first-byte latency not recorded on a multi-flush document")
	}
}
