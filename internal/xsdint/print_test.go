package xsdint

import (
	"encoding/xml"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

// TestPrintWildcardsAndRepeats round-trips content models that exercise the
// printer's particle corner cases: wildcards, exclusions, options, stars of
// composites, and choices containing ε.
func TestPrintWildcardsAndRepeats(t *testing.T) {
	cases := []string{
		"a.~*",
		"~!(a|b)*",
		"a?",
		"(a.b)*",
		"(a|b)*",
		"a.(b.c)?",
		"(a|())",
		"a{2,4}",
		"((a|b).c)*",
	}
	for _, src := range cases {
		s := schema.New()
		if err := s.SetData("a"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetData("b"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetData("c"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetLabel("root", src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		out, err := String(s, nil)
		if err != nil {
			t.Fatalf("%s: print: %v", src, err)
		}
		back, err := ParseString(out, Options{SkipUPACheck: true})
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", src, err, out)
		}
		orig := s.Labels["root"].Content
		round := back.Labels["root"].Content
		// Compare by language on a batch of words.
		words := [][]string{
			{}, {"a"}, {"b"}, {"a", "b"}, {"a", "b", "c"}, {"zzz"},
			{"a", "a"}, {"a", "a", "a"}, {"a", "b", "a", "b"}, {"a", "c"},
		}
		for _, w := range words {
			lhs := matchNames(s, orig, w)
			rhs := matchNames(back, round, w)
			if lhs != rhs {
				t.Errorf("%s: language changed on %v (orig %v, round %v)\n%s", src, w, lhs, rhs, out)
				break
			}
		}
	}
}

func matchNames(s *schema.Schema, r *regex.Regex, names []string) bool {
	w := make([]regex.Symbol, len(names))
	for i, n := range names {
		w[i] = s.Table.Intern(n)
	}
	return regex.Match(r, w)
}

// TestPrintPatternParticle: patterns referenced inside content models print
// as functionPattern particles.
func TestPrintPatternParticle(t *testing.T) {
	s := schema.MustParseText(`
elem page = Forecast|temp
elem temp = data
elem city = data
pattern Forecast = city -> temp
`, nil)
	out, err := String(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `<functionPattern ref="Forecast"/>`) {
		t.Errorf("pattern particle missing:\n%s", out)
	}
	back, err := ParseString(out, Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if back.Patterns["Forecast"] == nil {
		t.Error("pattern lost")
	}
}

// TestParseAtDirect: the mid-stream entry point used by WSDL_int.
func TestParseAtDirect(t *testing.T) {
	src := `<wrapper><schema root="a"><element name="a" type="xs:string"/></schema><after/></wrapper>`
	dec := xml.NewDecoder(strings.NewReader(src))
	// Consume <wrapper> then position at <schema>.
	var schemaStart xml.StartElement
	for {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		if s, ok := tok.(xml.StartElement); ok && s.Name.Local == "schema" {
			schemaStart = s
			break
		}
	}
	s, err := ParseAt(dec, schemaStart, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Root != "a" || s.Labels["a"] == nil {
		t.Errorf("parsed schema wrong: %+v", s)
	}
	// The decoder must be positioned after </schema>: <after/> comes next.
	tok, err := dec.Token()
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := tok.(xml.StartElement); !ok || st.Name.Local != "after" {
		t.Errorf("decoder misaligned after ParseAt: %v", tok)
	}
	// ParseAt on a non-schema element fails.
	dec2 := xml.NewDecoder(strings.NewReader("<x/>"))
	st, _ := dec2.Token()
	if _, err := ParseAt(dec2, st.(xml.StartElement), Options{}); err == nil {
		t.Error("ParseAt on <x> should fail")
	}
}

// TestPrintedSchemaValidates: the printed XSD of the paper schema drives
// validation identically to the text-DSL original.
func TestPrintedSchemaValidates(t *testing.T) {
	orig := schema.MustParseText(`
root newspaper
elem newspaper = title.(Get_Temp|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	out, err := String(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("x")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))))
	if err := schema.NewContext(back, nil).Validate(d); err != nil {
		t.Errorf("round-tripped schema rejects document: %v", err)
	}
}
