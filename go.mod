module axml

go 1.22
