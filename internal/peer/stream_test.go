package peer

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/doc"
)

// streamExchangeXSD is an exchange schema whose content models admit no
// function symbol — the streamable shape: every function occurrence must be
// invoked, none can be kept.
const streamExchangeXSD = `
<schema root="newspaper">
  <element name="newspaper"><complexType><sequence>
    <element ref="title"/><element ref="date"/><element ref="temp"/>
    <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
  </sequence></complexType></element>
  <element name="title" type="xs:string"/>
  <element name="date" type="xs:string"/>
  <element name="temp" type="xs:string"/>
  <element name="city" type="xs:string"/>
  <element name="exhibit"><complexType><sequence>
    <element ref="title"/><element ref="date"/>
  </sequence></complexType></element>
  <function id="Get_Temp"><params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return></function>
</schema>`

func plainDoc() *doc.Node {
	return doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
	)
}

func postExchange(t *testing.T, h http.Handler, name, xsd string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/exchange/"+name+"?mode=safe", strings.NewReader(xsd))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestExchangeStreaming: a streaming peer answers /exchange with exactly the
// bytes the tree path produces, for both streamable and fallback targets.
func TestExchangeStreaming(t *testing.T) {
	tree := newsPeer(t)
	stream := newsPeer(t)
	stream.Streaming = true
	for _, p := range []*Peer{tree, stream} {
		if err := p.Repo.Put("plain", plainDoc()); err != nil {
			t.Fatal(err)
		}
	}
	th, sh := tree.Handler(), stream.Handler()

	for _, tc := range []struct{ doc, xsd string }{
		{"plain", streamExchangeXSD},   // streamed
		{"today", identityExchangeXSD}, // target fallback, tree path
	} {
		want := postExchange(t, th, tc.doc, tc.xsd)
		got := postExchange(t, sh, tc.doc, tc.xsd)
		if want.Code != http.StatusOK || got.Code != http.StatusOK {
			t.Fatalf("%s: status tree=%d stream=%d: %s", tc.doc, want.Code, got.Code, got.Body.String())
		}
		if ct := got.Header().Get("Content-Type"); ct != "text/xml; charset=utf-8" {
			t.Errorf("%s: Content-Type = %q", tc.doc, ct)
		}
		if !bytes.Equal(want.Body.Bytes(), got.Body.Bytes()) {
			t.Errorf("%s: streamed body diverges from tree body\n--- tree ---\n%s\n--- stream ---\n%s",
				tc.doc, want.Body.String(), got.Body.String())
		}
	}
}

// TestExchangeStreamingErrors: failures that occur before the first flushed
// byte keep their clean HTTP statuses on the streaming path.
func TestExchangeStreamingErrors(t *testing.T) {
	p := newsPeer(t)
	p.Streaming = true
	h := p.Handler()
	if w := postExchange(t, h, "missing", streamExchangeXSD); w.Code != http.StatusNotFound {
		t.Errorf("missing document: status %d, want 404", w.Code)
	}
	// "today" embeds a TimeOut call the streamable target cannot keep and
	// Safe mode refuses to invoke: refused before any output byte.
	if w := postExchange(t, h, "today", streamExchangeXSD); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("refused rewriting: status %d, want 422", w.Code)
	}
}

// TestExchangeStreamingAbort: when enforcement fails after response bytes
// left the server, the connection is aborted rather than closed as if the
// truncated document were complete.
func TestExchangeStreamingAbort(t *testing.T) {
	p := newsPeer(t)
	p.Streaming = true
	// A document whose long valid function-free prefix overflows the
	// emitter's buffer (a function child would start an island and buffer
	// the rest) before a final element the content model rejects.
	fat := strings.Repeat("x", 100)
	kids := []*doc.Node{
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Elem("temp", doc.TextNode("15")),
	}
	for i := 0; i < 800; i++ {
		kids = append(kids, doc.Elem("exhibit",
			doc.Elem("title", doc.TextNode(fat)),
			doc.Elem("date", doc.TextNode("2002"))))
	}
	kids = append(kids, doc.Elem("performance", doc.TextNode("rejected")))
	if err := p.Repo.Put("long", doc.Elem("newspaper", kids...)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/exchange/long?mode=safe", "text/xml", strings.NewReader(streamExchangeXSD))
	if err != nil {
		return // aborted before the status line is acceptable too
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d before the failure point; headers must have been committed", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("reading an aborted streamed response must fail, not end cleanly")
	}
}
