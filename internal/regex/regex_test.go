package regex

import (
	"math/rand"
	"strings"
	"testing"
)

func sym(t *Table, name string) Symbol { return t.Intern(name) }

func mustParse(t *testing.T, tab *Table, src string) *Regex {
	t.Helper()
	r, err := Parse(tab, src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return r
}

func word(tab *Table, names ...string) []Symbol {
	w := make([]Symbol, len(names))
	for i, n := range names {
		w[i] = tab.Intern(n)
	}
	return w
}

func TestTableIntern(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("a")
	b := tab.Intern("b")
	if a == b {
		t.Fatalf("distinct names interned to same symbol %d", a)
	}
	if got := tab.Intern("a"); got != a {
		t.Errorf("re-intern a: got %d want %d", got, a)
	}
	if got, ok := tab.Lookup("b"); !ok || got != b {
		t.Errorf("Lookup(b) = %d,%v want %d,true", got, ok, b)
	}
	if _, ok := tab.Lookup("zzz"); ok {
		t.Error("Lookup of uninterned name succeeded")
	}
	if tab.Name(a) != "a" || tab.Name(b) != "b" {
		t.Error("Name round trip failed")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d want 2", tab.Len())
	}
}

func TestTableNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name on foreign symbol did not panic")
		}
	}()
	NewTable().Name(3)
}

func TestClassContains(t *testing.T) {
	tab := NewTable()
	a, b, c := sym(tab, "a"), sym(tab, "b"), sym(tab, "c")
	pos := NewClass(false, b, a, a) // unsorted + duplicate input
	if !pos.Contains(a) || !pos.Contains(b) || pos.Contains(c) {
		t.Errorf("positive class membership wrong: %+v", pos)
	}
	neg := NewClass(true, a)
	if neg.Contains(a) || !neg.Contains(b) || !neg.Contains(c) {
		t.Errorf("negated class membership wrong: %+v", neg)
	}
	if !AnyClass().Contains(c) {
		t.Error("AnyClass does not contain c")
	}
	if !NewClass(false).IsEmpty() || AnyClass().IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestClassOverlaps(t *testing.T) {
	tab := NewTable()
	a, b, c := sym(tab, "a"), sym(tab, "b"), sym(tab, "c")
	cases := []struct {
		x, y Class
		want bool
	}{
		{NewClass(false, a), NewClass(false, a), true},
		{NewClass(false, a), NewClass(false, b), false},
		{NewClass(false, a, b), NewClass(false, b, c), true},
		{NewClass(false, a), AnyClass(), true},
		{NewClass(false, a), NewClass(true, a), false},
		{NewClass(false, a, b), NewClass(true, a), true},
		{NewClass(true, a), NewClass(true, b), true}, // fresh symbols exist
		{NewClass(false), NewClass(false, a), false},
	}
	for i, tc := range cases {
		if got := tc.x.Overlaps(tc.y); got != tc.want {
			t.Errorf("case %d: Overlaps = %v want %v", i, got, tc.want)
		}
		if got := tc.y.Overlaps(tc.x); got != tc.want {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
	}
}

func TestConstructorCanonicalForm(t *testing.T) {
	tab := NewTable()
	a, b := Sym(sym(tab, "a")), Sym(sym(tab, "b"))

	if got := Concat(a, Empty(), b); got.Op != OpConcat || len(got.Subs) != 2 {
		t.Errorf("Concat did not drop ε: %v", got.String(tab))
	}
	if got := Concat(a, Never(), b); !got.IsNever() {
		t.Errorf("Concat did not absorb ∅")
	}
	if got := Concat(Concat(a, b), a); len(got.Subs) != 3 {
		t.Errorf("Concat did not flatten")
	}
	if got := Concat(); got != Empty() {
		t.Errorf("Concat() != ε")
	}
	if got := Alt(a, Never(), a); got != a {
		t.Errorf("Alt dedup/∅-drop failed: %v", got.String(tab))
	}
	if got := Alt(); !got.IsNever() {
		t.Errorf("Alt() != ∅")
	}
	if got := Alt(Alt(a, b), b); len(got.Subs) != 2 {
		t.Errorf("Alt flatten+dedup failed")
	}
	if got := Star(Star(a)); got.Op != OpStar || got.Subs[0] != a {
		t.Errorf("Star(Star) not collapsed")
	}
	if Star(Empty()) != Empty() || Star(Never()) != Empty() {
		t.Errorf("Star of trivial languages wrong")
	}
	if got := ClassOf(NewClass(false)); !got.IsNever() {
		t.Errorf("empty class not normalized to ∅")
	}
}

func TestRepeat(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("a")
	r := Repeat(Sym(a), 2, 4)
	for n := 0; n <= 6; n++ {
		w := make([]Symbol, n)
		for i := range w {
			w[i] = a
		}
		want := n >= 2 && n <= 4
		if got := Match(r, w); got != want {
			t.Errorf("a{2,4} match a^%d = %v want %v", n, got, want)
		}
	}
	r = Repeat(Sym(a), 1, Unbounded)
	if Match(r, nil) || !Match(r, []Symbol{a, a, a}) {
		t.Error("a{1,} wrong")
	}
	r = Repeat(Sym(a), 0, 0)
	if !Match(r, nil) || Match(r, []Symbol{a}) {
		t.Error("a{0,0} should be ε")
	}
	if !Deterministic(Repeat(Sym(a), 0, 3)) {
		t.Error("a{0,3} in nested-option form should be deterministic")
	}
}

func TestRepeatPanics(t *testing.T) {
	tab := NewTable()
	a := Sym(tab.Intern("a"))
	for _, bounds := range [][2]int{{-1, 2}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Repeat%v did not panic", bounds)
				}
			}()
			Repeat(a, bounds[0], bounds[1])
		}()
	}
}

func TestParsePaperExamples(t *testing.T) {
	tab := NewTable()
	// The three newspaper content models from the paper.
	for _, src := range []string{
		"title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"title.date.temp.(TimeOut|exhibit*)",
		"title.date.temp.exhibit*",
		"(exhibit|performance)*",
		"title.(Get_Date|date)",
	} {
		r := mustParse(t, tab, src)
		round := mustParse(t, tab, r.String(tab))
		if !r.Equal(round) {
			t.Errorf("%q: print/parse round trip changed expression: %q", src, r.String(tab))
		}
	}
}

func TestParseMatchesSemantics(t *testing.T) {
	tab := NewTable()
	r := mustParse(t, tab, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	accept := [][]string{
		{"title", "date", "Get_Temp", "TimeOut"},
		{"title", "date", "temp", "TimeOut"},
		{"title", "date", "temp"},
		{"title", "date", "temp", "exhibit", "exhibit"},
	}
	reject := [][]string{
		{"title", "date"},
		{"date", "title", "temp"},
		{"title", "date", "temp", "TimeOut", "TimeOut"},
		{"title", "date", "temp", "exhibit", "performance"},
	}
	for _, w := range accept {
		if !Match(r, word(tab, w...)) {
			t.Errorf("should accept %v", w)
		}
	}
	for _, w := range reject {
		if Match(r, word(tab, w...)) {
			t.Errorf("should reject %v", w)
		}
	}
}

func TestParseSugarAndClasses(t *testing.T) {
	tab := NewTable()
	a, b, c := sym(tab, "a"), sym(tab, "b"), sym(tab, "c")

	r := mustParse(t, tab, "a+")
	if !Match(r, []Symbol{a}) || !Match(r, []Symbol{a, a}) || Match(r, nil) {
		t.Error("a+ semantics wrong")
	}
	r = mustParse(t, tab, "a?")
	if !Match(r, nil) || !Match(r, []Symbol{a}) || Match(r, []Symbol{a, a}) {
		t.Error("a? semantics wrong")
	}
	r = mustParse(t, tab, "()")
	if r != Empty() {
		t.Error("() should parse to ε")
	}
	r = mustParse(t, tab, "~")
	if !Match(r, []Symbol{c}) || Match(r, nil) {
		t.Error("~ semantics wrong")
	}
	r = mustParse(t, tab, "~!(a|b)")
	if Match(r, []Symbol{a}) || Match(r, []Symbol{b}) || !Match(r, []Symbol{c}) {
		t.Error("~!(a|b) semantics wrong")
	}
	r = mustParse(t, tab, "a{2,}")
	if Match(r, []Symbol{a}) || !Match(r, []Symbol{a, a, a}) {
		t.Error("a{2,} semantics wrong")
	}
	r = mustParse(t, tab, "a{2}")
	if !Match(r, []Symbol{a, a}) || Match(r, []Symbol{a, a, a}) {
		t.Error("a{2} semantics wrong")
	}
}

func TestParseErrors(t *testing.T) {
	tab := NewTable()
	for _, src := range []string{
		"", "(", "a|", "a..b", "a)", "a{", "a{2", "a{3,2}", "a{x}",
		"~!(a", "~!()", "*", "|a", "a b", "a{2,3", "a%",
	} {
		if _, err := Parse(tab, src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestKeyCanonicalization(t *testing.T) {
	tab := NewTable()
	a, b := Sym(sym(tab, "a")), Sym(sym(tab, "b"))
	if Alt(a, b).Key() != Alt(b, a).Key() {
		t.Error("Alt key not order-insensitive")
	}
	if Concat(a, b).Key() == Concat(b, a).Key() {
		t.Error("Concat key wrongly order-insensitive")
	}
	if !Alt(a, b).Equal(Alt(b, a)) {
		t.Error("Equal should hold modulo Alt order")
	}
}

func TestNullable(t *testing.T) {
	tab := NewTable()
	cases := map[string]bool{
		"a*":       true,
		"a":        false,
		"a|()":     true,
		"a.b*":     false,
		"a*.b*":    true,
		"(a|b)*.c": false,
		"()":       true,
	}
	for src, want := range cases {
		if got := mustParse(t, tab, src).Nullable(); got != want {
			t.Errorf("Nullable(%q) = %v want %v", src, got, want)
		}
	}
}

func TestDeriveBasics(t *testing.T) {
	tab := NewTable()
	a, b := sym(tab, "a"), sym(tab, "b")
	r := mustParse(t, tab, "a.b|a.a")
	d := Derive(r, a)
	if !Match(d, []Symbol{b}) || !Match(d, []Symbol{a}) || Match(d, nil) {
		t.Errorf("derivative wrong: %s", d.String(tab))
	}
	if !Derive(r, b).IsNever() {
		t.Error("derivative by impossible symbol should be ∅")
	}
	if !Derive(Star(Sym(a)), a).Nullable() {
		t.Error("d_a(a*) should be nullable")
	}
}

func TestDeriverMemoization(t *testing.T) {
	tab := NewTable()
	a := sym(tab, "a")
	r := mustParse(t, tab, "(a.a)*")
	d := NewDeriver()
	x := d.Derive(r, a)
	y := d.Derive(r, a)
	if x != y {
		t.Error("memoized derivative not reused")
	}
	if d.States() != 1 {
		t.Errorf("States = %d want 1", d.States())
	}
	cur := r
	for i := 0; i < 10; i++ {
		cur = d.Derive(cur, a)
	}
	if d.States() > 3 {
		t.Errorf("derivative state explosion on (aa)*: %d states", d.States())
	}
}

func TestGlushkovPositions(t *testing.T) {
	tab := NewTable()
	r := mustParse(t, tab, "a.(b|c)*")
	info := Positions(r)
	if len(info.Classes) != 3 {
		t.Fatalf("positions = %d want 3", len(info.Classes))
	}
	if len(info.First) != 1 || info.First[0] != 1 {
		t.Errorf("First = %v want [1]", info.First)
	}
	// a can be last (star may be empty), and so can b and c.
	if len(info.Last) != 3 {
		t.Errorf("Last = %v want all three positions", info.Last)
	}
	// b and c are followed by b and c.
	if len(info.Follow[1]) != 2 || len(info.Follow[2]) != 2 {
		t.Errorf("Follow sets of star body wrong: %v", info.Follow)
	}
	if info.Nullable {
		t.Error("a.(b|c)* should not be nullable")
	}
}

func TestDeterministic(t *testing.T) {
	tab := NewTable()
	cases := map[string]bool{
		"title.date.(Get_Temp|temp).(TimeOut|exhibit*)": true,
		"title.date.temp.exhibit*":                      true,
		"(a|b)*.c":                                      true,
		"a*.a":                                          false, // classic one-ambiguous
		"(a.b)|(a.c)":                                   false,
		"a?.a":                                          false,
		"~.a":                                           true,  // sequential: no competing positions
		"(~|a).b":                                       false, // wildcard competes with a
		"a.~":                                           true,
		"~!(a).a":                                       true,
	}
	for src, want := range cases {
		if got := Deterministic(mustParse(t, tab, src)); got != want {
			t.Errorf("Deterministic(%q) = %v want %v", src, got, want)
		}
	}
}

func TestAmbiguities(t *testing.T) {
	tab := NewTable()
	if got := Ambiguities(mustParse(t, tab, "a.b")); len(got) != 0 {
		t.Errorf("deterministic expression reported ambiguities: %v", got)
	}
	if got := Ambiguities(mustParse(t, tab, "a*.a")); len(got) == 0 {
		t.Error("ambiguous expression reported no ambiguities")
	}
}

func TestAlphabet(t *testing.T) {
	tab := NewTable()
	r := mustParse(t, tab, "a.(b|a)*.~!(c)")
	got := r.Alphabet(nil)
	if len(got) != 3 {
		t.Errorf("Alphabet = %v want 3 distinct symbols", got)
	}
	if !r.HasWildcard() {
		t.Error("HasWildcard should be true")
	}
	if mustParse(t, tab, "a.b").HasWildcard() {
		t.Error("HasWildcard false positive")
	}
}

func TestSampler(t *testing.T) {
	tab := NewTable()
	r := mustParse(t, tab, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	s := NewSampler(rand.New(rand.NewSource(42)))
	for i := 0; i < 200; i++ {
		w, ok := s.Sample(r)
		if !ok {
			t.Fatal("Sample failed on non-empty language")
		}
		if !Match(r, w) {
			t.Fatalf("sampled word not in language: %v", w)
		}
	}
	if _, ok := s.Sample(Never()); ok {
		t.Error("Sample of ∅ should fail")
	}
	// ε-only language samples the empty word.
	if w, ok := s.Sample(Empty()); !ok || len(w) != 0 {
		t.Error("Sample of ε wrong")
	}
}

func TestSamplerWildcardNeedsFresh(t *testing.T) {
	tab := NewTable()
	s := NewSampler(rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Error("sampling wildcard without Fresh did not panic")
		}
	}()
	s.Sample(mustParse(t, tab, "~"))
}

func TestSamplerWildcardFresh(t *testing.T) {
	tab := NewTable()
	a := sym(tab, "a")
	s := NewSampler(rand.New(rand.NewSource(1)))
	s.Fresh = func(c Class) Symbol {
		for _, cand := range tab.Symbols() {
			if c.Contains(cand) {
				return cand
			}
		}
		return tab.Intern("fresh")
	}
	w, ok := s.Sample(mustParse(t, tab, "~!(a)"))
	if !ok || len(w) != 1 || w[0] == a {
		t.Errorf("wildcard sample wrong: %v %v", w, ok)
	}
}

func TestShortestWord(t *testing.T) {
	tab := NewTable()
	cases := map[string]int{
		"a.b.c":      3,
		"a*":         0,
		"a|b.c":      1,
		"(a.b){2,5}": 4,
		"a.(b|())":   1,
	}
	for src, want := range cases {
		w, ok := ShortestWord(mustParse(t, tab, src))
		if !ok {
			t.Errorf("ShortestWord(%q) failed", src)
			continue
		}
		if len(w) != want {
			t.Errorf("ShortestWord(%q) len = %d want %d", src, len(w), want)
		}
		if !Match(mustParse(t, tab, src), w) {
			t.Errorf("ShortestWord(%q) = %v not in language", src, w)
		}
	}
	if _, ok := ShortestWord(Never()); ok {
		t.Error("ShortestWord(∅) should fail")
	}
}

func TestSize(t *testing.T) {
	tab := NewTable()
	r := mustParse(t, tab, "a.(b|c)*")
	if got := r.Size(); got != 6 {
		t.Errorf("Size = %d want 6 (concat, a, star, alt, b, c)", got)
	}
}

func TestStringRendersParseable(t *testing.T) {
	tab := NewTable()
	for _, src := range []string{
		"a", "a.b", "a|b", "(a|b).c", "a.b*", "(a.b)*", "a?", "~", "~!(a|b)",
		"a{2,4}", "((a|b).c)*|d",
	} {
		r := mustParse(t, tab, src)
		s := r.String(tab)
		r2, err := Parse(tab, s)
		if err != nil {
			t.Errorf("String(%q) = %q not parseable: %v", src, s, err)
			continue
		}
		if !r.Equal(r2) && !strings.Contains(src, "{") {
			// Repeat desugars, so only require language-level agreement there;
			// structural equality is expected everywhere else.
			t.Errorf("round trip of %q changed structure: %q", src, s)
		}
	}
}
