package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"axml/internal/doc"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// Disk backend defaults.
const (
	// DefaultHotCache is the decoded-document budget of the hot tier.
	DefaultHotCache = 256
	// DefaultShards is the shard-directory count.
	DefaultShards = 16
	// MaxShards bounds the shard count (shard ids render as two hex
	// digits).
	MaxShards = 256
)

// indexFileName is the per-shard function-index file.
const indexFileName = "index.json"

// DiskOptions configures OpenDisk.
type DiskOptions struct {
	// HotCache is the decoded-document budget (default DefaultHotCache).
	HotCache int
	// Shards is the shard-directory count (default DefaultShards, max
	// MaxShards). Reopening a directory with a different count is safe:
	// existing documents stay in their recorded shard; only new names
	// hash over the configured count.
	Shards int
	// Metrics, when non-nil, instruments the store (see NewMetrics).
	Metrics *Metrics
}

// Disk is the disk-sharded DocStore: every document lives as
// <shard-dir>/<name>.xml (written atomically via wal.WriteFileAtomic, so a
// crash never leaves a torn document), where the shard directory is chosen
// by a hash of the document name. Reads are tiered: an LRU hot cache holds
// decoded doc.Node trees up to a budget, misses lazily fault the file in
// and parse it on demand — the resident set is the hot cache plus the name
// table, not the corpus.
//
// Each shard also carries an index.json recording, per document, its
// distinct function labels and the file's (size, mtime) at the time of the
// write. The function index answers DocsWithFunction without touching any
// document file; the (size, mtime) pair makes the index self-healing — a
// document file the index disagrees with (or does not know) is re-parsed at
// Open and its record rebuilt.
//
// Index writes are debounced: a mutation marks its shard dirty instead of
// rewriting index.json inline (the per-mutation rewrite dominated Put
// latency), and dirty shards are flushed on Close, Scan, or an explicit
// Flush. Self-healing is what makes the deferral safe — a crash before the
// flush leaves the same detectable mismatch as a crash between the two
// writes always could, just for more than one document.
type Disk struct {
	dir     string
	shards  int
	hotCap  int
	metrics *Metrics

	mu     sync.Mutex
	closed bool
	docs   map[string]*diskDoc
	byFunc map[string]map[string]struct{}
	hot    *lruCache
	dirty  map[int]bool // shard ids with a deferred index.json rewrite

	stats DiskStats
}

// diskDoc is the in-memory index record of one stored document.
type diskDoc struct {
	shard int
	funcs []string
	size  int64
	mtime int64 // UnixNano
}

// indexEntry is diskDoc's on-disk form inside a shard's index.json.
type indexEntry struct {
	Funcs []string `json:"funcs,omitempty"`
	Size  int64    `json:"size"`
	Mtime int64    `json:"mtime_ns"`
}

// OpenDisk opens (or creates) a disk-sharded store rooted at dir, scanning
// every shard directory to build the name table and repairing index entries
// that disagree with their document files (crash between the document write
// and the index write).
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	hotCap := opts.HotCache
	if hotCap <= 0 {
		hotCap = DefaultHotCache
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > MaxShards {
		return nil, fmt.Errorf("store: -shards %d exceeds the maximum %d", shards, MaxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:     dir,
		shards:  shards,
		hotCap:  hotCap,
		metrics: opts.Metrics,
		docs:    make(map[string]*diskDoc),
		byFunc:  make(map[string]map[string]struct{}),
		hot:     newLRUCache(hotCap),
		dirty:   make(map[int]bool),
	}
	d.stats.Shards = shards
	d.stats.HotCacheCap = hotCap

	// Load every existing shard directory, including ids beyond the
	// configured count (a reopen with fewer shards must not lose
	// documents), then make sure the configured directories exist.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seen := make(map[int]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(e.Name(), "shard-%02x", &id); err != nil || shardDirName(id) != e.Name() {
			continue
		}
		if err := d.loadShard(id); err != nil {
			return nil, err
		}
		seen[id] = true
	}
	for i := 0; i < shards; i++ {
		if seen[i] {
			continue
		}
		if err := os.MkdirAll(d.shardDir(i), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	d.metrics.registerDisk(d)
	return d, nil
}

func shardDirName(id int) string { return fmt.Sprintf("shard-%02x", id) }

func (d *Disk) shardDir(id int) string { return filepath.Join(d.dir, shardDirName(id)) }

func (d *Disk) docPath(shard int, name string) string {
	return filepath.Join(d.shardDir(shard), name+".xml")
}

// shardOf hashes a document name onto a configured shard.
func (d *Disk) shardOf(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(d.shards))
}

// loadShard reads one shard directory into the name table: the index.json
// entries are trusted when their (size, mtime) matches the document file,
// re-parsed otherwise, and dropped when the file is gone. Crashed atomic
// temp files are swept. A repaired or pruned index is rewritten.
func (d *Disk) loadShard(id int) error {
	sd := d.shardDir(id)
	idx := make(map[string]indexEntry)
	if data, err := os.ReadFile(filepath.Join(sd, indexFileName)); err == nil {
		// A torn index would only exist after a crash of the non-atomic
		// pre-WriteFileAtomic era; unmarshal failures degrade to a full
		// re-parse of the shard rather than refusing to open.
		_ = json.Unmarshal(data, &idx)
	}
	entries, err := os.ReadDir(sd)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dirty := false
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), wal.TempPrefix) {
			os.Remove(filepath.Join(sd, e.Name())) // crashed atomic write
			continue
		}
		base, isXML := strings.CutSuffix(e.Name(), ".xml")
		if !isXML || ValidateDocName(base) != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		ent, ok := idx[base]
		if !ok || ent.Size != info.Size() || ent.Mtime != info.ModTime().UnixNano() {
			// The index missed this write: rebuild its record from the
			// document file (the only parse Open ever does).
			data, err := os.ReadFile(filepath.Join(sd, e.Name()))
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			n, err := xmlio.ParseString(string(data))
			if err != nil {
				// Atomic writes mean a torn file is impossible; this is
				// at-rest damage. Refuse to silently drop state.
				return fmt.Errorf("store: shard %s: parsing %s: %w", shardDirName(id), e.Name(), err)
			}
			ent = indexEntry{Funcs: FuncNames(n), Size: info.Size(), Mtime: info.ModTime().UnixNano()}
			idx[base] = ent
			dirty = true
			d.stats.IndexRepairs++
			d.metrics.observeIndexRepair()
		}
		present[base] = true
		d.docs[base] = &diskDoc{shard: id, funcs: ent.Funcs, size: ent.Size, mtime: ent.Mtime}
		d.addToFuncIndex(base, ent.Funcs)
	}
	for base := range idx {
		if !present[base] {
			delete(idx, base)
			dirty = true // index entry for a missing file (crash mid-delete)
		}
	}
	if dirty {
		if err := d.writeShardIndex(id, idx); err != nil {
			return err
		}
	}
	return nil
}

func (d *Disk) addToFuncIndex(name string, funcs []string) {
	for _, fn := range funcs {
		docs := d.byFunc[fn]
		if docs == nil {
			docs = make(map[string]struct{})
			d.byFunc[fn] = docs
		}
		docs[name] = struct{}{}
	}
}

func (d *Disk) dropFromFuncIndex(name string, funcs []string) {
	for _, fn := range funcs {
		if docs := d.byFunc[fn]; docs != nil {
			delete(docs, name)
			if len(docs) == 0 {
				delete(d.byFunc, fn)
			}
		}
	}
}

// writeShardIndex persists one shard's index.json atomically from the
// in-memory name table. Caller holds d.mu (or is inside Open).
func (d *Disk) writeShardIndex(id int, idx map[string]indexEntry) error {
	if idx == nil {
		idx = make(map[string]indexEntry)
		for name, dd := range d.docs {
			if dd.shard == id {
				idx[name] = indexEntry{Funcs: dd.funcs, Size: dd.size, Mtime: dd.mtime}
			}
		}
	}
	data, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("store: shard %s index: %w", shardDirName(id), err)
	}
	if err := wal.WriteFileAtomic(filepath.Join(d.shardDir(id), indexFileName), data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// commitLocked writes a document file and its shard index, updates the name
// table and function index, and installs the node in the hot cache. Caller
// holds d.mu; c is owned by the store.
func (d *Disk) commitLocked(name string, shard int, c *doc.Node) error {
	s, err := xmlio.String(c)
	if err != nil {
		return fmt.Errorf("store: serializing %q: %w", name, err)
	}
	path := d.docPath(shard, name)
	if err := wal.WriteFileAtomic(path, []byte(s), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	old := d.docs[name]
	if old != nil {
		d.dropFromFuncIndex(name, old.funcs)
	}
	funcs := FuncNames(c)
	d.docs[name] = &diskDoc{shard: shard, funcs: funcs, size: info.Size(), mtime: info.ModTime().UnixNano()}
	d.addToFuncIndex(name, funcs)
	d.evicted(d.hot.add(name, c))
	// The index rewrite is deferred to the next flush point: until then the
	// on-disk index lags this write by exactly the (size, mtime) mismatch
	// the next Open knows how to repair.
	d.dirty[shard] = true
	return nil
}

func (d *Disk) evicted(n int) {
	if n > 0 {
		d.stats.Evictions += uint64(n)
		d.metrics.observeEvictions(n)
	}
}

// Put stores a clone of n under name, writing through to the shard.
func (d *Disk) Put(name string, n *doc.Node) error {
	if err := ValidateDocName(name); err != nil {
		return err
	}
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: put %q: %w", name, ErrClosed)
	}
	shard := d.shardOf(name)
	if old := d.docs[name]; old != nil {
		shard = old.shard // never strand a file under its old shard
	}
	if err := d.commitLocked(name, shard, n.Clone()); err != nil {
		return err
	}
	d.metrics.observePut(time.Since(start))
	return nil
}

// fetchLocked returns the named document without cloning: from the hot
// cache on a hit, else faulted from disk, parsed, and cached. Caller holds
// d.mu; the returned node is store-owned.
func (d *Disk) fetchLocked(name string) (*doc.Node, error) {
	dd, ok := d.docs[name]
	if !ok {
		return nil, fmt.Errorf("store: no document %q: %w", name, ErrNotFound)
	}
	if n, ok := d.hot.get(name); ok {
		d.stats.Hits++
		d.metrics.observeHit()
		return n, nil
	}
	start := time.Now()
	data, err := os.ReadFile(d.docPath(dd.shard, name))
	if err != nil {
		return nil, fmt.Errorf("store: faulting %q: %w", name, err)
	}
	n, err := xmlio.ParseString(string(data))
	if err != nil {
		return nil, fmt.Errorf("store: faulting %q: %w", name, err)
	}
	d.stats.Faults++
	d.metrics.observeFault(time.Since(start))
	d.evicted(d.hot.add(name, n))
	return n, nil
}

// Get returns a clone of the named document, faulting it from its shard if
// it is not hot. I/O or at-rest parse damage reports as a miss (Get has no
// error channel); Update on the same name surfaces the underlying error.
func (d *Disk) Get(name string) (*doc.Node, bool) {
	start := time.Now()
	d.mu.Lock()
	n, err := d.fetchLocked(name)
	d.mu.Unlock()
	if err != nil {
		return nil, false
	}
	d.metrics.observeGet(time.Since(start))
	return n.Clone(), true
}

// Update applies fn to a clone of the stored document (faulted in if cold)
// and commits the result atomically under the store lock.
func (d *Disk) Update(name string, fn func(*doc.Node) (*doc.Node, error)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: update %q: %w", name, ErrClosed)
	}
	cur, err := d.fetchLocked(name)
	if err != nil {
		return err
	}
	next, err := fn(cur.Clone())
	if err != nil {
		return err
	}
	// next is store-owned from here on (same contract as Repository.Update).
	return d.commitLocked(name, d.docs[name].shard, next)
}

// Delete removes a document and its index record; absent names are a no-op.
func (d *Disk) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: delete %q: %w", name, ErrClosed)
	}
	dd, ok := d.docs[name]
	if !ok {
		return nil
	}
	if err := os.Remove(d.docPath(dd.shard, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	delete(d.docs, name)
	d.dropFromFuncIndex(name, dd.funcs)
	d.hot.remove(name)
	d.metrics.observeDelete()
	// Deferred like commitLocked's index write: a stale entry for a missing
	// file is pruned by the next Open if the flush never happens.
	d.dirty[dd.shard] = true
	return nil
}

// flushLocked rewrites every dirty shard's index.json from the in-memory
// name table. Caller holds d.mu. A failed shard stays dirty for the next
// flush attempt.
func (d *Disk) flushLocked() error {
	for id := range d.dirty {
		if err := d.writeShardIndex(id, nil); err != nil {
			return err
		}
		delete(d.dirty, id)
		d.stats.IndexFlushes++
		d.metrics.observeIndexFlush()
	}
	return nil
}

// Flush persists every deferred shard-index rewrite. Mutations mark shards
// dirty rather than rewriting index.json inline; Close and Scan flush
// implicitly, and callers that want a durable index at a specific moment
// call Flush directly.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flushLocked()
}

// Scan lists up to limit names lexicographically after the cursor — from
// the name table, touching no document files. Scan is a flush point: an
// enumeration is how external tooling decides what exists, so the on-disk
// index is brought up to date first.
func (d *Disk) Scan(after string, limit int) ([]string, bool, error) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	d.mu.Lock()
	if err := d.flushLocked(); err != nil {
		d.mu.Unlock()
		return nil, false, err
	}
	names := make([]string, 0, len(d.docs))
	for name := range d.docs {
		if name > after {
			names = append(names, name)
		}
	}
	d.mu.Unlock()
	sort.Strings(names)
	more := len(names) > limit
	if more {
		names = names[:limit]
	}
	return names, more, nil
}

// Names lists every stored name, sorted.
func (d *Disk) Names() []string {
	d.mu.Lock()
	out := make([]string, 0, len(d.docs))
	for name := range d.docs {
		out = append(out, name)
	}
	d.mu.Unlock()
	sort.Strings(out)
	return out
}

// Len reports the number of stored documents.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.docs)
}

// DocsWithFunction answers from the persistent function index: no document
// file is opened or parsed.
func (d *Disk) DocsWithFunction(fn string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.metrics.observeIndexQuery()
	docs := d.byFunc[fn]
	out := make([]string, 0, len(docs))
	for name := range docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ShardSizes reports the per-shard document counts, keyed by shard id.
func (d *Disk) ShardSizes() map[int]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	sizes := make(map[int]int, d.shards)
	for i := 0; i < d.shards; i++ {
		sizes[i] = 0
	}
	for _, dd := range d.docs {
		sizes[dd.shard]++
	}
	return sizes
}

// Stats reports the disk backend counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	ds := d.stats
	ds.HotCached = d.hot.len()
	return Stats{
		Backend:   BackendDisk,
		Documents: len(d.docs),
		Functions: len(d.byFunc),
		Disk:      &ds,
	}
}

// Close flushes any deferred shard-index rewrites and fences further
// mutations; reads keep working. Document bytes are always already on disk
// (every mutation writes the file through) — only the index debounce has
// state to flush. Idempotent.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.flushLocked()
	d.closed = true
	return err
}

// lruCache is a doubly-linked LRU of decoded documents (front = most
// recent). Not safe for concurrent use; Disk guards it with d.mu.
type lruCache struct {
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	name string
	node *doc.Node
}

func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(name string) (*doc.Node, bool) {
	el, ok := c.items[name]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).node, true
}

// add installs (or refreshes) an entry and returns how many entries were
// evicted to respect the budget.
func (c *lruCache) add(name string, n *doc.Node) int {
	if el, ok := c.items[name]; ok {
		el.Value.(*lruEntry).node = n
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[name] = c.ll.PushFront(&lruEntry{name: name, node: n})
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).name)
		evicted++
	}
	return evicted
}

func (c *lruCache) remove(name string) {
	if el, ok := c.items[name]; ok {
		c.ll.Remove(el)
		delete(c.items, name)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
