// Compiled-enforcement caching. Safe rewriting is the expensive half of the
// Schema Enforcement module — Compile plus the per-content-model complement,
// product and marking — yet it depends only on the schema pair, the depth
// bound and the mode, never on the document being exchanged. A production
// peer therefore pays the analysis once per distinct schema pair and reuses
// it across every message:
//
//   - CompiledCache deduplicates Compile itself: one *Compiled per schema
//     pair, keyed by content fingerprint so that re-parsed but identical
//     exchange schemas (the /exchange endpoint creates one per request) hit;
//   - each *Compiled carries a bounded word-verdict memo (wordcache.go) that
//     amortizes the safe/possible products and lazy derivative exploration
//     across repeated words.
//
// Both layers are safe for concurrent use; in-flight compilations are
// single-flighted so a thundering herd of identical requests performs one
// analysis.
package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"axml/internal/schema"
	"axml/internal/telemetry"
)

// DefaultCompiledCacheSize bounds how many distinct schema pairs a
// CompiledCache keeps compiled before evicting least-recently-used entries.
const DefaultCompiledCacheSize = 64

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64 // for CompiledCache: exactly the number of Compile runs
	Evictions uint64
	Size      int
}

func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d size=%d", s.Hits, s.Misses, s.Evictions, s.Size)
}

// CompiledCache is an LRU cache of *Compiled keyed by schema-pair identity.
// The zero value is not usable; create one with NewCompiledCache. A nil
// *CompiledCache degrades to uncached compilation, so callers can thread an
// optional cache without branching.
type CompiledCache struct {
	// WordCacheCapacity, when non-zero, overrides the word-verdict memo
	// capacity of every Compiled this cache creates (negative disables the
	// memo). Zero keeps DefaultWordCacheSize.
	WordCacheCapacity int

	// mu guards entries/lru/inflight. Hits take only the read lock — the
	// cache sits on every message's path, so parallel requests over cached
	// pairs must not serialize. Counters are atomic for the same reason.
	mu       sync.RWMutex
	capacity int
	entries  map[string]*list.Element // key -> element holding *compiledEntry
	lru      *list.List               // front = most recently used
	inflight map[string]*inflightCompile

	hits, misses, evictions atomic.Uint64

	// instr/compileSeconds are set once by Instrument (before the cache
	// serves traffic) and propagated onto every Compiled this cache
	// produces, so word-level analyses report into the same registry.
	instr          *Instruments
	compileSeconds *telemetry.Histogram
}

type compiledEntry struct {
	key string
	c   *Compiled
}

type inflightCompile struct {
	done chan struct{}
	c    *Compiled // nil if the compile panicked
}

// NewCompiledCache returns an empty cache bounded to capacity entries;
// capacity <= 0 selects DefaultCompiledCacheSize.
func NewCompiledCache(capacity int) *CompiledCache {
	if capacity <= 0 {
		capacity = DefaultCompiledCacheSize
	}
	return &CompiledCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*inflightCompile),
	}
}

// PairKey computes the cache identity of a (sender, target) schema pair. The
// symbol namespace namespaces the key: fingerprints are table-relative (they
// embed interned symbol ids), so pairs from different namespaces must never
// collide even inside one shared cache. For a target parsed into a
// request-scoped table overlay (the /exchange path), the namespace is the
// root table's identity plus the overlay's extension key — two overlays that
// assigned the same symbols to the same names share cache entries, while any
// divergence in base or interning order keys separately instead of serving a
// stale analysis.
func PairKey(sender, target *schema.Schema) string {
	if sender == nil {
		sender = target
	}
	t := target.Table
	return fmt.Sprintf("%p\x00%s\x00%s\x00%s", t.Root(), t.ExtensionKey(), sender.Fingerprint(), target.Fingerprint())
}

// Get returns the compiled analysis for the schema pair, compiling it at
// most once per distinct pair no matter how many goroutines ask
// concurrently. Compile's panic on mismatched symbol tables propagates to
// every concurrent caller.
func (cc *CompiledCache) Get(sender, target *schema.Schema) *Compiled {
	if cc == nil {
		return Compile(sender, target)
	}
	key := PairKey(sender, target)
	// Fast path: a resident entry is returned under the shared lock. Recency
	// is updated only when the exclusive lock is free — an approximation that
	// keeps concurrent hits from queueing on one mutex; a hot entry that
	// never wins TryLock is by definition being hit constantly and will be
	// re-inserted on the rare miss after eviction.
	cc.mu.RLock()
	el, resident := cc.entries[key]
	var c *Compiled
	if resident {
		c = el.Value.(*compiledEntry).c
	}
	cc.mu.RUnlock()
	if resident {
		cc.hits.Add(1)
		if cc.mu.TryLock() {
			if el, still := cc.entries[key]; still {
				cc.lru.MoveToFront(el)
			}
			cc.mu.Unlock()
		}
		return c
	}
	cc.mu.Lock()
	if el, ok := cc.entries[key]; ok { // raced with another miss
		cc.lru.MoveToFront(el)
		cc.hits.Add(1)
		c := el.Value.(*compiledEntry).c
		cc.mu.Unlock()
		return c
	}
	if fl, ok := cc.inflight[key]; ok {
		cc.mu.Unlock()
		<-fl.done
		if fl.c == nil {
			// The leader panicked; re-run to surface the same panic here.
			return Compile(sender, target)
		}
		return fl.c
	}
	fl := &inflightCompile{done: make(chan struct{})}
	cc.inflight[key] = fl
	cc.misses.Add(1)
	instr, compileSeconds := cc.instr, cc.compileSeconds
	cc.mu.Unlock()

	defer func() {
		close(fl.done)
		cc.mu.Lock()
		delete(cc.inflight, key)
		if fl.c != nil {
			el := cc.lru.PushFront(&compiledEntry{key: key, c: fl.c})
			cc.entries[key] = el
			for cc.lru.Len() > cc.capacity {
				oldest := cc.lru.Back()
				cc.lru.Remove(oldest)
				delete(cc.entries, oldest.Value.(*compiledEntry).key)
				cc.evictions.Add(1)
			}
		}
		cc.mu.Unlock()
	}()
	var t0 time.Time
	if compileSeconds != nil {
		t0 = time.Now()
	}
	c = Compile(sender, target)
	compileSeconds.ObserveSince(t0)
	if cc.WordCacheCapacity != 0 {
		c.SetWordCacheCapacity(cc.WordCacheCapacity)
	}
	if instr != nil {
		c.SetInstruments(instr)
	}
	fl.c = c
	return c
}

// Instrument wires the cache into a telemetry registry: hit/miss/eviction
// and residency series read the live counters at scrape time, compile runs
// are timed into axml_compile_seconds, and every Compiled this cache has
// produced (or produces later) reports its word-level analyses through the
// registry's instruments. Call once, before the cache serves traffic;
// re-instrumenting replaces the scrape callbacks but not handles already
// captured by resident rewriters. A nil cache or registry no-ops.
func (cc *CompiledCache) Instrument(reg *telemetry.Registry) *Instruments {
	if cc == nil || reg == nil {
		return nil
	}
	ins := NewInstruments(reg)
	cc.mu.Lock()
	cc.instr = ins
	cc.compileSeconds = reg.Histogram("axml_compile_seconds", telemetry.DefBuckets)
	for el := cc.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*compiledEntry).c.SetInstruments(ins)
	}
	cc.mu.Unlock()
	reg.CounterFunc("axml_compile_cache_hits_total", func() float64 { return float64(cc.hits.Load()) })
	reg.CounterFunc("axml_compile_cache_misses_total", func() float64 { return float64(cc.misses.Load()) })
	reg.CounterFunc("axml_compile_cache_evictions_total", func() float64 { return float64(cc.evictions.Load()) })
	reg.GaugeFunc("axml_compile_cache_entries", func() float64 { return float64(cc.Len()) })
	reg.CounterFunc("axml_word_cache_hits_total", func() float64 { return float64(cc.WordStats().Hits) })
	reg.CounterFunc("axml_word_cache_misses_total", func() float64 { return float64(cc.WordStats().Misses) })
	reg.CounterFunc("axml_word_cache_evictions_total", func() float64 { return float64(cc.WordStats().Evictions) })
	reg.GaugeFunc("axml_word_cache_entries", func() float64 { return float64(cc.WordStats().Size) })
	return ins
}

// Stats snapshots the compile-level counters. Misses equals the number of
// times Compile actually ran on behalf of this cache.
func (cc *CompiledCache) Stats() CacheStats {
	if cc == nil {
		return CacheStats{}
	}
	cc.mu.RLock()
	size := cc.lru.Len()
	cc.mu.RUnlock()
	return CacheStats{
		Hits:      cc.hits.Load(),
		Misses:    cc.misses.Load(),
		Evictions: cc.evictions.Load(),
		Size:      size,
	}
}

// WordStats aggregates the word-verdict memo counters of every resident
// Compiled.
func (cc *CompiledCache) WordStats() CacheStats {
	if cc == nil {
		return CacheStats{}
	}
	cc.mu.RLock()
	compiled := make([]*Compiled, 0, cc.lru.Len())
	for el := cc.lru.Front(); el != nil; el = el.Next() {
		compiled = append(compiled, el.Value.(*compiledEntry).c)
	}
	cc.mu.RUnlock()
	var total CacheStats
	for _, c := range compiled {
		ws := c.WordCacheStats()
		total.Hits += ws.Hits
		total.Misses += ws.Misses
		total.Evictions += ws.Evictions
		total.Size += ws.Size
	}
	return total
}

// Len reports how many compiled pairs are resident.
func (cc *CompiledCache) Len() int {
	if cc == nil {
		return 0
	}
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.lru.Len()
}

// Purge drops every resident entry (in-flight compilations finish and are
// then dropped by their own cleanup only if still keyed; counters persist).
func (cc *CompiledCache) Purge() {
	if cc == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.entries = make(map[string]*list.Element)
	cc.lru.Init()
}
