package peer

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"axml/internal/core"
	"axml/internal/soap"
	"axml/internal/store"
	"axml/internal/telemetry"
	"axml/internal/telemetry/obslog"
	"axml/internal/wal"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

// Handler exposes the peer over HTTP:
//
//	POST /soap             — SOAP endpoint for the peer's operations, with
//	                         schema enforcement on parameters and results
//	GET  /wsdl             — the peer's WSDL_int description
//	GET  /doc/{name}       — a repository document, as stored (intensional)
//	PUT  /doc/{name}       — store the request body as the named document
//	DELETE /doc/{name}     — remove the named document (idempotent)
//	GET  /docs             — paginated document-name listing
//	                         (?limit=, ?after= cursor), as JSON
//	GET  /docs/by-function/{fn}
//	                       — names of documents embedding a pending call to
//	                         fn, answered from the store's function index
//	                         when the backend maintains one
//	POST /exchange/{name}  — the Figure 1 scenario: the request body is an
//	                         XML Schema_int exchange schema; the response is
//	                         the document rewritten to conform to it.
//	                         ?mode=safe|possible|mixed (default: the peer's)
//	GET  /stats            — enforcement-cache and audit counters, as JSON
//	GET  /healthz          — liveness probe (200 while serving)
//	GET  /readyz           — readiness probe (503 before ready / while
//	                         draining; see Peer.Health)
//
// When Telemetry is set, every route is wrapped with per-handler request
// metrics and spans — an incoming `traceparent` header joins the
// caller's trace — and two further routes appear:
//
//	GET  /metrics          — Prometheus text exposition of the registry
//	                         (OpenMetrics with exemplars when Accept
//	                         asks for application/openmetrics-text)
//	GET  /debug/traces     — the recent-span ring, as JSON
//
// When Flight is set, /debug/slow serves the flight recorder: the
// slowest and all failed requests with span trees, audit events and
// per-stage latency. When Logger is set, every request logs one
// structured line carrying the same trace ID.
func (p *Peer) Handler() http.Handler {
	p.instruments() // wire cache scrape-time series before traffic
	mux := http.NewServeMux()
	hook := p.handlerHook()
	handle := func(pattern, name string, h http.Handler) {
		mux.Handle(pattern, telemetry.InstrumentHandlerWith(p.Telemetry, name, h, hook))
	}
	handle("/soap", "soap", &soap.Server{
		Registry:        p.Services,
		Namespace:       "urn:axml:" + p.Name,
		OnRequest:       p.EnforceInContext,
		OnResponse:      p.EnforceOutContext,
		MaxRequestBytes: p.MaxRequestBytes,
	})
	handle("/wsdl", "wsdl", http.HandlerFunc(p.handleWSDL))
	handle("/doc/", "doc", http.HandlerFunc(p.handleDoc))
	handle("/docs", "docs", http.HandlerFunc(p.handleDocs))
	handle("/docs/by-function/", "docs_by_function", http.HandlerFunc(p.handleDocsByFunction))
	handle("/exchange/", "exchange", http.HandlerFunc(p.handleExchange))
	handle("/stats", "stats", http.HandlerFunc(p.handleStats))
	if p.Replica != nil {
		handle("/replica/", "replica", http.StripPrefix("/replica", p.Replica))
	}
	mux.Handle("/healthz", http.HandlerFunc(p.handleHealthz))
	mux.Handle("/readyz", http.HandlerFunc(p.handleReadyz))
	if p.Telemetry != nil {
		mux.Handle("/metrics", p.Telemetry.MetricsHandler())
		mux.Handle("/debug/traces", p.Telemetry.Tracer().TracesHandler())
	}
	if p.Flight != nil {
		mux.Handle("/debug/slow", p.Flight.Handler())
	}
	return mux
}

// handlerHook builds the per-request completion hook shared by every
// instrumented route: the structured request log line and flight-
// recorder admission. Nil when neither Logger nor Flight is configured,
// keeping the plain path identical to before.
func (p *Peer) handlerHook() *telemetry.HandlerHook {
	if p.Logger == nil && p.Flight == nil {
		return nil
	}
	return &telemetry.HandlerHook{
		Stages: p.Flight != nil,
		OnDone: p.requestDone,
	}
}

// requestDone runs after each instrumented request: one structured log
// line, then flight-recorder admission. Snapshotting the span tree and
// audit trail happens only for admitted requests (slow or failed), so
// the fast path pays one atomic threshold check.
func (p *Peer) requestDone(ctx context.Context, info telemetry.RequestInfo) {
	if l := p.Logger; l != nil {
		lv := obslog.Info
		switch {
		case info.Status >= 500:
			lv = obslog.Error
		case info.Status >= 400:
			lv = obslog.Warn
		}
		l.Log(ctx, lv, "request",
			obslog.F("handler", info.Handler),
			obslog.F("method", info.Method),
			obslog.F("path", info.Path),
			obslog.F("status", info.Status),
			obslog.F("bytes_in", info.RequestBytes),
			obslog.F("bytes_out", info.ResponseBytes),
			obslog.F("duration", info.Duration),
		)
	}
	f := p.Flight
	if f == nil {
		return
	}
	failed := info.Status >= 400
	if !f.Admits(info.Duration, failed) {
		return
	}
	rec := telemetry.FlightRecord{
		TraceID:       info.TraceID,
		Handler:       info.Handler,
		Method:        info.Method,
		Path:          info.Path,
		Status:        info.Status,
		Failed:        failed,
		Start:         info.Start,
		Duration:      info.Duration,
		RequestBytes:  info.RequestBytes,
		ResponseBytes: info.ResponseBytes,
		Stages:        telemetry.StagesFrom(ctx).Seconds(),
	}
	if tr := p.Telemetry.Tracer(); tr != nil && info.TraceID != "" {
		rec.Spans = tr.SpansForTrace(info.TraceID)
		// Invoke wait is the sum of the request's invoke.* spans — the
		// stage breakdown's remote-call share.
		var wait time.Duration
		for _, s := range rec.Spans {
			if strings.HasPrefix(s.Name, "invoke.") {
				wait += s.Duration
			}
		}
		if wait > 0 {
			if rec.Stages == nil {
				rec.Stages = make(map[string]float64, 1)
			}
			rec.Stages["invoke"] = wait.Seconds()
		}
	}
	for _, e := range p.Audit.EventsFor(info.TraceID) {
		rec.Events = append(rec.Events, telemetry.FlightEvent{
			Kind:     e.Kind,
			Func:     e.Func,
			Endpoint: e.Endpoint,
			Attempt:  e.Attempt,
			Err:      e.Err,
		})
	}
	for _, c := range p.Audit.CallsFor(info.TraceID) {
		rec.Calls = append(rec.Calls, telemetry.FlightCall{
			Func:  c.Func,
			Depth: c.Depth,
			Nodes: c.ResultNodes,
		})
	}
	f.Observe(rec)
}

func (p *Peer) handleWSDL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	if err := wsdl.Write(w, p.Description(), nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError emits the document API's uniform JSON error shape:
// {"error": message, "code": status}.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "code": status})
}

// handleDoc serves GET (the stored intensional document), and — so that a
// durable daemon can be driven entirely over HTTP — PUT (store the request
// body as the named document) and DELETE. With a durability layer installed
// a 2xx answer means the mutation is journaled: a WAL append failure surfaces
// as 500 and the repository is unchanged. Errors are JSON {error, code}.
func (p *Peer) handleDoc(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/doc/")
	if r.Method == http.MethodPut || r.Method == http.MethodDelete {
		if msg, refused := p.refuseWrites(); refused {
			// 503 + Retry-After is the one guard shared by the two
			// cases that must reject writes: a draining peer (the store
			// is about to close under graceful shutdown) and a
			// replication follower (the apply loop owns the store).
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, msg)
			return
		}
	}
	switch r.Method {
	case http.MethodGet:
		d, ok := p.Repo.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no document %q", name))
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		// WriteTo serializes straight into the response through a pooled
		// buffer — no per-request document-sized intermediate.
		_ = xmlio.WriteTo(w, d)
	case http.MethodPut:
		if err := ValidateDocName(name); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		body := p.limitBody(w, r)
		d, err := xmlio.Parse(body)
		if err != nil {
			writeError(w, body.errorStatus(err), err.Error())
			return
		}
		if err := p.Repo.Put(name, d); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := p.Repo.Delete(name); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET, PUT or DELETE only")
	}
}

// docsPageLimit bounds one /docs page; requests above it are clamped.
const docsPageLimit = 1000

// handleDocs lists stored document names as one JSON page:
//
//	GET /docs?limit=100&after=<cursor>
//
// The response carries the page ("documents"), the total store size
// ("total") and, when further names exist, a "next" cursor — the last name
// of the page, to be passed back as ?after=.
func (p *Peer) handleDocs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	limit := store.DefaultScanLimit
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("limit must be a positive integer, got %q", s))
			return
		}
		limit = min(n, docsPageLimit)
	}
	after := r.URL.Query().Get("after")
	names, more, err := p.Repo.Scan(after, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := map[string]any{
		"documents": names,
		"count":     len(names),
		"total":     p.Repo.Len(),
	}
	if more && len(names) > 0 {
		resp["next"] = names[len(names)-1]
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleDocsByFunction answers "which documents hold a pending call to this
// function" — from the store's function index when the backend maintains
// one (no document is parsed), by walking documents otherwise. The
// "indexed" field reports which path served the answer.
func (p *Peer) handleDocsByFunction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	fname := strings.TrimPrefix(r.URL.Path, "/docs/by-function/")
	if fname == "" || strings.Contains(fname, "/") {
		writeError(w, http.StatusBadRequest, "want /docs/by-function/{function}")
		return
	}
	fi, indexed := p.Repo.(store.FunctionIndex)
	var names []string
	if indexed {
		var err error
		if names, err = fi.DocsWithFunction(fname); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else {
		for _, name := range p.Repo.Names() {
			d, ok := p.Repo.Get(name)
			if !ok {
				continue // deleted between Names and Get
			}
			for _, fn := range store.FuncNames(d) {
				if fn == fname {
					names = append(names, name)
					break
				}
			}
		}
	}
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"function":  fname,
		"documents": names,
		"count":     len(names),
		"indexed":   indexed,
	})
}

func (p *Peer) handleExchange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/exchange/")
	mode := p.Mode
	switch r.URL.Query().Get("mode") {
	case "safe":
		mode = core.Safe
	case "possible":
		mode = core.Possible
	case "mixed":
		mode = core.Mixed
	case "":
	default:
		http.Error(w, "mode must be safe, possible or mixed", http.StatusBadRequest)
		return
	}
	// The exchange schema is parsed into a request-scoped *overlay* of the
	// peer's table: shared symbols resolve identically (so the rewriter can
	// relate the two schemas and the enforcement cache still hits on repeated
	// schemas), while labels this peer has never seen intern into the
	// throwaway overlay — N distinct hostile schemas leave the shared table,
	// and therefore peer memory, untouched. The body is capped like every
	// other write path.
	st := telemetry.StagesFrom(r.Context())
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	body := p.limitBody(w, r)
	exchange, err := xsdint.Parse(body, xsdint.Options{Table: p.Schema.Table.Overlay()})
	if st != nil {
		st.Set(telemetry.StageParse, time.Since(t0))
	}
	if err != nil {
		http.Error(w, err.Error(), body.errorStatus(err))
		return
	}
	if p.Streaming {
		sw := &xmlResponseWriter{w: w}
		res, err := p.SendDocumentStream(r.Context(), name, exchange, mode, sw)
		if err != nil {
			if sw.wrote || (res != nil && res.BytesWritten > 0) {
				// The status line and a document prefix are already on the
				// wire; the only honest signal left is killing the connection.
				panic(http.ErrAbortHandler)
			}
			http.Error(w, err.Error(), exchangeErrorStatus(err))
		}
		return
	}
	out, err := p.SendDocumentContext(r.Context(), name, exchange, mode)
	if err != nil {
		http.Error(w, err.Error(), exchangeErrorStatus(err))
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	if st != nil {
		t0 = time.Now()
	}
	_ = xmlio.WriteTo(w, out)
	if st != nil {
		st.Set(telemetry.StageSerialize, time.Since(t0))
	}
}

func exchangeErrorStatus(err error) int {
	if errors.Is(err, store.ErrNotFound) {
		return http.StatusNotFound
	}
	return http.StatusUnprocessableEntity
}

// xmlResponseWriter defers the response headers of a streamed exchange until
// the first output byte: enforcement failures that occur before anything was
// flushed still produce a clean error status, while the first flushed byte
// commits the 200 and the XML content type.
type xmlResponseWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (x *xmlResponseWriter) Write(p []byte) (int, error) {
	if !x.wrote {
		x.wrote = true
		x.w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	}
	return x.w.Write(p)
}

// handleStats reports the enforcement cache's effectiveness: compile-cache
// hits and misses (misses == core.Compile runs since start), the aggregated
// word-verdict memo counters, and the invocation audit size. With Telemetry
// configured the cache numbers are read back from the registry's
// axml_compile_cache_* / axml_word_cache_* series — the registry is the
// single source of truth and /stats is a JSON view of it (see DESIGN.md §8
// for the field-to-series mapping); the JSON shape is unchanged either way,
// except for a "telemetry" flag reporting which source served the numbers.
// cappedBody is a request body behind http.MaxBytesReader that remembers
// whether the cap tripped: parsers in the read path (xsdint, xml.Decoder)
// do not all preserve the *http.MaxBytesError through their error wrapping,
// so the 413-vs-400 decision cannot rely on errors.As alone.
type cappedBody struct {
	r       io.Reader
	tripped bool
}

func (c *cappedBody) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			c.tripped = true
		}
	}
	return n, err
}

// errorStatus maps a body-read/parse error to a status: 413 when the body
// cap tripped, 400 for everything else.
func (c *cappedBody) errorStatus(err error) int {
	var tooBig *http.MaxBytesError
	if c.tripped || errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// limitBody wraps a request body with the peer's MaxRequestBytes cap — the
// same discipline the SOAP endpoint applies: 0 selects the SOAP default,
// negative disables the limit.
func (p *Peer) limitBody(w http.ResponseWriter, r *http.Request) *cappedBody {
	limit := p.MaxRequestBytes
	if limit == 0 {
		limit = soap.DefaultMaxRequestBytes
	}
	if limit <= 0 {
		return &cappedBody{r: r.Body}
	}
	return &cappedBody{r: http.MaxBytesReader(w, r.Body, limit)}
}

func (p *Peer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	compiled := p.Enforcement.Stats()
	words := p.Enforcement.WordStats()
	if reg := p.Telemetry; reg != nil && p.instruments() != nil {
		compiled = registryCacheStats(reg, "axml_compile_cache", compiled)
		words = registryCacheStats(reg, "axml_word_cache", words)
	}
	storeStats := p.Repo.Stats()
	if p.Durable != nil {
		// Legacy wiring points Repo at the embedded in-memory layer
		// (p.Repo = d.Repository); the durability wrapper knows the
		// whole truth either way.
		storeStats = p.Durable.Stats()
	}
	stats := map[string]any{
		"peer":          p.Name,
		"documents":     storeStats.Documents,
		"store":         storeStats,
		"compile_cache": compiled,
		"word_cache":    words,
		"invocations":   p.Audit.Len(),
		"parallelism":   max(p.Parallelism, 1),
		"streaming":     p.Streaming,
		"telemetry":     p.Telemetry != nil,
		"read_only":     p.ReadOnly,
	}
	if len(p.Peers) > 0 {
		stats["peers"] = p.Peers.Names()
	}
	if p.ReplicaStats != nil {
		stats["replica"] = p.ReplicaStats()
	}
	if p.Durable != nil {
		// The historical flat "wal" object is preserved for existing
		// consumers; "store" is the uniform view.
		ds := p.Durable.Stats()
		stats["wal"] = struct {
			*wal.Stats
			RecoveredDocuments int `json:"recovered_documents"`
			SnapshotEvery      int `json:"snapshot_every"`
		}{ds.WAL, ds.RecoveredDocuments, ds.SnapshotEvery}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(stats)
}

// registryCacheStats reassembles a CacheStats from the four scrape-time
// series the enforcement cache registers under the given prefix.
func registryCacheStats(reg *telemetry.Registry, prefix string, fallback core.CacheStats) core.CacheStats {
	hits, ok1 := reg.Value(prefix + "_hits_total")
	misses, ok2 := reg.Value(prefix + "_misses_total")
	evictions, ok3 := reg.Value(prefix + "_evictions_total")
	size, ok4 := reg.Value(prefix + "_entries")
	if !(ok1 && ok2 && ok3 && ok4) {
		return fallback
	}
	return core.CacheStats{
		Hits:      uint64(hits),
		Misses:    uint64(misses),
		Evictions: uint64(evictions),
		Size:      int(size),
	}
}
