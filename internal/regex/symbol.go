// Package regex implements symbolic regular expressions over alphabets of
// interned element and function names, as used by intensional-XML content
// models (Milo et al., "Exchanging Intensional XML Data", SIGMOD 2003).
//
// Unlike text regexps, the alphabet here is a set of *names* (element names
// such as "title", function names such as "Get_Temp", and function-pattern
// names). Names are interned into dense integer Symbols through a Table so
// that automata built from these expressions can use slice-indexed
// transition structures on hot paths.
//
// The package provides:
//
//   - an AST with smart constructors that keep expressions in a light
//     canonical form (flattened, ∅/ε-normalized),
//   - a parser for a compact textual syntax mirroring the paper's notation
//     ("title.date.(Get_Temp|temp).exhibit*"),
//   - Brzozowski derivatives and nullability (powering the lazy rewriting
//     variant of Section 7 of the paper),
//   - the Glushkov position automaton and the one-unambiguity check that
//     XML Schema imposes on content models (the paper's determinism
//     requirement), and
//   - random sampling of words from a language (powering simulated Web
//     services whose replies are arbitrary output instances).
package regex

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Symbol is an interned name. Symbols are dense small integers handed out by
// a Table; the zero Table hands out 0, 1, 2, ... in interning order.
type Symbol int32

// NoSymbol is returned by lookups that fail.
const NoSymbol Symbol = -1

// Table interns names to Symbols. The zero value is not usable; create one
// with NewTable. Tables are safe for concurrent use: peers share one table
// across HTTP requests that may intern fresh names.
//
// A table may be an *overlay* of a parent table (see Overlay): it resolves
// every symbol the parent had interned when the overlay was created, and
// interns new names locally without ever touching the parent. Overlays are
// how a peer parses untrusted exchange schemas request-scoped: hostile label
// churn lands in the throwaway overlay, never in the peer's shared table.
type Table struct {
	// parent, when non-nil, makes this table an overlay: symbols below base
	// resolve through parent, symbols at or above base live in names/ids.
	// parent and base are immutable after construction.
	parent *Table
	base   int

	mu    sync.RWMutex
	names []string // local names; global symbol = base + local index
	ids   map[string]Symbol
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{ids: make(map[string]Symbol)}
}

// Overlay returns a child table layered over t: every symbol t has interned
// so far resolves identically through the overlay, while names unknown to t
// intern locally into the overlay — t itself never grows. Symbols handed out
// by the overlay continue t's numbering (t.Len(), t.Len()+1, ...), so regexes
// and automata built against the overlay agree with t's on every shared
// symbol. Names t interns *after* the overlay was created are deliberately
// invisible: the overlay's view is the frozen prefix plus its own extension,
// which keeps its symbol assignment stable under concurrent parent growth.
func (t *Table) Overlay() *Table {
	return &Table{parent: t, base: t.Len()}
}

// Root returns the ultimate ancestor of an overlay chain (t itself for a
// plain table). All overlays of one root share its symbol namespace.
func (t *Table) Root() *Table {
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// Extends reports whether t is s or an overlay (transitively) of s — the
// compatibility relation under which symbols of s keep their meaning in t.
func (t *Table) Extends(s *Table) bool {
	for ; t != nil; t = t.parent {
		if t == s {
			return true
		}
	}
	return false
}

// ExtensionKey identifies an overlay's view of the symbol space beyond its
// root: the snapshot bases and locally-interned names of every overlay level,
// in order. Two overlays of one root with equal keys assign identical symbols
// to identical names, so the key (together with the root's identity) is a
// sound cache-namespace for analyses built against overlays. Plain tables
// return "".
func (t *Table) ExtensionKey() string {
	if t.parent == nil {
		return ""
	}
	var b strings.Builder
	t.extensionKey(&b)
	return b.String()
}

func (t *Table) extensionKey(b *strings.Builder) {
	if t.parent == nil {
		return
	}
	t.parent.extensionKey(b)
	b.WriteByte('\x01')
	b.WriteString(strconv.Itoa(t.base))
	t.mu.RLock()
	for _, n := range t.names {
		b.WriteByte('\x00')
		b.WriteString(n)
	}
	t.mu.RUnlock()
}

// lookupBelow resolves name to a symbol strictly below limit, consulting
// ancestors first so the lowest (oldest) assignment wins — the same order
// Intern uses, keeping the two consistent.
func (t *Table) lookupBelow(name string, limit int) (Symbol, bool) {
	if t.parent != nil {
		bound := limit
		if t.base < bound {
			bound = t.base
		}
		if s, ok := t.parent.lookupBelow(name, bound); ok {
			return s, true
		}
	}
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok && int(s) < limit {
		return s, true
	}
	return NoSymbol, false
}

// Intern returns the Symbol for name, creating it if necessary. On an
// overlay, a name the parent knew at overlay creation resolves to the
// parent's symbol; anything else interns locally.
func (t *Table) Intern(name string) Symbol {
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	if t.parent != nil {
		if s, ok := t.parent.lookupBelow(name, t.base); ok {
			return s
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	s = Symbol(t.base + len(t.names))
	t.names = append(t.names, name)
	if t.ids == nil {
		// Overlays allocate their map lazily: a well-behaved exchange schema
		// references only known names and the overlay stays allocation-free.
		t.ids = make(map[string]Symbol)
	}
	t.ids[name] = s
	return s
}

// Lookup returns the Symbol for name if it has been interned (in this table
// or, for overlays, in the visible parent prefix).
func (t *Table) Lookup(name string) (Symbol, bool) {
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s, true
	}
	if t.parent != nil {
		return t.parent.lookupBelow(name, t.base)
	}
	return NoSymbol, false
}

// Name returns the name interned as s. It panics if s was not handed out by
// this table (or, for overlays, by the visible part of an ancestor).
func (t *Table) Name(s Symbol) string {
	if t.parent != nil && int(s) < t.base {
		return t.parent.Name(s)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if s < 0 || int(s)-t.base >= len(t.names) {
		panic(fmt.Sprintf("regex: symbol %d not in table (len %d)", s, t.base+len(t.names)))
	}
	return t.names[int(s)-t.base]
}

// Len reports how many symbols are visible: for overlays, the frozen parent
// prefix plus local interns — parent growth after overlay creation does not
// count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.base + len(t.names)
}

// Symbols returns all visible symbols in interning order.
func (t *Table) Symbols() []Symbol {
	n := t.Len()
	out := make([]Symbol, n)
	for i := range out {
		out[i] = Symbol(i)
	}
	return out
}

// Names returns a copy of all visible names in interning order.
func (t *Table) Names() []string {
	out := make([]string, t.Len())
	t.fillNames(out)
	return out
}

// fillNames copies the names for global symbols [0, len(out)) into out.
func (t *Table) fillNames(out []string) {
	if t.parent != nil && t.base > 0 {
		bound := t.base
		if len(out) < bound {
			bound = len(out)
		}
		t.parent.fillNames(out[:bound])
	}
	if len(out) > t.base {
		t.mu.RLock()
		copy(out[t.base:], t.names)
		t.mu.RUnlock()
	}
}

// Class is a set (or complemented set) of symbols, used for wildcard leaves:
// XML Schema's <any> compiles to a negated empty Class, and namespace
// exclusions compile to negated non-empty Classes. The Syms slice is always
// sorted and duplicate-free.
type Class struct {
	Negated bool
	Syms    []Symbol
}

// NewClass builds a normalized Class from the given symbols.
func NewClass(negated bool, syms ...Symbol) Class {
	c := Class{Negated: negated, Syms: append([]Symbol(nil), syms...)}
	sort.Slice(c.Syms, func(i, j int) bool { return c.Syms[i] < c.Syms[j] })
	c.Syms = dedupSymbols(c.Syms)
	return c
}

// AnyClass matches every symbol.
func AnyClass() Class { return Class{Negated: true} }

func dedupSymbols(s []Symbol) []Symbol {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Contains reports whether the class matches symbol s.
func (c Class) Contains(s Symbol) bool {
	i := sort.Search(len(c.Syms), func(i int) bool { return c.Syms[i] >= s })
	in := i < len(c.Syms) && c.Syms[i] == s
	return in != c.Negated
}

// IsEmpty reports whether the class matches no symbol at all. (Only a
// non-negated empty set is empty; a negated set always matches the infinitely
// many yet-uninterned symbols.)
func (c Class) IsEmpty() bool { return !c.Negated && len(c.Syms) == 0 }

// Overlaps reports whether two classes share at least one symbol. Because
// the symbol universe is unbounded (new names can always be interned), two
// negated classes always overlap.
func (c Class) Overlaps(d Class) bool {
	switch {
	case !c.Negated && !d.Negated:
		return intersectSorted(c.Syms, d.Syms)
	case c.Negated && d.Negated:
		return true
	case c.Negated:
		c, d = d, c
		fallthrough
	default:
		// c positive, d negated: overlap unless every symbol of c is excluded.
		for _, s := range c.Syms {
			if d.Contains(s) {
				return true
			}
		}
		return false
	}
}

func intersectSorted(a, b []Symbol) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Equal reports structural equality of two classes.
func (c Class) Equal(d Class) bool {
	if c.Negated != d.Negated || len(c.Syms) != len(d.Syms) {
		return false
	}
	for i := range c.Syms {
		if c.Syms[i] != d.Syms[i] {
			return false
		}
	}
	return true
}

// String renders the class using the table for names.
func (c Class) String(t *Table) string {
	if c.Negated && len(c.Syms) == 0 {
		return "~"
	}
	s := ""
	for i, sym := range c.Syms {
		if i > 0 {
			s += "|"
		}
		s += t.Name(sym)
	}
	if c.Negated {
		return "~!(" + s + ")"
	}
	return "(" + s + ")"
}
