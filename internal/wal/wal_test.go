package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"axml/internal/telemetry"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *RecoveredState) {
	t.Helper()
	l, state, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, state
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, state := mustOpen(t, dir, Options{})
	if len(state.Docs) != 0 || state.SnapshotSeq != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", state)
	}
	ops := []struct {
		op   Op
		name string
		data string
	}{
		{OpPut, "a", "<a/>"},
		{OpPut, "b", "<b>text</b>"},
		{OpPut, "a", "<a>v2</a>"}, // overwrite
		{OpDelete, "b", ""},
		{OpPut, "empty", ""},
	}
	for _, o := range ops {
		var data []byte
		if o.op == OpPut {
			data = []byte(o.data)
		}
		if err := l.Append(o.op, o.name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, state2 := mustOpen(t, dir, Options{})
	if state2.ReplayedRecords != len(ops) {
		t.Errorf("replayed %d records, want %d", state2.ReplayedRecords, len(ops))
	}
	if state2.TruncatedRecords != 0 {
		t.Errorf("truncated %d records, want 0", state2.TruncatedRecords)
	}
	want := map[string]string{"a": "<a>v2</a>", "empty": ""}
	if len(state2.Docs) != len(want) {
		t.Fatalf("recovered docs %v, want keys %v", state2.Docs, want)
	}
	for k, v := range want {
		if got, ok := state2.Docs[k]; !ok || string(got) != v {
			t.Errorf("doc %q = %q (present=%v), want %q", k, got, ok, v)
		}
	}
	if _, resurrected := state2.Docs["b"]; resurrected {
		t.Error("deleted document resurrected by replay")
	}
}

// TestTornFinalRecord is the heart of crash recovery: a record cut short at
// every possible byte boundary must be dropped — and physically truncated —
// while every record before it survives.
func TestTornFinalRecord(t *testing.T) {
	// Build a reference log: 3 good records.
	ref := t.TempDir()
	l, _ := mustOpen(t, ref, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(OpPut, fmt.Sprintf("d%d", i), []byte(fmt.Sprintf("<d>%d</d>", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(filepath.Join(ref, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	recs, twoLen, _, err := scanFile(filepath.Join(ref, walName(0)))
	if err != nil || len(recs) != 3 {
		t.Fatalf("reference scan: %d recs, %v", len(recs), err)
	}
	// Offset where the third record begins: scan the first two.
	var secondEnd int64
	{
		tmp := filepath.Join(t.TempDir(), "two.log")
		// find boundary by scanning truncations until exactly 2 records parse
		for cut := int64(len(full)); cut >= 0; cut-- {
			os.WriteFile(tmp, full[:cut], 0o644)
			r, glen, _, _ := scanFile(tmp)
			if len(r) == 2 {
				secondEnd = glen
				break
			}
		}
	}
	_ = twoLen
	if secondEnd == 0 {
		t.Fatal("could not locate record boundary")
	}

	for cut := secondEnd + 1; cut < int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, state := mustOpen(t, dir, Options{})
		if state.ReplayedRecords != 2 || state.TruncatedRecords != 1 {
			t.Fatalf("cut %d: replayed=%d truncated=%d, want 2/1", cut, state.ReplayedRecords, state.TruncatedRecords)
		}
		if _, ok := state.Docs["d2"]; ok {
			t.Fatalf("cut %d: torn record observed", cut)
		}
		// The torn tail must be physically gone so new appends are readable.
		if err := l.Append(OpPut, "fresh", []byte("<f/>")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		_, state2 := mustOpen(t, dir, Options{})
		if _, ok := state2.Docs["fresh"]; !ok || len(state2.Docs) != 3 {
			t.Fatalf("cut %d: append after truncation not recovered: %v", cut, state2.Docs)
		}
	}
}

// A corrupted byte mid-record (bit rot, not a torn tail) invalidates that
// record and everything after it, but the prefix stays.
func TestCorruptMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(OpPut, fmt.Sprintf("d%d", i), []byte("<x/>")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, walName(0))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	_, state := mustOpen(t, dir, Options{})
	if state.ReplayedRecords >= 3 || state.TruncatedRecords != 1 {
		t.Errorf("replayed=%d truncated=%d after mid-file corruption", state.ReplayedRecords, state.TruncatedRecords)
	}
	if _, ok := state.Docs["d0"]; !ok {
		t.Error("intact prefix record lost")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	l.Close()
	if err := l.Append(OpPut, "x", nil); err != ErrClosed {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Errorf("sync after close: %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); err != ErrClosed {
		t.Errorf("rotate after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOversizeNameRejected(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	if err := l.Append(OpPut, strings.Repeat("n", maxNameBytes+1), nil); err == nil {
		t.Error("oversize name accepted")
	}
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{Sync: mode, SyncInterval: 5 * time.Millisecond})
			for i := 0; i < 10; i++ {
				if err := l.Append(OpPut, "d", []byte("<d/>")); err != nil {
					t.Fatal(err)
				}
			}
			if mode == SyncInterval {
				// Give the background syncer a chance to run.
				time.Sleep(20 * time.Millisecond)
				if l.Stats().Fsyncs == 0 {
					t.Error("interval mode never fsynced")
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, state := mustOpen(t, dir, Options{})
			if state.ReplayedRecords != 10 {
				t.Errorf("mode %s: replayed %d, want 10", mode, state.ReplayedRecords)
			}
		})
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("yolo"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestStatsAndMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Metrics: NewMetrics(reg)})
	payload := []byte("<doc>hello</doc>")
	for i := 0; i < 5; i++ {
		if err := l.Append(OpPut, "d", payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != 5 || st.AppendedBytes == 0 || st.Generation != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.SyncMode != "always" {
		t.Errorf("sync mode = %q", st.SyncMode)
	}
	if v, ok := reg.Value("axml_wal_appends_total"); !ok || v != 5 {
		t.Errorf("axml_wal_appends_total = %v, %v", v, ok)
	}
	if v, ok := reg.Value("axml_wal_append_seconds"); !ok || v != 5 {
		t.Errorf("append histogram count = %v, %v", v, ok)
	}
	if v, ok := reg.Value("axml_wal_fsync_seconds"); !ok || v != 5 {
		t.Errorf("fsync histogram count = %v, %v (SyncAlways must fsync per append)", v, ok)
	}
	l.Close()

	// Recovery counters land in a fresh registry on reopen.
	reg2 := telemetry.NewRegistry()
	l2, state := mustOpen(t, dir, Options{Metrics: NewMetrics(reg2)})
	if state.ReplayedRecords != 5 {
		t.Fatalf("replayed %d", state.ReplayedRecords)
	}
	if v, _ := reg2.Value("axml_wal_recovery_replayed_records_total"); v != 5 {
		t.Errorf("recovery replayed metric = %v", v)
	}
	if st := l2.Stats(); st.RecoveryReplayed != 5 || st.RecoveryTruncated != 0 {
		t.Errorf("recovered stats = %+v", st)
	}

	// A nil *Metrics must be a no-op on every path.
	var m *Metrics
	m.observeAppend(time.Second, 1)
	m.observeFsync(time.Second)
	m.observeSnapshot(time.Second, 1)
	m.observeRecovery(&RecoveredState{})
	if NewMetrics(nil) != nil {
		t.Error("NewMetrics(nil) should be nil")
	}
}

func TestFrameEncodeDecode(t *testing.T) {
	cases := []Record{
		{OpPut, "name", []byte("<x/>")},
		{OpPut, "", []byte("rootless")},
		{OpPut, "no-data", nil},
		{OpDelete, "gone", nil},
		{OpPut, "binary", []byte{0, 1, 2, 0xff}},
	}
	var buf []byte
	for _, rec := range cases {
		buf = appendFrame(buf, rec.Op, rec.Name, rec.Data)
	}
	path := filepath.Join(t.TempDir(), "frames.log")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, goodLen, torn, err := scanFile(path)
	if err != nil || torn || int(goodLen) != len(buf) {
		t.Fatalf("scan: torn=%v goodLen=%d err=%v", torn, goodLen, err)
	}
	if len(recs) != len(cases) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(cases))
	}
	for i, rec := range recs {
		want := cases[i]
		if rec.Op != want.Op || rec.Name != want.Name || !bytes.Equal(rec.Data, want.Data) {
			t.Errorf("record %d = %+v, want %+v", i, rec, want)
		}
	}
}

func TestDecodeRejectsGarbagePayloads(t *testing.T) {
	bad := [][]byte{
		{},              // empty
		{9, 0, 0},       // unknown op
		{1, 10, 0, 'a'}, // name length beyond payload
	}
	for i, p := range bad {
		if _, ok := decodePayload(p); ok {
			t.Errorf("payload %d accepted: %v", i, p)
		}
	}
}
