package peer

import (
	"fmt"

	"axml/internal/core"
	"axml/internal/schema"
)

// Negotiation implements the "negotiator" extension from the paper's
// conclusion: when sender and receiver have not fixed a single exchange
// schema, the sender examines the candidates the receiver would accept and
// picks the cheapest discipline that works — safe with no calls beats safe
// with calls beats possible.

// Proposal is one candidate exchange agreement.
type Proposal struct {
	// Name identifies the candidate in the negotiation outcome.
	Name string
	// Schema is the candidate exchange schema (sharing the peer's symbol
	// table).
	Schema *schema.Schema
}

// Agreement is a successful negotiation outcome.
type Agreement struct {
	Proposal Proposal
	// Mode is the weakest discipline that suffices: Safe when a safe
	// rewriting exists, otherwise Possible.
	Mode core.Mode
	// AsIs reports that the document already conforms — no calls needed.
	AsIs bool
}

// Negotiate picks, for the named document, the best candidate: first any
// proposal the document already satisfies, then any reachable by safe
// rewriting, then any merely possible. Proposals are considered in order
// within each tier, so the caller's preference breaks ties.
func (p *Peer) Negotiate(docName string, proposals []Proposal) (*Agreement, error) {
	d, ok := p.Repo.Get(docName)
	if !ok {
		return nil, fmt.Errorf("peer %s: no document %q: %w", p.Name, docName, ErrNotFound)
	}
	// Tier 1: already an instance.
	for _, prop := range proposals {
		ctx := schema.NewContext(prop.Schema, p.Schema)
		if err := ctx.Validate(d); err == nil {
			return &Agreement{Proposal: prop, Mode: core.Safe, AsIs: true}, nil
		}
	}
	// Tier 2: safe rewriting exists.
	for _, prop := range proposals {
		rw := core.NewRewriter(p.Schema, prop.Schema, p.K, nil)
		if err := rw.CheckDocument(d.Clone(), core.Safe); err == nil {
			return &Agreement{Proposal: prop, Mode: core.Safe}, nil
		}
	}
	// Tier 3: possibly rewritable.
	for _, prop := range proposals {
		rw := core.NewRewriter(p.Schema, prop.Schema, p.K, nil)
		if err := rw.CheckDocument(d.Clone(), core.Possible); err == nil {
			return &Agreement{Proposal: prop, Mode: core.Possible}, nil
		}
	}
	return nil, fmt.Errorf("peer %s: no candidate schema can accept %q", p.Name, docName)
}

// NegotiateSchemas is the schema-level variant (Definition 6): pick the
// first candidate that *every* document of this peer's schema safely
// rewrites into.
func (p *Peer) NegotiateSchemas(proposals []Proposal, k int) (*Agreement, error) {
	for _, prop := range proposals {
		report, err := core.SchemaSafeRewrite(core.Compile(p.Schema, prop.Schema), "", k)
		if err != nil {
			continue
		}
		if report.Safe() {
			return &Agreement{Proposal: prop, Mode: core.Safe}, nil
		}
	}
	return nil, fmt.Errorf("peer %s: no candidate schema is safe for all documents", p.Name)
}
