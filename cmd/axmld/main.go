// Command axmld runs an Active XML peer daemon: it loads a schema and a
// directory of intensional documents, optionally registers simulated
// implementations for every declared function, and serves
//
//	POST /soap             SOAP operations with schema enforcement
//	GET  /wsdl             the peer's WSDL_int description
//	GET  /doc/{name}       repository documents
//	POST /exchange/{name}  Figure 1 data exchange: body = XML Schema_int,
//	                       response = the document rewritten to conform
//
// Example:
//
//	axmld -name news -schema news.axs -docs ./docs -sim 7 -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/peer"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/service"
	"axml/internal/soap"
	"axml/internal/workload"
	"axml/internal/xsdint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "axmld:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("name", "axml-peer", "peer name")
	schemaPath := flag.String("schema", "", "peer schema (.axs text DSL or .xsd XML Schema_int)")
	docsDir := flag.String("docs", "", "directory of *.xml intensional documents to load")
	addr := flag.String("addr", ":8080", "listen address")
	k := flag.Int("k", 2, "rewriting depth bound")
	mode := flag.String("mode", "safe", "default enforcement mode: safe | possible | mixed")
	simSeed := flag.Int64("sim", -1, "register simulated implementations for all declared functions, with this seed")
	endpoint := flag.String("public", "", "public endpoint URL advertised in WSDL (default http://<addr>/soap)")
	cacheSize := flag.Int("cache", core.DefaultCompiledCacheSize, "max compiled schema-pair analyses kept per peer")
	wordCacheSize := flag.Int("word-cache", core.DefaultWordCacheSize, "max word-level verdicts memoized per analysis (negative disables)")
	maxRequest := flag.Int64("max-request", soap.DefaultMaxRequestBytes, "max SOAP request body bytes (negative disables the limit)")
	flag.Parse()

	if *schemaPath == "" {
		return fmt.Errorf("-schema is required")
	}
	s, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	p := peer.New(*name, s)
	p.K = *k
	switch *mode {
	case "safe":
		p.Mode = core.Safe
	case "possible":
		p.Mode = core.Possible
	case "mixed":
		p.Mode = core.Mixed
	default:
		return fmt.Errorf("bad -mode %q", *mode)
	}
	if *endpoint != "" {
		p.Endpoint = *endpoint
	} else {
		p.Endpoint = "http://" + strings.TrimPrefix(*addr, ":") + "/soap"
		if strings.HasPrefix(*addr, ":") {
			p.Endpoint = "http://localhost" + *addr + "/soap"
		}
	}
	p.Remote = &soap.Invoker{}
	p.Enforcement = core.NewCompiledCache(*cacheSize)
	p.Enforcement.WordCacheCapacity = *wordCacheSize
	p.MaxRequestBytes = *maxRequest

	if *docsDir != "" {
		if err := p.Repo.LoadDir(*docsDir); err != nil {
			return err
		}
		log.Printf("loaded %d documents from %s", p.Repo.Len(), *docsDir)
	}
	if *simSeed >= 0 {
		sim := workload.NewSimInvoker(s, rand.New(rand.NewSource(*simSeed)))
		for _, fname := range s.SortedFuncs() {
			fname := fname
			def := s.Funcs[fname]
			err := p.Services.Register(&service.Operation{
				Name: fname,
				Def:  def,
				Handler: func(params []*doc.Node) ([]*doc.Node, error) {
					return sim.Invoke(doc.Call(fname, params...))
				},
			})
			if err != nil {
				return err
			}
		}
		log.Printf("registered %d simulated operations", len(s.Funcs))
	}

	log.Printf("peer %q serving on %s (k=%d, mode=%s)", *name, *addr, *k, p.Mode)
	return http.ListenAndServe(*addr, p.Handler())
}

func loadSchema(path string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".xsd") || strings.HasSuffix(path, ".xml") {
		return xsdint.ParseString(string(data), xsdint.Options{Table: regex.NewTable()})
	}
	return schema.ParseText(string(data), nil)
}
