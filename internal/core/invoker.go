package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"axml/internal/doc"
)

// Invoker performs the actual Web-service calls during rewriting. The call
// node's children are its (already materialized) parameters; the returned
// forest replaces the node. Implementations live in internal/service (local
// registries, simulated services), internal/soap (remote endpoints) and
// internal/invoke (policy middleware, fault injection).
//
// The context carries the deadline/cancellation of the whole rewriting (or
// HTTP request) the call executes under; implementations must return promptly
// with ctx.Err() once it is done. Legacy context-free implementations can be
// adapted with Legacy.
type Invoker interface {
	Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error)
}

// LegacyInvoker is the pre-context interface, kept so implementations written
// against the original API can still be plugged in through Legacy.
type LegacyInvoker interface {
	Invoke(call *doc.Node) ([]*doc.Node, error)
}

// Legacy adapts a context-free invoker to the context-aware interface. The
// adapted invoker checks the context before delegating, but a call already in
// flight cannot be interrupted — prefer native context support for anything
// that can block.
func Legacy(li LegacyInvoker) Invoker {
	return ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return li.Invoke(call)
	})
}

// InvokerFunc adapts a context-free function to the Invoker interface — the
// documented compatibility wrapper for code written against the original
// one-argument API. The context is consulted before the function runs.
type InvokerFunc func(*doc.Node) ([]*doc.Node, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f(call)
}

// ContextInvokerFunc adapts a context-aware function to the Invoker interface.
type ContextInvokerFunc func(context.Context, *doc.Node) ([]*doc.Node, error)

// Invoke implements Invoker.
func (f ContextInvokerFunc) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	return f(ctx, call)
}

// InvokePolicy is invocation middleware: it wraps an Invoker with an
// execution discipline (per-call timeout, bounded retry, circuit breaking,
// concurrency limiting, fault injection, ...). Concrete policies live in
// internal/invoke and are re-exported from the axml package.
type InvokePolicy func(Invoker) Invoker

// ApplyPolicies wraps inv so that policies[0] is the outermost layer.
func ApplyPolicies(inv Invoker, policies []InvokePolicy) Invoker {
	for i := len(policies) - 1; i >= 0; i-- {
		if policies[i] != nil {
			inv = policies[i](inv)
		}
	}
	return inv
}

// TransientCallError marks invocation errors that stem from service behavior
// a different attempt (or a different rewriting choice) might avoid: retry
// budgets exhausted on flaky endpoints, per-call timeouts, open circuit
// breakers. In Possible and Mixed modes the executor degrades such failures
// to backtracking instead of aborting the whole rewrite.
type TransientCallError interface {
	TransientCall() bool
}

// IsTransientCall reports whether err (or anything it wraps) is a transient
// invocation failure in the sense of TransientCallError.
func IsTransientCall(err error) bool {
	var te TransientCallError
	return errors.As(err, &te) && te.TransientCall()
}

// ---------------------------------------------------------------------------
// Invocation events: the fine-grained audit trail of the invocation layer.

// Invocation event kinds recorded by the policy chain and the executor.
const (
	// EventAttempt is one delivery attempt reaching the wrapped invoker.
	EventAttempt = "attempt"
	// EventRetryWait is a backoff pause between attempts.
	EventRetryWait = "retry-wait"
	// EventExhausted marks a retry budget running out.
	EventExhausted = "exhausted"
	// EventTimeout marks a per-call timeout firing.
	EventTimeout = "timeout"
	// EventBreakerOpen / Close / HalfOpen are circuit-breaker transitions;
	// EventBreakerReject is a call short-circuited by an open breaker.
	EventBreakerOpen     = "breaker-open"
	EventBreakerClose    = "breaker-close"
	EventBreakerHalfOpen = "breaker-half-open"
	EventBreakerReject   = "breaker-reject"
	// EventFault is an injected fault (internal/invoke.FaultInjector).
	EventFault = "fault"
	// EventDegraded marks a transient failure the executor converted into a
	// frozen occurrence and backtracking instead of an abort.
	EventDegraded = "degraded"
)

// InvokeEvent is one step of the invocation layer's execution: an attempt, a
// retry pause, a breaker transition. Events complement CallRecords (which
// only document *completed* calls): after a partial failure, the events say
// exactly what was attempted, how often, and why it stopped.
type InvokeEvent struct {
	// Func is the function label of the call.
	Func string
	// Endpoint identifies the target endpoint (the function label when the
	// call carries no explicit service reference).
	Endpoint string
	// Kind is one of the Event* constants.
	Kind string
	// Attempt numbers the delivery attempt this event belongs to (1-based;
	// 0 when not attempt-scoped).
	Attempt int
	// Wait is the backoff pause before the next attempt (retry-wait events).
	Wait time.Duration
	// Err carries the triggering error, if any.
	Err string
	// Rewrite is the ID of the top-level rewriting this event belongs to,
	// stamped by the executor so a trace can be matched to its audit trail.
	// Empty for events recorded outside an identified rewriting.
	Rewrite string
}

// EventSink receives invocation events. *Audit implements it; policies reach
// the sink through the call context (WithEventSink / Emit), so arbitrarily
// nested middleware reports into the rewriting's audit without plumbing.
type EventSink interface {
	RecordEvent(e InvokeEvent)
}

type eventSinkKey struct{}

// WithEventSink returns a context delivering invocation events to sink.
func WithEventSink(ctx context.Context, sink EventSink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, eventSinkKey{}, sink)
}

// Emit records an event into the context's sink, if any.
func Emit(ctx context.Context, e InvokeEvent) {
	if sink, ok := ctx.Value(eventSinkKey{}).(EventSink); ok {
		sink.RecordEvent(e)
	}
}

// EndpointOf identifies the endpoint a call is routed to, for per-endpoint
// policies (circuit breakers) and event records: the explicit ServiceRef
// endpoint when present, the function label otherwise.
func EndpointOf(call *doc.Node) string {
	if call.Service != nil && call.Service.Endpoint != "" {
		return call.Service.Endpoint
	}
	return call.Label
}

// ---------------------------------------------------------------------------

// CallRecord documents one completed service invocation performed by a
// rewriting — the audit trail matters because possible-mode rewritings may
// fail *after* performing side-effecting calls, and the caller must know what
// happened.
type CallRecord struct {
	Func string
	// Depth is the invocation depth (1 = original occurrence).
	Depth int
	Cost  float64
	// ResultNodes counts the root nodes of the returned forest.
	ResultNodes int
	// Rewrite is the ID of the top-level rewriting that performed the call
	// (see InvokeEvent.Rewrite); empty outside an identified rewriting.
	Rewrite string
}

// Audit accumulates the invocation trail of a rewriting: completed calls
// (CallRecord) plus the invocation layer's fine-grained events (attempts,
// retries, breaker transitions). Safe for concurrent use: peers share one
// audit across requests.
type Audit struct {
	mu     sync.Mutex
	calls  []CallRecord
	events []InvokeEvent
}

// Record appends a call record.
func (a *Audit) Record(r CallRecord) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls = append(a.calls, r)
}

// Calls returns a copy of the trail.
func (a *Audit) Calls() []CallRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]CallRecord, len(a.calls))
	copy(out, a.calls)
	return out
}

// Len returns the number of recorded calls.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.calls)
}

// RecordEvent implements EventSink.
func (a *Audit) RecordEvent(e InvokeEvent) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events = append(a.events, e)
}

// Events returns a copy of the invocation-event trail.
func (a *Audit) Events() []InvokeEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]InvokeEvent, len(a.events))
	copy(out, a.events)
	return out
}

// CallsFor returns the recorded calls stamped with one rewrite ID —
// the flight recorder's per-request view, copied without cloning the
// whole trail.
func (a *Audit) CallsFor(rewriteID string) []CallRecord {
	if a == nil || rewriteID == "" {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []CallRecord
	for _, c := range a.calls {
		if c.Rewrite == rewriteID {
			out = append(out, c)
		}
	}
	return out
}

// EventsFor returns the recorded events stamped with one rewrite ID.
func (a *Audit) EventsFor(rewriteID string) []InvokeEvent {
	if a == nil || rewriteID == "" {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []InvokeEvent
	for _, e := range a.events {
		if e.Rewrite == rewriteID {
			out = append(out, e)
		}
	}
	return out
}

// EventCount counts recorded events of one kind.
func (a *Audit) EventCount(kind string) int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range a.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TotalCost sums the recorded costs.
func (a *Audit) TotalCost() float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0.0
	for _, c := range a.calls {
		total += c.Cost
	}
	return total
}

// Reset clears the trail.
func (a *Audit) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls = nil
	a.events = nil
}

func (a *Audit) String() string {
	return fmt.Sprintf("Audit{%d calls, cost %.2f}", a.Len(), a.TotalCost())
}
