package main

import (
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"axml/internal/doc"
	"axml/internal/store"
)

func writeSchema(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peer.axs")
	err := os.WriteFile(path, []byte(`
root page
elem page = Get_Temp|temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigureRejectsBadFlags(t *testing.T) {
	sp := writeSchema(t)
	dd := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no schema", nil, "-schema is required"},
		{"zero cache", []string{"-schema", sp, "-cache", "0"}, "-cache must be positive"},
		{"negative cache", []string{"-schema", sp, "-cache", "-3"}, "-cache must be positive"},
		{"zero word cache", []string{"-schema", sp, "-word-cache", "0"}, "-word-cache must be positive"},
		{"zero max request", []string{"-schema", sp, "-max-request", "0"}, "-max-request must be positive"},
		{"negative max request", []string{"-schema", sp, "-max-request", "-1"}, "-max-request must be positive"},
		{"zero retries", []string{"-schema", sp, "-retries", "0"}, "-retries must be at least 1"},
		{"negative timeout", []string{"-schema", sp, "-call-timeout", "-1s"}, "-call-timeout must not be negative"},
		{"negative breaker", []string{"-schema", sp, "-breaker-failures", "-1"}, "-breaker-failures must not be negative"},
		{"bad mode", []string{"-schema", sp, "-mode", "yolo"}, "bad -mode"},
		{"pprof no port", []string{"-schema", sp, "-pprof", "6060"}, "-pprof"},
		{"pprof public", []string{"-schema", sp, "-pprof", "0.0.0.0:6060"}, "loopback"},
		{"pprof hostname", []string{"-schema", sp, "-pprof", "example.com:6060"}, "loopback"},
		{"bad wal sync", []string{"-schema", sp, "-wal-sync", "sometimes"}, "-wal-sync"},
		{"zero sync interval", []string{"-schema", sp, "-wal-sync-interval", "0s"}, "-wal-sync-interval must be positive"},
		{"negative snapshot every", []string{"-schema", sp, "-snapshot-every", "-1"}, "-snapshot-every must not be negative"},
		{"bad log format", []string{"-schema", sp, "-log-format", "xml"}, "-log-format"},
		{"bad log level", []string{"-schema", sp, "-log-level", "verbose"}, "-log-level"},
		{"negative slow requests", []string{"-schema", sp, "-slow-requests", "-1"}, "-slow-requests must not be negative"},
		{"bad role", []string{"-schema", sp, "-role", "observer"}, "bad -role"},
		{"leader without wal", []string{"-schema", sp, "-role", "leader"}, "-role leader requires -store wal"},
		{"leader zero tail", []string{"-schema", sp, "-role", "leader", "-store", "wal", "-data-dir", dd, "-replica-tail", "0"}, "-replica-tail must be positive"},
		{"follower without leader", []string{"-schema", sp, "-role", "follower"}, "-role follower requires -leader"},
		{"leader url on single", []string{"-schema", sp, "-leader", "http://x:8080"}, "-leader requires -role follower"},
		{"leader url on leader", []string{"-schema", sp, "-role", "leader", "-store", "wal", "-data-dir", dd, "-leader", "http://x:8080"}, "-leader requires -role follower"},
		{"bad peers", []string{"-schema", sp, "-peers", "nourl"}, "-peers"},
		{"duplicate peers", []string{"-schema", sp, "-peers", "a=http://x,a=http://y"}, "-peers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := configure(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("configure(%v) error = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestConfigureBuildsPeer(t *testing.T) {
	sp := writeSchema(t)
	p, opts, err := configure([]string{
		"-schema", sp, "-name", "news", "-addr", ":9999", "-mode", "possible",
		"-sim", "7",
		"-call-timeout", "2s", "-retries", "3", "-breaker-failures", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":9999" || p.Name != "news" {
		t.Errorf("addr=%q name=%q", opts.addr, p.Name)
	}
	if len(p.Policies) != 3 {
		t.Errorf("policies = %d, want 3 (breaker, retry, timeout)", len(p.Policies))
	}
	if _, ok := p.Services.Lookup("Get_Temp"); !ok {
		t.Error("simulated operation not registered")
	}
	if p.Telemetry == nil {
		t.Error("telemetry should default on")
	}
	if opts.pprof != "" {
		t.Errorf("pprof should default off, got %q", opts.pprof)
	}
	if p.Health == nil {
		t.Error("health lifecycle not installed")
	}
	if p.Health.Ready() {
		t.Error("peer must not report ready before the listener is up")
	}
	if p.Logger == nil {
		t.Error("structured logger not installed")
	}
	if p.Flight == nil {
		t.Error("flight recorder should default on")
	}
	if opts.logger == nil {
		t.Error("options.logger not set")
	}
	if opts.storeBackend != "mem" {
		t.Errorf("storeBackend = %q, want mem", opts.storeBackend)
	}
}

func TestConfigureSlowRequestsOff(t *testing.T) {
	p, _, err := configure([]string{"-schema", writeSchema(t), "-slow-requests", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Flight != nil {
		t.Error("-slow-requests 0 should disable the flight recorder")
	}
}

func TestConfigureTelemetryOff(t *testing.T) {
	p, _, err := configure([]string{"-schema", writeSchema(t), "-telemetry=false"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Telemetry != nil {
		t.Error("-telemetry=false should leave the registry nil")
	}
}

func TestConfigurePprofLoopback(t *testing.T) {
	cases := []struct{ in, want string }{
		{":6060", "127.0.0.1:6060"},
		{"localhost:6060", "localhost:6060"},
		{"127.0.0.1:7070", "127.0.0.1:7070"},
		{"[::1]:6060", "[::1]:6060"},
	}
	for _, tc := range cases {
		_, opts, err := configure([]string{"-schema", writeSchema(t), "-pprof", tc.in})
		if err != nil {
			t.Errorf("-pprof %s: %v", tc.in, err)
			continue
		}
		if opts.pprof != tc.want {
			t.Errorf("-pprof %s normalized to %q, want %q", tc.in, opts.pprof, tc.want)
		}
	}
}

// TestConfigureDurable boots a durable daemon twice over one data directory:
// state put through the first peer must be recovered by the second, and a
// -docs seed directory must not clobber what recovery restored.
func TestConfigureDurable(t *testing.T) {
	sp := writeSchema(t)
	dataDir := filepath.Join(t.TempDir(), "state")
	p, _, err := configure([]string{"-schema", sp, "-data-dir", dataDir, "-wal-sync", "none"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Durable == nil || p.Repo != store.DocStore(p.Durable) {
		t.Fatal("-data-dir did not install the durable repository")
	}
	if err := p.Repo.Put("note", doc.Elem("note", doc.TextNode("recovered"))); err != nil {
		t.Fatal(err)
	}
	if err := p.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	seed := t.TempDir()
	for name, content := range map[string]string{"note.xml": "<note>seed</note>", "extra.xml": "<extra/>"} {
		if err := os.WriteFile(filepath.Join(seed, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p2, _, err := configure([]string{"-schema", sp, "-data-dir", dataDir, "-wal-sync", "none", "-docs", seed})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Durable.Close()
	got, ok := p2.Repo.Get("note")
	if !ok || got.Children[0].Value != "recovered" {
		t.Errorf("recovered note = %v, %v; the seed must not clobber it", got, ok)
	}
	if _, ok := p2.Repo.Get("extra"); !ok {
		t.Error("non-colliding seed document not loaded")
	}
}

// TestConfigureRoles wires each federation role and checks the peer comes
// out configured for it: a leader exposes the replication surface over its
// WAL-backed store, a follower is read-only with a replication loop for run
// to start, and both report replica stats.
func TestConfigureRoles(t *testing.T) {
	sp := writeSchema(t)

	leader, lopts, err := configure([]string{
		"-schema", sp, "-role", "leader",
		"-store", "wal", "-data-dir", filepath.Join(t.TempDir(), "l"), "-wal-sync", "none",
		"-peers", "west=http://w:8080",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Durable.Close()
	if leader.Replica == nil {
		t.Error("leader has no /replica handler")
	}
	if leader.ReplicaStats == nil {
		t.Error("leader has no replica stats")
	}
	if leader.ReadOnly {
		t.Error("leader must accept writes")
	}
	if lopts.role != "leader" || lopts.follower != nil {
		t.Errorf("leader options = role %q follower %v", lopts.role, lopts.follower)
	}
	if leader.Peers["west"] != "http://w:8080" {
		t.Errorf("roster = %v", leader.Peers)
	}

	follower, fopts, err := configure([]string{
		"-schema", sp, "-role", "follower", "-leader", "http://leader:8080/",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !follower.ReadOnly {
		t.Error("follower must be read-only")
	}
	if fopts.follower == nil {
		t.Fatal("follower options carry no replication loop")
	}
	if follower.ReplicaStats == nil {
		t.Error("follower has no replica stats")
	}
	if follower.Replica != nil {
		t.Error("follower must not serve the replication protocol")
	}
}

func TestConfigurePolicyFlagsOff(t *testing.T) {
	p, _, err := configure([]string{"-schema", writeSchema(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Policies) != 0 {
		t.Errorf("default policies = %d, want 0", len(p.Policies))
	}
}

func TestConfigureServerTimeouts(t *testing.T) {
	sp := writeSchema(t)
	_, opts, err := configure([]string{"-schema", sp})
	if err != nil {
		t.Fatal(err)
	}
	if opts.readHeaderTimeout != defaultReadHeaderTimeout || opts.readTimeout != defaultReadTimeout ||
		opts.writeTimeout != defaultWriteTimeout || opts.idleTimeout != defaultIdleTimeout {
		t.Errorf("default timeouts = %v/%v/%v/%v", opts.readHeaderTimeout, opts.readTimeout, opts.writeTimeout, opts.idleTimeout)
	}
	_, opts, err = configure([]string{"-schema", sp,
		"-read-header-timeout", "1s", "-read-timeout", "0", "-write-timeout", "3s", "-idle-timeout", "4s"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.readHeaderTimeout != time.Second || opts.readTimeout != 0 ||
		opts.writeTimeout != 3*time.Second || opts.idleTimeout != 4*time.Second {
		t.Errorf("explicit timeouts = %v/%v/%v/%v", opts.readHeaderTimeout, opts.readTimeout, opts.writeTimeout, opts.idleTimeout)
	}
	for _, flag := range []string{"-read-header-timeout", "-read-timeout", "-write-timeout", "-idle-timeout"} {
		if _, _, err := configure([]string{"-schema", sp, flag, "-1s"}); err == nil ||
			!strings.Contains(err.Error(), flag+" must not be negative") {
			t.Errorf("%s -1s: error = %v", flag, err)
		}
	}
}

// TestServerDropsStalledClient proves the configured timeouts actually tear
// down a connection that sends nothing: before this fix axmld used a zero
// http.Server and a stalled client held its goroutine forever.
func TestServerDropsStalledClient(t *testing.T) {
	srv := newHTTPServer(http.NewServeMux(), options{readHeaderTimeout: 150 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Open the request line, then stall mid-headers.
	if _, err := conn.Write([]byte("GET /wsdl HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled connection not closed by the server: read err = %v", err)
	}
}
