package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/telemetry"
)

// RewriteDocument rewrites the document in place into the target schema and
// returns the (possibly new) root: when the root itself is a function node,
// invoking it replaces it by the returned element. The returned document is
// an instance of the target schema, or an error explains why the rewriting
// was refused (safe mode) or failed (possible mode, with any side-effecting
// calls already recorded in the Audit).
//
// RewriteDocument is the documented context-free wrapper over
// RewriteDocumentContext, running under context.Background().
func (rw *Rewriter) RewriteDocument(root *doc.Node, mode Mode) (*doc.Node, error) {
	return rw.RewriteDocumentContext(context.Background(), root, mode)
}

// RewriteDocumentContext is RewriteDocument under a context: cancellation or
// deadline expiry aborts the rewriting between (and, for context-aware
// invokers, during) service calls, returning the context's error. Calls
// already performed remain recorded in the Audit.
func (rw *Rewriter) RewriteDocumentContext(ctx context.Context, root *doc.Node, mode Mode) (*doc.Node, error) {
	typ, err := rw.documentType(root)
	if err != nil {
		return nil, err
	}
	out, err := rw.RewriteForestContext(ctx, []*doc.Node{root}, typ, mode)
	if err != nil {
		return nil, err
	}
	if len(out) != 1 {
		return nil, &NotSafeError{Msg: fmt.Sprintf("document rewriting produced %d roots", len(out))}
	}
	return out[0], nil
}

// RewriteForest rewrites a forest into the given word type — the operation
// the Schema Enforcement module applies to service parameters (typ = τ_in)
// and results (typ = τ_out). Trees are mutated in place; the returned slice
// is the new top level. Context-free wrapper over RewriteForestContext.
func (rw *Rewriter) RewriteForest(forest []*doc.Node, typ *regex.Regex, mode Mode) ([]*doc.Node, error) {
	return rw.RewriteForestContext(context.Background(), forest, typ, mode)
}

// RewriteForestContext is RewriteForest under a context (see
// RewriteDocumentContext for the cancellation contract). With
// Rewriter.Parallelism above 1 the rewriting runs on the parallel
// materialization engine (see parallel.go); at 1 it takes the sequential
// code paths unchanged.
func (rw *Rewriter) RewriteForestContext(ctx context.Context, forest []*doc.Node, typ *regex.Regex, mode Mode) ([]*doc.Node, error) {
	if rw.Invoker == nil {
		return nil, fmt.Errorf("core: Rewriter has no Invoker; use CheckForest for static analysis")
	}
	// Every top-level rewriting carries an ID — generated here unless the
	// caller pinned one with telemetry.WithTraceID — stamped on call records,
	// policy events and spans so a slow trace matches its audit trail.
	id := telemetry.TraceIDFrom(ctx)
	if id == "" {
		id = telemetry.NewID()
		ctx = telemetry.WithTraceID(ctx, id)
	}
	ins := rw.Instruments
	sink := &stampSink{inner: rw.Audit, extra: rw.Events, ins: ins, id: id}
	if ins == nil {
		return rw.rewriteForest(ctx, forest, typ, mode, sink)
	}
	ctx = telemetry.WithRegistry(ctx, ins.Registry())
	ctx, span := telemetry.StartSpan(ctx, rewriteSpanName(mode))
	span.SetAttr("rewrite_id", id)
	span.SetAttr("k", strconv.Itoa(rw.K))
	start := time.Now()
	out, err := rw.rewriteForest(ctx, forest, typ, mode, sink)
	ins.observeRewrite(mode, time.Since(start), err, id)
	span.End(err)
	return out, err
}

// rewriteForest is the uninstrumented body of RewriteForestContext; sink is
// the (stamping) event sink the whole rewriting reports into.
func (rw *Rewriter) rewriteForest(ctx context.Context, forest []*doc.Node, typ *regex.Regex, mode Mode, sink EventSink) ([]*doc.Node, error) {
	ex := &executor{rw: rw, ctx: WithEventSink(ctx, sink), mode: mode, audit: rw.Audit,
		st: &execState{
			paramsDone: map[*doc.Node]bool{},
			permafrost: map[*doc.Node]bool{},
			sched:      newParScheduler(rw.Parallelism),
		}}
	if mode == Mixed {
		var pre []*doc.Node
		var err error
		if ex.st.sched != nil {
			pre, err = ex.preInvokeBatch(forest, 0, nil)
		} else {
			pre, err = ex.preInvoke(forest, 0, nil)
		}
		if err != nil {
			return nil, err
		}
		forest = pre
		ex.mode = Safe
	}
	switch mode {
	case Safe, Mixed:
		// Refuse before the first call: safety is decided statically.
		if err := rw.CheckForest(forest, typ, Safe); err != nil {
			return nil, err
		}
	case Possible:
		// A hopeless request is refused with zero side effects; failures
		// after this point stem from unlucky actual returns.
		if err := rw.CheckForest(forest, typ, Possible); err != nil {
			return nil, err
		}
	}
	return ex.forest(forest, typ, nil)
}

// execState is the rewriting state shared by every branch of one execution,
// including all parallel branches: the parameter/permafrost memos, the call
// budget and the worker scheduler. A nil sched selects the sequential code
// paths throughout.
type execState struct {
	mu sync.Mutex
	// paramsDone marks function nodes whose parameters have been
	// materialized into input instances (or arrived conformant from an
	// invocation result).
	paramsDone map[*doc.Node]bool
	// permafrost marks functions that can never be invoked: undeclared,
	// non-invocable, or parameters beyond repair in lenient mode.
	permafrost map[*doc.Node]bool
	calls      int
	sched      *parScheduler
}

// executor is one branch's view of a rewriting: the shared state plus the
// branch's context (carrying its event sink) and call-record sink. The
// top-level executor records into the Rewriter's audit; parallel branches
// record into per-slot buffers that runSlots flushes in document order.
type executor struct {
	rw *Rewriter
	// ctx governs the whole rewriting and carries the branch's event sink;
	// it is passed to every Invoker.Invoke.
	ctx   context.Context
	mode  Mode
	audit *Audit
	st    *execState
}

func (ex *executor) paramsReady(n *doc.Node) bool {
	ex.st.mu.Lock()
	defer ex.st.mu.Unlock()
	return ex.st.paramsDone[n]
}

func (ex *executor) markParamsDone(n *doc.Node) {
	ex.st.mu.Lock()
	defer ex.st.mu.Unlock()
	ex.st.paramsDone[n] = true
}

func (ex *executor) isFrozen(n *doc.Node) bool {
	ex.st.mu.Lock()
	defer ex.st.mu.Unlock()
	return ex.st.permafrost[n]
}

func (ex *executor) freeze(n *doc.Node) {
	ex.st.mu.Lock()
	defer ex.st.mu.Unlock()
	ex.st.permafrost[n] = true
}

// reserveCall claims one unit of the invocation budget.
func (ex *executor) reserveCall() error {
	ex.st.mu.Lock()
	defer ex.st.mu.Unlock()
	if ex.st.calls >= ex.rw.MaxCalls {
		return fmt.Errorf("core: invocation budget of %d calls exhausted (recursive service?)", ex.rw.MaxCalls)
	}
	ex.st.calls++
	return nil
}

func (ex *executor) callCount() int {
	ex.st.mu.Lock()
	defer ex.st.mu.Unlock()
	return ex.st.calls
}

// forest runs the three phases on one forest against a word type and
// returns the rewritten top level.
func (ex *executor) forest(forest []*doc.Node, typ *regex.Regex, path []string) ([]*doc.Node, error) {
	// Phase 1: parameters, deepest functions first.
	for _, tree := range forest {
		for _, f := range doc.FuncsBottomUp(tree) {
			if err := ex.materializeParams(f, path); err != nil {
				return nil, err
			}
		}
	}
	// Phase 3 at this level: rewrite the word of root labels.
	out, err := ex.rewriteWord(forest, typ, path)
	if err != nil {
		return nil, err
	}
	// Phase 2: recurse into element subtrees — independent of one another,
	// so they fan out onto the scheduler when one is configured.
	elems := elementSlots(out)
	if err := ex.runSlots(len(elems), func(child *executor, k int) error {
		i := elems[k]
		tree := out[i]
		return child.element(tree, indexedPath(path, tree.Label, i))
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// elementSlots returns the indices of the element nodes of a forest — the
// slots the subtree-recursion phase fans out over.
func elementSlots(forest []*doc.Node) []int {
	out := make([]int, 0, len(forest))
	for i, n := range forest {
		if n.Kind == doc.Element {
			out = append(out, i)
		}
	}
	return out
}

// childPath returns path extended by one segment, in a freshly allocated
// slice. The naive append(path, seg) shares the parent's backing array:
// sibling recursions — concurrent ones especially — would overwrite each
// other's segment, corrupting the paths reported in errors and events.
func childPath(path []string, seg string) []string {
	out := make([]string, len(path)+1)
	copy(out, path)
	out[len(path)] = seg
	return out
}

// indexedPath is childPath with a "label[i]" segment, built without fmt — it
// runs once per element subtree on the rewriting hot path.
func indexedPath(path []string, label string, i int) []string {
	return childPath(path, label+"["+strconv.Itoa(i)+"]")
}

// materializeParams rewrites f's parameters into its input type, memoized.
// Failures freeze f in lenient mode and abort in strict mode.
func (ex *executor) materializeParams(f *doc.Node, path []string) error {
	if ex.paramsReady(f) || ex.isFrozen(f) {
		return nil
	}
	c := ex.rw.Compiled
	fail := func(err error) error {
		if ex.rw.StrictParams {
			return err
		}
		ex.freeze(f)
		return nil
	}
	in, isData, exists := c.InputType(c.Table.Intern(f.Label))
	if !exists {
		return fail(&NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("function %q is not declared by either schema", f.Label)})
	}
	if isData {
		kids, err := ex.collapseToData(f.Children, childPath(path, "@"+f.Label))
		if err != nil {
			return fail(err)
		}
		f.Children = kids
		ex.markParamsDone(f)
		return nil
	}
	kids, err := ex.forest(f.Children, in, childPath(path, "@"+f.Label))
	if err != nil {
		return fail(err)
	}
	f.Children = kids
	ex.markParamsDone(f)
	return nil
}

// collapseToData materializes a forest into pure text: data-returning
// invocable functions are called, anything else non-text is an error.
func (ex *executor) collapseToData(children []*doc.Node, path []string) ([]*doc.Node, error) {
	c := ex.rw.Compiled
	out := make([]*doc.Node, 0, len(children))
	for _, ch := range children {
		switch ch.Kind {
		case doc.Text:
			out = append(out, ch)
		case doc.Func:
			fi := c.Func(c.Table.Intern(ch.Label))
			if fi == nil || !fi.Invocable || fi.Out != nil || ex.rw.K < 1 {
				return nil, &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("cannot collapse %q to atomic data", ch.Label)}
			}
			if err := ex.materializeParams(ch, path); err != nil {
				return nil, err
			}
			if ex.isFrozen(ch) {
				return nil, &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("parameters of %q cannot be fixed", ch.Label)}
			}
			res, err := ex.invoke(ch, 1)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		default:
			return nil, &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("element %q where atomic data is required", ch.Label)}
		}
	}
	return out, nil
}

// element rewrites one element node in place.
func (ex *executor) element(e *doc.Node, path []string) error {
	c := ex.rw.Compiled
	content, isData, declared := c.ContentModel(e.Label)
	if !declared {
		if ex.rw.ctx.Strict {
			return &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("element %q is not declared by the target schema", e.Label)}
		}
		return nil
	}
	if isData {
		kids, err := ex.collapseToData(e.Children, path)
		if err != nil {
			return err
		}
		e.Children = kids
		return nil
	}
	for _, ch := range e.Children {
		if ch.Kind == doc.Text && strings.TrimSpace(ch.Value) != "" {
			return &NotSafeError{Path: pathString(path), Msg: fmt.Sprintf("element %q has structured content but contains text", e.Label)}
		}
	}
	kids, err := ex.rewriteWord(e.Children, content, path)
	if err != nil {
		return err
	}
	e.Children = kids
	elems := elementSlots(kids)
	return ex.runSlots(len(elems), func(child *executor, k int) error {
		i := elems[k]
		ch := kids[i]
		return child.element(ch, indexedPath(path, ch.Label, i))
	})
}

// item is one child slot during word rewriting.
type item struct {
	node    *doc.Node
	depth   int
	kept    bool // decided keep (tentative in possible mode)
	forced  bool // backtracking flipped this occurrence to "must call"
	pending bool // decided invoke, dispatch deferred to the round's batch
}

// rewriteWord performs the per-node decision loop: scan left to right, for
// each invocable function occurrence test whether keeping it preserves the
// verdict; keep if so, invoke otherwise. In possible mode a final mismatch
// backtracks over keeps made after the last call (left-to-right rewritings
// never revisit positions left of an invocation).
//
// Safe mode on the parallel engine pipelines within the word: verdicts are
// fixed by the same left-to-right scan, but the decided invocations dispatch
// as one concurrent batch per round (decideParallel). Possible mode always
// runs the sequential loop — backtracking revisits earlier decisions, which
// a concurrent batch could not honor.
func (ex *executor) rewriteWord(children []*doc.Node, typ *regex.Regex, path []string) ([]*doc.Node, error) {
	w := &wordRun{ex: ex, typ: typ}
	w.items = make([]*item, len(children))
	backing := make([]item, len(children)) // one allocation for the whole word
	for i, ch := range children {
		backing[i].node = ch
		w.items[i] = &backing[i]
	}
	if ex.st.sched != nil && ex.mode == Safe {
		if err := w.decideParallel(); err != nil {
			return nil, err
		}
	} else if err := w.decideFrom(0); err != nil {
		return nil, err
	}
	// Final verification, with possible-mode backtracking over keeps made
	// after the last invocation (left-to-right rewritings never revisit
	// positions left of a performed call).
	for {
		nodes := make([]*doc.Node, len(w.items))
		for i, it := range w.items {
			nodes[i] = it.node
		}
		if ex.rw.ctx.MatchWord(typ, nodes) {
			return nodes, nil
		}
		if ex.mode != Possible || len(w.kept) == 0 {
			return nil, &NotSafeError{
				Path: pathString(path),
				Msg: fmt.Sprintf("rewriting finished on %v which does not match %s (mode %s, %d calls made)",
					forestLabels(nodes), typ.String(ex.rw.Compiled.Table), ex.mode, ex.callCount()),
			}
		}
		// Flip the most recent keep to a forced call and resume there.
		ex.rw.Instruments.countBacktrack()
		flip := w.kept[len(w.kept)-1]
		w.kept = w.kept[:len(w.kept)-1]
		flip.kept = false
		flip.forced = true
		pos := 0
		for i, it := range w.items {
			if it == flip {
				pos = i
				break
			}
		}
		if err := w.decideFrom(pos); err != nil {
			return nil, err
		}
	}
}

// wordRun carries the mutable state of one word-rewriting pass.
type wordRun struct {
	ex    *executor
	typ   *regex.Regex
	items []*item
	kept  []*item // keeps decided since the last invocation
	// tokScratch backs tokens(): each verdict consumes its slice before the
	// next decision rebuilds it, and a word run never queries concurrently.
	tokScratch []Token
}

// decideFrom runs the left-to-right decision loop starting at index j: for
// every invocable occurrence, tentatively keep it and test the verdict;
// invoke it when keeping breaks the verdict (or when backtracking forced it).
func (w *wordRun) decideFrom(j int) error {
	ex := w.ex
	for j < len(w.items) {
		it := w.items[j]
		if !ex.callable(it) {
			j++
			continue
		}
		if !it.forced {
			it.kept = true
			ok, err := ex.rw.wordOK(w.tokens(), w.typ, ex.mode)
			if err != nil {
				return err
			}
			if ok {
				w.kept = append(w.kept, it)
				ex.rw.Instruments.countKeep()
				j++
				continue
			}
			it.kept = false
		}
		ex.rw.Instruments.countInvoke()
		res, err := ex.invoke(it.node, it.depth+1)
		if err != nil {
			if ex.degradable(err) {
				// Possible mode treats an exhausted policy like an unlucky
				// answer: freeze the occurrence and let the final
				// verification backtrack over the remaining keeps instead of
				// aborting the whole rewrite.
				ex.freeze(it.node)
				it.forced = false
				Emit(ex.ctx, InvokeEvent{Func: it.node.Label, Endpoint: EndpointOf(it.node),
					Kind: EventDegraded, Err: err.Error()})
				j++
				continue
			}
			return err
		}
		spliced := make([]*item, 0, len(w.items)-1+len(res))
		spliced = append(spliced, w.items[:j]...)
		for _, n := range res {
			spliced = append(spliced, &item{node: n, depth: it.depth + 1})
			if n.Kind == doc.Func {
				// Output instances conform: parameters arrive materialized.
				ex.markParamsDone(n)
			}
		}
		spliced = append(spliced, w.items[j+1:]...)
		w.items = spliced
		w.kept = w.kept[:0] // nothing left of a call may flip
		// Do not advance: returned occurrences are processed in order.
	}
	return nil
}

// callable reports whether the item is a function occurrence the executor
// may still invoke.
func (ex *executor) callable(it *item) bool {
	if it.node.Kind != doc.Func || it.kept || it.depth >= ex.rw.K {
		return false
	}
	if ex.isFrozen(it.node) {
		return false
	}
	c := ex.rw.Compiled
	fi := c.Func(c.Table.Intern(it.node.Label))
	if fi == nil || !fi.Invocable {
		return false
	}
	return ex.paramsReady(it.node)
}

// tokens projects items to analysis tokens; kept and uncallable functions
// are frozen.
func (w *wordRun) tokens() []Token {
	ex := w.ex
	c := ex.rw.Compiled
	out := w.tokScratch[:0]
	for _, it := range w.items {
		if it.node.Kind == doc.Text {
			continue
		}
		tok := Token{Sym: c.Table.Intern(it.node.Label), Node: it.node, Depth: it.depth}
		if it.node.Kind == doc.Func && (it.kept || !ex.callable(it)) {
			tok.Frozen = true
		}
		out = append(out, tok)
	}
	w.tokScratch = out
	return out
}

// degradable reports whether an invocation failure should be degraded to a
// frozen occurrence plus backtracking (Possible mode, transient failure, and
// the rewriting itself not cancelled) rather than aborting the rewrite.
func (ex *executor) degradable(err error) bool {
	return ex.mode == Possible && ex.ctx.Err() == nil && IsTransientCall(err)
}

// invoke performs one service call with validation and auditing.
func (ex *executor) invoke(call *doc.Node, depth int) ([]*doc.Node, error) {
	if err := ex.ctx.Err(); err != nil {
		return nil, err
	}
	if err := ex.reserveCall(); err != nil {
		return nil, err
	}
	ins := ex.rw.Instruments
	ictx := ex.ctx
	var span *telemetry.Span
	var start time.Time
	var epi *endpointInstruments
	if ins != nil {
		epi = ins.endpoint(EndpointOf(call))
		ictx, span = telemetry.StartSpan(ex.ctx, epi.spanName)
		span.SetAttr("func", call.Label)
		start = time.Now()
	}
	res, err := ex.rw.Invoker.Invoke(ictx, call)
	if epi != nil {
		epi.seconds.ObserveExemplar(time.Since(start).Seconds(), span.TraceID())
		if err != nil {
			epi.errors.Inc()
		}
		span.End(err)
	}
	if err != nil {
		return nil, fmt.Errorf("core: invoking %q: %w", call.Label, err)
	}
	if ex.rw.ValidateReturns {
		if err := ex.rw.ctx.IsOutputInstance(call.Label, res); err != nil {
			fixed, ok := ex.applyConverters(call, res)
			if !ok {
				return nil, fmt.Errorf("core: %q returned a non-conforming result: %w", call.Label, err)
			}
			res = fixed
		}
	}
	c := ex.rw.Compiled
	var cost float64
	if fi := c.Func(c.Table.Intern(call.Label)); fi != nil {
		cost = fi.Cost
	}
	ex.audit.Record(CallRecord{Func: call.Label, Depth: depth, Cost: cost,
		ResultNodes: len(res), Rewrite: telemetry.TraceIDFrom(ex.ctx)})
	return res, nil
}

// preInvoke is the Mixed mode's speculative pass: invoke every outermost
// function the PreInvoke predicate admits (default: side-effect-free and
// zero cost), splice the actual results, and recurse into them while depth
// allows. The subsequent safe analysis then works on the concrete data.
// This is the sequential pass; the parallel engine batches the same
// admissible calls per round instead (preInvokeBatch in parallel.go).
func (ex *executor) preInvoke(forest []*doc.Node, depth int, path []string) ([]*doc.Node, error) {
	pred := ex.rw.PreInvoke
	if pred == nil {
		pred = func(fi *FuncInfo) bool { return !fi.SideEffects && fi.Cost == 0 }
	}
	c := ex.rw.Compiled
	out := make([]*doc.Node, 0, len(forest))
	for _, n := range forest {
		if n.Kind == doc.Element {
			kids, err := ex.preInvoke(n.Children, depth, childPath(path, n.Label))
			if err != nil {
				return nil, err
			}
			n.Children = kids
			out = append(out, n)
			continue
		}
		if n.Kind != doc.Func || depth >= ex.rw.K {
			out = append(out, n)
			continue
		}
		fi := c.Func(c.Table.Intern(n.Label))
		if fi == nil || !fi.Invocable || !pred(fi) {
			out = append(out, n)
			continue
		}
		for _, f := range doc.FuncsBottomUp(n) {
			if err := ex.materializeParams(f, path); err != nil {
				return nil, err
			}
		}
		if ex.isFrozen(n) {
			out = append(out, n)
			continue
		}
		res, err := ex.invoke(n, depth+1)
		if err != nil {
			if ex.ctx.Err() == nil && IsTransientCall(err) {
				// The speculative pass is best-effort: a flaky endpoint
				// leaves the call intensional and the safe analysis decides
				// whether the document still rewrites without it.
				ex.freeze(n)
				Emit(ex.ctx, InvokeEvent{Func: n.Label, Endpoint: EndpointOf(n),
					Kind: EventDegraded, Err: err.Error()})
				out = append(out, n)
				continue
			}
			return nil, err
		}
		for _, r := range res {
			if r.Kind == doc.Func {
				ex.markParamsDone(r)
			}
		}
		deeper, err := ex.preInvoke(res, depth+1, path)
		if err != nil {
			return nil, err
		}
		out = append(out, deeper...)
	}
	return out, nil
}
