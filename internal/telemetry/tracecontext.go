package telemetry

// W3C Trace Context propagation. Outbound calls carry a `traceparent`
// header so a client → axmld → service (or axmld → axmld) request shares
// one trace ID across processes — the same ID that stamps audit events,
// span trees, and request log lines on every hop.
//
// The wire format is the W3C one:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Internally IDs are 17-byte "xxxxxxxx-xxxxxxxx" strings (see NewID).
// Injection strips the dash and left-pads the trace ID with 16 zero
// digits; extraction reverses the mapping when it sees our padding, and
// otherwise keeps the foreign 32-hex trace ID opaque so a trace started
// by an external system keeps its identity through this process.

import (
	"context"
	"net/http"
)

// TraceparentHeader is the canonical header name used for propagation.
const TraceparentHeader = "Traceparent"

// isLowerHex reports whether s is entirely lowercase hex digits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isZeroHex reports whether s is entirely '0' digits.
func isZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// isInternalID reports whether s has the internal "xxxxxxxx-xxxxxxxx"
// shape minted by NewID.
func isInternalID(s string) bool {
	return len(s) == 17 && s[8] == '-' && isLowerHex(s[:8]) && isLowerHex(s[9:])
}

// wireTraceID maps a trace ID to its 32-hex wire form, or "" if the ID
// fits neither the internal shape nor an opaque 32-hex foreign ID.
func wireTraceID(id string) string {
	switch {
	case isInternalID(id):
		return "0000000000000000" + id[:8] + id[9:]
	case len(id) == 32 && isLowerHex(id) && !isZeroHex(id):
		return id
	}
	return ""
}

// wireSpanID maps a span ID to its 16-hex wire form, or "".
func wireSpanID(id string) string {
	switch {
	case isInternalID(id):
		return id[:8] + id[9:]
	case len(id) == 16 && isLowerHex(id) && !isZeroHex(id):
		return id
	}
	return ""
}

// FormatTraceparent renders a traceparent value for the given trace and
// parent span IDs (internal "xxxxxxxx-xxxxxxxx" or raw wire hex). It
// returns "" if either ID cannot be mapped to the wire format.
func FormatTraceparent(traceID, parentID string) string {
	t := wireTraceID(traceID)
	p := wireSpanID(parentID)
	if t == "" || p == "" {
		return ""
	}
	return "00-" + t + "-" + p + "-01"
}

// InjectTraceContext writes a traceparent header describing the calling
// context: the trace ID in effect (enclosing span's or WithTraceID's)
// and the enclosing span as parent. When no span encloses the call a
// fresh parent ID is minted so the receiver still has a span to point
// at. A context with no trace ID injects nothing.
func InjectTraceContext(ctx context.Context, h http.Header) {
	if ctx == nil || h == nil {
		return
	}
	traceID := TraceIDFrom(ctx)
	if traceID == "" {
		return
	}
	parent := SpanFrom(ctx).SpanID()
	if parent == "" {
		parent = NewID()
	}
	if v := FormatTraceparent(traceID, parent); v != "" {
		h.Set(TraceparentHeader, v)
	}
}

// ExtractTraceContext parses an incoming traceparent header. It returns
// the trace and parent-span IDs in internal form (wire IDs minted by
// this codebase round-trip exactly; foreign ones stay as opaque wire
// hex) and ok=false for a missing or malformed header.
func ExtractTraceContext(h http.Header) (traceID, parentID string, ok bool) {
	if h == nil {
		return "", "", false
	}
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// ParseTraceparent parses one traceparent value. Per the W3C spec a
// version-00 value is exactly 55 bytes; higher (unknown) versions are
// accepted if their first 55 bytes parse and any extra data is
// dash-separated. Version ff and all-zero IDs are invalid.
func ParseTraceparent(v string) (traceID, parentID string, ok bool) {
	if len(v) < 55 {
		return "", "", false
	}
	ver, tid, pid, flags := v[0:2], v[3:35], v[36:52], v[53:55]
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	if !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if ver == "00" && len(v) != 55 {
		return "", "", false
	}
	if len(v) > 55 && v[55] != '-' {
		return "", "", false
	}
	if !isLowerHex(tid) || isZeroHex(tid) || !isLowerHex(pid) || isZeroHex(pid) || !isLowerHex(flags) {
		return "", "", false
	}
	if isZeroHex(tid[:16]) {
		// Our own padding: restore the internal dashed form.
		traceID = tid[16:24] + "-" + tid[24:32]
	} else {
		traceID = tid
	}
	parentID = pid[:8] + "-" + pid[8:16]
	return traceID, parentID, true
}

// WithRemoteTrace returns a context carrying a trace ID and parent span
// extracted from an incoming request. Root spans started below join the
// remote trace and link to the remote parent span.
func WithRemoteTrace(ctx context.Context, traceID, parentID string) context.Context {
	if traceID == "" {
		return ctx
	}
	ctx = context.WithValue(ctx, ctxTraceIDKey, traceID)
	if parentID != "" {
		ctx = context.WithValue(ctx, ctxRemoteParentKey, parentID)
	}
	return ctx
}
