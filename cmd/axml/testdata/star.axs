# Schema (*) from the paper, in the compact text DSL.
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.date
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
