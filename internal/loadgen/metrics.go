package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"axml/internal/telemetry"
)

// scrape holds the per-handler request histograms parsed out of one
// /metrics exposition: cumulative bucket counts keyed by handler and `le`
// upper bound, in the text 0.0.4 format internal/telemetry writes.
type scrape struct {
	// buckets[handler][le] = cumulative count; +Inf is math.Inf(1).
	buckets map[string]map[float64]uint64
}

// parseMetrics extracts the axml_http_request_seconds histograms from a
// Prometheus text exposition. Lines of other families are skipped.
func parseMetrics(r io.Reader) (*scrape, error) {
	s := &scrape{buckets: map[string]map[float64]uint64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	const family = "axml_http_request_seconds_bucket{"
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return nil, fmt.Errorf("loadgen: malformed metric line %q", line)
		}
		labels, valueStr := rest[:end], strings.TrimSpace(rest[end+1:])
		handler, le := "", ""
		for _, kv := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			v = strings.Trim(v, `"`)
			switch k {
			case "handler":
				handler = v
			case "le":
				le = v
			}
		}
		if handler == "" || le == "" {
			continue
		}
		ub := math.Inf(1)
		if le != "+Inf" {
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: bad le %q: %v", le, err)
			}
			ub = f
		}
		n, err := strconv.ParseUint(valueStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad bucket count in %q: %v", line, err)
		}
		if s.buckets[handler] == nil {
			s.buckets[handler] = map[float64]uint64{}
		}
		s.buckets[handler][ub] = n
	}
	return s, sc.Err()
}

// handlerCount returns the +Inf cumulative count for a handler.
func (s *scrape) handlerCount(handler string) uint64 {
	return s.buckets[handler][math.Inf(1)]
}

// quantileBucket computes the q-quantile of a handler's histogram as the
// upper bound of the bucket holding it — the server-side counterpart of
// hist.quantile at DefBuckets resolution. delta subtracts a prior scrape so
// only requests made between the two scrapes count.
func (s *scrape) quantileBucket(handler string, q float64, prior *scrape) (float64, bool) {
	cur := s.buckets[handler]
	if cur == nil {
		return 0, false
	}
	var before map[float64]uint64
	if prior != nil {
		before = prior.buckets[handler]
	}
	bounds := make([]float64, 0, len(cur))
	for ub := range cur {
		if !math.IsInf(ub, 1) {
			bounds = append(bounds, ub)
		}
	}
	sort.Float64s(bounds)
	total := cur[math.Inf(1)] - before[math.Inf(1)]
	if total == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for _, ub := range bounds {
		if cur[ub]-before[ub] >= rank {
			return ub, true
		}
	}
	return math.Inf(1), true
}

// MetricsCheck is the client-vs-server histogram comparison for one handler.
// Two invariants are enforced: request counts must agree exactly (every
// client request was observed by exactly one server histogram sample), and
// the client's p99 bucket must not sit below the server's by more than one
// bucket of edge jitter — a client cannot observe requests faster than the
// server that handled them. The upper direction is not bounded: client
// wall-clock adds transport and queueing on top of server handler time,
// which at sub-millisecond bucket widths legitimately spans several
// buckets; both bucket values are reported so the gap stays visible.
type MetricsCheck struct {
	Handler     string  `json:"handler"`
	ClientCount uint64  `json:"client_count"`
	ServerCount uint64  `json:"server_count"`
	ClientP99   float64 `json:"client_p99_bucket_s"`
	ServerP99   float64 `json:"server_p99_bucket_s"`
	OK          bool    `json:"ok"`
	Reason      string  `json:"reason,omitempty"`
}

// crossCheck compares the client-side histogram for one handler against the
// server's /metrics delta between two scrapes.
func crossCheck(handler string, client *hist, before, after *scrape) MetricsCheck {
	chk := MetricsCheck{Handler: handler}
	chk.ClientCount = client.count()
	chk.ServerCount = after.handlerCount(handler) - before.handlerCount(handler)
	if chk.ClientCount != chk.ServerCount {
		chk.Reason = fmt.Sprintf("request counts diverge: client %d, server %d", chk.ClientCount, chk.ServerCount)
		return chk
	}
	if chk.ClientCount == 0 {
		chk.OK = true
		return chk
	}
	serverP99, ok := after.quantileBucket(handler, 0.99, before)
	if !ok {
		chk.Reason = "server histogram missing"
		return chk
	}
	chk.ServerP99 = serverP99
	// Re-bin the client histogram onto the server's grid and read its p99 at
	// the server's resolution before comparing bucket indices.
	def := telemetry.DefBuckets
	cum, total := client.rebin(def)
	rank := uint64(math.Ceil(0.99 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	clientP99 := math.Inf(1)
	idx := len(def)
	for i, ub := range def {
		if cum[i] >= rank {
			clientP99, idx = ub, i
			break
		}
	}
	chk.ClientP99 = clientP99
	sIdx := len(def)
	for i, ub := range def {
		if ub == serverP99 {
			sIdx = i
			break
		}
	}
	if idx < sIdx-1 {
		chk.Reason = fmt.Sprintf("client p99 bucket below the server's: client %gs, server %gs", clientP99, serverP99)
		return chk
	}
	chk.OK = true
	return chk
}
