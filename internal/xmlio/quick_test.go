package xmlio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"axml/internal/doc"
)

// randDoc builds a random intensional document. Text values avoid
// leading/trailing whitespace (the parser trims) and empty strings (dropped).
func randDoc(rng *rand.Rand, depth int) *doc.Node {
	// Colon-containing labels are excluded: XML namespace prefixes other
	// than int: are not modeled and collapse to local names on parse (see
	// the package documentation).
	labels := []string{"a", "b", "cd", "x-y", "_под"}
	texts := []string{"v", "hello world", "<&>", `"quoted"`, "123", "héllo"}
	label := labels[rng.Intn(len(labels))]
	if depth <= 0 {
		return doc.Elem(label, doc.TextNode(texts[rng.Intn(len(texts))]))
	}
	n := rng.Intn(4)
	kids := make([]*doc.Node, 0, n)
	onlyText := n == 1 && rng.Intn(2) == 0
	if onlyText {
		kids = append(kids, doc.TextNode(texts[rng.Intn(len(texts))]))
	} else {
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				params := []*doc.Node{}
				if rng.Intn(2) == 0 {
					params = append(params, randDoc(rng, depth-1))
				}
				call := doc.Call("F"+labels[rng.Intn(len(labels))], params...)
				if rng.Intn(2) == 0 {
					call.Service = &doc.ServiceRef{
						Endpoint: "http://svc.example/soap",
						Method:   call.Label,
					}
				}
				kids = append(kids, call)
				continue
			}
			kids = append(kids, randDoc(rng, depth-1))
		}
	}
	return doc.Elem(label, kids...)
}

// Property: serialize-then-parse is the identity on random documents.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randDoc(rng, 4)
		s, err := String(orig)
		if err != nil {
			t.Logf("seed %d: serialize: %v", seed, err)
			return false
		}
		back, err := ParseString(s)
		if err != nil {
			t.Logf("seed %d: parse: %v\n%s", seed, err, s)
			return false
		}
		if !orig.Equal(back) {
			t.Logf("seed %d: round trip changed document:\n%s\nvs\n%s", seed, orig, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Fragment output re-parses to the same tree.
func TestQuickFragmentRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randDoc(rng, 3)
		frag := Fragment(orig)
		back, err := ParseString(frag)
		if err != nil {
			return false
		}
		return orig.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
