package telemetry

// The flight recorder answers "why was that request slow?" after the
// fact: a bounded in-memory set keeps the N slowest requests plus a
// ring of recent failures, each with its span tree, audit events, and a
// per-stage latency breakdown, served at /debug/slow. Admission is a
// single atomic threshold load on the hot path, so fast requests pay
// nothing beyond the comparison.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stages for per-request latency attribution.
const (
	StageParse = iota
	StageCompile
	StageRewrite
	StageInvoke
	StageSerialize
	numStages
)

var stageNames = [numStages]string{"parse", "compile", "rewrite", "invoke", "serialize"}

// Stages accumulates per-stage wall time for one request. It is written
// by the handler goroutine via Set/Add; a nil *Stages no-ops so
// instrumented code never branches on whether a recorder is attached.
type Stages struct {
	d [numStages]int64 // nanoseconds
}

// Set records the duration of one stage (last write wins).
func (s *Stages) Set(stage int, d time.Duration) {
	if s == nil || stage < 0 || stage >= numStages {
		return
	}
	s.d[stage] = int64(d)
}

// Add accumulates into one stage (for stages that run in pieces).
func (s *Stages) Add(stage int, d time.Duration) {
	if s == nil || stage < 0 || stage >= numStages {
		return
	}
	s.d[stage] += int64(d)
}

// Seconds returns the recorded stages as a name → seconds map, omitting
// stages that never ran. Returns nil when nothing was recorded.
func (s *Stages) Seconds() map[string]float64 {
	if s == nil {
		return nil
	}
	var out map[string]float64
	for i, n := range s.d {
		if n > 0 {
			if out == nil {
				out = make(map[string]float64, numStages)
			}
			out[stageNames[i]] = time.Duration(n).Seconds()
		}
	}
	return out
}

// WithStages returns a context carrying st for downstream Set/Add calls.
func WithStages(ctx context.Context, st *Stages) context.Context {
	if st == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxStagesKey, st)
}

// StagesFrom returns the stage timer carried by ctx, or nil.
func StagesFrom(ctx context.Context) *Stages {
	if ctx == nil {
		return nil
	}
	st, _ := ctx.Value(ctxStagesKey).(*Stages)
	return st
}

// FlightEvent is one invocation-policy event (retry, breaker transition,
// timeout…) attached to a flight record. It mirrors the audit event
// stream without importing it, since telemetry sits below core.
type FlightEvent struct {
	Kind     string `json:"kind"`
	Func     string `json:"func,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Err      string `json:"error,omitempty"`
}

// FlightCall is one service invocation attached to a flight record.
type FlightCall struct {
	Func  string `json:"func"`
	Depth int    `json:"depth,omitempty"`
	Nodes int    `json:"result_nodes,omitempty"`
}

// FlightRecord is one admitted request: identity, outcome, latency
// attribution, and the trace evidence snapshotted at admission time.
type FlightRecord struct {
	TraceID       string             `json:"trace_id,omitempty"`
	Handler       string             `json:"handler"`
	Method        string             `json:"method"`
	Path          string             `json:"path"`
	Status        int                `json:"status"`
	Failed        bool               `json:"failed,omitempty"`
	Start         time.Time          `json:"start"`
	Duration      time.Duration      `json:"duration_ns"`
	RequestBytes  int64              `json:"request_bytes,omitempty"`
	ResponseBytes int64              `json:"response_bytes,omitempty"`
	Stages        map[string]float64 `json:"stages,omitempty"`
	Spans         []SpanRecord       `json:"spans,omitempty"`
	Events        []FlightEvent      `json:"events,omitempty"`
	Calls         []FlightCall       `json:"calls,omitempty"`
}

// Flight is the recorder: a sorted bounded set of the slowest requests
// plus a ring of the most recent failures. All methods are safe for
// concurrent use and nil-safe.
type Flight struct {
	slowCap int
	failCap int

	// threshold is the slowest set's admission floor in nanoseconds:
	// 0 until the set fills, then the duration of its fastest member.
	// Hot paths read it lock-free via Admits.
	threshold atomic.Int64

	mu       sync.Mutex
	slow     []FlightRecord // sorted by Duration descending
	failed   []FlightRecord // ring, oldest overwritten
	failNext int
	observed uint64
}

// DefaultFlightSlow and DefaultFlightFailed are the capacities used when
// NewFlight is given non-positive values.
const (
	DefaultFlightSlow   = 32
	DefaultFlightFailed = 64
)

// NewFlight returns a recorder keeping the slowCap slowest requests and
// the failCap most recent failures.
func NewFlight(slowCap, failCap int) *Flight {
	if slowCap <= 0 {
		slowCap = DefaultFlightSlow
	}
	if failCap <= 0 {
		failCap = DefaultFlightFailed
	}
	return &Flight{slowCap: slowCap, failCap: failCap}
}

// Admits reports whether a request with the given duration/outcome would
// be recorded — callers use it to skip snapshotting span trees and audit
// events for requests that would be dropped anyway. Nil recorders admit
// nothing.
func (f *Flight) Admits(d time.Duration, failed bool) bool {
	if f == nil {
		return false
	}
	return failed || int64(d) > f.threshold.Load()
}

// Observe records one request summary, if it qualifies. Failed requests
// always enter the failure ring; any request slower than the current
// floor enters the slowest set, evicting its fastest member.
func (f *Flight) Observe(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observed++
	if rec.Failed {
		if len(f.failed) < f.failCap {
			f.failed = append(f.failed, rec)
		} else {
			f.failed[f.failNext] = rec
			f.failNext = (f.failNext + 1) % f.failCap
		}
	}
	if len(f.slow) == f.slowCap && int64(rec.Duration) <= f.threshold.Load() {
		return
	}
	// Insert into the descending-sorted slowest set.
	i := len(f.slow)
	for i > 0 && f.slow[i-1].Duration < rec.Duration {
		i--
	}
	f.slow = append(f.slow, FlightRecord{})
	copy(f.slow[i+1:], f.slow[i:])
	f.slow[i] = rec
	if len(f.slow) > f.slowCap {
		f.slow = f.slow[:f.slowCap]
	}
	if len(f.slow) == f.slowCap {
		f.threshold.Store(int64(f.slow[len(f.slow)-1].Duration))
	}
}

// Slowest returns the retained slowest requests, slowest first.
func (f *Flight) Slowest() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightRecord(nil), f.slow...)
}

// Failed returns the retained failed requests, oldest first.
func (f *Flight) Failed() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, len(f.failed))
	if len(f.failed) == f.failCap {
		out = append(out, f.failed[f.failNext:]...)
		out = append(out, f.failed[:f.failNext]...)
	} else {
		out = append(out, f.failed...)
	}
	return out
}

// Observed returns how many requests were ever offered to Observe.
func (f *Flight) Observed() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.observed
}

// Handler serves the recorder state as JSON at /debug/slow. A nil
// recorder serves 503 so a disabled daemon still answers.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if f == nil {
			http.Error(w, "flight recorder disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"slow_capacity":   f.slowCap,
			"failed_capacity": f.failCap,
			"observed":        f.Observed(),
			"slowest":         f.Slowest(),
			"failed":          f.Failed(),
		})
	})
}
