// Package xmlio maps intensional documents to and from the XML syntax of
// Section 7 of the paper: function nodes are represented by elements in the
// namespace http://www.activexml.com/ns/int —
//
//	<int:fun endpointURL="http://forecast.example/soap"
//	         methodName="Get_Temp" namespaceURI="urn:weather">
//	  <int:params>
//	    <int:param><city>Paris</city></int:param>
//	  </int:params>
//	</int:fun>
//
// — appearing anywhere ordinary elements may appear. Parsing resolves
// namespaces through encoding/xml; serialization declares the int prefix on
// the root element whenever the document contains function nodes.
//
// Following the paper's single label domain, element namespaces other than
// the intensional one are not modeled: prefixed names collapse to their
// local part on parse, and labels should not contain ':'.
package xmlio

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"

	"axml/internal/doc"
)

// Namespace is the intensional-markup namespace of the Active XML system.
const Namespace = "http://www.activexml.com/ns/int"

// parseBuf carries a reusable body buffer plus a bytes.Reader view over it;
// the reader satisfies io.ByteReader, which keeps xml.NewDecoder from
// wrapping it in a fresh 4 KiB bufio.Reader on every parse — the single
// largest allocation on the serving hot path before pooling.
type parseBuf struct {
	data []byte
	rd   bytes.Reader
}

var parseBufPool = sync.Pool{New: func() any { return new(parseBuf) }}

// maxPooledParseBuf bounds what a returned buffer may retain, so one huge
// request does not pin its memory in the pool forever.
const maxPooledParseBuf = 1 << 20

// ByteSource adapts r for encoding/xml. Readers that already implement
// io.ByteReader (strings.Reader, bytes.Reader, bufio.Reader) pass through
// untouched; anything else — an http request body, typically — is drained
// into a pooled buffer first. The release func must be called once the parse
// is finished (decoded tokens are copies, so nothing references the buffer
// afterwards); err carries any read failure, including the typed
// *http.MaxBytesError a capped body produces.
func ByteSource(r io.Reader) (src io.Reader, release func(), err error) {
	if _, ok := r.(io.ByteReader); ok {
		return r, func() {}, nil
	}
	b := parseBufPool.Get().(*parseBuf)
	b.data, err = readAll(b.data[:0], r)
	if err != nil {
		parseBufPool.Put(b)
		return nil, nil, err
	}
	b.rd.Reset(b.data)
	return &b.rd, func() {
		if cap(b.data) <= maxPooledParseBuf {
			parseBufPool.Put(b)
		}
	}, nil
}

// readAll is io.ReadAll appending into a caller-owned buffer.
func readAll(buf []byte, r io.Reader) ([]byte, error) {
	if len(buf) == 0 && cap(buf) == 0 {
		buf = make([]byte, 0, 512)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// Parse reads one intensional XML document.
func Parse(r io.Reader) (*doc.Node, error) {
	src, release, err := ByteSource(r)
	if err != nil {
		return nil, fmt.Errorf("xmlio: %w", err)
	}
	defer release()
	dec := xml.NewDecoder(src)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmlio: no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("xmlio: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return parseElement(dec, t)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xmlio: stray text %q before root element", string(t))
			}
		case xml.ProcInst, xml.Comment, xml.Directive:
			// skip prolog
		}
	}
}

// ParseString parses from a string.
func ParseString(s string) (*doc.Node, error) { return Parse(strings.NewReader(s)) }

// parseElement parses the element that start opens, dispatching on the
// intensional namespace.
func parseElement(dec *xml.Decoder, start xml.StartElement) (*doc.Node, error) {
	if start.Name.Space == Namespace {
		if start.Name.Local != "fun" {
			return nil, fmt.Errorf("xmlio: unexpected intensional element <int:%s>", start.Name.Local)
		}
		return parseFun(dec, start)
	}
	n := doc.Elem(start.Name.Local)
	children, err := parseChildren(dec, start.Name)
	if err != nil {
		return nil, err
	}
	n.Children = children
	return n, nil
}

// parseChildren consumes tokens until the matching end element, dropping
// whitespace-only text when element children are present.
func parseChildren(dec *xml.Decoder, parent xml.Name) ([]*doc.Node, error) {
	var children []*doc.Node
	hasElem := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <%s>: %w", parent.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			hasElem = true
			child, err := parseElement(dec, t)
			if err != nil {
				return nil, err
			}
			children = append(children, child)
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) != "" {
				children = append(children, doc.TextNode(strings.TrimSpace(s)))
			}
		case xml.EndElement:
			_ = hasElem
			return children, nil
		}
	}
}

// parseFun parses an <int:fun> element.
func parseFun(dec *xml.Decoder, start xml.StartElement) (*doc.Node, error) {
	ref := doc.ServiceRef{}
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "endpointURL":
			ref.Endpoint = a.Value
		case "methodName":
			ref.Method = a.Value
		case "namespaceURI":
			ref.Namespace = a.Value
		}
	}
	if ref.Method == "" {
		return nil, fmt.Errorf("xmlio: <int:fun> without methodName")
	}
	var n *doc.Node
	if ref.Endpoint == "" && ref.Namespace == "" {
		n = doc.Call(ref.Method)
	} else {
		n = doc.CallAt(ref)
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <int:fun %s>: %w", ref.Method, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == Namespace && t.Name.Local == "params" {
				params, err := parseParams(dec)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, params...)
				continue
			}
			return nil, fmt.Errorf("xmlio: unexpected <%s> inside <int:fun>", t.Name.Local)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xmlio: stray text inside <int:fun>")
			}
		case xml.EndElement:
			return n, nil
		}
	}
}

// parseParams parses <int:params> as a sequence of <int:param> wrappers,
// each contributing its content nodes as parameters.
func parseParams(dec *xml.Decoder) ([]*doc.Node, error) {
	var out []*doc.Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <int:params>: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space != Namespace || t.Name.Local != "param" {
				return nil, fmt.Errorf("xmlio: unexpected <%s> inside <int:params>", t.Name.Local)
			}
			kids, err := parseChildren(dec, t.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, kids...)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xmlio: stray text inside <int:params>")
			}
		case xml.EndElement:
			return out, nil
		}
	}
}

// writeBufPool recycles serialization buffers: a document is rendered into a
// pooled bytes.Buffer and flushed to the destination in one Write, so the
// hot serving path performs no per-node fmt formatting or writer calls.
var writeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledWriteBuf bounds what a returned buffer may retain.
const maxPooledWriteBuf = 1 << 20

// Write serializes the document with two-space indentation and an XML
// declaration.
func Write(w io.Writer, n *doc.Node) error {
	buf := writeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledWriteBuf {
			writeBufPool.Put(buf)
		}
	}()
	buf.WriteString(xml.Header)
	p := &printer{b: buf}
	p.node(n, 0, n.HasFuncs())
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	return err
}

// flushWriterPool recycles the bufio.Writers behind WriteTo and Emitter:
// serialization streams through a fixed 32 KiB window instead of
// materializing the whole document a second time.
var flushWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) }}

// WriteTo serializes the document straight to w through a pooled
// bufio.Writer: same bytes as Write, but without an intermediate
// whole-document buffer — large responses flush in 32 KiB chunks.
func WriteTo(w io.Writer, n *doc.Node) error {
	bw := flushWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Reset(io.Discard)
		flushWriterPool.Put(bw)
	}()
	bw.WriteString(xml.Header)
	p := &printer{b: bw}
	p.node(n, 0, n.HasFuncs())
	bw.WriteByte('\n')
	return bw.Flush()
}

// String serializes to a string.
func String(n *doc.Node) (string, error) {
	var b strings.Builder
	if err := Write(&b, n); err != nil {
		return "", err
	}
	return b.String(), nil
}

// MustString serializes, panicking on error (nodes cannot normally fail).
func MustString(n *doc.Node) string {
	s, err := String(n)
	if err != nil {
		panic(err)
	}
	return s
}

// sink is the minimal writer surface the printer needs: satisfied by both
// bytes.Buffer (one-shot batch serialization) and bufio.Writer (direct
// streaming to a destination). Error handling stays out of the printer —
// bytes.Buffer cannot fail and bufio.Writer keeps the first error sticky
// until Flush reports it.
type sink interface {
	io.Writer
	WriteString(s string) (int, error)
	WriteByte(b byte) error
}

type printer struct {
	b sink
}

// indents covers the common nesting depths with precomputed two-space runs.
const indents = "                                                                "

func (p *printer) indent(depth int) {
	for n := 2 * depth; n > 0; {
		step := min(n, len(indents))
		p.b.WriteString(indents[:step])
		n -= step
	}
}

// escape writes s with XML text escaping; documents overwhelmingly carry
// clean text, so the scan-then-copy fast path avoids touching each rune.
func (p *printer) escape(s string) {
	if !strings.ContainsAny(s, "&<>'\"\t\n\r") {
		p.b.WriteString(s)
		return
	}
	_ = xml.EscapeText(p.b, []byte(s))
}

// attr writes ` name="value"` with attribute-value escaping.
func (p *printer) attr(name, value string) {
	p.b.WriteByte(' ')
	p.b.WriteString(name)
	p.b.WriteString(`="`)
	p.escape(value)
	p.b.WriteByte('"')
}

func (p *printer) nsDecl(declareNS bool) {
	if declareNS {
		p.attr("xmlns:int", Namespace)
	}
}

func (p *printer) node(n *doc.Node, depth int, declareNS bool) {
	switch n.Kind {
	case doc.Text:
		p.indent(depth)
		p.escape(n.Value)
		p.b.WriteByte('\n')
	case doc.Element:
		p.indent(depth)
		p.b.WriteByte('<')
		p.b.WriteString(n.Label)
		p.nsDecl(declareNS)
		if len(n.Children) == 0 {
			p.b.WriteString("/>\n")
			return
		}
		if len(n.Children) == 1 && n.Children[0].Kind == doc.Text {
			p.b.WriteByte('>')
			p.escape(n.Children[0].Value)
			p.b.WriteString("</")
			p.b.WriteString(n.Label)
			p.b.WriteString(">\n")
			return
		}
		p.b.WriteString(">\n")
		for _, c := range n.Children {
			p.node(c, depth+1, false)
		}
		p.indent(depth)
		p.b.WriteString("</")
		p.b.WriteString(n.Label)
		p.b.WriteString(">\n")
	case doc.Func:
		ref := doc.ServiceRef{Method: n.Label}
		if n.Service != nil {
			ref = *n.Service
		}
		p.indent(depth)
		p.b.WriteString("<int:fun")
		p.nsDecl(declareNS)
		if ref.Endpoint != "" {
			p.attr("endpointURL", ref.Endpoint)
		}
		p.attr("methodName", ref.Method)
		if ref.Namespace != "" {
			p.attr("namespaceURI", ref.Namespace)
		}
		if len(n.Children) == 0 {
			p.b.WriteString("/>\n")
			return
		}
		p.b.WriteString(">\n")
		p.indent(depth + 1)
		p.b.WriteString("<int:params>\n")
		for _, c := range n.Children {
			p.indent(depth + 2)
			p.b.WriteString("<int:param>\n")
			p.node(c, depth+3, false)
			p.indent(depth + 2)
			p.b.WriteString("</int:param>\n")
		}
		p.indent(depth + 1)
		p.b.WriteString("</int:params>\n")
		p.indent(depth)
		p.b.WriteString("</int:fun>\n")
	}
}
