package regex

import "sort"

// PosInfo is the Glushkov position analysis of an expression: every leaf
// occurrence (OpSym or OpClass) becomes a numbered position, and First,
// Last, Follow describe the position automaton. State 0 of that automaton is
// the synthetic start state; positions are numbered from 1.
//
// PosInfo is the bridge between content models and the automata package
// (which builds NFAs from it) and the basis of the one-unambiguity check
// that XML Schema — and hence XML Schema_int — imposes.
type PosInfo struct {
	// Classes[i] is the symbol class matched by position i+1. A plain
	// symbol leaf becomes a singleton class.
	Classes []Class
	// First lists the positions that can begin a word, ascending.
	First []int
	// Last lists the positions that can end a word, ascending.
	Last []int
	// Follow[i] lists the positions that can follow position i+1, ascending.
	Follow [][]int
	// Nullable reports whether ε ∈ L(r).
	Nullable bool
}

// Positions computes the Glushkov analysis of r. The result is memoized on
// the node — Regex values are immutable after construction and every caller
// treats PosInfo as read-only, so the analysis of a long-lived content model
// (validation and UPA checks revisit the same models on every message) is
// paid once; racing writers publish structurally identical values.
func Positions(r *Regex) *PosInfo {
	if p := r.pos.Load(); p != nil {
		return p
	}
	info := &PosInfo{}
	first, last, nullable := info.walk(r)
	info.First = first
	info.Last = last
	info.Nullable = nullable
	r.pos.Store(info)
	return info
}

// walk returns (first, last, nullable) for the subexpression, appending
// positions and follow sets to info as it goes.
func (info *PosInfo) walk(r *Regex) (first, last []int, nullable bool) {
	switch r.Op {
	case OpNever:
		return nil, nil, false
	case OpEmpty:
		return nil, nil, true
	case OpSym:
		p := info.newPos(NewClass(false, r.Sym))
		return []int{p}, []int{p}, false
	case OpClass:
		p := info.newPos(r.Cls)
		return []int{p}, []int{p}, false
	case OpAlt:
		nullable = false
		for _, s := range r.Subs {
			f, l, n := info.walk(s)
			first = mergeSorted(first, f)
			last = mergeSorted(last, l)
			nullable = nullable || n
		}
		return first, last, nullable
	case OpConcat:
		first, last, nullable = info.walk(r.Subs[0])
		for _, s := range r.Subs[1:] {
			f, l, n := info.walk(s)
			// Every last position so far can be followed by f.
			for _, p := range last {
				info.Follow[p-1] = mergeSorted(info.Follow[p-1], f)
			}
			if nullable {
				first = mergeSorted(first, f)
			}
			if n {
				last = mergeSorted(last, l)
			} else {
				last = l
			}
			nullable = nullable && n
		}
		return first, last, nullable
	case OpStar:
		f, l, _ := info.walk(r.Subs[0])
		for _, p := range l {
			info.Follow[p-1] = mergeSorted(info.Follow[p-1], f)
		}
		return f, l, true
	}
	panic("regex: bad op")
}

func (info *PosInfo) newPos(c Class) int {
	info.Classes = append(info.Classes, c)
	info.Follow = append(info.Follow, nil)
	return len(info.Classes)
}

func mergeSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Deterministic reports whether r is one-unambiguous (XML Schema's "Unique
// Particle Attribution" rule): in the Glushkov automaton, no state has two
// outgoing positions whose symbol classes overlap. Deterministic content
// models keep the complement construction of the safe-rewriting algorithm
// polynomial (Section 4 of the paper).
func Deterministic(r *Regex) bool {
	info := Positions(r)
	if !disjointClasses(info.First, info.Classes) {
		return false
	}
	for _, fol := range info.Follow {
		if !disjointClasses(fol, info.Classes) {
			return false
		}
	}
	return true
}

func disjointClasses(positions []int, classes []Class) bool {
	for i := 0; i < len(positions); i++ {
		for j := i + 1; j < len(positions); j++ {
			if classes[positions[i]-1].Overlaps(classes[positions[j]-1]) {
				return false
			}
		}
	}
	return true
}

// Ambiguities returns, for diagnostic messages, the pairs of overlapping
// competing classes that violate one-unambiguity (at most one pair per
// state). The slice is empty iff Deterministic(r).
func Ambiguities(r *Regex) []Class {
	info := Positions(r)
	var out []Class
	collect := func(positions []int) {
		for i := 0; i < len(positions); i++ {
			for j := i + 1; j < len(positions); j++ {
				a, b := info.Classes[positions[i]-1], info.Classes[positions[j]-1]
				if a.Overlaps(b) {
					out = append(out, a, b)
					return
				}
			}
		}
	}
	collect(info.First)
	for _, fol := range info.Follow {
		collect(fol)
	}
	return out
}

// SortedAlphabetOf returns the sorted, deduplicated union of the positive
// symbols mentioned by the positions of r. Wildcard (negated) classes
// contribute their excluded symbols, which is what callers need to build a
// closed effective alphabet.
func SortedAlphabetOf(rs ...*Regex) []Symbol {
	var all []Symbol
	for _, r := range rs {
		all = r.Alphabet(all)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return dedupSymbols(all)
}
