package axml_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml"
)

// TestFacadePeerIntegration drives the whole public surface at once: build a
// peer, register services, serve it over HTTP, discover it via WSDL_int,
// exchange a document under a stricter schema, and invoke with the SOAP
// invoker — everything a downstream application would touch.
func TestFacadePeerIntegration(t *testing.T) {
	s := axml.MustParseSchemaText(`
root newspaper
elem newspaper = title.(Get_Temp|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
`)
	p := axml.NewPeer("news", s)
	err := p.Services.Register(&axml.ServiceOperation{
		Name: "Get_Temp",
		Def:  s.Funcs["Get_Temp"],
		Handler: func(params []*axml.Node) ([]*axml.Node, error) {
			return []*axml.Node{axml.Elem("temp", axml.Text("15"))}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Repo.Put("today", axml.Elem("newspaper",
		axml.Elem("title", axml.Text("The Sun")),
		axml.Call("Get_Temp", axml.Elem("city", axml.Text("Paris")))))

	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	// WSDL discovery through the façade.
	resp, err := http.Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := axml.FetchWSDL(resp.Body, nil)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Operations()) != 1 || desc.Operations()[0] != "Get_Temp" {
		t.Errorf("operations = %v", desc.Operations())
	}

	// Exchange under a stricter schema (Figure 1 over HTTP).
	strictXSD := `
<schema root="newspaper">
  <element name="newspaper"><complexType><sequence>
    <element ref="title"/><element ref="temp"/>
  </sequence></complexType></element>
  <element name="title" type="xs:string"/>
  <element name="temp" type="xs:string"/>
  <element name="city" type="xs:string"/>
  <function id="Get_Temp"><params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return></function>
</schema>`
	resp, err = http.Post(ts.URL+"/exchange/today?mode=safe", "text/xml", strings.NewReader(strictXSD))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("exchange status %d", resp.StatusCode)
	}
	got, err := axml.ParseDocument(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasFuncs() {
		t.Errorf("exchange left the document intensional:\n%s", axml.DocumentString(got))
	}

	// The SOAP invoker drives rewriting against the live endpoint.
	strict, err := axml.ParseXSD(strings.NewReader(strictXSD), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	rw := axml.NewRewriter(s, strict, 1, axml.SOAPInvoker(ts.URL+"/soap"))
	rw.Audit = &axml.Audit{}
	stored, _ := p.Repo.Get("today")
	out, err := rw.RewriteDocument(stored, axml.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if err := axml.Validate(strict, s, out); err != nil {
		t.Errorf("result invalid: %v", err)
	}
	if rw.Audit.Len() != 1 {
		t.Errorf("audit = %d", rw.Audit.Len())
	}
}

// TestFacadeConverters exercises the converter aliases through the façade.
func TestFacadeConverters(t *testing.T) {
	s := axml.MustParseSchemaText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`)
	inv := axml.InvokerFunc(func(*axml.Node) ([]*axml.Node, error) {
		return []*axml.Node{axml.Elem("result", axml.Elem("temperature", axml.Text("15")))}, nil
	})
	rw := axml.NewRewriter(s, s, 1, inv)
	rw.Converters = axml.Converters{
		axml.UnwrapElement("result"),
		axml.RenameLabels(map[string]string{"temperature": "temp"}),
	}
	// The chain applies one converter at a time; unwrap alone leaves
	// temperature, rename alone leaves the wrapper — so this needs a
	// composite converter.
	composite := axml.Converters{composeConverters(
		axml.UnwrapElement("result"),
		axml.RenameLabels(map[string]string{"temperature": "temp"}),
	)}
	rw.Converters = composite
	root := axml.Elem("page", axml.Call("Get_Temp", axml.Elem("city", axml.Text("Nice"))))
	out, err := rw.RewriteDocument(root, axml.Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[0].Label != "temp" {
		t.Errorf("converted = %v", out.Children[0])
	}
	// MapValues through the façade.
	mv := axml.MapValues("temp", func(s string) (string, bool) { return s + ".0", true })
	fixed, ok := mv.Convert("Get_Temp", []*axml.Node{axml.Elem("temp", axml.Text("15"))})
	if !ok || fixed[0].Children[0].Value != "15.0" {
		t.Errorf("MapValues = %v %v", fixed, ok)
	}
}

// composeConverters chains converters into one (each fed the previous
// output), demonstrating how applications build richer healing pipelines.
func composeConverters(convs ...axml.Converter) axml.Converter {
	return axml.InlineConverter(func(fn string, forest []*axml.Node) ([]*axml.Node, bool) {
		cur := forest
		any := false
		for _, c := range convs {
			if next, ok := c.Convert(fn, cur); ok {
				cur = next
				any = true
			}
		}
		return cur, any
	})
}

// TestFacadePredicates exercises the predicate combinators through the
// façade against a live registry.
func TestFacadePredicates(t *testing.T) {
	s := axml.MustParseSchemaText(`
elem city = data
elem temp = data
func Get_A = city -> temp
func Get_B = city -> temp
`)
	reg := axml.NewPeer("r", s).Services
	if err := reg.Register(&axml.ServiceOperation{
		Name: "Get_A", Def: s.Funcs["Get_A"],
		Handler: func([]*axml.Node) ([]*axml.Node, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	pred := axml.AndPredicates(axml.RegistryListed(reg), axml.ACL("Get_A", "Get_B"))
	if !pred("Get_A", nil, nil) {
		t.Error("Get_A should pass (listed + allowed)")
	}
	if pred("Get_B", nil, nil) {
		t.Error("Get_B should fail (not listed)")
	}
}
