package peer

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"axml/internal/core"
	"axml/internal/soap"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

// Handler exposes the peer over HTTP:
//
//	POST /soap             — SOAP endpoint for the peer's operations, with
//	                         schema enforcement on parameters and results
//	GET  /wsdl             — the peer's WSDL_int description
//	GET  /doc/{name}       — a repository document, as stored (intensional)
//	POST /exchange/{name}  — the Figure 1 scenario: the request body is an
//	                         XML Schema_int exchange schema; the response is
//	                         the document rewritten to conform to it.
//	                         ?mode=safe|possible|mixed (default: the peer's)
//	GET  /stats            — enforcement-cache and audit counters, as JSON
func (p *Peer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/soap", &soap.Server{
		Registry:        p.Services,
		Namespace:       "urn:axml:" + p.Name,
		OnRequest:       p.EnforceInContext,
		OnResponse:      p.EnforceOutContext,
		MaxRequestBytes: p.MaxRequestBytes,
	})
	mux.HandleFunc("/wsdl", p.handleWSDL)
	mux.HandleFunc("/doc/", p.handleDoc)
	mux.HandleFunc("/exchange/", p.handleExchange)
	mux.HandleFunc("/stats", p.handleStats)
	return mux
}

func (p *Peer) handleWSDL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	if err := wsdl.Write(w, p.Description(), nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Peer) handleDoc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/doc/")
	d, ok := p.Repo.Get(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no document %q", name), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_ = xmlio.Write(w, d)
}

func (p *Peer) handleExchange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/exchange/")
	mode := p.Mode
	switch r.URL.Query().Get("mode") {
	case "safe":
		mode = core.Safe
	case "possible":
		mode = core.Possible
	case "mixed":
		mode = core.Mixed
	case "":
	default:
		http.Error(w, "mode must be safe, possible or mixed", http.StatusBadRequest)
		return
	}
	// The exchange schema interns into the peer's table so that the
	// rewriter can relate the two schemas.
	exchange, err := xsdint.Parse(r.Body, xsdint.Options{Table: p.Schema.Table})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out, err := p.SendDocumentContext(r.Context(), name, exchange, mode)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "no document") {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_ = xmlio.Write(w, out)
}

// handleStats reports the enforcement cache's effectiveness: compile-cache
// hits and misses (misses == core.Compile runs since start), the aggregated
// word-verdict memo counters, and the invocation audit size.
func (p *Peer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	compiled := p.Enforcement.Stats()
	words := p.Enforcement.WordStats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"peer":          p.Name,
		"documents":     p.Repo.Len(),
		"compile_cache": compiled,
		"word_cache":    words,
		"invocations":   p.Audit.Len(),
		"parallelism":   max(p.Parallelism, 1),
	})
}
