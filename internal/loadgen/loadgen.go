// Package loadgen is an HTTP load-generation harness for a live axmld peer.
// It discovers the peer's schema over GET /wsdl, derives an identity exchange
// schema and a conforming document population from it, then drives the
// serving endpoints with one of four workload mixes in open- or closed-loop
// mode, recording client-side latency histograms whose buckets are a strict
// superset of the server's telemetry.DefBuckets — so the client numbers can
// be cross-checked against the peer's /metrics exposition exactly.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"axml/internal/doc"
	"axml/internal/telemetry"
	"axml/internal/workload"
	"axml/internal/wsdl"
	"axml/internal/xmlio"
	"axml/internal/xsdint"
)

// Handler label values, matching the server's telemetry instrumentation.
const (
	handlerExchange       = "exchange"
	handlerDoc            = "doc"
	handlerWSDL           = "wsdl"
	handlerStats          = "stats"
	handlerDocs           = "docs"
	handlerDocsByFunction = "docs_by_function"
)

var handlerNames = []string{handlerExchange, handlerDoc, handlerWSDL, handlerStats, handlerDocs, handlerDocsByFunction}

// handlerExchangeTTFB is the client-only time-to-first-body-byte series the
// stream mix records alongside the full exchange round trip. It has no
// server-side histogram, so it is reported but never cross-checked.
const handlerExchangeTTFB = "exchange_ttfb"

// Mixes are the supported workload mix names.
var Mixes = []string{"exchange", "mutation", "mixed", "skewed", "store", "stream", "replica"}

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the peer's address, e.g. http://127.0.0.1:8080. Reads always
	// go here; point it at a follower to measure hot-standby serving.
	BaseURL string
	// WriteURL, when set, receives every mutation (setup population PUTs and
	// the mixes' PUT/DELETE ops) instead of BaseURL. Against a replicated
	// pair, set WriteURL to the leader and BaseURL to a follower: the replica
	// mix then measures the read-your-writes gap as stale reads.
	WriteURL string
	// Mix selects the workload: exchange (rewrite-heavy), mutation
	// (PUT/DELETE-heavy), mixed (intensional + extensional + introspection),
	// skewed (exchange traffic with Zipf-distributed hot keys), store
	// (storage-engine churn: mutations plus /docs pagination and
	// /docs/by-function index lookups), stream (exchange traffic that
	// also records time-to-first-body-byte — against a peer running with
	// -stream, first-byte latency decouples from document size), or replica
	// (writes to WriteURL, stale-tolerant reads from BaseURL — point them at
	// a leader/follower pair).
	Mix string
	// Duration bounds the measured run (setup excluded). Default 5s.
	Duration time.Duration
	// Concurrency is the worker count. Default 8.
	Concurrency int
	// Rate is the target request rate in req/s across all workers; 0 runs
	// closed-loop (each worker issues its next request as soon as the
	// previous completes).
	Rate float64
	// Seed makes document generation and op sequencing reproducible.
	Seed int64
	// Docs is the generated document population size. Default 32.
	Docs int
	// DocBytes, when positive, pads each generated document's text content
	// until its rendered form reaches roughly this many bytes (1 KiB,
	// 64 KiB, and 1 MiB are the benchmark tiers). 0 keeps the generator's
	// natural size.
	DocBytes int
	// Zipf is the skew exponent for the skewed mix (must be > 1). Default 1.2.
	Zipf float64
	// Client is the HTTP client; a default with a 30s timeout if nil.
	Client *http.Client
	// CheckMetrics scrapes /metrics before and after the run and cross-checks
	// client histograms against the server's. Requires the peer to run with
	// telemetry, and the loadgen to be the server's only client meanwhile.
	CheckMetrics bool
}

func (c Config) withDefaults() Config {
	if c.Mix == "" {
		c.Mix = "mixed"
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Docs <= 0 {
		c.Docs = 32
	}
	if c.Zipf <= 1 {
		c.Zipf = 1.2
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// writeBase is where mutations go: WriteURL when set, else BaseURL.
func (c Config) writeBase() string {
	if c.WriteURL != "" {
		return c.WriteURL
	}
	return c.BaseURL
}

// HandlerStats summarizes client-observed latency for one server handler.
type HandlerStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_s"`
	P99   float64 `json:"p99_s"`
	P999  float64 `json:"p999_s"`
}

// Report is the result of one run, serialized into BENCH_load.json.
type Report struct {
	Mix         string                  `json:"mix"`
	Duration    float64                 `json:"duration_s"`
	Concurrency int                     `json:"concurrency"`
	DocBytes    int                     `json:"doc_bytes,omitempty"`
	Rate        float64                 `json:"rate_rps,omitempty"` // 0 = closed loop
	Requests    uint64                  `json:"requests"`
	Non2xx      uint64                  `json:"non_2xx"`
	// StaleReads counts replica-mix reads a lagging follower answered with a
	// 404 or an out-of-date payload — tolerated by design, reported so lag
	// is visible.
	StaleReads uint64 `json:"stale_reads,omitempty"`
	Errors      uint64                  `json:"transport_errors"`
	Dropped     uint64                  `json:"dropped"` // open loop only: shed by the rate dispatcher
	Throughput  float64                 `json:"throughput_rps"`
	Status      map[string]uint64       `json:"status"`
	Handlers    map[string]HandlerStats `json:"handlers"`
	Checks      []MetricsCheck          `json:"metrics_checks,omitempty"`
	ChecksOK    bool                    `json:"metrics_checks_ok"`
}

// Runner drives one configured run against a live peer.
type Runner struct {
	cfg      Config
	identity []byte   // identity exchange schema, rendered from the peer's own
	bodies   [][]byte // rendered conforming documents, reused as PUT payloads
	popNames []string // names of the PUT population (ldg-0000 ...)
	funcName string   // a function declared by the peer's schema, for /docs/by-function
	hists    map[string]*hist

	// Trace-propagation sampling (CheckMetrics only): every exchange request
	// carries a client-minted traceparent; the ring keeps the last few trace
	// IDs so the post-run check can find them in the server's bounded
	// /debug/traces span ring — early IDs would have been evicted.
	traceMu     sync.Mutex
	traceSample []string
	traceNext   int
}

// traceSampleCap bounds the trace IDs verified against /debug/traces.
const traceSampleCap = 8

// New builds a runner; Run performs setup and the measured phase.
func New(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults()}
}

// setup fetches the peer's WSDL_int, renders the identity exchange schema,
// and installs a generated conforming document population under /doc.
func (r *Runner) setup(ctx context.Context) error {
	cfg := r.cfg
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/wsdl", nil)
	if err != nil {
		return err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: fetch /wsdl: %w", err)
	}
	desc, err := wsdl.Parse(resp.Body, xsdint.Options{})
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("loadgen: parse WSDL: %w", err)
	}
	identity, err := xsdint.String(desc.Schema, nil)
	if err != nil {
		return fmt.Errorf("loadgen: render identity schema: %w", err)
	}
	r.identity = []byte(identity)
	if funcs := desc.Schema.SortedFuncs(); len(funcs) > 0 {
		r.funcName = funcs[0]
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := workload.NewGenerator(desc.Schema, rng)
	r.bodies = r.bodies[:0]
	r.popNames = r.popNames[:0]
	for i := 0; i < cfg.Docs; i++ {
		root, err := gen.Root()
		if err != nil {
			return fmt.Errorf("loadgen: generate document: %w", err)
		}
		var buf bytes.Buffer
		if err := xmlio.Write(&buf, root); err != nil {
			return fmt.Errorf("loadgen: render document: %w", err)
		}
		if cfg.DocBytes > buf.Len() && inflate(root, cfg.DocBytes-buf.Len()) {
			buf.Reset()
			if err := xmlio.Write(&buf, root); err != nil {
				return fmt.Errorf("loadgen: render document: %w", err)
			}
		}
		body := buf.Bytes()
		name := fmt.Sprintf("ldg-%04d", i)
		if err := r.put(ctx, name, body); err != nil {
			return err
		}
		r.bodies = append(r.bodies, body)
		r.popNames = append(r.popNames, name)
	}
	return nil
}

// inflate pads the document's text leaves by need rendered bytes, spread
// evenly (the filler needs no XML escaping, so one character is one byte).
// Only existing text nodes grow — a data element admits text of any length,
// so the document stays schema-conformant. Reports false when the document
// has no text content to pad.
func inflate(root *doc.Node, need int) bool {
	var texts []*doc.Node
	var walk func(n *doc.Node)
	walk = func(n *doc.Node) {
		if n.Kind == doc.Text {
			texts = append(texts, n)
			return
		}
		if n.Kind == doc.Func {
			return // padding a parameter would change what services receive
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if len(texts) == 0 || need <= 0 {
		return false
	}
	per := need / len(texts)
	for i, tn := range texts {
		pad := per
		if i == len(texts)-1 {
			pad = need - per*(len(texts)-1)
		}
		tn.Value += strings.Repeat("x", pad)
	}
	return true
}

func (r *Runner) put(ctx context.Context, name string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.cfg.writeBase()+"/doc/"+name, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: PUT /doc/%s: %w", name, err)
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("loadgen: PUT /doc/%s: status %d: %s", name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

func (r *Runner) scrapeMetrics(ctx context.Context) (*scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape /metrics: status %d (is the peer running with telemetry?)", resp.StatusCode)
	}
	return parseMetrics(resp.Body)
}

// workerStats are per-worker counters, merged after the run — workers never
// share mutable state on the hot path except the lock-free histograms.
type workerStats struct {
	requests   uint64
	non2xx     uint64
	errors     uint64
	staleReads uint64
	status     map[int]uint64
}

type worker struct {
	id    int
	r     *Runner
	rng   *rand.Rand
	zipf  *rand.Zipf
	stats workerStats
	key   string // worker-private document name for mutation ops
	body  []byte // PUT payload for the private document
	// writeSeq is the highest acknowledged probe sequence this worker has
	// written (replica mix): a follower read answering below it is stale.
	writeSeq uint64
}

// weightedOp pairs a relative weight with a request closure.
type weightedOp struct {
	weight int
	run    func(w *worker)
}

// do issues one request against BaseURL, records latency into the handler's
// histogram and the outcome into the worker's counters. Latency covers the
// full round trip including response body drain, matching what a real client
// sees.
func (w *worker) do(method, path string, body []byte, handler string) {
	w.doAt(w.r.cfg.BaseURL, method, path, body, handler)
}

// doAt is do against an explicit base URL (mutations may target WriteURL).
// It reports the HTTP status, 0 on a transport error.
func (w *worker) doAt(base, method, path string, body []byte, handler string) int {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		w.stats.errors++
		return 0
	}
	if w.r.cfg.CheckMetrics && handler == handlerExchange {
		req.Header.Set(telemetry.TraceparentHeader, w.r.mintTraceparent())
	}
	start := time.Now()
	resp, err := w.r.cfg.Client.Do(req)
	if err != nil {
		w.stats.errors++
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.r.hists[handler].observe(time.Since(start).Seconds())
	w.stats.requests++
	w.stats.status[resp.StatusCode]++
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		w.stats.non2xx++
	}
	return resp.StatusCode
}

// replicaWrite PUTs the next probe document to the write side (the leader)
// under the worker-private key; only an acknowledged write raises the bar a
// follower read is held to.
func (w *worker) replicaWrite() {
	next := w.writeSeq + 1
	body := []byte(fmt.Sprintf("<probe>%d</probe>", next))
	if st := w.doAt(w.r.cfg.writeBase(), http.MethodPut, "/doc/"+w.key, body, handlerDoc); st >= 200 && st <= 299 {
		w.writeSeq = next
	}
}

// replicaGet reads a document from BaseURL (the follower) tolerating
// replication lag: a 404, or — when wantSeq > 0 — a probe payload older than
// the last acknowledged write, counts as a stale read instead of a failure.
func (w *worker) replicaGet(name string, wantSeq uint64) {
	req, err := http.NewRequest(http.MethodGet, w.r.cfg.BaseURL+"/doc/"+name, nil)
	if err != nil {
		w.stats.errors++
		return
	}
	start := time.Now()
	resp, err := w.r.cfg.Client.Do(req)
	if err != nil {
		w.stats.errors++
		return
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.r.hists[handlerDoc].observe(time.Since(start).Seconds())
	w.stats.requests++
	w.stats.status[resp.StatusCode]++
	switch {
	case resp.StatusCode == http.StatusNotFound:
		w.stats.staleReads++ // not replicated yet: lag, not an error
	case resp.StatusCode >= 200 && resp.StatusCode <= 299:
		if seq, ok := parseProbeSeq(data); wantSeq > 0 && ok && seq < wantSeq {
			w.stats.staleReads++
		}
	default:
		w.stats.non2xx++
	}
}

// parseProbeSeq extracts the sequence number from a rendered probe document
// (the first digit run in the body), tolerant of serialization differences.
func parseProbeSeq(body []byte) (uint64, bool) {
	var n uint64
	seen := false
	for _, b := range body {
		if b >= '0' && b <= '9' {
			n = n*10 + uint64(b-'0')
			seen = true
			continue
		}
		if seen {
			break
		}
	}
	return n, seen
}

// doStream issues one POST /exchange and records two latencies: time to the
// first body byte into the client-only TTFB histogram, and the full drain
// into the exchange histogram (so cross-checks against the server still
// hold). Against a streaming peer the first byte arrives while the server is
// still enforcing the document tail; against a buffering peer the two
// coincide.
func (w *worker) doStream(path string, body []byte) {
	req, err := http.NewRequest(http.MethodPost, w.r.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		w.stats.errors++
		return
	}
	if w.r.cfg.CheckMetrics {
		req.Header.Set(telemetry.TraceparentHeader, w.r.mintTraceparent())
	}
	start := time.Now()
	resp, err := w.r.cfg.Client.Do(req)
	if err != nil {
		w.stats.errors++
		return
	}
	var first [1]byte
	if n, _ := io.ReadFull(resp.Body, first[:]); n > 0 {
		w.r.hists[handlerExchangeTTFB].observe(time.Since(start).Seconds())
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.r.hists[handlerExchange].observe(time.Since(start).Seconds())
	w.stats.requests++
	w.stats.status[resp.StatusCode]++
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		w.stats.non2xx++
	}
}

// mintTraceparent mints a fresh trace for one exchange request and keeps
// its ID in the rolling sample ring.
func (r *Runner) mintTraceparent() string {
	id := telemetry.NewID()
	r.traceMu.Lock()
	if len(r.traceSample) < traceSampleCap {
		r.traceSample = append(r.traceSample, id)
	} else {
		r.traceSample[r.traceNext] = id
	}
	r.traceNext = (r.traceNext + 1) % traceSampleCap
	r.traceMu.Unlock()
	return telemetry.FormatTraceparent(id, telemetry.NewID())
}

// checkTraces verifies that the most recently minted client trace IDs are
// present in the server's /debug/traces span ring — end-to-end proof that
// the traceparent header joins the client's trace to the server's spans.
func (r *Runner) checkTraces(ctx context.Context) MetricsCheck {
	chk := MetricsCheck{Handler: "trace_propagation"}
	r.traceMu.Lock()
	sample := append([]string(nil), r.traceSample...)
	r.traceMu.Unlock()
	chk.ClientCount = uint64(len(sample))
	if len(sample) == 0 {
		chk.OK = true // mix issued no exchange requests
		return chk
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/debug/traces", nil)
	if err != nil {
		chk.Reason = err.Error()
		return chk
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		chk.Reason = fmt.Sprintf("fetch /debug/traces: %v", err)
		return chk
	}
	var traces struct {
		Spans []telemetry.SpanRecord `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		chk.Reason = fmt.Sprintf("decode /debug/traces: %v", err)
		return chk
	}
	seen := make(map[string]bool, len(traces.Spans))
	for _, s := range traces.Spans {
		seen[s.TraceID] = true
	}
	var missing []string
	for _, id := range sample {
		if seen[id] {
			chk.ServerCount++
		} else {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		chk.Reason = fmt.Sprintf("client trace IDs absent from /debug/traces: %v", missing)
		return chk
	}
	chk.OK = true
	return chk
}

// pickUniform and pickSkewed choose a population document.
func (w *worker) pickUniform() string { return w.r.popNames[w.rng.Intn(len(w.r.popNames))] }
func (w *worker) pickSkewed() string  { return w.r.popNames[int(w.zipf.Uint64())] }

// mixOps builds the weighted op table for the configured mix. Mutation ops
// target a worker-private key so DELETE/PUT races between workers cannot
// manufacture expected-vs-observed status mismatches; reads still hit the
// shared population.
func (r *Runner) mixOps() ([]weightedOp, error) {
	exchange := func(pick func(w *worker) string) func(w *worker) {
		return func(w *worker) {
			w.do(http.MethodPost, "/exchange/"+pick(w)+"?mode=safe", r.identity, handlerExchange)
		}
	}
	get := func(pick func(w *worker) string) func(w *worker) {
		return func(w *worker) { w.do(http.MethodGet, "/doc/"+pick(w), nil, handlerDoc) }
	}
	putPrivate := func(w *worker) { w.doAt(r.cfg.writeBase(), http.MethodPut, "/doc/"+w.key, w.body, handlerDoc) }
	deletePrivate := func(w *worker) { w.doAt(r.cfg.writeBase(), http.MethodDelete, "/doc/"+w.key, nil, handlerDoc) }
	getWSDL := func(w *worker) { w.do(http.MethodGet, "/wsdl", nil, handlerWSDL) }
	getStats := func(w *worker) { w.do(http.MethodGet, "/stats", nil, handlerStats) }
	listDocs := func(w *worker) { w.do(http.MethodGet, "/docs?limit=50", nil, handlerDocs) }
	byFunction := func(w *worker) {
		w.do(http.MethodGet, "/docs/by-function/"+r.funcName, nil, handlerDocsByFunction)
	}
	uniform := func(w *worker) string { return w.pickUniform() }
	skewed := func(w *worker) string { return w.pickSkewed() }
	exchangeStream := func(w *worker) {
		w.doStream("/exchange/"+w.pickUniform()+"?mode=safe", r.identity)
	}

	switch r.cfg.Mix {
	case "exchange":
		return []weightedOp{{90, exchange(uniform)}, {10, get(uniform)}}, nil
	case "mutation":
		return []weightedOp{{40, putPrivate}, {30, deletePrivate}, {30, get(uniform)}}, nil
	case "mixed":
		return []weightedOp{{45, exchange(uniform)}, {20, get(uniform)}, {15, putPrivate}, {10, getWSDL}, {10, getStats}}, nil
	case "skewed":
		return []weightedOp{{70, exchange(skewed)}, {30, get(skewed)}}, nil
	case "store":
		if r.funcName == "" {
			return nil, fmt.Errorf("loadgen: the store mix needs a schema-declared function for /docs/by-function")
		}
		return []weightedOp{{25, putPrivate}, {15, deletePrivate}, {30, get(uniform)}, {15, listDocs}, {15, byFunction}}, nil
	case "stream":
		return []weightedOp{{90, exchangeStream}, {10, get(uniform)}}, nil
	case "replica":
		// Writes land on the leader (writeBase), reads on BaseURL — pointed
		// at a follower, read-your-writes checks turn replication lag into
		// the stale_reads counter instead of failures. Population reads
		// tolerate 404 too: setup wrote those documents to the leader and a
		// cold follower may still be bootstrapping.
		writeProbe := func(w *worker) { w.replicaWrite() }
		readOwn := func(w *worker) {
			if w.writeSeq == 0 {
				w.replicaWrite()
				return
			}
			w.replicaGet(w.key, w.writeSeq)
		}
		readPopulation := func(w *worker) { w.replicaGet(w.pickUniform(), 0) }
		return []weightedOp{{30, writeProbe}, {45, readOwn}, {25, readPopulation}}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown mix %q (want one of %v)", r.cfg.Mix, Mixes)
	}
}

// loop runs ops until the context expires. Closed loop: back-to-back. Open
// loop: one op per token from the rate dispatcher.
func (w *worker) loop(ctx context.Context, ops []weightedOp, total int, tokens <-chan struct{}) {
	for {
		if tokens != nil {
			select {
			case <-ctx.Done():
				return
			case _, ok := <-tokens:
				if !ok {
					return
				}
			}
		} else if ctx.Err() != nil {
			return
		}
		n := w.rng.Intn(total)
		for _, op := range ops {
			if n < op.weight {
				op.run(w)
				break
			}
			n -= op.weight
		}
	}
}

// Run performs setup, the measured phase, and (optionally) the /metrics
// cross-check, returning the report. The context bounds the whole run;
// cfg.Duration bounds the measured phase.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	if err := r.setup(ctx); err != nil {
		return nil, err
	}
	r.hists = make(map[string]*hist, len(handlerNames)+1)
	bounds := clientBuckets()
	for _, h := range handlerNames {
		r.hists[h] = newHist(bounds)
	}
	r.hists[handlerExchangeTTFB] = newHist(bounds)
	ops, err := r.mixOps()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, op := range ops {
		total += op.weight
	}

	var before *scrape
	if cfg.CheckMetrics {
		if before, err = r.scrapeMetrics(ctx); err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var dropped atomic.Uint64
	var tokens chan struct{}
	if cfg.Rate > 0 {
		tokens = make(chan struct{}, cfg.Concurrency*4)
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					close(tokens)
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
						dropped.Add(1) // workers saturated: shed, don't queue
					}
				}
			}
		}()
	}

	workers := make([]*worker, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range workers {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
		w := &worker{
			id:    i,
			r:     r,
			rng:   rng,
			zipf:  rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(r.popNames)-1)),
			stats: workerStats{status: map[int]uint64{}},
			key:   fmt.Sprintf("ldg-w%d", i),
			body:  r.bodies[i%len(r.bodies)],
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(runCtx, ops, total, tokens)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Mix:         cfg.Mix,
		Duration:    elapsed.Seconds(),
		Concurrency: cfg.Concurrency,
		DocBytes:    cfg.DocBytes,
		Rate:        cfg.Rate,
		Dropped:     dropped.Load(),
		Status:      map[string]uint64{},
		Handlers:    map[string]HandlerStats{},
		ChecksOK:    true,
	}
	for _, w := range workers {
		rep.Requests += w.stats.requests
		rep.Non2xx += w.stats.non2xx
		rep.Errors += w.stats.errors
		rep.StaleReads += w.stats.staleReads
		for code, n := range w.stats.status {
			rep.Status[fmt.Sprintf("%d", code)] += n
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	for name, h := range r.hists {
		if c := h.count(); c > 0 {
			rep.Handlers[name] = HandlerStats{
				Count: c,
				P50:   h.quantile(0.50),
				P99:   h.quantile(0.99),
				P999:  h.quantile(0.999),
			}
		}
	}

	if cfg.CheckMetrics {
		after, err := r.scrapeMetrics(ctx)
		if err != nil {
			return nil, err
		}
		for _, name := range handlerNames {
			if r.hists[name].count() == 0 {
				continue
			}
			chk := crossCheck(name, r.hists[name], before, after)
			rep.Checks = append(rep.Checks, chk)
			if !chk.OK {
				rep.ChecksOK = false
			}
		}
		if chk := r.checkTraces(ctx); chk.ClientCount > 0 || !chk.OK {
			rep.Checks = append(rep.Checks, chk)
			if !chk.OK {
				rep.ChecksOK = false
			}
		}
	}
	return rep, nil
}
