package telemetry

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the span-ring size used by NewRegistry.
const DefaultTraceCapacity = 512

// Attr is one key/value attribute attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as stored in the ring and serialized by
// the /debug/traces handler.
type SpanRecord struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// Tracer keeps the most recent finished spans in a bounded ring. Older
// spans are overwritten once the ring is full; Dropped reports how many.
type Tracer struct {
	mu    sync.Mutex
	cap   int
	buf   []SpanRecord
	attrs [][3]Attr // per-slot attr storage; see record
	next  int       // overwrite cursor, meaningful once len(buf) == cap
	total uint64
}

// NewTracer returns a ring holding up to capacity finished spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// record stores one finished span. Attrs that fit are copied into the
// ring's own per-slot arrays rather than kept as a view into the span:
// a retained view would pin the dead *Span and, through it, the whole
// request context chain it was started from — hundreds of KB of
// pointer-rich heap for a full ring, rescanned on every GC cycle.
func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	slot := t.next
	if len(t.buf) < t.cap {
		slot = len(t.buf)
		t.buf = append(t.buf, rec)
		if t.attrs == nil {
			t.attrs = make([][3]Attr, t.cap)
		}
	} else {
		t.buf[slot] = rec
		t.next = (t.next + 1) % t.cap
	}
	if n := len(rec.Attrs); n > 0 && n <= len(t.attrs[slot]) {
		copy(t.attrs[slot][:], rec.Attrs)
		t.buf[slot].Attrs = t.attrs[slot][:n]
	}
}

// Spans returns the retained spans oldest-first. Attrs are copied out so
// the snapshot stays valid while the ring keeps overwriting slots.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	if len(t.buf) == t.cap {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	for i := range out {
		if len(out[i].Attrs) > 0 {
			out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
		}
	}
	return out
}

// SpansForTrace returns the retained spans belonging to one trace,
// oldest-first. The flight recorder uses it to snapshot a request's
// span tree at admission time.
func (t *Tracer) SpansForTrace(traceID string) []SpanRecord {
	if t == nil || traceID == "" {
		return nil
	}
	all := t.Spans()
	out := all[:0]
	for _, s := range all {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Recorded returns the total number of spans ever finished into the ring.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans have been evicted by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// Span is an in-flight operation. Nil spans no-op, so callers never
// branch on whether tracing is configured. End must be called once;
// later calls are ignored.
type Span struct {
	reg    *Registry       // registry the span was started under
	parent context.Context // context the span was started from
	start  time.Time

	mu      sync.Mutex
	rec     SpanRecord
	attrBuf [3]Attr // inline storage for the common ≤3-attribute case
	done    bool
}

// A *Span is itself a context.Context: it answers the span lookup key
// directly and delegates everything else to the context it was started
// from. StartSpan returns the span as the derived context, so opening a
// span costs one allocation instead of a span plus a context entry.
func (s *Span) Deadline() (time.Time, bool) { return s.parent.Deadline() }
func (s *Span) Done() <-chan struct{}       { return s.parent.Done() }
func (s *Span) Err() error                  { return s.parent.Err() }

func (s *Span) Value(key any) any {
	if key == ctxSpanKey {
		return s
	}
	return s.parent.Value(key)
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = s.attrBuf[:0]
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// TraceID returns the span's trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's own ID ("" for a nil span). Trace-context
// injection uses it as the parent ID on outbound calls.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// End finishes the span, recording its duration and error status into
// the tracer's ring.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	s.rec.Duration = time.Since(s.start)
	if err != nil {
		s.rec.Err = err.Error()
	}
	s.reg.tracer.record(s.rec)
}

type ctxKey int

const (
	ctxRegistryKey ctxKey = iota
	ctxSpanKey
	ctxTraceIDKey
	ctxRemoteParentKey
	ctxStagesKey
)

// WithRegistry returns a context carrying reg, making reg's tracer the
// target of StartSpan further down the call chain. If ctx already
// carries reg the context is returned unchanged, so layered components
// can each plant their registry without stacking context values.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	if reg == nil || RegistryFrom(ctx) == reg {
		return ctx
	}
	return context.WithValue(ctx, ctxRegistryKey, reg)
}

// RegistryFrom returns the registry carried by ctx, or nil. An enclosing
// span implies its registry, so spawning a span is enough to propagate
// the registry down the call chain without a second context entry.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	if sp, _ := ctx.Value(ctxSpanKey).(*Span); sp != nil {
		return sp.reg
	}
	reg, _ := ctx.Value(ctxRegistryKey).(*Registry)
	return reg
}

// WithTraceID returns a context carrying an externally chosen trace ID
// (e.g. a rewrite ID); root spans started below inherit it.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxTraceIDKey, id)
}

// TraceIDFrom returns the trace ID in effect: the enclosing span's, or
// one set by WithTraceID, or "".
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if sp, _ := ctx.Value(ctxSpanKey).(*Span); sp != nil {
		return sp.rec.TraceID
	}
	id, _ := ctx.Value(ctxTraceIDKey).(string)
	return id
}

// SpanFrom returns the enclosing span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxSpanKey).(*Span)
	return sp
}

// StartSpan starts a span named name under the registry carried by ctx.
// The returned context carries the new span for parent linkage; if no
// registry is configured both results are usable no-ops (nil span).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxSpanKey).(*Span)
	reg := (*Registry)(nil)
	if parent != nil {
		// A child span always joins its parent's registry, keeping one
		// trace inside one tracer even if ctx carries another registry.
		reg = parent.reg
	} else {
		reg, _ = ctx.Value(ctxRegistryKey).(*Registry)
	}
	return startSpan(ctx, reg, parent, name)
}

// startSpanWith is StartSpan with the registry supplied directly — the
// HTTP wrapper uses it so the request context needs no registry entry;
// the span it plants carries reg for everything below (see RegistryFrom).
func startSpanWith(ctx context.Context, reg *Registry, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxSpanKey).(*Span)
	return startSpan(ctx, reg, parent, name)
}

func startSpan(ctx context.Context, reg *Registry, parent *Span, name string) (context.Context, *Span) {
	if reg == nil || reg.tracer == nil {
		return ctx, nil
	}
	now := time.Now()
	sp := &Span{
		reg:    reg,
		parent: ctx,
		start:  now,
		rec: SpanRecord{
			Name:  name,
			Start: now,
		},
	}
	switch {
	case parent != nil:
		sp.rec.TraceID = parent.rec.TraceID
		sp.rec.ParentID = parent.rec.SpanID
		sp.rec.SpanID = NewID()
	default:
		if id, _ := ctx.Value(ctxTraceIDKey).(string); id != "" {
			sp.rec.TraceID = id
			sp.rec.SpanID = NewID()
			// A root span below an extracted traceparent links to the
			// remote caller's span so cross-process trees stay connected.
			if rp, _ := ctx.Value(ctxRemoteParentKey).(string); rp != "" {
				sp.rec.ParentID = rp
			}
		} else {
			sp.rec.TraceID, sp.rec.SpanID = newIDPair()
		}
	}
	return sp, sp
}

var (
	// idHi is a per-process random prefix so IDs from different runs
	// don't collide; the counter makes them unique within a process.
	idHi      = rand.Uint32()
	idCounter atomic.Uint64
)

// putID writes one 17-byte ID ("xxxxxxxx-xxxxxxxx") into b.
func putID(b []byte) {
	const hexdigits = "0123456789abcdef"
	hi, lo := uint64(idHi), idCounter.Add(1)
	for i := 7; i >= 0; i-- {
		b[i] = hexdigits[hi&0xf]
		hi >>= 4
	}
	b[8] = '-'
	for i := 16; i >= 9; i-- {
		b[i] = hexdigits[lo&0xf]
		lo >>= 4
	}
}

// NewID returns a short process-unique hex ID usable as a trace, span,
// or rewrite identifier. Hand-rolled formatting keeps it to a single
// allocation — IDs are minted on every span start.
func NewID() string {
	var b [17]byte
	putID(b[:])
	return string(b[:])
}

// newIDPair mints two IDs backed by one string allocation — the root-span
// case needs a fresh trace ID and span ID together.
func newIDPair() (string, string) {
	var b [34]byte
	putID(b[:17])
	putID(b[17:])
	s := string(b[:])
	return s[:17], s[17:]
}
