package core

import (
	"strings"
	"testing"

	"axml/internal/regex"
	"axml/internal/schema"
)

// TestCopySharingAblation quantifies the copy-sharing design choice: for a
// recursive output type, the literal per-edge attachment of Figure 3 grows
// exponentially in k while the shared construction stays linear — with the
// same language.
func TestCopySharingAblation(t *testing.T) {
	c, w, _ := recursiveFixture(t)
	var prevUnshared int
	for _, k := range []int{2, 4, 6, 8} {
		shared, err := BuildFork(c, w, k)
		if err != nil {
			t.Fatal(err)
		}
		unshared, err := BuildForkUnshared(c, w, k)
		if err != nil {
			t.Fatal(err)
		}
		if shared.NumStates() > unshared.NumStates() {
			t.Errorf("k=%d: sharing grew the automaton: %d > %d", k, shared.NumStates(), unshared.NumStates())
		}
		// Linear vs exponential: shared grows by a constant per level;
		// unshared at least doubles per level (two Get_More edges per copy).
		if k >= 4 && unshared.NumStates() < 2*prevUnshared-8 {
			t.Errorf("k=%d: unshared growth suspiciously slow: %d after %d", k, unshared.NumStates(), prevUnshared)
		}
		prevUnshared = unshared.NumStates()
		// Language agreement on sample words.
		url := c.Table.Intern("url")
		more := c.Table.Intern("Get_More")
		for _, word := range [][]regex.Symbol{
			{url, more},
			{url, url, url},
			{url, url, more},
			{url},
			{more, url},
		} {
			if shared.Accepts(word) != unshared.Accepts(word) {
				t.Fatalf("k=%d: languages diverge on %v", k, word)
			}
		}
	}
}

func recursiveFixture(t *testing.T) (*Compiled, []Token, *regex.Regex) {
	t.Helper()
	s := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	c := Compile(s, s)
	w := WordTokens([]regex.Symbol{c.Table.Intern("url"), c.Table.Intern("Get_More")})
	return c, w, regex.MustParse(c.Table, "url*")
}

// TestMaxForkStatesGuard: the unshared construction trips the state cap
// instead of exhausting memory.
func TestMaxForkStatesGuard(t *testing.T) {
	c, w, _ := recursiveFixture(t)
	_, err := BuildForkUnshared(c, w, 40)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("expected state-cap error, got %v", err)
	}
	// The shared construction handles the same k comfortably.
	if _, err := BuildFork(c, w, 40); err != nil {
		t.Errorf("shared construction should survive k=40: %v", err)
	}
}

// TestMustCallValidation: MustCall tokens must be declared functions.
func TestMustCallValidation(t *testing.T) {
	c, _, _ := recursiveFixture(t)
	bad := []Token{{Sym: c.Table.Intern("url"), MustCall: true}}
	if _, err := BuildFork(c, bad, 1); err == nil {
		t.Error("MustCall on a non-function should fail")
	}
}

// BenchmarkCopySharingAblation: the design-choice bench DESIGN.md calls out.
func BenchmarkCopySharingAblation(b *testing.B) {
	s := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	c := Compile(s, s)
	w := WordTokens([]regex.Symbol{c.Table.Intern("url"), c.Table.Intern("Get_More")})
	b.Run("shared/k=8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BuildFork(c, w, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unshared/k=8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BuildForkUnshared(c, w, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}
