package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"axml/internal/regex"
)

// DefaultWordCacheSize bounds the per-Compiled word-verdict memo: how many
// distinct (word, target, k, mode, engine) analyses are remembered before
// least-recently-used verdicts are evicted.
const DefaultWordCacheSize = 4096

// wordCache memoizes word-level rewriting verdicts for one Compiled. The
// verdict of WordSafe / WordPossible / LazySafe / LazyPossible is a pure
// function of the token word (symbols, depths, freezing), the target content
// model, the depth bound, the mode and the engine — never of the document
// nodes behind the tokens — so one peer serving many messages over the same
// schema pair keeps answering repeated words from the memo instead of
// rebuilding fork automata and products.
type wordCache struct {
	// mu guards entries/lru. The memo is consulted on every word of every
	// message, so hits take only the read lock: recency updates happen
	// opportunistically (when the exclusive lock is free) and on writes.
	mu       sync.RWMutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; values are *wordEntry

	hits, misses, evictions atomic.Uint64
}

type wordEntry struct {
	key     string
	verdict bool
}

func newWordCache(capacity int) *wordCache {
	if capacity <= 0 {
		return nil // disabled
	}
	return &wordCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

func (wc *wordCache) get(key string) (bool, bool) {
	if wc == nil {
		return false, false
	}
	wc.mu.RLock()
	el, ok := wc.entries[key]
	var verdict bool
	if ok {
		verdict = el.Value.(*wordEntry).verdict
	}
	wc.mu.RUnlock()
	if !ok {
		wc.misses.Add(1)
		return false, false
	}
	wc.hits.Add(1)
	if wc.mu.TryLock() {
		// MoveToFront is a no-op if a racing eviction already removed el.
		if el, still := wc.entries[key]; still {
			wc.lru.MoveToFront(el)
		}
		wc.mu.Unlock()
	}
	return verdict, true
}

func (wc *wordCache) put(key string, verdict bool) {
	if wc == nil {
		return
	}
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if el, ok := wc.entries[key]; ok {
		wc.lru.MoveToFront(el) // a racing goroutine computed the same verdict
		return
	}
	el := wc.lru.PushFront(&wordEntry{key: key, verdict: verdict})
	wc.entries[key] = el
	for wc.lru.Len() > wc.capacity {
		oldest := wc.lru.Back()
		wc.lru.Remove(oldest)
		delete(wc.entries, oldest.Value.(*wordEntry).key)
		wc.evictions.Add(1)
	}
}

func (wc *wordCache) stats() CacheStats {
	if wc == nil {
		return CacheStats{}
	}
	wc.mu.RLock()
	size := wc.lru.Len()
	wc.mu.RUnlock()
	return CacheStats{
		Hits:      wc.hits.Load(),
		Misses:    wc.misses.Load(),
		Evictions: wc.evictions.Load(),
		Size:      size,
	}
}

// wordKey serializes everything a word-level verdict depends on. Token.Node
// is deliberately excluded: it back-references the document and never
// influences the automata.
func wordKey(engine EngineKind, mode Mode, tokens []Token, target *regex.Regex, k int) string {
	var b strings.Builder
	b.Grow(len(tokens)*8 + 32)
	b.WriteByte(byte('0' + engine))
	if mode == Possible {
		b.WriteByte('p')
	} else {
		b.WriteByte('s') // Safe and Mixed share the safe word analysis
	}
	b.WriteString(strconv.Itoa(k))
	b.WriteByte('|')
	for _, t := range tokens {
		b.WriteString(strconv.Itoa(int(t.Sym)))
		if t.Depth != 0 {
			b.WriteByte('@')
			b.WriteString(strconv.Itoa(t.Depth))
		}
		if t.Frozen {
			b.WriteByte('!')
		}
		if t.MustCall {
			b.WriteByte('^')
		}
		b.WriteByte('.')
	}
	b.WriteByte('|')
	b.WriteString(target.Key())
	return b.String()
}

// WordVerdict answers the word-level rewriting question through the memo:
// does the token word rewrite into target within depth k, under the given
// mode and engine? Cache misses run the same analyses the uncached entry
// points do; errors (oversized fork automata) are never cached.
func (c *Compiled) WordVerdict(engine EngineKind, mode Mode, tokens []Token, target *regex.Regex, k int) (bool, error) {
	ins := c.instruments()
	ins.observeWordVerdict(engine, mode)
	wc := c.loadWordCache()
	var key string
	if wc != nil {
		key = wordKey(engine, mode, tokens, target, k)
		if v, ok := wc.get(key); ok {
			return v, nil
		}
	}
	var start time.Time
	if ins != nil {
		start = time.Now()
	}
	var verdict bool
	var err error
	var lazyRes *LazyResult
	switch engine {
	case Lazy:
		if mode == Possible {
			lazyRes, err = LazyPossible(c, tokens, target, k)
		} else {
			lazyRes, err = LazySafe(c, tokens, target, k)
		}
		if err == nil {
			verdict = lazyRes.Verdict
		}
	default:
		if mode == Possible {
			verdict, err = WordPossible(c, tokens, target, k)
		} else {
			verdict, err = WordSafe(c, tokens, target, k)
		}
	}
	if err != nil {
		return false, err
	}
	if ins != nil {
		ins.observeWordAnalysis(engine, mode, time.Since(start))
		ins.observeLazy(lazyRes)
	}
	if wc != nil {
		wc.put(key, verdict)
	}
	return verdict, nil
}

// WordCacheStats snapshots the word-verdict memo counters.
func (c *Compiled) WordCacheStats() CacheStats {
	return c.loadWordCache().stats()
}

// SetWordCacheCapacity replaces the word-verdict memo with a fresh one of
// the given capacity; negative disables memoization. Existing verdicts are
// dropped. Safe to call concurrently with readers.
func (c *Compiled) SetWordCacheCapacity(capacity int) {
	if capacity < 0 {
		c.words.Store(&wordCacheBox{})
		return
	}
	if capacity == 0 {
		capacity = DefaultWordCacheSize
	}
	c.words.Store(&wordCacheBox{wc: newWordCache(capacity)})
}

// wordCacheBox wraps the nillable cache so atomic.Pointer always stores a
// non-nil value ("disabled" is a box holding nil).
type wordCacheBox struct{ wc *wordCache }

func (c *Compiled) loadWordCache() *wordCache {
	if box := c.words.Load(); box != nil {
		return box.wc
	}
	return nil
}
