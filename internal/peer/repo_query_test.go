package peer

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/schema"
)

// TestPutRejectsPathTraversal is the regression test for the SaveDir escape:
// a document named "../evil" must never be accepted, since SaveDir joins
// names onto its directory.
func TestPutRejectsPathTraversal(t *testing.T) {
	r := NewRepository()
	d := doc.Elem("a", doc.TextNode("x"))
	for _, name := range []string{"", ".", "..", "../evil", "a/b", `a\b`, "/abs", `..\up`} {
		if err := r.Put(name, d); err == nil {
			t.Errorf("Put(%q) accepted an unsafe name", name)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("unsafe Put stored %d documents", r.Len())
	}
	for _, name := range []string{"plain", "dotted.name", "with space", "under_score"} {
		if err := r.Put(name, d); err != nil {
			t.Errorf("Put(%q) rejected a safe name: %v", name, err)
		}
	}

	dir := t.TempDir()
	sub := filepath.Join(dir, "docs")
	if err := r.SaveDir(sub); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Errorf("SaveDir wrote %d files, want 4", len(entries))
	}
	// Nothing may have escaped into the parent directory.
	parent, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent) != 1 {
		t.Errorf("SaveDir escaped its directory: parent has %d entries", len(parent))
	}

	r2 := NewRepository()
	if err := r2.LoadDir(sub); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 4 {
		t.Errorf("LoadDir round trip lost documents: %d of 4", r2.Len())
	}
}

// queryPeer builds a peer with a guide document and a query service filtered
// on a Where child.
func queryPeer(t *testing.T) *Peer {
	t.Helper()
	s := schema.MustParseText(`
root guide
elem guide = restaurant*
elem restaurant = name.city?
elem name = data
elem city = data
`, nil)
	p := New("guide", s)
	must(t, p.Repo.Put("guide", doc.Elem("guide",
		doc.Elem("restaurant", doc.Elem("name", doc.TextNode("Chez Paul")), doc.Elem("city", doc.TextNode("Paris"))),
		doc.Elem("restaurant", doc.Elem("name", doc.TextNode("Roma")), doc.Elem("city", doc.TextNode("Rome"))),
		doc.Elem("restaurant", doc.Elem("name", doc.TextNode("Nowhere"))), // no city child
		doc.Elem("restaurant", doc.Elem("name", doc.TextNode("Blank")), doc.Elem("city")),
	)))
	must(t, p.DefineQueryService("ByCity", "city", "restaurant*", Query{
		Doc: "guide", Path: []string{"restaurant"}, Where: "city",
	}))
	return p
}

func TestQueryWhereFilters(t *testing.T) {
	p := queryPeer(t)
	out, err := p.Services.Call("ByCity", []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Children[0].Children[0].Value != "Chez Paul" {
		t.Fatalf("Where city=Paris selected %d rows", len(out))
	}
}

// TestQueryWhereMissingParam: a Where query with no atomic parameter is an
// error, not a silent match against "".
func TestQueryWhereMissingParam(t *testing.T) {
	p := queryPeer(t)
	_, err := p.Services.Call("ByCity", nil)
	if err == nil || !strings.Contains(err.Error(), "atomic parameter") {
		t.Fatalf("missing parameter: got err=%v, want atomic-parameter error", err)
	}
	_, err = p.Services.Call("ByCity", []*doc.Node{doc.Elem("city", doc.Elem("name"))})
	if err == nil {
		t.Fatal("structured-only parameter must not silently match")
	}
}

// TestQueryWhereEmptyValue: an explicitly empty parameter matches rows whose
// Where child is present but empty — and only those. Rows *lacking* the
// child never match.
func TestQueryWhereEmptyValue(t *testing.T) {
	p := queryPeer(t)
	out, err := p.Services.Call("ByCity", []*doc.Node{doc.Elem("city", doc.TextNode(""))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Children[0].Children[0].Value != "Blank" {
		names := make([]string, 0, len(out))
		for _, n := range out {
			names = append(names, n.Children[0].Children[0].Value)
		}
		t.Fatalf(`Where city="" selected %v, want only "Blank"`, names)
	}
}

// TestStatsEndpoint: /stats reports cache effectiveness after an exchange.
func TestStatsEndpoint(t *testing.T) {
	p := newsPeer(t)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	exch, err := schema.ParseTextShared(schema.NewShared(p.Schema.Table), strings.Replace(newspaperSchema,
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = title.date.temp.(TimeOut|exhibit*)", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendDocument("today", exch, core.Safe); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var stats struct {
		Peer         string `json:"peer"`
		Documents    int    `json:"documents"`
		CompileCache struct {
			Misses uint64 `json:"Misses"`
		} `json:"compile_cache"`
		Invocations int `json:"invocations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Peer != "news" || stats.Documents != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.CompileCache.Misses != 1 || stats.Invocations != 1 {
		t.Errorf("after one exchange: %+v, want 1 compile and 1 invocation", stats)
	}
}
