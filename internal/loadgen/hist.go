package loadgen

import (
	"math"
	"sort"
	"sync/atomic"

	"axml/internal/telemetry"
)

// hist is a lock-free fixed-bucket latency histogram, bucket semantics
// identical to the server's telemetry.Histogram (`le`-inclusive cumulative
// counts). Client buckets are a strict superset of the server's
// telemetry.DefBuckets: every server bound appears among the client bounds,
// so client counts can be re-binned onto the server's grid exactly — the
// foundation of the /metrics cross-check — while the extra subdivisions give
// the client sharper p50/p99/p999 estimates than the server exposes.
type hist struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
}

// clientBuckets returns DefBuckets with three geometric subdivisions per
// interval (plus a decade below the smallest bound).
func clientBuckets() []float64 {
	base := telemetry.DefBuckets
	out := []float64{base[0] / 10, base[0] / 4, base[0] / 2}
	for i, b := range base {
		if i > 0 {
			lo := base[i-1]
			step := math.Cbrt(b / lo) // geometric thirds of (lo, b)
			out = append(out, lo*step, lo*step*step)
		}
		out = append(out, b)
	}
	sort.Float64s(out)
	return out
}

func newHist(bounds []float64) *hist {
	upper := append([]float64(nil), bounds...)
	sort.Float64s(upper)
	return &hist{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

func (h *hist) observe(seconds float64) {
	i := sort.SearchFloat64s(h.upper, seconds)
	h.counts[i].Add(1)
}

func (h *hist) count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// quantile returns the upper bound of the bucket containing the q-quantile —
// a conservative (rounded-up) estimate, the same convention Prometheus
// dashboards use. The +Inf bucket reports the largest finite bound.
func (h *hist) quantile(q float64) float64 {
	total := h.count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		if cum >= rank {
			return ub
		}
	}
	return h.upper[len(h.upper)-1]
}

// rebin folds the histogram onto a coarser grid whose bounds must all appear
// in h.upper, returning cumulative counts per bound plus the +Inf total.
func (h *hist) rebin(bounds []float64) (cum []uint64, total uint64) {
	cum = make([]uint64, len(bounds))
	j := 0
	var running uint64
	for i, ub := range h.upper {
		running += h.counts[i].Load()
		if j < len(bounds) && bounds[j] == ub {
			cum[j] = running
			j++
		}
	}
	for ; j < len(bounds); j++ {
		cum[j] = running
	}
	return cum, h.count()
}
