package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

// stubInvoker dispatches on function name.
type stubInvoker map[string]func(call *doc.Node) ([]*doc.Node, error)

func (s stubInvoker) Invoke(_ context.Context, call *doc.Node) ([]*doc.Node, error) {
	f, ok := s[call.Label]
	if !ok {
		return nil, errors.New("no stub for " + call.Label)
	}
	return f(call)
}

func ret(nodes ...*doc.Node) func(*doc.Node) ([]*doc.Node, error) {
	return func(*doc.Node) ([]*doc.Node, error) { return doc.CloneForest(nodes), nil }
}

// fig2doc is the Figure 2.a newspaper document.
func fig2doc() *doc.Node {
	return doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		doc.Call("TimeOut", doc.TextNode("exhibits")),
	)
}

const senderText = `
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.(Get_Date|date)
elem performance = data
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
func Get_Date = title -> date
`

// targetSchema builds a target schema sharing the sender's symbol table,
// with the newspaper content model replaced by the given expression.
func targetSchema(t *testing.T, sender *schema.Schema, newspaper string) *schema.Schema {
	t.Helper()
	text := strings.Replace(senderText,
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = "+newspaper, 1)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), text, nil)
	if err != nil {
		t.Fatal(err)
	}
	return target
}

func paperRewriter(t *testing.T, newspaper string, inv Invoker) *Rewriter {
	t.Helper()
	sender := schema.MustParseText(senderText, nil)
	target := targetSchema(t, sender, newspaper)
	rw := NewRewriter(sender, target, 2, inv)
	rw.Audit = &Audit{}
	return rw
}

// TestFig2SafeExecution reproduces the paper's central example: rewriting
// the Figure 2.a document into schema (**) calls Get_Temp, keeps TimeOut.
func TestFig2SafeExecution(t *testing.T) {
	for _, engine := range []EngineKind{Eager, Lazy} {
		inv := stubInvoker{
			"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
			"TimeOut": func(*doc.Node) ([]*doc.Node, error) {
				t.Error("TimeOut must not be invoked for schema (**)")
				return nil, nil
			},
		}
		rw := paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", inv)
		rw.Engine = engine
		root := fig2doc()
		out, err := rw.RewriteDocument(root, Safe)
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		if err := rw.Context().Validate(out); err != nil {
			t.Fatalf("engine %d: result does not validate: %v", engine, err)
		}
		labels := out.ChildLabels()
		want := []string{"title", "date", "temp", "TimeOut"}
		for i := range want {
			if labels[i] != want[i] {
				t.Fatalf("engine %d: children = %v want %v", engine, labels, want)
			}
		}
		calls := rw.Audit.Calls()
		if len(calls) != 1 || calls[0].Func != "Get_Temp" {
			t.Errorf("engine %d: audit = %+v want exactly one Get_Temp call", engine, calls)
		}
		rw.Audit.Reset()
	}
}

// TestFig8SafeRefusal: rewriting into (***) is refused before any call.
func TestFig8SafeRefusal(t *testing.T) {
	invoked := false
	inv := InvokerFunc(func(*doc.Node) ([]*doc.Node, error) {
		invoked = true
		return nil, nil
	})
	rw := paperRewriter(t, "title.date.temp.exhibit*", inv)
	if _, err := rw.RewriteDocument(fig2doc(), Safe); err == nil {
		t.Fatal("safe rewriting into (***) should be refused")
	}
	if invoked {
		t.Error("safe mode must not invoke anything when refusing")
	}
	if rw.Audit.Len() != 0 {
		t.Error("audit should be empty after refusal")
	}
}

// TestFig11PossibleExecution: possible mode succeeds when TimeOut returns
// only exhibits, and fails (with the side effects on record) when it
// returns a performance.
func TestFig11PossibleExecution(t *testing.T) {
	exhibit := doc.Elem("exhibit", doc.Elem("title", doc.TextNode("Dali")), doc.Elem("date", doc.TextNode("2002")))
	lucky := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		"TimeOut":  ret(exhibit, exhibit),
	}
	rw := paperRewriter(t, "title.date.temp.exhibit*", lucky)
	out, err := rw.RewriteDocument(fig2doc(), Possible)
	if err != nil {
		t.Fatalf("lucky TimeOut: %v", err)
	}
	if err := rw.Context().Validate(out); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	if got := rw.Audit.Len(); got != 2 {
		t.Errorf("expected 2 calls (Get_Temp, TimeOut), audit = %d", got)
	}

	unlucky := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		"TimeOut":  ret(doc.Elem("performance", doc.TextNode("opera"))),
	}
	rw2 := paperRewriter(t, "title.date.temp.exhibit*", unlucky)
	_, err = rw2.RewriteDocument(fig2doc(), Possible)
	if err == nil {
		t.Fatal("unlucky TimeOut should fail the possible rewriting")
	}
	if rw2.Audit.Len() == 0 {
		t.Error("the failed attempt performed calls; the audit must show them")
	}
}

// TestPossibleRefusedStatically: an impossible request is refused with no
// calls at all.
func TestPossibleRefusedStatically(t *testing.T) {
	rw := paperRewriter(t, "title.date.temp.temp", stubInvoker{
		"Get_Temp": func(*doc.Node) ([]*doc.Node, error) {
			t.Error("must not invoke for an impossible target")
			return nil, nil
		},
	})
	if _, err := rw.RewriteDocument(fig2doc(), Possible); err == nil {
		t.Fatal("impossible target should be refused")
	}
	if rw.Audit.Len() != 0 {
		t.Error("no calls should be made for an impossible target")
	}
}

// TestNestedParams: the parameters of a function are themselves intensional
// and must be materialized (deepest first) before the function is invoked.
func TestNestedParams(t *testing.T) {
	sender := schema.MustParseText(`
root newspaper
elem newspaper = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
func Default_City = data -> city
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), `
root newspaper
elem newspaper = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
func Default_City = data -> city
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	inv := stubInvoker{
		"Default_City": func(*doc.Node) ([]*doc.Node, error) {
			order = append(order, "Default_City")
			return []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}, nil
		},
		"Get_Temp": func(call *doc.Node) ([]*doc.Node, error) {
			order = append(order, "Get_Temp")
			if len(call.Children) != 1 || call.Children[0].Label != "city" {
				t.Errorf("Get_Temp invoked with unmaterialized params: %v", call.Children)
			}
			return []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}, nil
		},
	}
	rw := NewRewriter(sender, target, 2, inv)
	rw.Audit = &Audit{}
	root := doc.Elem("newspaper", doc.Call("Get_Temp", doc.Call("Default_City", doc.TextNode("fr"))))
	out, err := rw.RewriteDocument(root, Safe)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "Default_City" || order[1] != "Get_Temp" {
		t.Errorf("invocation order = %v, want params first", order)
	}
	if err := rw.Context().Validate(out); err != nil {
		t.Errorf("result invalid: %v", err)
	}
}

// TestStrictParamsFailure: a function whose parameters cannot be fixed
// fails strict rewriting even when it could be kept.
func TestStrictParamsFailure(t *testing.T) {
	rw := paperRewriter(t, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)", stubInvoker{})
	bad := fig2doc()
	bad.Children[2] = doc.Call("Get_Temp", doc.Elem("date")) // wrong param type
	if err := rw.CheckDocument(bad, Safe); err == nil {
		t.Fatal("strict mode should reject unfixable parameters")
	}
	// Lenient mode freezes Get_Temp instead; the target admits keeping it,
	// so the check passes.
	rw.StrictParams = false
	if err := rw.CheckDocument(bad, Safe); err != nil {
		t.Fatalf("lenient mode should allow keeping the broken call: %v", err)
	}
	// But a target that requires materialization still fails leniently.
	rw2 := paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", stubInvoker{})
	rw2.StrictParams = false
	bad2 := fig2doc()
	bad2.Children[2] = doc.Call("Get_Temp", doc.Elem("date"))
	if err := rw2.CheckDocument(bad2, Safe); err == nil {
		t.Fatal("frozen function cannot materialize temp")
	}
}

// TestDataCollapse: data elements containing data-returning function calls
// are materialized.
func TestDataCollapse(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = temp
elem temp = data
func Read_Sensor = data -> data
`, nil)
	inv := stubInvoker{
		"Read_Sensor": ret(doc.TextNode("21.5")),
	}
	rw := NewRewriter(sender, sender, 1, inv)
	root := doc.Elem("page", doc.Elem("temp", doc.Call("Read_Sensor", doc.TextNode("s1"))))
	out, err := rw.RewriteDocument(root, Safe)
	if err != nil {
		t.Fatal(err)
	}
	tempElem := out.Children[0]
	if len(tempElem.Children) != 1 || tempElem.Children[0].Kind != doc.Text || tempElem.Children[0].Value != "21.5" {
		t.Errorf("temp content = %v", tempElem.Children)
	}
	if err := rw.Context().Validate(out); err != nil {
		t.Errorf("result invalid: %v", err)
	}
}

// TestValidateReturns: a service returning a non-conforming forest is caught.
func TestValidateReturns(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("city", doc.TextNode("nonsense"))),
	}
	rw := paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", inv)
	_, err := rw.RewriteDocument(fig2doc(), Safe)
	if err == nil || !strings.Contains(err.Error(), "non-conforming") {
		t.Fatalf("expected non-conforming result error, got %v", err)
	}
}

// TestInvokerError propagates service failures.
func TestInvokerError(t *testing.T) {
	inv := stubInvoker{
		"Get_Temp": func(*doc.Node) ([]*doc.Node, error) { return nil, errors.New("boom") },
	}
	rw := paperRewriter(t, "title.date.temp.(TimeOut|exhibit*)", inv)
	_, err := rw.RewriteDocument(fig2doc(), Safe)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected invoker error, got %v", err)
	}
}

// TestMaxCallsValve stops runaway recursive services.
func TestMaxCallsValve(t *testing.T) {
	sender := schema.MustParseText(`
root results
elem results = url*
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	inv := stubInvoker{
		"Get_More": ret(doc.Elem("url", doc.TextNode("http://x")), doc.Call("Get_More", doc.TextNode("next"))),
	}
	rw := NewRewriter(sender, sender, 50, inv)
	rw.MaxCalls = 10
	root := doc.Elem("results", doc.Call("Get_More", doc.TextNode("q")))
	_, err := rw.RewriteDocument(root, Possible)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected call budget error, got %v", err)
	}
	if rw.Audit.Len() > 10 {
		t.Errorf("made %d calls, budget was 10", rw.Audit.Len())
	}
}

// TestRecursiveMaterialization: a Get_More handle that eventually dries up
// materializes fully in possible mode.
func TestRecursiveMaterialization(t *testing.T) {
	sender := schema.MustParseText(`
root results
elem results = url*.Get_More?
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	target, err := schema.ParseTextShared(schema.NewShared(sender.Table), `
root results
elem results = url*
elem url = data
func Get_More = data -> url*.Get_More?
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	pages := 3
	inv := stubInvoker{
		"Get_More": func(*doc.Node) ([]*doc.Node, error) {
			pages--
			out := []*doc.Node{doc.Elem("url", doc.TextNode("u"))}
			if pages > 0 {
				out = append(out, doc.Call("Get_More", doc.TextNode("next")))
			}
			return out, nil
		},
	}
	rw := NewRewriter(sender, target, 5, inv)
	rw.Audit = &Audit{}
	root := doc.Elem("results", doc.Elem("url", doc.TextNode("u0")), doc.Call("Get_More", doc.TextNode("q")))
	out, err := rw.RewriteDocument(root, Possible)
	if err != nil {
		t.Fatal(err)
	}
	if out.HasFuncs() {
		t.Error("result still intensional")
	}
	if got := len(out.Children); got != 4 {
		t.Errorf("urls = %d want 4", got)
	}
	if rw.Audit.Len() != 3 {
		t.Errorf("calls = %d want 3", rw.Audit.Len())
	}
}

// TestMixedMode: pre-invoking the side-effect-free TimeOut turns the unsafe
// (***) request into a safe one when the actual data happens to conform.
func TestMixedMode(t *testing.T) {
	exhibit := doc.Elem("exhibit", doc.Elem("title", doc.TextNode("Dali")), doc.Elem("date", doc.TextNode("2002")))
	inv := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		"TimeOut":  ret(exhibit),
	}
	rw := paperRewriter(t, "title.date.temp.exhibit*", inv)
	out, err := rw.RewriteDocument(fig2doc(), Mixed)
	if err != nil {
		t.Fatalf("mixed mode should succeed with conforming actual data: %v", err)
	}
	if err := rw.Context().Validate(out); err != nil {
		t.Errorf("result invalid: %v", err)
	}
	// With a performance in the actual data, the post-pre-invocation safe
	// check refuses — after the speculative calls.
	inv2 := stubInvoker{
		"Get_Temp": ret(doc.Elem("temp", doc.TextNode("15"))),
		"TimeOut":  ret(doc.Elem("performance", doc.TextNode("opera"))),
	}
	rw2 := paperRewriter(t, "title.date.temp.exhibit*", inv2)
	if _, err := rw2.RewriteDocument(fig2doc(), Mixed); err == nil {
		t.Fatal("mixed mode should refuse when actual data does not conform")
	}
}

// TestMixedSkipsSideEffects: the speculative pass must not invoke
// side-effecting or costly functions.
func TestMixedSkipsSideEffects(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = (Pay|receipt)
elem receipt = data
func Pay = data -> receipt {effects}
`, nil)
	inv := stubInvoker{
		"Pay": func(*doc.Node) ([]*doc.Node, error) {
			t.Error("side-effecting Pay must not be pre-invoked")
			return []*doc.Node{doc.Elem("receipt", doc.TextNode("ok"))}, nil
		},
	}
	rw := NewRewriter(sender, sender, 1, inv)
	root := doc.Elem("page", doc.Call("Pay", doc.TextNode("100")))
	out, err := rw.RewriteDocument(root, Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Children[0].Label != "Pay" {
		t.Error("Pay should have been kept")
	}
}

// TestRootFunctionDocument: a document whose root is a function node.
func TestRootFunctionDocument(t *testing.T) {
	sender := schema.MustParseText(`
root page
elem page = data
func Make_Page = data -> page
`, nil)
	inv := stubInvoker{
		"Make_Page": ret(doc.Elem("page", doc.TextNode("hello"))),
	}
	rw := NewRewriter(sender, sender, 1, inv)
	out, err := rw.RewriteDocument(doc.Call("Make_Page", doc.TextNode("x")), Safe)
	if err != nil {
		t.Fatal(err)
	}
	if out.Label != "page" || out.Kind != doc.Element {
		t.Errorf("root = %v %q", out.Kind, out.Label)
	}
}

// TestSchemaRewritePaper reproduces Section 6's example: schema (*) safely
// rewrites into (**) but not into (***).
func TestSchemaRewritePaper(t *testing.T) {
	sender := schema.MustParseText(senderText, nil)

	okTarget := targetSchema(t, sender, "title.date.temp.(TimeOut|exhibit*)")
	c := Compile(sender, okTarget)
	report, err := SchemaSafeRewrite(c, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Safe() {
		t.Fatalf("(*) should safely rewrite into (**): %+v", report.Failures())
	}

	badTarget := targetSchema(t, sender, "title.date.temp.exhibit*")
	c2 := Compile(sender, badTarget)
	report2, err := SchemaSafeRewrite(c2, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Safe() {
		t.Fatal("(*) must not safely rewrite into (***)")
	}
	fails := report2.Failures()
	if len(fails) == 0 || fails[0].Label != "newspaper" {
		t.Errorf("failures = %+v, want newspaper", fails)
	}
}

// TestSchemaRewriteIdentity: every schema safely rewrites into itself with
// k=0 (instances are already instances).
func TestSchemaRewriteIdentity(t *testing.T) {
	sender := schema.MustParseText(senderText, nil)
	c := Compile(sender, sender)
	report, err := SchemaSafeRewrite(c, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Safe() {
		t.Fatalf("identity schema rewrite failed: %+v", report.Failures())
	}
}

// TestSchemaRewriteDataMismatch: data vs structured content is flagged.
func TestSchemaRewriteDataMismatch(t *testing.T) {
	table := regex.NewTable()
	sender, err := schema.ParseTextShared(schema.NewShared(table), "root a\nelem a = b\nelem b = data", nil)
	if err != nil {
		t.Fatal(err)
	}
	target, err := schema.ParseTextShared(schema.NewShared(table), "root a\nelem a = b\nelem b = c\nelem c = data", nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := SchemaSafeRewrite(Compile(sender, target), "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Safe() {
		t.Fatal("data/structured mismatch should fail")
	}
}

// TestSchemaRewriteErrors: missing root declarations are reported.
func TestSchemaRewriteErrors(t *testing.T) {
	s := schema.MustParseText("elem a = data", nil)
	c := Compile(s, s)
	if _, err := SchemaSafeRewrite(c, "", 1); err == nil {
		t.Error("missing root should error")
	}
	if _, err := SchemaSafeRewrite(c, "zzz", 1); err == nil {
		t.Error("undeclared root should error")
	}
}
