package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSchema(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peer.axs")
	err := os.WriteFile(path, []byte(`
root page
elem page = Get_Temp|temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigureRejectsBadFlags(t *testing.T) {
	sp := writeSchema(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no schema", nil, "-schema is required"},
		{"zero cache", []string{"-schema", sp, "-cache", "0"}, "-cache must be positive"},
		{"negative cache", []string{"-schema", sp, "-cache", "-3"}, "-cache must be positive"},
		{"zero word cache", []string{"-schema", sp, "-word-cache", "0"}, "-word-cache must be positive"},
		{"zero max request", []string{"-schema", sp, "-max-request", "0"}, "-max-request must be positive"},
		{"negative max request", []string{"-schema", sp, "-max-request", "-1"}, "-max-request must be positive"},
		{"zero retries", []string{"-schema", sp, "-retries", "0"}, "-retries must be at least 1"},
		{"negative timeout", []string{"-schema", sp, "-call-timeout", "-1s"}, "-call-timeout must not be negative"},
		{"negative breaker", []string{"-schema", sp, "-breaker-failures", "-1"}, "-breaker-failures must not be negative"},
		{"bad mode", []string{"-schema", sp, "-mode", "yolo"}, "bad -mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := configure(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("configure(%v) error = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestConfigureBuildsPeer(t *testing.T) {
	sp := writeSchema(t)
	p, addr, err := configure([]string{
		"-schema", sp, "-name", "news", "-addr", ":9999", "-mode", "possible",
		"-sim", "7",
		"-call-timeout", "2s", "-retries", "3", "-breaker-failures", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":9999" || p.Name != "news" {
		t.Errorf("addr=%q name=%q", addr, p.Name)
	}
	if len(p.Policies) != 3 {
		t.Errorf("policies = %d, want 3 (breaker, retry, timeout)", len(p.Policies))
	}
	if _, ok := p.Services.Lookup("Get_Temp"); !ok {
		t.Error("simulated operation not registered")
	}
}

func TestConfigurePolicyFlagsOff(t *testing.T) {
	p, _, err := configure([]string{"-schema", writeSchema(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Policies) != 0 {
		t.Errorf("default policies = %d, want 0", len(p.Policies))
	}
}
