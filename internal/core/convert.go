package core

import (
	"axml/internal/doc"
)

// Converter is the "automatic converter" extension sketched in the paper's
// conclusion: when a service returns data that is not an output instance of
// its declared type, converters get a chance to restructure it before the
// exchange is failed. Typical converters rename elements, unwrap envelopes,
// or translate values (the paper's Celsius-to-Fahrenheit example).
type Converter interface {
	// Convert attempts to restructure the forest returned by function fn
	// into an output instance. It returns the replacement and true on
	// success; the input must not be mutated on failure.
	Convert(fn string, forest []*doc.Node) ([]*doc.Node, bool)
}

// ConverterFunc adapts a function to Converter.
type ConverterFunc func(fn string, forest []*doc.Node) ([]*doc.Node, bool)

// Convert implements Converter.
func (f ConverterFunc) Convert(fn string, forest []*doc.Node) ([]*doc.Node, bool) {
	return f(fn, forest)
}

// Converters tries each converter in order until the result validates; it is
// itself a building block, not a Converter (validation lives in the caller).
type Converters []Converter

// RenameLabels returns a converter that renames element and function labels
// throughout the returned forest — the classic fix for services that use a
// synonymous vocabulary (temperature vs temp).
func RenameLabels(mapping map[string]string) Converter {
	return ConverterFunc(func(fn string, forest []*doc.Node) ([]*doc.Node, bool) {
		out := doc.CloneForest(forest)
		changed := false
		for _, n := range out {
			n.Walk(func(m *doc.Node) bool {
				if next, ok := mapping[m.Label]; ok && m.Kind != doc.Text {
					m.Label = next
					changed = true
				}
				return true
			})
		}
		if !changed {
			return nil, false
		}
		return out, true
	})
}

// Unwrap returns a converter that strips a wrapper element: a service that
// returns <result><temp>...</temp></result> where the signature promises a
// bare temp.
func Unwrap(wrapper string) Converter {
	return ConverterFunc(func(fn string, forest []*doc.Node) ([]*doc.Node, bool) {
		var out []*doc.Node
		changed := false
		for _, n := range forest {
			if n.Kind == doc.Element && n.Label == wrapper {
				out = append(out, doc.CloneForest(n.Children)...)
				changed = true
				continue
			}
			out = append(out, n.Clone())
		}
		if !changed {
			return nil, false
		}
		return out, true
	})
}

// MapValues returns a converter that rewrites the text content of elements
// with the given label — the value-translation case (units, encodings).
func MapValues(label string, translate func(string) (string, bool)) Converter {
	return ConverterFunc(func(fn string, forest []*doc.Node) ([]*doc.Node, bool) {
		out := doc.CloneForest(forest)
		changed := false
		for _, n := range out {
			n.Walk(func(m *doc.Node) bool {
				if m.Kind == doc.Element && m.Label == label {
					for _, ch := range m.Children {
						if ch.Kind == doc.Text {
							if v, ok := translate(ch.Value); ok {
								ch.Value = v
								changed = true
							}
						}
					}
				}
				return true
			})
		}
		if !changed {
			return nil, false
		}
		return out, true
	})
}

// applyConverters runs the rewriter's converter chain against a rejected
// result, revalidating after each attempt; it returns the first conforming
// restructuring.
func (ex *executor) applyConverters(call *doc.Node, result []*doc.Node) ([]*doc.Node, bool) {
	for _, conv := range ex.rw.Converters {
		fixed, ok := conv.Convert(call.Label, result)
		if !ok {
			continue
		}
		if err := ex.rw.ctx.IsOutputInstance(call.Label, fixed); err == nil {
			return fixed, true
		}
	}
	return nil, false
}
