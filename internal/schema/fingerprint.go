package schema

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"axml/internal/regex"
)

// fpBufPool recycles the serialization buffer Fingerprint hashes: the peer
// computes two fingerprints per /exchange request (its own schema plus the
// request's), and only the 32-byte hex digest needs to survive the call.
var fpBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Fingerprint returns a content-based identity for the schema, suitable as a
// cache key for compiled schema-pair analyses: two schemas interned into the
// same symbol table with identical declarations (labels, content models,
// function signatures and policy metadata, patterns) share a fingerprint,
// even when they are distinct parses of the same source — the situation the
// peer's /exchange endpoint creates on every request.
//
// Fingerprints are deliberately *not* memoized on the Schema: schemas are
// mutable (DefineQueryService adds functions after construction), and a
// recomputed fingerprint is what lets caches detect such mutations and
// recompile instead of serving stale analyses.
//
// Pattern predicates are opaque Go functions, so a schema declaring a
// pattern with a non-nil Pred cannot be identified by content alone; its
// fingerprint additionally pins the schema's pointer identity, trading cache
// hits across re-parses for correctness.
func (s *Schema) Fingerprint() string {
	b := fpBufPool.Get().(*bytes.Buffer)
	b.Reset()
	defer fpBufPool.Put(b)
	b.WriteString("root=")
	b.WriteString(s.Root)
	b.WriteByte('\n')
	for _, name := range s.SortedLabels() {
		d := s.Labels[name]
		b.WriteString("elem ")
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(regexKey(d.Content))
		b.WriteByte('\n')
	}
	for _, name := range s.SortedFuncs() {
		d := s.Funcs[name]
		b.WriteString("func ")
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(regexKey(d.In))
		b.WriteString("->")
		b.WriteString(regexKey(d.Out))
		b.WriteString(" inv=")
		b.WriteString(strconv.FormatBool(d.Invocable))
		b.WriteString(" cost=")
		b.WriteString(strconv.FormatFloat(d.Cost, 'g', -1, 64))
		b.WriteString(" se=")
		b.WriteString(strconv.FormatBool(d.SideEffects))
		b.WriteByte('\n')
	}
	opaque := false
	for _, name := range s.SortedPatterns() {
		d := s.Patterns[name]
		b.WriteString("pat ")
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(regexKey(d.In))
		b.WriteString("->")
		b.WriteString(regexKey(d.Out))
		b.WriteString(" inv=")
		b.WriteString(strconv.FormatBool(d.Invocable))
		b.WriteByte('\n')
		if d.Pred != nil {
			opaque = true
		}
	}
	sum := sha256.Sum256(b.Bytes())
	fp := hex.EncodeToString(sum[:16])
	if opaque {
		// Predicate behaviour is invisible to the hash; pin the instance.
		return fmt.Sprintf("%s@%p", fp, s)
	}
	return fp
}

// regexKey renders a possibly-nil content model or signature side; nil is
// the "data" keyword everywhere a schema stores regexes.
func regexKey(r *regex.Regex) string {
	if r == nil {
		return "data"
	}
	return r.Key()
}
