package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
	"axml/internal/workload"
)

// randomInstanceSetup builds a random schema, a random instance of it and a
// compiled pair rewriting the schema into itself-with-materialization: the
// target is the same schema but the checks run against arbitrary random
// content models drawn from its labels.
func randomInstanceSetup(seed int64) (*schema.Schema, *doc.Node, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	s := workload.RandomSchema(rng, workload.Options{Labels: 4, Funcs: 3})
	g := workload.NewGenerator(s, rng)
	g.MaxDepth = 6
	root, err := g.Root()
	if err != nil {
		panic(err)
	}
	return s, root, rng
}

// Property: eager and lazy verdicts agree (safe and possible) on random
// words against random targets.
func TestQuickEagerLazyAgree(t *testing.T) {
	f := func(seed int64) bool {
		s, root, rng := randomInstanceSetup(seed)
		c := Compile(s, s)
		tokens := TokensOf(c, root)
		// Random target: the content model of a random structured label.
		labels := s.SortedLabels()
		target := s.Labels[labels[rng.Intn(len(labels))]].Content
		if target == nil {
			return true
		}
		k := 1 + rng.Intn(2)
		eagerSafe, err := WordSafe(c, tokens, target, k)
		if err != nil {
			return false
		}
		lazySafe, err := LazySafe(c, tokens, target, k)
		if err != nil {
			return false
		}
		if eagerSafe != lazySafe.Verdict {
			t.Logf("seed %d: eager safe=%v lazy=%v", seed, eagerSafe, lazySafe.Verdict)
			return false
		}
		eagerPoss, err := WordPossible(c, tokens, target, k)
		if err != nil {
			return false
		}
		lazyPoss, err := LazyPossible(c, tokens, target, k)
		if err != nil {
			return false
		}
		if eagerPoss != lazyPoss.Verdict {
			t.Logf("seed %d: eager possible=%v lazy=%v", seed, eagerPoss, lazyPoss.Verdict)
			return false
		}
		// Safe implies possible.
		if eagerSafe && !eagerPoss {
			t.Logf("seed %d: safe but not possible", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: lazy explores at most as many states as eager constructs.
func TestQuickLazyNeverExploresMore(t *testing.T) {
	f := func(seed int64) bool {
		s, root, rng := randomInstanceSetup(seed)
		c := Compile(s, s)
		tokens := TokensOf(c, root)
		labels := s.SortedLabels()
		target := s.Labels[labels[rng.Intn(len(labels))]].Content
		if target == nil {
			return true
		}
		eager, err := AnalyzeSafe(c, tokens, target, 2, nil)
		if err != nil {
			return false
		}
		lazy, err := LazySafe(c, tokens, target, 2)
		if err != nil {
			return false
		}
		// The state spaces differ slightly (derivatives vs subset states),
		// so allow equality-with-slack only in the eager direction: the
		// lazy count must not exceed eager's by more than the derivative
		// granularity bound (distinct derivatives ≤ subset states + 1 for
		// the ∅ sink per fork state).
		return lazy.StatesExplored <= eager.NumProdStates()+len(eager.Fork.Accept)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: when the static check says a random instance safely rewrites
// into its own schema's materialized variant, execution with a randomized
// (adversarial) simulated invoker always succeeds — for every seed.
func TestQuickSafeExecutionAlwaysSucceeds(t *testing.T) {
	f := func(seed int64) bool {
		s, root, rng := randomInstanceSetup(seed)
		inv := workload.NewSimInvoker(s, rng)
		rw := NewRewriter(s, s, 2, inv)
		rw.Audit = &Audit{}
		if err := rw.CheckDocument(root, Safe); err != nil {
			return true // not safe: nothing to verify
		}
		out, err := rw.RewriteDocument(root.Clone(), Safe)
		if err != nil {
			t.Logf("seed %d: safe execution failed: %v", seed, err)
			return false
		}
		if err := rw.Context().Validate(out); err != nil {
			t.Logf("seed %d: safe execution produced invalid doc: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: rewriting into the schema the instance was generated from needs
// zero calls (it is already an instance) and succeeds in every mode.
func TestQuickIdentityRewriteNoCalls(t *testing.T) {
	f := func(seed int64) bool {
		s, root, rng := randomInstanceSetup(seed)
		_ = rng
		inv := workload.NewSimInvoker(s, rand.New(rand.NewSource(seed+1)))
		for _, mode := range []Mode{Safe, Possible} {
			rw := NewRewriter(s, s, 1, inv)
			rw.Audit = &Audit{}
			out, err := rw.RewriteDocument(root.Clone(), mode)
			if err != nil {
				t.Logf("seed %d mode %v: %v", seed, mode, err)
				return false
			}
			if rw.Audit.Len() != 0 {
				t.Logf("seed %d mode %v: identity rewrite made %d calls", seed, mode, rw.Audit.Len())
				return false
			}
			if err := rw.Context().Validate(out); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: schema-level safety transfers to instances — if the schema
// safely rewrites into a target, then every generated instance passes the
// document-level safe check.
func TestQuickSchemaRewriteSoundOnInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.Options{Labels: 3, Funcs: 2})
		c := Compile(s, s)
		report, err := SchemaSafeRewrite(c, "", 2)
		if err != nil || !report.Safe() {
			return true // identity-with-k2 should be safe, but skip if not
		}
		g := workload.NewGenerator(s, rng)
		g.MaxDepth = 5
		for i := 0; i < 3; i++ {
			root, err := g.Root()
			if err != nil {
				return false
			}
			rw := NewRewriter(s, s, 2, nil)
			if err := rw.CheckDocument(root, Safe); err != nil {
				t.Logf("seed %d: schema-safe but instance unsafe: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: validation agrees with a zero-depth safe check on documents that
// contain no function nodes at all.
func TestQuickValidationAgreesWithK0(t *testing.T) {
	f := func(seed int64) bool {
		s, root, _ := randomInstanceSetup(seed)
		if root.HasFuncs() {
			return true
		}
		rw := NewRewriter(s, s, 0, nil)
		checkErr := rw.CheckDocument(root, Safe)
		valErr := schema.NewContext(s, nil).Validate(root)
		return (checkErr == nil) == (valErr == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the regex→fork language relation — A_w^0 accepts exactly w.
func TestQuickForkK0IsWord(t *testing.T) {
	f := func(seed int64) bool {
		s, root, _ := randomInstanceSetup(seed)
		c := Compile(s, s)
		tokens := TokensOf(c, root)
		fork, err := BuildFork(c, tokens, 0)
		if err != nil {
			return false
		}
		word := make([]regex.Symbol, len(tokens))
		for i, tok := range tokens {
			word[i] = tok.Sym
		}
		if !fork.Accepts(word) {
			return false
		}
		if len(word) > 0 && fork.Accepts(word[1:]) {
			return false
		}
		return fork.NumForks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
