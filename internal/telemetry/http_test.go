package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("axml_demo_total").Add(2)

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "axml_demo_total 2") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}

	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("nil registry /metrics = %d, want 503", rec.Code)
	}
}

func TestTracesHandler(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	_, sp := StartSpan(ctx, "rewrite.safe")
	sp.End(nil)

	rec := httptest.NewRecorder()
	r.Tracer().TracesHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", rec.Code)
	}
	var body struct {
		Capacity int          `json:"capacity"`
		Recorded uint64       `json:"recorded"`
		Dropped  uint64       `json:"dropped"`
		Spans    []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Capacity != DefaultTraceCapacity || body.Recorded != 1 || len(body.Spans) != 1 {
		t.Fatalf("unexpected body: %+v", body)
	}
	if body.Spans[0].Name != "rewrite.safe" {
		t.Errorf("span name = %q", body.Spans[0].Name)
	}
}

func TestInstrumentHandler(t *testing.T) {
	r := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if RegistryFrom(req.Context()) != r {
			t.Error("registry not planted in request context")
		}
		if SpanFrom(req.Context()) == nil {
			t.Error("no enclosing span in request context")
		}
		if req.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("hello"))
	})
	h := InstrumentHandler(r, "soap", inner)

	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("payload"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if v, _ := r.Value("axml_http_requests_total", "handler", "soap", "code", "2xx"); v != 3 {
		t.Errorf("2xx count = %v, want 3", v)
	}
	if v, _ := r.Value("axml_http_requests_total", "handler", "soap", "code", "5xx"); v != 1 {
		t.Errorf("5xx count = %v, want 1", v)
	}
	if v, _ := r.Value("axml_http_request_seconds", "handler", "soap"); v != 4 {
		t.Errorf("latency observations = %v, want 4", v)
	}
	if v, _ := r.Value("axml_http_response_bytes", "handler", "soap"); v != 4 {
		t.Errorf("response size observations = %v, want 4", v)
	}
	// the wrapper pre-registers all status classes so they appear at boot
	if v, ok := r.Value("axml_http_requests_total", "handler", "soap", "code", "4xx"); !ok || v != 0 {
		t.Errorf("4xx series = %v, %v; want 0, true", v, ok)
	}
	spans := r.Tracer().Spans()
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(spans))
	}
	if spans[0].Name != "http.soap" {
		t.Errorf("span name = %q", spans[0].Name)
	}
}

func TestInstrumentHandlerNilRegistry(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {})
	if h := InstrumentHandler(nil, "soap", inner); h == nil {
		t.Fatal("nil registry returned nil handler")
	}
}
