package core

import (
	"sync"
	"time"

	"axml/internal/telemetry"
)

// Instruments is the pre-resolved set of telemetry handles the rewriting
// pipeline reports into. Handles are resolved once at construction so the
// hot paths never touch the registry's lock; every enumerable series is
// registered eagerly so a freshly booted peer already exposes the full
// catalogue (at zero) on /metrics.
//
// A nil *Instruments is the documented no-op: every method returns
// immediately, and since the telemetry handle types are themselves
// nil-safe, instrumented code contains no telemetry branches beyond the
// nil checks that skip clock reads.
type Instruments struct {
	reg *telemetry.Registry

	// --- word-level analysis (safe.go / possible.go / lazy.go) ---
	wordVerdicts [2][2]*telemetry.Counter   // [engine][safe|possible]
	wordSeconds  [2][2]*telemetry.Histogram // cache-miss analysis latency
	forkSeconds  *telemetry.Histogram
	complSeconds *telemetry.Histogram
	dfaSeconds   *telemetry.Histogram
	forkStates   *telemetry.Histogram
	prodEager    *telemetry.Histogram
	prodPossible *telemetry.Histogram
	prodLazy     *telemetry.Histogram
	lazySink     *telemetry.Counter
	lazyMark     *telemetry.Counter

	// --- rewriting (exec.go) ---
	rewrites    [3]*telemetry.Counter // [Safe|Possible|Mixed]
	rewriteErrs [3]*telemetry.Counter
	rewriteSecs [3]*telemetry.Histogram
	decKeep     *telemetry.Counter
	decInvoke   *telemetry.Counter
	decDefer    *telemetry.Counter
	decBack     *telemetry.Counter

	// --- invocation layer (event bridge) ---
	retries        *telemetry.Counter
	exhausted      *telemetry.Counter
	timeouts       *telemetry.Counter
	degraded       *telemetry.Counter
	faults         *telemetry.Counter
	breakerOpen    *telemetry.Counter
	breakerClose   *telemetry.Counter
	breakerHalf    *telemetry.Counter
	breakerRejects *telemetry.Counter

	// --- streaming engine (stream.go) ---
	streamOK        *telemetry.Counter
	streamErr       *telemetry.Counter
	streamFallbacks map[string]*telemetry.Counter // by reason, pre-registered
	streamFallOther *telemetry.Counter
	streamPeakBytes *telemetry.Histogram
	streamPeakNodes *telemetry.Histogram
	streamFirstByte *telemetry.Histogram

	// --- parallel engine (parallel.go) ---
	parActive  *telemetry.Gauge
	parSpawned *telemetry.Counter
	parInline  *telemetry.Counter
	parRounds  [2]*telemetry.Counter   // [word|preinvoke]
	parBatch   [2]*telemetry.Histogram // [word|preinvoke]

	// Per-endpoint handles are an open set, resolved lazily on the first
	// call to an endpoint and cached here so the invocation hot path never
	// takes the registry's write lock again.
	epMu sync.RWMutex
	eps  map[string]*endpointInstruments
}

// endpointInstruments bundles the per-endpoint series — call latency,
// error count and breaker state — plus the pre-built span name so the
// invocation path doesn't concatenate strings per call.
type endpointInstruments struct {
	seconds  *telemetry.Histogram
	errors   *telemetry.Counter
	breaker  *telemetry.Gauge
	spanName string // "invoke.<endpoint>"
}

// phase indices for parRounds/parBatch
const (
	phaseWord = iota
	phasePre
)

// rewriteSpanNames pre-builds the per-mode span names stamped on every
// top-level rewriting, sparing a concatenation per call.
var rewriteSpanNames = [3]string{"rewrite.safe", "rewrite.possible", "rewrite.mixed"}

func rewriteSpanName(mode Mode) string {
	if mode <= Mixed {
		return rewriteSpanNames[mode]
	}
	return "rewrite." + mode.String()
}

// NewInstruments resolves the pipeline's metric handles against reg,
// registering every enumerable series up front. A nil registry yields a
// nil (no-op) *Instruments.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	ins := &Instruments{reg: reg}
	engines := [2]string{"eager", "lazy"}
	analyses := [2]string{"safe", "possible"}
	for e, ename := range engines {
		for m, mname := range analyses {
			ins.wordVerdicts[e][m] = reg.Counter("axml_word_verdicts_total", "engine", ename, "mode", mname)
			ins.wordSeconds[e][m] = reg.Histogram("axml_word_analysis_seconds", telemetry.DefBuckets, "engine", ename, "mode", mname)
		}
	}
	ins.forkSeconds = reg.Histogram("axml_automaton_seconds", telemetry.DefBuckets, "stage", "fork")
	ins.complSeconds = reg.Histogram("axml_automaton_seconds", telemetry.DefBuckets, "stage", "complement")
	ins.dfaSeconds = reg.Histogram("axml_automaton_seconds", telemetry.DefBuckets, "stage", "target_dfa")
	ins.forkStates = reg.Histogram("axml_automaton_states", telemetry.CountBuckets, "kind", "fork")
	ins.prodEager = reg.Histogram("axml_automaton_states", telemetry.CountBuckets, "kind", "product_safe")
	ins.prodPossible = reg.Histogram("axml_automaton_states", telemetry.CountBuckets, "kind", "product_possible")
	ins.prodLazy = reg.Histogram("axml_automaton_states", telemetry.CountBuckets, "kind", "product_lazy")
	ins.lazySink = reg.Counter("axml_lazy_prunes_total", "kind", "sink")
	ins.lazyMark = reg.Counter("axml_lazy_prunes_total", "kind", "mark")

	for m := Safe; m <= Mixed; m++ {
		ins.rewrites[m] = reg.Counter("axml_rewrites_total", "mode", m.String())
		ins.rewriteErrs[m] = reg.Counter("axml_rewrite_errors_total", "mode", m.String())
		ins.rewriteSecs[m] = reg.Histogram("axml_rewrite_seconds", telemetry.DefBuckets, "mode", m.String())
	}
	ins.decKeep = reg.Counter("axml_word_decisions_total", "decision", "keep")
	ins.decInvoke = reg.Counter("axml_word_decisions_total", "decision", "invoke")
	ins.decDefer = reg.Counter("axml_word_decisions_total", "decision", "defer")
	ins.decBack = reg.Counter("axml_word_decisions_total", "decision", "backtrack")

	ins.retries = reg.Counter("axml_invoke_retries_total")
	ins.exhausted = reg.Counter("axml_invoke_exhausted_total")
	ins.timeouts = reg.Counter("axml_invoke_timeouts_total")
	ins.degraded = reg.Counter("axml_invoke_degraded_total")
	ins.faults = reg.Counter("axml_fault_injections_total")
	ins.breakerOpen = reg.Counter("axml_breaker_transitions_total", "state", "open")
	ins.breakerClose = reg.Counter("axml_breaker_transitions_total", "state", "closed")
	ins.breakerHalf = reg.Counter("axml_breaker_transitions_total", "state", "half-open")
	ins.breakerRejects = reg.Counter("axml_breaker_rejections_total")

	ins.streamOK = reg.Counter("axml_stream_rewrites_total", "result", "streamed")
	ins.streamErr = reg.Counter("axml_stream_rewrites_total", "result", "error")
	ins.streamFallbacks = make(map[string]*telemetry.Counter, len(streamFallbackReasons))
	for _, reason := range streamFallbackReasons {
		ins.streamFallbacks[reason] = reg.Counter("axml_stream_fallbacks_total", "reason", reason)
	}
	ins.streamFallOther = reg.Counter("axml_stream_fallbacks_total", "reason", "other")
	ins.streamPeakBytes = reg.Histogram("axml_stream_peak_buffered_bytes", telemetry.ByteBuckets)
	ins.streamPeakNodes = reg.Histogram("axml_stream_peak_buffered_nodes", telemetry.CountBuckets)
	ins.streamFirstByte = reg.Histogram("axml_stream_first_byte_seconds", telemetry.DefBuckets)

	ins.parActive = reg.Gauge("axml_parallel_active_slots")
	ins.parSpawned = reg.Counter("axml_parallel_tasks_total", "exec", "spawned")
	ins.parInline = reg.Counter("axml_parallel_tasks_total", "exec", "inline")
	ins.parRounds[phaseWord] = reg.Counter("axml_parallel_rounds_total", "phase", "word")
	ins.parRounds[phasePre] = reg.Counter("axml_parallel_rounds_total", "phase", "preinvoke")
	ins.parBatch[phaseWord] = reg.Histogram("axml_parallel_batch_size", telemetry.CountBuckets, "phase", "word")
	ins.parBatch[phasePre] = reg.Histogram("axml_parallel_batch_size", telemetry.CountBuckets, "phase", "preinvoke")
	return ins
}

// Registry exposes the backing registry (nil for no-op instruments).
func (ins *Instruments) Registry() *telemetry.Registry {
	if ins == nil {
		return nil
	}
	return ins.reg
}

func analysisIdx(mode Mode) int {
	if mode == Possible {
		return 1
	}
	return 0 // Safe and Mixed share the safe word analysis
}

func (ins *Instruments) observeWordVerdict(engine EngineKind, mode Mode) {
	if ins == nil {
		return
	}
	ins.wordVerdicts[engine][analysisIdx(mode)].Inc()
}

func (ins *Instruments) observeWordAnalysis(engine EngineKind, mode Mode, d time.Duration) {
	if ins == nil {
		return
	}
	ins.wordSeconds[engine][analysisIdx(mode)].Observe(d.Seconds())
}

func (ins *Instruments) observeLazy(res *LazyResult) {
	if ins == nil || res == nil {
		return
	}
	ins.prodLazy.Observe(float64(res.StatesExplored))
	ins.lazySink.Add(uint64(res.SinkPrunes))
	ins.lazyMark.Add(uint64(res.MarkPrunes))
}

// observeRewrite records one top-level rewriting; traceID (the rewrite
// ID) becomes the latency bucket's exemplar so a slow bucket in
// /metrics links to its recorded trace.
func (ins *Instruments) observeRewrite(mode Mode, d time.Duration, err error, traceID string) {
	if ins == nil || mode > Mixed {
		return
	}
	ins.rewrites[mode].Inc()
	ins.rewriteSecs[mode].ObserveExemplar(d.Seconds(), traceID)
	if err != nil {
		ins.rewriteErrs[mode].Inc()
	}
}

// countKeep / countInvoke / countDefer / countBacktrack tally the
// per-occurrence decisions of the word-rewriting loops.
func (ins *Instruments) countKeep() {
	if ins != nil {
		ins.decKeep.Inc()
	}
}

func (ins *Instruments) countInvoke() {
	if ins != nil {
		ins.decInvoke.Inc()
	}
}

func (ins *Instruments) countDefer() {
	if ins != nil {
		ins.decDefer.Inc()
	}
}

func (ins *Instruments) countBacktrack() {
	if ins != nil {
		ins.decBack.Inc()
	}
}

// observeStream records the outcome of one streamed rewriting: result
// counter, peak buffered frontier (the O(depth) claim made measurable) and
// first-byte latency when a byte left before the document finished.
func (ins *Instruments) observeStream(peakBytes, peakNodes int, firstByte time.Duration, err error) {
	if ins == nil {
		return
	}
	if err != nil {
		ins.streamErr.Inc()
	} else {
		ins.streamOK.Inc()
	}
	ins.streamPeakBytes.Observe(float64(peakBytes))
	ins.streamPeakNodes.Observe(float64(peakNodes))
	if firstByte > 0 {
		ins.streamFirstByte.Observe(firstByte.Seconds())
	}
}

// countStreamFallback tallies one fallback to the tree engine by reason.
func (ins *Instruments) countStreamFallback(reason string) {
	if ins == nil {
		return
	}
	if c := ins.streamFallbacks[reason]; c != nil {
		c.Inc()
		return
	}
	ins.streamFallOther.Inc()
}

// taskStart / taskEnd track parallel-engine slot utilization; spawned
// distinguishes tasks handed to a worker goroutine from those the
// spawning goroutine ran inline for lack of a free slot.
func (ins *Instruments) taskStart(spawned bool) {
	if ins == nil {
		return
	}
	if spawned {
		ins.parSpawned.Inc()
	} else {
		ins.parInline.Inc()
	}
	ins.parActive.Inc()
}

func (ins *Instruments) taskEnd() {
	if ins != nil {
		ins.parActive.Dec()
	}
}

// round records one dispatch round of the parallel engine and its batch
// size; phase is phaseWord or phasePre.
func (ins *Instruments) round(phase, batch int) {
	if ins == nil {
		return
	}
	ins.parRounds[phase].Inc()
	ins.parBatch[phase].Observe(float64(batch))
}

// endpoint resolves (and caches) the per-endpoint handle bundle. The
// first call for a name registers its three series — latency at zero
// observations, errors at 0 and breaker state 0 (closed) — so an
// endpoint shows up complete in the exposition as soon as it is called.
func (ins *Instruments) endpoint(name string) *endpointInstruments {
	if ins == nil {
		return nil
	}
	ins.epMu.RLock()
	ep := ins.eps[name]
	ins.epMu.RUnlock()
	if ep != nil {
		return ep
	}
	ep = &endpointInstruments{
		seconds:  ins.reg.Histogram("axml_invoke_seconds", telemetry.DefBuckets, "endpoint", name),
		errors:   ins.reg.Counter("axml_invoke_errors_total", "endpoint", name),
		breaker:  ins.reg.Gauge("axml_breaker_state", "endpoint", name),
		spanName: "invoke." + name,
	}
	ins.epMu.Lock()
	if have := ins.eps[name]; have != nil {
		ep = have
	} else {
		if ins.eps == nil {
			ins.eps = make(map[string]*endpointInstruments)
		}
		ins.eps[name] = ep
	}
	ins.epMu.Unlock()
	return ep
}

// observeEvent bridges one invocation-layer event onto the counters: the
// policy chain (internal/invoke) already narrates retries, timeouts,
// breaker transitions and injected faults through the context event sink,
// so the executor taps that stream instead of re-instrumenting each
// policy. Breaker transitions additionally drive a per-endpoint state
// gauge (0 closed, 1 half-open, 2 open).
func (ins *Instruments) observeEvent(e InvokeEvent) {
	if ins == nil {
		return
	}
	switch e.Kind {
	case EventAttempt:
		if e.Attempt > 1 {
			ins.retries.Inc()
		}
	case EventExhausted:
		ins.exhausted.Inc()
	case EventTimeout:
		ins.timeouts.Inc()
	case EventDegraded:
		ins.degraded.Inc()
	case EventFault:
		ins.faults.Inc()
	case EventBreakerOpen:
		ins.breakerOpen.Inc()
		ins.breakerGauge(e.Endpoint).Set(2)
	case EventBreakerHalfOpen:
		ins.breakerHalf.Inc()
		ins.breakerGauge(e.Endpoint).Set(1)
	case EventBreakerClose:
		ins.breakerClose.Inc()
		ins.breakerGauge(e.Endpoint).Set(0)
	case EventBreakerReject:
		ins.breakerRejects.Inc()
	}
}

func (ins *Instruments) breakerGauge(endpoint string) *telemetry.Gauge {
	return ins.endpoint(endpoint).breaker
}

// stampSink decorates the rewriting's event sink: it stamps the
// rewrite ID on every event that lacks one and feeds each event to the
// instruments' counters exactly once. Parallel slots buffer their events
// and flushSlot replays them through the parent context's sink — which is
// this one — so bridged counting stays single-counted at any degree.
type stampSink struct {
	inner EventSink
	extra EventSink // observer tap (e.g. the peer's event logger)
	ins   *Instruments
	id    string
}

func (s *stampSink) RecordEvent(e InvokeEvent) {
	if e.Rewrite == "" {
		e.Rewrite = s.id
	}
	s.ins.observeEvent(e)
	if s.inner != nil {
		s.inner.RecordEvent(e)
	}
	if s.extra != nil {
		s.extra.RecordEvent(e)
	}
}
