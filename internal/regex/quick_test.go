package regex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randRegex builds a random expression of bounded depth over a small
// alphabet. It is the generator behind the package's property tests.
func randRegex(rng *rand.Rand, tab *Table, depth int) *Regex {
	syms := []string{"a", "b", "c", "d"}
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(6) {
		case 0:
			return Empty()
		default:
			return Sym(tab.Intern(syms[rng.Intn(len(syms))]))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Concat(randRegex(rng, tab, depth-1), randRegex(rng, tab, depth-1))
	case 1:
		return Alt(randRegex(rng, tab, depth-1), randRegex(rng, tab, depth-1))
	case 2:
		return Star(randRegex(rng, tab, depth-1))
	default:
		return Opt(randRegex(rng, tab, depth-1))
	}
}

func randWord(rng *rand.Rand, tab *Table, maxLen int) []Symbol {
	syms := []string{"a", "b", "c", "d"}
	n := rng.Intn(maxLen + 1)
	w := make([]Symbol, n)
	for i := range w {
		w[i] = tab.Intern(syms[rng.Intn(len(syms))])
	}
	return w
}

// Property: a sampled word is always matched by the expression it was
// sampled from.
func TestQuickSampleInLanguage(t *testing.T) {
	tab := NewTable()
	rng := rand.New(rand.NewSource(7))
	s := NewSampler(rng)
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randRegex(local, tab, 4)
		w, ok := s.Sample(r)
		if !ok {
			return r.IsNever()
		}
		return Match(r, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Match agrees with the Glushkov position automaton run as an NFA.
func TestQuickMatchAgreesWithGlushkov(t *testing.T) {
	tab := NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRegex(rng, tab, 4)
		w := randWord(rng, tab, 6)
		return Match(r, w) == glushkovAccepts(r, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// glushkovAccepts runs the position automaton directly from PosInfo.
func glushkovAccepts(r *Regex, w []Symbol) bool {
	info := Positions(r)
	if len(w) == 0 {
		return info.Nullable
	}
	cur := map[int]bool{}
	for _, p := range info.First {
		if info.Classes[p-1].Contains(w[0]) {
			cur[p] = true
		}
	}
	for _, a := range w[1:] {
		next := map[int]bool{}
		for p := range cur {
			for _, q := range info.Follow[p-1] {
				if info.Classes[q-1].Contains(a) {
					next[q] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for _, p := range info.Last {
		if cur[p] {
			return true
		}
	}
	return false
}

// Property: derivatives implement left quotient — Match(r, aw) ==
// Match(d_a(r), w).
func TestQuickDerivativeQuotient(t *testing.T) {
	tab := NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRegex(rng, tab, 4)
		w := randWord(rng, tab, 5)
		if len(w) == 0 {
			return true
		}
		return Match(r, w) == Match(Derive(r, w[0]), w[1:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: printing then parsing preserves the language on random words.
func TestQuickPrintParseLanguage(t *testing.T) {
	tab := NewTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRegex(rng, tab, 4)
		r2, err := Parse(tab, r.String(tab))
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			w := randWord(rng, tab, 5)
			if Match(r, w) != Match(r2, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ShortestWord, when defined, is in the language and no sampled
// word is shorter.
func TestQuickShortestWord(t *testing.T) {
	tab := NewTable()
	s := NewSampler(rand.New(rand.NewSource(3)))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRegex(rng, tab, 4)
		shortest, ok := ShortestWord(r)
		if !ok {
			return r.IsNever()
		}
		if !Match(r, shortest) {
			return false
		}
		if w, sampled := s.Sample(r); sampled && len(w) < len(shortest) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeriveNewspaper(b *testing.B) {
	tab := NewTable()
	r := MustParse(tab, "title.date.(Get_Temp|temp).(TimeOut|exhibit*)")
	w := word(tab, "title", "date", "temp", "exhibit", "exhibit", "exhibit")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Match(r, w) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkGlushkov(b *testing.B) {
	tab := NewTable()
	r := MustParse(tab, "title.date.(Get_Temp|temp).(TimeOut|exhibit*).(a|b)*.c{2,5}")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Positions(r)
	}
}
