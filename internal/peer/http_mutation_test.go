package peer

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/wal"
)

func doReq(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPDocMutations(t *testing.T) {
	p := newsPeer(t)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/memo", "<memo>ship it</memo>"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	resp := doReq(t, http.MethodGet, ts.URL+"/doc/memo", "")
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(got), "ship it") {
		t.Errorf("GET after PUT = %d %q", resp.StatusCode, got)
	}

	// ".." would be cleaned away by the mux before reaching the handler;
	// an escaped backslash exercises the name validation instead.
	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/evil%5Cname", "<x/>"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT with bad name = %d, want 400", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/broken", "<unclosed>"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT with bad XML = %d, want 400", resp.StatusCode)
	}

	if resp := doReq(t, http.MethodDelete, ts.URL+"/doc/memo", ""); resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE = %d", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodGet, ts.URL+"/doc/memo", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after DELETE = %d, want 404", resp.StatusCode)
	}
	// Deletes are idempotent over HTTP, like the repository call.
	if resp := doReq(t, http.MethodDelete, ts.URL+"/doc/memo", ""); resp.StatusCode != http.StatusNoContent {
		t.Errorf("repeat DELETE = %d", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodPost, ts.URL+"/doc/memo", "<x/>"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

// A durable peer driven purely over HTTP: mutations survive a restart, and
// /stats exposes the WAL counters.
func TestHTTPDurablePeer(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p := newsPeer(t)
	p.Repo = d.Repository
	p.Durable = d
	ts := httptest.NewServer(p.Handler())

	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/memo", "<memo>durable</memo>"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/gone", "<gone/>"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodDelete, ts.URL+"/doc/gone", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	resp := doReq(t, http.MethodGet, ts.URL+"/stats", "")
	var stats struct {
		// The "wal" object keeps the historical flat shape: wal.Stats
		// fields plus recovery facts at the top level.
		WAL   *wal.Stats `json:"wal"`
		Store *struct {
			Backend   string `json:"backend"`
			Documents int    `json:"documents"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.WAL == nil || stats.WAL.Appends != 3 {
		t.Errorf("/stats wal = %+v, want 3 appends", stats.WAL)
	}
	if stats.Store == nil || stats.Store.Backend != "wal" || stats.Store.Documents != 1 {
		t.Errorf("/stats store = %+v, want wal backend with 1 document", stats.Store)
	}
	ts.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, ok := d2.Get("memo"); !ok || got.Children[0].Value != "durable" {
		t.Errorf("memo after restart = %v, %v", got, ok)
	}
	if _, ok := d2.Get("gone"); ok {
		t.Error("deleted document resurrected after restart")
	}
}

// A mutation after Close must not be acknowledged over HTTP either.
func TestHTTPDurableClosedSurfacesError(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := newsPeer(t)
	p.Repo = d.Repository
	p.Durable = d
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if resp := doReq(t, http.MethodPut, ts.URL+"/doc/late", "<late/>"); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("PUT after close = %d, want 500", resp.StatusCode)
	}
}
