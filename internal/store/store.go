// Package store is the peer's pluggable storage engine: a DocStore interface
// over named intensional documents, with three backends behind one
// constructor — the original in-memory map (Repository), the WAL-backed
// durable repository (DurableRepository), and a disk-sharded store (Disk)
// with hot/cold tiering that scales past what fits in memory.
//
// The interface contract, shared by every backend and pinned by the
// storetest conformance suite:
//
//   - Documents are cloned on the way in and out: a caller can never mutate
//     stored state through a node it handed in or got back.
//   - Mutations are atomic and totally ordered per store; an acknowledged
//     mutation is committed (and, for durable backends, logged) in that
//     order.
//   - Update/Get misses report ErrNotFound (wrapped); Delete of an absent
//     name is a no-op.
//   - After Close, mutations fail and reads keep working against the last
//     committed state.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"axml/internal/doc"
	"axml/internal/telemetry"
	"axml/internal/wal"
	"axml/internal/xmlio"
)

// ErrNotFound is the sentinel reported (wrapped) when an operation names a
// document the store does not hold. Test with errors.Is.
var ErrNotFound = errors.New("document not found")

// ErrClosed is the sentinel reported (wrapped) by mutations attempted after
// Close. Reads are still served from the last committed state.
var ErrClosed = errors.New("store is closed")

// DocStore is the storage engine behind a peer's repository. Implementations
// are safe for concurrent use.
type DocStore interface {
	// Put stores a clone of d under name, replacing any previous document.
	Put(name string, d *doc.Node) error
	// Get returns a clone of the named document; ok is false on a miss.
	Get(name string) (d *doc.Node, ok bool)
	// Update applies fn to a clone of the stored document and commits fn's
	// return value atomically. A miss reports ErrNotFound (wrapped); an fn
	// error aborts the update and leaves the document unchanged.
	Update(name string, fn func(*doc.Node) (*doc.Node, error)) error
	// Delete removes a document; deleting an absent name is a no-op.
	Delete(name string) error
	// Scan lists up to limit stored names lexicographically after the
	// cursor (exclusive; "" starts from the beginning). more reports
	// whether names beyond the returned page exist. limit <= 0 selects a
	// backend default.
	Scan(after string, limit int) (names []string, more bool, err error)
	// Names lists every stored name, sorted.
	Names() []string
	// Len reports the number of stored documents.
	Len() int
	// Stats reports backend-identifying counters for /stats and logging.
	Stats() Stats
	// Close releases the backend (flushing/snapshotting durable state).
	// Idempotent; mutations after Close fail, reads keep working.
	Close() error
}

// FunctionIndex is the optional capability of backends that index function
// nodes as first-class records: "find every document holding a pending
// Get_Temp call" without parsing the corpus. Discover it with a type
// assertion on a DocStore.
type FunctionIndex interface {
	// DocsWithFunction returns the sorted names of every document
	// containing at least one function node labeled fn.
	DocsWithFunction(fn string) ([]string, error)
}

// DefaultScanLimit caps Scan pages when the caller passes limit <= 0.
const DefaultScanLimit = 100

// Backend selector values for Options.Backend.
const (
	BackendMem  = "mem"
	BackendWAL  = "wal"
	BackendDisk = "disk"
)

// Backends lists the selector values Open accepts.
var Backends = []string{BackendMem, BackendWAL, BackendDisk}

// Stats is the uniform backend report: which engine is running, how much it
// holds, and the engine-specific sections (nil when not applicable).
type Stats struct {
	// Backend is the selector value of the running engine.
	Backend string `json:"backend"`
	// Documents is the stored document count.
	Documents int `json:"documents"`
	// Functions is the number of distinct function labels the function
	// index currently tracks (0 for unindexed backends).
	Functions int `json:"functions"`
	// WAL reports write-ahead-log counters (durable backend only).
	WAL *wal.Stats `json:"wal,omitempty"`
	// RecoveredDocuments is how many documents crash recovery restored at
	// Open (durable backend only).
	RecoveredDocuments int `json:"recovered_documents,omitempty"`
	// SnapshotEvery is the compaction threshold (durable backend only).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Disk reports tiering counters (disk backend only).
	Disk *DiskStats `json:"disk,omitempty"`
}

// DiskStats is the disk backend's tiering and sharding report.
type DiskStats struct {
	// Shards is the configured shard-directory count.
	Shards int `json:"shards"`
	// HotCacheCap is the hot-cache budget (decoded documents).
	HotCacheCap int `json:"hot_cache_cap"`
	// HotCached is the current hot-cache population.
	HotCached int `json:"hot_cached"`
	// Hits counts Gets and Updates served from the hot cache.
	Hits uint64 `json:"hits"`
	// Faults counts cold reads that parsed a document file on demand.
	Faults uint64 `json:"faults"`
	// Evictions counts documents pushed out of the hot cache.
	Evictions uint64 `json:"evictions"`
	// IndexRepairs counts index entries rebuilt at Open because the
	// per-shard index disagreed with the document files (crash before a
	// deferred index flush).
	IndexRepairs int `json:"index_repairs"`
	// IndexFlushes counts shard-index writes performed at flush points
	// (Close, Scan, Flush). Mutations debounce the index.json rewrite, so
	// this is typically far below the mutation count.
	IndexFlushes uint64 `json:"index_flushes"`
}

// Options configures Open.
type Options struct {
	// Backend selects the engine: BackendMem (default), BackendWAL or
	// BackendDisk.
	Backend string
	// Dir is the data directory (required for wal and disk).
	Dir string
	// Sync is the WAL fsync discipline (wal backend).
	Sync wal.SyncMode
	// SyncInterval is the background fsync period for wal.SyncInterval.
	SyncInterval time.Duration
	// SnapshotEvery compacts the WAL after this many mutations (wal
	// backend); 0 snapshots only on Close.
	SnapshotEvery int
	// HotCache is the disk backend's decoded-document budget (default
	// DefaultHotCache).
	HotCache int
	// Shards is the disk backend's shard-directory count (default
	// DefaultShards).
	Shards int
	// Registry, when non-nil, instruments the backend (axml_wal_* for the
	// durable engine, axml_store_* for disk).
	Registry *telemetry.Registry
	// ReplicaTail, when positive, keeps that many recent WAL records in
	// memory for replication streaming (wal backend only) — set on a
	// federation leader.
	ReplicaTail int
}

// Open builds the selected backend. An empty Backend selects mem.
func Open(opts Options) (DocStore, error) {
	switch opts.Backend {
	case "", BackendMem:
		return NewRepository(), nil
	case BackendWAL:
		if opts.Dir == "" {
			return nil, fmt.Errorf("store: the wal backend requires a data directory")
		}
		return OpenDurable(opts.Dir, DurableOptions{
			Sync:          opts.Sync,
			SyncInterval:  opts.SyncInterval,
			SnapshotEvery: opts.SnapshotEvery,
			Metrics:       wal.NewMetrics(opts.Registry),
			TailRecords:   opts.ReplicaTail,
		})
	case BackendDisk:
		if opts.Dir == "" {
			return nil, fmt.Errorf("store: the disk backend requires a data directory")
		}
		return OpenDisk(opts.Dir, DiskOptions{
			HotCache: opts.HotCache,
			Shards:   opts.Shards,
			Metrics:  NewMetrics(opts.Registry),
		})
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want one of %v)", opts.Backend, Backends)
	}
}

// FuncNames returns the distinct function labels embedded in d, sorted —
// the record the function index maintains per document.
func FuncNames(d *doc.Node) []string {
	if d == nil {
		return nil
	}
	var names []string
	seen := make(map[string]struct{})
	d.Walk(func(n *doc.Node) bool {
		if n.Kind == doc.Func {
			if _, dup := seen[n.Label]; !dup {
				seen[n.Label] = struct{}{}
				names = append(names, n.Label)
			}
		}
		return true
	})
	sort.Strings(names)
	return names
}

// SeedDir loads every *.xml file of dir into any DocStore, keyed by file
// base name, under the given conflict policy; it reports how many documents
// were stored. The Repository backends keep their policy-atomic LoadDirWith;
// this generic path checks-then-puts, which is exact for single-writer
// seeding (daemon boot).
func SeedDir(s DocStore, dir string, policy ConflictPolicy) (int, error) {
	if r, ok := s.(*Repository); ok {
		return r.LoadDirWith(dir, policy)
	}
	if d, ok := s.(*DurableRepository); ok {
		return d.LoadDirWith(dir, policy)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".xml")
		if _, exists := s.Get(name); exists {
			switch policy {
			case KeepExisting:
				continue
			case FailOnConflict:
				return loaded, fmt.Errorf("store: document %q already exists", name)
			}
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return loaded, fmt.Errorf("store: %w", err)
		}
		d, err := xmlio.ParseString(string(data))
		if err != nil {
			return loaded, fmt.Errorf("store: parsing %s: %w", e.Name(), err)
		}
		if err := s.Put(name, d); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}
