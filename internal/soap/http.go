package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/service"
	"axml/internal/telemetry"
)

// Transport robustness defaults. A peer exchanging intensional documents on
// the open network must bound what it reads and how long it waits: an
// unbounded body is a memory exhaustion vector, and a timeout-less client
// blocks a rewriting forever on one hung remote (cf. the robustness concerns
// of distributed XML design).
const (
	// DefaultMaxRequestBytes caps decoded SOAP request bodies server-side.
	DefaultMaxRequestBytes = 8 << 20 // 8 MiB
	// DefaultMaxResponseBytes caps response bodies the client will read.
	DefaultMaxResponseBytes = 32 << 20 // 32 MiB
	// DefaultTimeout bounds a full client round trip.
	DefaultTimeout = 30 * time.Second
	// bodyExcerptBytes bounds how much of a non-SOAP error body is quoted in
	// client error messages.
	bodyExcerptBytes = 256
)

// DefaultTransport backs DefaultClient: http.DefaultTransport's dialer and
// TLS settings with the idle-connection pool resized for peer federation.
// The stock per-host limit (MaxIdleConnsPerHost = 2) fits a client talking
// to many hosts a little; a peer fanning materialization calls out to a few
// federated peers a lot churns through connections instead — every burst
// beyond two concurrent calls to the same peer closes and redials on the
// next burst. Raising the per-host limit keeps a fan-out's worth of
// connections warm per peer; IdleConnTimeout still reclaims them when a
// peer goes quiet.
var DefaultTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	t.IdleConnTimeout = 90 * time.Second
	return t
}()

// DefaultClient is the HTTP client used when none is configured: unlike
// http.DefaultClient it carries a timeout, so a hung remote peer cannot
// stall schema enforcement indefinitely, and a pooled transport tuned for
// repeated calls to the same few peers (see DefaultTransport).
var DefaultClient = &http.Client{Timeout: DefaultTimeout, Transport: DefaultTransport}

// Server exposes a service registry as a SOAP endpoint. The OnRequest and
// OnResponse hooks are where the peer's Schema Enforcement module plugs in:
// they may rewrite (materialize) the forests or reject the exchange.
type Server struct {
	Registry  *service.Registry
	Namespace string
	// OnRequest intercepts decoded parameters before dispatch, under the
	// request's context: a client disconnect cancels the enforcement
	// rewriting it triggers.
	OnRequest func(ctx context.Context, method string, params []*doc.Node) ([]*doc.Node, error)
	// OnResponse intercepts results before they are written back, under the
	// request's context.
	OnResponse func(ctx context.Context, method string, result []*doc.Node) ([]*doc.Node, error)
	// MaxRequestBytes caps the request body; 0 selects
	// DefaultMaxRequestBytes, negative disables the limit.
	MaxRequestBytes int64
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoints accept POST only", http.StatusMethodNotAllowed)
		return
	}
	body := io.Reader(r.Body)
	limit := s.MaxRequestBytes
	if limit == 0 {
		limit = DefaultMaxRequestBytes
	}
	if limit > 0 {
		body = http.MaxBytesReader(w, r.Body, limit)
	}
	req, err := ReadRequest(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fault(w, http.StatusRequestEntityTooLarge, "soap:Client",
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.fault(w, http.StatusBadRequest, "soap:Client", err)
		return
	}
	params := req.Params
	if s.OnRequest != nil {
		params, err = s.OnRequest(r.Context(), req.Method, params)
		if err != nil {
			s.fault(w, http.StatusBadRequest, "soap:Client", err)
			return
		}
	}
	result, err := s.Registry.CallContext(r.Context(), req.Method, params)
	if err != nil {
		s.fault(w, http.StatusInternalServerError, "soap:Server", err)
		return
	}
	if s.OnResponse != nil {
		result, err = s.OnResponse(r.Context(), req.Method, result)
		if err != nil {
			s.fault(w, http.StatusInternalServerError, "soap:Server", err)
			return
		}
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, req.Method, s.Namespace, result); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) fault(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	_ = WriteFault(w, code, err.Error())
}

// Client calls a fixed SOAP endpoint.
type Client struct {
	Endpoint  string
	Namespace string
	// HTTP performs the round trips; nil selects DefaultClient (which,
	// unlike http.DefaultClient, has a timeout).
	HTTP *http.Client
	// MaxResponseBytes caps how much of a response body is read; 0 selects
	// DefaultMaxResponseBytes, negative disables the limit.
	MaxResponseBytes int64
}

// Call performs one SOAP request/response round trip — the context-free
// wrapper over CallContext.
func (c *Client) Call(method string, params []*doc.Node) ([]*doc.Node, error) {
	return c.CallContext(context.Background(), method, params)
}

// CallContext performs one SOAP request/response round trip under a context:
// cancellation or deadline expiry interrupts the connection, the in-flight
// request and the body read. HTTP-level failures are reported as such: a
// SOAP fault in the body (whatever the status code) surfaces as *Fault,
// while a non-SOAP error body — a proxy error page, a plain-text http.Error
// — yields an error carrying the HTTP status and a bounded excerpt instead
// of a confusing XML parse error.
func (c *Client) CallContext(ctx context.Context, method string, params []*doc.Node) ([]*doc.Node, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = DefaultClient
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, method, c.Namespace, params); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, &buf)
	if err != nil {
		return nil, fmt.Errorf("soap: calling %s at %s: %w", method, c.Endpoint, err)
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	// Propagate the caller's trace so the remote peer's spans, audit
	// events, and request logs join this request's trace ID.
	telemetry.InjectTraceContext(ctx, req.Header)
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("soap: calling %s at %s: %w", method, c.Endpoint, err)
	}
	defer resp.Body.Close()
	limit := c.MaxResponseBytes
	if limit == 0 {
		limit = DefaultMaxResponseBytes
	}
	var body []byte
	if limit > 0 {
		body, err = io.ReadAll(io.LimitReader(resp.Body, limit+1))
		if err == nil && int64(len(body)) > limit {
			err = fmt.Errorf("response body exceeds %d bytes", limit)
		}
	} else {
		body, err = io.ReadAll(resp.Body)
	}
	if err != nil {
		return nil, fmt.Errorf("soap: %s at %s: reading response: %w", method, c.Endpoint, err)
	}

	ct := resp.Header.Get("Content-Type")
	if xmlContentType(ct) {
		out, perr := ReadResponse(bytes.NewReader(body))
		var fault *Fault
		if errors.As(perr, &fault) {
			return nil, fault // server-reported fault, any status code
		}
		if perr == nil {
			if resp.StatusCode != http.StatusOK {
				// A well-formed response on an error status is a broken
				// server or intermediary; do not trust the payload.
				return nil, fmt.Errorf("soap: %s at %s: HTTP %s with a response body", method, c.Endpoint, resp.Status)
			}
			return out, nil
		}
		if resp.StatusCode == http.StatusOK {
			return nil, fmt.Errorf("soap: %s at %s: %w", method, c.Endpoint, perr)
		}
		// fall through: non-OK status with unparsable XML body
	}
	return nil, fmt.Errorf("soap: %s at %s: HTTP %s (Content-Type %q): %s",
		method, c.Endpoint, resp.Status, ct, excerpt(body))
}

// xmlContentType accepts the media types SOAP 1.x replies arrive with. An
// absent Content-Type is accepted leniently — the body decides.
func xmlContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mediaType := strings.TrimSpace(strings.ToLower(strings.SplitN(ct, ";", 2)[0]))
	switch mediaType {
	case "text/xml", "application/xml", "application/soap+xml":
		return true
	}
	return strings.HasSuffix(mediaType, "+xml")
}

// excerpt renders a bounded, quote-escaped prefix of an error body.
func excerpt(body []byte) string {
	truncated := false
	if len(body) > bodyExcerptBytes {
		body = body[:bodyExcerptBytes]
		truncated = true
	}
	s := strings.TrimSpace(string(body))
	if s == "" {
		return "empty body"
	}
	if truncated {
		return fmt.Sprintf("%q...", s)
	}
	return fmt.Sprintf("%q", s)
}

// Invoker routes function nodes to SOAP endpoints: a node's ServiceRef
// endpoint wins; Default is used for nodes without one. It implements
// core.Invoker, making remote services directly usable by the rewriter.
type Invoker struct {
	// Default is the endpoint for calls without an explicit ServiceRef.
	Default string
	// Namespace stamps outgoing body elements.
	Namespace string
	// HTTP performs the round trips; nil selects DefaultClient.
	HTTP *http.Client
	// MaxResponseBytes is forwarded to the per-call Client.
	MaxResponseBytes int64
}

// Invoke implements core.Invoker; the rewriting's context rides the HTTP
// request, so cancelling the rewrite tears down the connection.
func (i *Invoker) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	endpoint := i.Default
	ns := i.Namespace
	if call.Service != nil {
		if call.Service.Endpoint != "" {
			endpoint = call.Service.Endpoint
		}
		if call.Service.Namespace != "" {
			ns = call.Service.Namespace
		}
	}
	if endpoint == "" {
		return nil, fmt.Errorf("soap: no endpoint for %q", call.Label)
	}
	c := &Client{Endpoint: endpoint, Namespace: ns, HTTP: i.HTTP, MaxResponseBytes: i.MaxResponseBytes}
	return c.CallContext(ctx, call.Label, call.Children)
}

var _ core.Invoker = (*Invoker)(nil)
