package schema

import (
	"strings"
	"testing"

	"axml/internal/doc"
	"axml/internal/regex"
)

// paperSchemaText is the schema (*) from Section 2 of the paper.
const paperSchemaText = `
# Schema (*) of the paper
root newspaper
elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
elem title = data
elem date = data
elem temp = data
elem city = data
elem exhibit = title.(Get_Date|date)
func Get_Temp = city -> temp
func TimeOut = data -> (exhibit|performance)*
func Get_Date = title -> date
`

func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := ParseText(paperSchemaText, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fig2 builds the document of Figure 2.a.
func fig2() *doc.Node {
	return doc.Elem("newspaper",
		doc.Elem("title", doc.TextNode("The Sun")),
		doc.Elem("date", doc.TextNode("04/10/2002")),
		doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("Paris"))),
		doc.Call("TimeOut", doc.TextNode("exhibits")),
	)
}

func TestParseTextPaperSchema(t *testing.T) {
	s := paperSchema(t)
	if s.Root != "newspaper" {
		t.Errorf("root = %q", s.Root)
	}
	if len(s.Labels) != 6 || len(s.Funcs) != 3 {
		t.Errorf("decls = %d labels, %d funcs", len(s.Labels), len(s.Funcs))
	}
	if !s.Labels["title"].IsData() {
		t.Error("title should be data")
	}
	if s.Labels["newspaper"].IsData() {
		t.Error("newspaper should not be data")
	}
	in, out, ok := s.FuncSig("Get_Temp")
	if !ok || in == nil || out == nil {
		t.Fatal("Get_Temp signature missing")
	}
	if in.String(s.Table) != "city" || out.String(s.Table) != "temp" {
		t.Errorf("Get_Temp signature = %s -> %s", in.String(s.Table), out.String(s.Table))
	}
	// TimeOut takes atomic data.
	tin, _, _ := s.FuncSig("TimeOut")
	if tin != nil {
		t.Error("TimeOut input should be data (nil)")
	}
	if err := s.CheckDeterministic(); err != nil {
		t.Errorf("paper schema should be deterministic: %v", err)
	}
}

func TestParseTextOptions(t *testing.T) {
	s, err := ParseText(`
func Pay = data -> receipt {noninvoke, effects, cost=2.5, endpoint=http://bank/soap, ns=urn:bank}
elem receipt = data
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Funcs["Pay"]
	if d.Invocable {
		t.Error("noninvoke ignored")
	}
	if !d.SideEffects {
		t.Error("effects ignored")
	}
	if d.Cost != 2.5 {
		t.Errorf("cost = %v", d.Cost)
	}
	if d.Endpoint != "http://bank/soap" || d.Namespace != "urn:bank" {
		t.Errorf("endpoint/ns = %q %q", d.Endpoint, d.Namespace)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, src := range []string{
		"bogus x = y",
		"elem a",
		"func f = a",                     // missing ->
		"elem a = ((",                    // bad regex
		"pattern p = a -> b {pred=nope}", // unknown predicate
		"func f = a -> b {x",             // unterminated options
		"root",                           // missing operand
	} {
		if _, err := ParseText(src, nil); err == nil {
			t.Errorf("ParseText(%q) should fail", src)
		}
	}
}

func TestRedeclarationAcrossKinds(t *testing.T) {
	s := New()
	if err := s.SetData("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFunc("x", "a", "b"); err == nil {
		t.Error("declaring label name as function should fail")
	}
	if err := s.SetPattern("x", "a", "b", nil); err == nil {
		t.Error("declaring label name as pattern should fail")
	}
	// Redeclaring within the same kind overwrites (useful for refinement).
	if err := s.SetLabel("x", "a.b"); err != nil {
		t.Errorf("same-kind redeclaration should succeed: %v", err)
	}
}

func TestValidatePaperDocument(t *testing.T) {
	s := paperSchema(t)
	c := NewContext(s, nil)
	if err := c.Validate(fig2()); err != nil {
		t.Errorf("Figure 2.a should validate against schema (*): %v", err)
	}

	// After materializing Get_Temp the document still validates (temp branch).
	after := fig2()
	if err := after.ReplaceChild(2, []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(after); err != nil {
		t.Errorf("Figure 2.b should validate: %v", err)
	}

	// Schema (**) requires a materialized temp: Figure 2.a must NOT validate.
	ss := MustParseText(strings.Replace(paperSchemaText,
		"elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)",
		"elem newspaper = title.date.temp.(TimeOut|exhibit*)", 1), nil)
	cs := NewContext(ss, nil)
	if err := cs.Validate(fig2()); err == nil {
		t.Error("Figure 2.a should not validate against schema (**)")
	}
	if err := cs.Validate(after); err != nil {
		t.Errorf("materialized document should validate against (**): %v", err)
	}
}

func TestValidateDataElement(t *testing.T) {
	s := paperSchema(t)
	c := NewContext(s, nil)
	bad := doc.Elem("title", doc.Elem("b", doc.TextNode("bold!")))
	if err := c.Validate(bad); err == nil {
		t.Error("data element with element child should fail")
	}
	if err := c.Validate(doc.Elem("title")); err != nil {
		t.Errorf("empty data element should validate: %v", err)
	}
}

func TestValidateTextInStructuredContent(t *testing.T) {
	s := paperSchema(t)
	c := NewContext(s, nil)
	n := fig2()
	n.Children = append(n.Children, doc.TextNode("   \n")) // whitespace ok
	if err := c.Validate(n); err != nil {
		t.Errorf("whitespace text should be ignored: %v", err)
	}
	n.Children = append(n.Children, doc.TextNode("rogue text"))
	if err := c.Validate(n); err == nil {
		t.Error("non-whitespace text in structured content should fail")
	}
}

func TestValidateFunctionParams(t *testing.T) {
	s := paperSchema(t)
	c := NewContext(s, nil)
	bad := fig2()
	bad.Children[2] = doc.Call("Get_Temp", doc.Elem("date")) // wrong param type
	if err := c.Validate(bad); err == nil {
		t.Error("Get_Temp with date param should fail validation")
	}
	badData := fig2()
	badData.Children[3] = doc.Call("TimeOut", doc.Elem("city")) // data expected
	if err := c.Validate(badData); err == nil {
		t.Error("TimeOut with element param should fail validation")
	}
}

func TestStrictVsLenient(t *testing.T) {
	s := MustParseText("elem a = b*", nil) // b mentioned but undeclared
	n := doc.Elem("a", doc.Elem("b", doc.Elem("whatever")))
	c := NewContext(s, nil)
	if err := c.Validate(n); err != nil {
		t.Errorf("lenient mode should accept undeclared b subtree: %v", err)
	}
	c.Strict = true
	if err := c.Validate(n); err == nil {
		t.Error("strict mode should reject undeclared b")
	}
}

func TestPatternMatching(t *testing.T) {
	calls := 0
	preds := map[string]Predicate{
		"uddi": func(name string, in, out *regex.Regex) bool {
			calls++
			return strings.HasPrefix(name, "Get_")
		},
	}
	s := MustParseText(`
elem newspaper = title.(Forecast|temp)
elem title = data
elem temp = data
elem city = data
func Get_Temp = city -> temp
func Rogue_Temp = city -> temp
func Get_Wrong = city -> city
pattern Forecast = city -> temp {pred=uddi}
`, preds)
	c := NewContext(s, nil)

	ok := doc.Elem("newspaper", doc.Elem("title"), doc.Call("Get_Temp", doc.Elem("city")))
	if err := c.Validate(ok); err != nil {
		t.Errorf("Get_Temp should match Forecast pattern: %v", err)
	}
	if calls == 0 {
		t.Error("predicate was never consulted")
	}
	badName := doc.Elem("newspaper", doc.Elem("title"), doc.Call("Rogue_Temp", doc.Elem("city")))
	if err := c.Validate(badName); err == nil {
		t.Error("Rogue_Temp fails the predicate and must not match")
	}
	badSig := doc.Elem("newspaper", doc.Elem("title"), doc.Call("Get_Wrong", doc.Elem("city")))
	if err := c.Validate(badSig); err == nil {
		t.Error("Get_Wrong has the wrong signature and must not match")
	}
}

func TestFuncMatchesPatternSigEquivalence(t *testing.T) {
	s := New()
	mk := func(src string) *regex.Regex { return regex.MustParse(s.Table, src) }
	def := &FuncDef{Name: "f", In: mk("a|b"), Out: mk("c")}
	pat := &PatternDef{Name: "p", In: mk("b|a"), Out: mk("c")}
	if !FuncMatchesPattern(def, pat) {
		t.Error("signature comparison should be language-level (a|b ≡ b|a)")
	}
	pat2 := &PatternDef{Name: "p2", In: mk("a"), Out: mk("c")}
	if FuncMatchesPattern(def, pat2) {
		t.Error("different input languages should not match")
	}
	if FuncMatchesPattern(nil, pat) || FuncMatchesPattern(def, nil) {
		t.Error("nil operands should not match")
	}
	// data vs data matches; data vs regex does not.
	dataDef := &FuncDef{Name: "g"}
	dataPat := &PatternDef{Name: "q"}
	if !FuncMatchesPattern(dataDef, dataPat) {
		t.Error("data -> data should match data -> data")
	}
	if FuncMatchesPattern(dataDef, pat) {
		t.Error("data signature should not match regex signature")
	}
}

func TestIsInputOutputInstance(t *testing.T) {
	s := paperSchema(t)
	c := NewContext(s, nil)
	if err := c.IsInputInstance("Get_Temp", []*doc.Node{doc.Elem("city", doc.TextNode("Paris"))}); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	if err := c.IsInputInstance("Get_Temp", []*doc.Node{doc.Elem("date")}); err == nil {
		t.Error("wrong input accepted")
	}
	if err := c.IsInputInstance("TimeOut", []*doc.Node{doc.TextNode("exhibits")}); err != nil {
		t.Errorf("data input rejected: %v", err)
	}
	if err := c.IsInputInstance("TimeOut", []*doc.Node{doc.Elem("city")}); err == nil {
		t.Error("element input to data function accepted")
	}
	if err := c.IsOutputInstance("Get_Temp", []*doc.Node{doc.Elem("temp", doc.TextNode("15"))}); err != nil {
		t.Errorf("valid output rejected: %v", err)
	}
	if err := c.IsOutputInstance("Get_Temp", []*doc.Node{doc.Elem("city")}); err == nil {
		t.Error("wrong output accepted")
	}
	if err := c.IsOutputInstance("TimeOut", []*doc.Node{
		doc.Elem("exhibit", doc.Elem("title"), doc.Elem("date")),
		doc.Elem("performance"),
	}); err != nil {
		t.Errorf("TimeOut mixed output rejected: %v", err)
	}
	if err := c.IsInputInstance("Nope", nil); err == nil {
		t.Error("unknown function accepted")
	}
	// Output instances validate recursively: a bad exhibit must fail.
	if err := c.IsOutputInstance("TimeOut", []*doc.Node{doc.Elem("exhibit", doc.Elem("date"))}); err == nil {
		t.Error("invalid exhibit inside output accepted")
	}
}

func TestWordOfAndAdmissible(t *testing.T) {
	s := paperSchema(t)
	c := NewContext(s, nil)
	w := c.WordOf(fig2())
	if len(w) != 4 {
		t.Fatalf("WordOf = %d symbols", len(w))
	}
	if s.Table.Name(w[2]) != "Get_Temp" {
		t.Errorf("word[2] = %s", s.Table.Name(w[2]))
	}
	admissible := c.AdmissibleSyms(doc.Elem("title"))
	if len(admissible) != 1 {
		t.Errorf("element admissible = %v", admissible)
	}
}

func TestSchemaAlphabetAndKind(t *testing.T) {
	s := paperSchema(t)
	sigma := s.Alphabet()
	if len(sigma) < 9 {
		t.Errorf("alphabet = %d symbols, expected at least labels+funcs", len(sigma))
	}
	if s.Kind("newspaper") != KindLabel || s.Kind("Get_Temp") != KindFunc || s.Kind("zzz") != KindUnknown {
		t.Error("Kind classification wrong")
	}
	if KindLabel.String() == "" || KindUnknown.String() == "" {
		t.Error("SymKind strings empty")
	}
}

func TestCheckDeterministic(t *testing.T) {
	s := MustParseText("elem a = b*.b\nelem b = data", nil)
	if err := s.CheckDeterministic(); err == nil {
		t.Error("b*.b should be flagged non-deterministic")
	}
	s2 := MustParseText("func f = a*.a -> b\nelem a = data\nelem b = data", nil)
	if err := s2.CheckDeterministic(); err == nil {
		t.Error("non-deterministic input type should be flagged")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := paperSchema(t)
	text := s.Text()
	s2, err := ParseText(text, nil)
	if err != nil {
		t.Fatalf("re-parse of Text() failed: %v\n%s", err, text)
	}
	if s2.Root != s.Root || len(s2.Labels) != len(s.Labels) || len(s2.Funcs) != len(s.Funcs) {
		t.Error("Text round trip lost declarations")
	}
	// Content models survive by language.
	c := NewContext(s2, nil)
	if err := c.Validate(fig2()); err != nil {
		t.Errorf("round-tripped schema rejects Figure 2.a: %v", err)
	}
}

func TestNewContextPanicsOnSplitTables(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewContext with split tables should panic")
		}
	}()
	NewContext(New(), New())
}

func TestSigsSchemaSeparateFromTarget(t *testing.T) {
	// Exchange schema declares the pattern; sender schema has the function
	// signature. Validation must find the signature through Sigs.
	table := regex.NewTable()
	sender := NewShared(table)
	if err := sender.SetFunc("Get_Temp", "city", "temp"); err != nil {
		t.Fatal(err)
	}
	target := NewShared(table)
	for _, step := range []error{
		target.SetLabel("newspaper", "Forecast|temp"),
		target.SetData("temp"),
		target.SetData("city"),
		target.SetPattern("Forecast", "city", "temp", nil),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	c := NewContext(target, sender)
	n := doc.Elem("newspaper", doc.Call("Get_Temp", doc.Elem("city")))
	if err := c.Validate(n); err != nil {
		t.Errorf("pattern match through sender signatures failed: %v", err)
	}
}
