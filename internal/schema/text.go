package schema

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"axml/internal/regex"
)

// ParseText parses the compact line-oriented schema DSL used by the CLI,
// tests and examples. The format, one declaration per line:
//
//	# comment
//	root newspaper
//	elem newspaper = title.date.(Get_Temp|temp).(TimeOut|exhibit*)
//	elem title = data
//	func Get_Temp = city -> temp
//	func TimeOut = data -> (exhibit|performance)* {cost=2, effects}
//	func Secret = data -> data {noninvoke}
//	pattern Forecast = city -> temp {pred=uddi}
//
// Options in braces: "noninvoke" (not invocable), "effects" (side effects),
// "cost=<float>", "endpoint=<url>", "ns=<uri>", and for patterns
// "pred=<name>" resolved through the preds map.
func ParseText(src string, preds map[string]Predicate) (*Schema, error) {
	return ParseTextShared(New(), src, preds)
}

// ParseTextShared is ParseText but declares into an existing schema, so that
// a sender schema and an exchange schema can share one symbol table.
func ParseTextShared(s *Schema, src string, preds map[string]Predicate) (*Schema, error) {
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(s, line, preds); err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo+1, err)
		}
	}
	return s, nil
}

// MustParseText is ParseText panicking on error, for tests and examples.
func MustParseText(src string, preds map[string]Predicate) *Schema {
	s, err := ParseText(src, preds)
	if err != nil {
		panic(err)
	}
	return s
}

func parseLine(s *Schema, line string, preds map[string]Predicate) error {
	fields := strings.SplitN(line, " ", 2)
	if len(fields) != 2 {
		return fmt.Errorf("malformed declaration %q", line)
	}
	keyword, rest := fields[0], strings.TrimSpace(fields[1])
	switch keyword {
	case "root":
		s.Root = rest
		return nil
	case "elem":
		name, rhs, err := splitDecl(rest)
		if err != nil {
			return err
		}
		if rhs == "data" {
			return s.SetData(name)
		}
		return s.SetLabel(name, rhs)
	case "func", "pattern":
		name, rhs, err := splitDecl(rest)
		if err != nil {
			return err
		}
		rhs, opts, err := splitOptions(rhs)
		if err != nil {
			return err
		}
		in, out, ok := strings.Cut(rhs, "->")
		if !ok {
			return fmt.Errorf("%s %q: missing '->' in signature", keyword, name)
		}
		in, out = strings.TrimSpace(in), strings.TrimSpace(out)
		if keyword == "pattern" {
			var pred Predicate
			if pname, okp := opts["pred"]; okp {
				pred = preds[pname]
				if pred == nil {
					return fmt.Errorf("pattern %q: unknown predicate %q", name, pname)
				}
			}
			if err := s.SetPattern(name, in, out, pred); err != nil {
				return err
			}
			if _, ni := opts["noninvoke"]; ni {
				s.Patterns[name].Invocable = false
			}
			return nil
		}
		return s.SetFuncDef(name, in, out, func(d *FuncDef) {
			if _, ok := opts["noninvoke"]; ok {
				d.Invocable = false
			}
			if _, ok := opts["effects"]; ok {
				d.SideEffects = true
			}
			if v, ok := opts["cost"]; ok {
				if c, err := strconv.ParseFloat(v, 64); err == nil {
					d.Cost = c
				}
			}
			if v, ok := opts["endpoint"]; ok {
				d.Endpoint = v
			}
			if v, ok := opts["ns"]; ok {
				d.Namespace = v
			}
		})
	default:
		return fmt.Errorf("unknown keyword %q", keyword)
	}
}

func splitDecl(rest string) (name, rhs string, err error) {
	name, rhs, ok := strings.Cut(rest, "=")
	if !ok {
		return "", "", fmt.Errorf("missing '=' in %q", rest)
	}
	return strings.TrimSpace(name), strings.TrimSpace(rhs), nil
}

// splitOptions strips a trailing {k=v, flag, ...} group.
func splitOptions(rhs string) (string, map[string]string, error) {
	opts := map[string]string{}
	open := strings.LastIndexByte(rhs, '{')
	if open < 0 {
		return strings.TrimSpace(rhs), opts, nil
	}
	if !strings.HasSuffix(strings.TrimSpace(rhs), "}") {
		return "", nil, fmt.Errorf("unterminated option group in %q", rhs)
	}
	body := strings.TrimSpace(rhs)
	body = body[open+1 : len(body)-1]
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, _ := strings.Cut(part, "=")
		opts[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return strings.TrimSpace(rhs[:open]), opts, nil
}

// Text renders the schema back in the DSL, deterministically ordered. Only
// data representable in the DSL round-trips (predicates print as their
// presence cannot be recovered; they render as a comment).
func (s *Schema) Text() string {
	var b strings.Builder
	if s.Root != "" {
		fmt.Fprintf(&b, "root %s\n", s.Root)
	}
	for _, name := range s.SortedLabels() {
		d := s.Labels[name]
		if d.IsData() {
			fmt.Fprintf(&b, "elem %s = data\n", name)
		} else {
			fmt.Fprintf(&b, "elem %s = %s\n", name, d.Content.String(s.Table))
		}
	}
	for _, name := range s.SortedFuncs() {
		d := s.Funcs[name]
		var opts []string
		if !d.Invocable {
			opts = append(opts, "noninvoke")
		}
		if d.SideEffects {
			opts = append(opts, "effects")
		}
		if d.Cost != 0 {
			opts = append(opts, fmt.Sprintf("cost=%g", d.Cost))
		}
		if d.Endpoint != "" {
			opts = append(opts, "endpoint="+d.Endpoint)
		}
		if d.Namespace != "" {
			opts = append(opts, "ns="+d.Namespace)
		}
		fmt.Fprintf(&b, "func %s = %s -> %s%s\n", name, typeText(s, d.In), typeText(s, d.Out), optText(opts))
	}
	for _, name := range s.SortedPatterns() {
		d := s.Patterns[name]
		var opts []string
		if !d.Invocable {
			opts = append(opts, "noninvoke")
		}
		sort.Strings(opts)
		fmt.Fprintf(&b, "pattern %s = %s -> %s%s", name, typeText(s, d.In), typeText(s, d.Out), optText(opts))
		if d.Pred != nil {
			b.WriteString(" # predicate attached")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func typeText(s *Schema, r *regex.Regex) string {
	if r == nil {
		return "data"
	}
	return r.String(s.Table)
}

func optText(opts []string) string {
	if len(opts) == 0 {
		return ""
	}
	return " {" + strings.Join(opts, ", ") + "}"
}
