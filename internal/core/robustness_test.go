package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"axml/internal/doc"
	"axml/internal/schema"
	"axml/internal/workload"
)

// Robustness sweeps: the executor must never panic or corrupt documents, no
// matter how workloads, modes and failure injections combine.

// flakyInvoker wraps a simulated invoker with injected failures.
type flakyInvoker struct {
	inner *workload.SimInvoker
	rng   *rand.Rand
	// failEvery injects an error on every n-th call (0 = never).
	failEvery int
	// garbageEvery returns a non-conforming forest on every n-th call.
	garbageEvery int
	calls        int
}

var errInjected = errors.New("injected service failure")

func (f *flakyInvoker) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	f.calls++
	if f.failEvery > 0 && f.calls%f.failEvery == 0 {
		return nil, errInjected
	}
	if f.garbageEvery > 0 && f.calls%f.garbageEvery == 0 {
		return []*doc.Node{doc.Elem("garbage-element-nobody-declared")}, nil
	}
	return f.inner.Invoke(ctx, call)
}

// Property: rewriting random instances under every mode either succeeds with
// a valid document or fails with an error — never panics, and safe-mode
// failures only happen under injected faults.
func TestQuickExecutorRobustness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.Options{Labels: 4, Funcs: 3})
		g := workload.NewGenerator(s, rng)
		g.MaxDepth = 5
		root, err := g.Root()
		if err != nil {
			return true
		}
		for _, mode := range []Mode{Safe, Possible, Mixed} {
			for _, inject := range []struct{ fail, garbage int }{
				{0, 0}, {2, 0}, {0, 2},
			} {
				inv := &flakyInvoker{
					inner:        workload.NewSimInvoker(s, rand.New(rand.NewSource(seed+1))),
					rng:          rng,
					failEvery:    inject.fail,
					garbageEvery: inject.garbage,
				}
				rw := NewRewriter(s, s, 2, inv)
				rw.Audit = &Audit{}
				rw.MaxCalls = 200
				out, err := rw.RewriteDocument(root.Clone(), mode)
				if err != nil {
					continue // failure is acceptable; panics are not
				}
				if err := schema.NewContext(s, nil).Validate(out); err != nil {
					t.Logf("seed %d mode %v inject %+v: invalid result: %v", seed, mode, inject, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a clean safe-mode run (no injection) never fails once the static
// check passes, and never exceeds the fork-depth bound in its audit.
func TestQuickSafeDepthBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.Options{Labels: 4, Funcs: 3})
		g := workload.NewGenerator(s, rng)
		g.MaxDepth = 5
		root, err := g.Root()
		if err != nil {
			return true
		}
		k := 1 + rng.Intn(2)
		rw := NewRewriter(s, s, k, workload.NewSimInvoker(s, rand.New(rand.NewSource(seed+7))))
		rw.Audit = &Audit{}
		if err := rw.CheckDocument(root, Safe); err != nil {
			return true
		}
		if _, err := rw.RewriteDocument(root.Clone(), Safe); err != nil {
			t.Logf("seed %d: statically safe but execution failed: %v", seed, err)
			return false
		}
		for _, c := range rw.Audit.Calls() {
			if c.Depth > k {
				t.Logf("seed %d: call %s at depth %d exceeds k=%d", seed, c.Func, c.Depth, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGarbageReturnsFailSafely: with garbage injected on the first call, a
// safe rewriting fails with the non-conforming error and the document given
// to the caller is never half-written (RewriteDocument returns nil).
func TestGarbageReturnsFailSafely(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	inv := &flakyInvoker{
		inner:        workload.NewSimInvoker(s, rand.New(rand.NewSource(1))),
		garbageEvery: 1,
	}
	rw := NewRewriter(s, s, 1, inv)
	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("x"))))
	out, err := rw.RewriteDocument(root, Safe)
	if err == nil {
		t.Fatalf("garbage should fail, got %v", out)
	}
	if out != nil {
		t.Error("failed rewriting should not return a document")
	}
}

// hangingInvoker blocks every call until its context is cancelled — a remote
// service that never answers. started is signalled once per call so tests can
// cancel only after the rewriting is provably inside an invocation.
type hangingInvoker struct {
	started chan struct{}
}

func (h *hangingInvoker) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	select {
	case h.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancellationMidRewrite: a rewriting stuck in a hung service call must
// return promptly when its context's deadline fires, report the context error,
// leave the input document unmodified, keep the Audit consistent (the hung
// call never completed, so no CallRecord), and leak no goroutines.
func TestCancellationMidRewrite(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	inv := &hangingInvoker{started: make(chan struct{}, 1)}
	rw := NewRewriterWithConfig(s, s, RewriterConfig{Depth: 1, Invoker: inv})

	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("x"))))
	snapshot := root.Clone()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	out, err := rw.RewriteDocumentContext(ctx, root, Safe)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v (out=%v)", err, out)
	}
	if out != nil {
		t.Error("cancelled rewriting should not return a document")
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; should be prompt", elapsed)
	}
	if !root.Equal(snapshot) {
		t.Error("input document was modified by a cancelled rewriting")
	}
	if n := rw.Audit.Len(); n != 0 {
		t.Errorf("hung call never completed but audit has %d records", n)
	}
	// The hung invoker returns when ctx is done, so no goroutine should
	// outlive the call; allow scheduler slack before comparing.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d after cancellation", before, after)
	}
}

// TestCancellationBeforeStart: an already-cancelled context fails the
// rewriting before any service call is attempted.
func TestCancellationBeforeStart(t *testing.T) {
	s := schema.MustParseText(`
root page
elem page = temp
elem temp = data
elem city = data
func Get_Temp = city -> temp
`, nil)
	calls := 0
	inv := ContextInvokerFunc(func(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
		calls++
		return []*doc.Node{doc.Elem("temp", doc.TextNode("20"))}, nil
	})
	rw := NewRewriterWithConfig(s, s, RewriterConfig{Depth: 1, Invoker: inv})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	root := doc.Elem("page", doc.Call("Get_Temp", doc.Elem("city", doc.TextNode("x"))))
	if _, err := rw.RewriteDocumentContext(ctx, root, Safe); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if calls != 0 {
		t.Errorf("invoker was called %d times under a dead context", calls)
	}
}
