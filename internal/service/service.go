// Package service implements the Web-service substrate of the Active XML
// setting: a registry of named operations with declared signatures, local
// (in-process) implementations, predicate services backing function patterns
// (the paper's UDDIF and InACL examples), and invokers that route function
// nodes to implementations.
//
// Real deployments pair this with internal/soap, which exposes a Registry
// over HTTP and routes calls to remote endpoints; tests and benchmarks pair
// it with internal/workload's simulated services.
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"axml/internal/core"
	"axml/internal/doc"
	"axml/internal/regex"
	"axml/internal/schema"
)

// Handler implements one service operation: parameters in, result forest
// out. Handlers must not retain or mutate the parameter nodes. Operations
// that can block should use a ContextHandler instead, so the caller's
// deadline reaches them.
type Handler func(params []*doc.Node) ([]*doc.Node, error)

// ContextHandler is a context-aware operation implementation; it wins over
// Handler when both are set.
type ContextHandler func(ctx context.Context, params []*doc.Node) ([]*doc.Node, error)

// Operation is a registered service operation.
type Operation struct {
	Name string
	// Def is the WSDL-level description: signature, cost, side effects.
	Def *schema.FuncDef
	// Handler executes the operation (context-free legacy form).
	Handler Handler
	// ContextHandler, when set, executes the operation under the caller's
	// context and takes precedence over Handler.
	ContextHandler ContextHandler
}

// Registry holds the operations a peer provides. It is safe for concurrent
// use.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]*Operation
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]*Operation)}
}

// Register adds an operation; it replaces any previous one with the same
// name.
func (r *Registry) Register(op *Operation) error {
	if op == nil || op.Name == "" || (op.Handler == nil && op.ContextHandler == nil) {
		return fmt.Errorf("service: operation needs a name and a handler")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[op.Name] = op
	return nil
}

// RegisterFunc declares the operation in the schema (if not present) and
// registers the handler in one step.
func (r *Registry) RegisterFunc(s *schema.Schema, name, in, out string, h Handler) error {
	if s.Funcs[name] == nil {
		if err := s.SetFunc(name, in, out); err != nil {
			return err
		}
	}
	return r.Register(&Operation{Name: name, Def: s.Funcs[name], Handler: h})
}

// Lookup finds an operation.
func (r *Registry) Lookup(name string) (*Operation, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.ops[name]
	return op, ok
}

// Names lists registered operation names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ops))
	for name := range r.ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Call executes an operation by name — the context-free wrapper over
// CallContext.
func (r *Registry) Call(name string, params []*doc.Node) ([]*doc.Node, error) {
	return r.CallContext(context.Background(), name, params)
}

// CallContext executes an operation by name under the caller's context.
// Context-free handlers are checked for cancellation before they run but
// cannot be interrupted once started.
func (r *Registry) CallContext(ctx context.Context, name string, params []*doc.Node) ([]*doc.Node, error) {
	op, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("service: unknown operation %q", name)
	}
	if op.ContextHandler != nil {
		return op.ContextHandler(ctx, params)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return op.Handler(params)
}

// Invoke implements core.Invoker: the function node's label selects the
// operation, its children are the parameters.
func (r *Registry) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	return r.CallContext(ctx, call.Label, call.Children)
}

var _ core.Invoker = (*Registry)(nil)

// Chain tries invokers in order, falling through on "unknown operation"
// errors; it lets a peer resolve local services first and remote endpoints
// second.
type Chain []core.Invoker

// Invoke implements core.Invoker.
func (c Chain) Invoke(ctx context.Context, call *doc.Node) ([]*doc.Node, error) {
	var lastErr error
	for _, inv := range c {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, err := inv.Invoke(ctx, call)
		if err == nil {
			return out, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("service: empty invoker chain")
	}
	return nil, fmt.Errorf("service: no invoker handled %q: %w", call.Label, lastErr)
}

// FindBySignature implements the UDDI-style search extension from the
// paper's conclusion: it returns the names of registered operations whose
// declared signature equals the requested one up to language equivalence —
// "find me any service that maps a city to a temp".
func (r *Registry) FindBySignature(in, out *regex.Regex) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	probe := &schema.FuncDef{In: in, Out: out}
	var names []string
	for name, op := range r.ops {
		if op.Def == nil {
			continue
		}
		pat := &schema.PatternDef{In: op.Def.In, Out: op.Def.Out}
		if schema.FuncMatchesPattern(&schema.FuncDef{Name: name, In: probe.In, Out: probe.Out}, pat) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// PredicateRegistry resolves named boolean predicates over functions — the
// implementation counterpart of the paper's UDDIF ("is the service listed in
// this UDDI registry?") and InACL ("may this client call it?") predicate
// services.
type PredicateRegistry struct {
	mu    sync.RWMutex
	preds map[string]schema.Predicate
}

// NewPredicateRegistry returns an empty predicate registry.
func NewPredicateRegistry() *PredicateRegistry {
	return &PredicateRegistry{preds: make(map[string]schema.Predicate)}
}

// Define registers a predicate under a name.
func (p *PredicateRegistry) Define(name string, pred schema.Predicate) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.preds[name] = pred
}

// Get resolves a predicate.
func (p *PredicateRegistry) Get(name string) (schema.Predicate, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pred, ok := p.preds[name]
	return pred, ok
}

// Map exposes the registry as the map schema.ParseText consumes.
func (p *PredicateRegistry) Map() map[string]schema.Predicate {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]schema.Predicate, len(p.preds))
	for k, v := range p.preds {
		out[k] = v
	}
	return out
}

// RegistryListed builds a UDDIF-style predicate: a function satisfies it iff
// an operation with that name is registered in reg.
func RegistryListed(reg *Registry) schema.Predicate {
	return func(name string, in, out *regex.Regex) bool {
		_, ok := reg.Lookup(name)
		return ok
	}
}

// ACL builds an InACL-style predicate from an allow-list of function names.
func ACL(allowed ...string) schema.Predicate {
	set := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		set[a] = true
	}
	return func(name string, in, out *regex.Regex) bool { return set[name] }
}

// And conjoins predicates (the paper's UDDIF ∧ InACL example).
func And(preds ...schema.Predicate) schema.Predicate {
	return func(name string, in, out *regex.Regex) bool {
		for _, p := range preds {
			if p != nil && !p(name, in, out) {
				return false
			}
		}
		return true
	}
}
